//! Blacklist enforcement with the bit-optimized Bloom filter (Table 1's
//! Existence attribute), fed from a pcap capture.
//!
//! ```sh
//! cargo run --release --example blacklist
//! ```
//!
//! 1. Generates a synthetic capture and writes it as a real pcap file
//!    (openable in Wireshark).
//! 2. Reads the capture back, registers the blacklisted flows on the
//!    switch, then checks live traffic against the filter.

use flymon::prelude::*;
use flymon_packet::{fmt_ipv4, KeySpec};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::pcap::{read_pcap, write_pcap};

fn main() {
    // A "capture" of known-bad flows (e.g. an IDS export).
    let bad_flows = TraceGenerator::new(13).wide_like(&TraceConfig {
        flows: 5_000,
        packets: 5_000,
        zipf_alpha: 0.0, // one packet per flow: a flow list
        ..TraceConfig::default()
    });
    let pcap_path = std::env::temp_dir().join("flymon_blacklist.pcap");
    {
        let file = std::fs::File::create(&pcap_path).expect("create pcap");
        write_pcap(std::io::BufWriter::new(file), &bad_flows).expect("write pcap");
    }
    println!(
        "wrote blacklist capture: {} ({} flows)",
        pcap_path.display(),
        bad_flows.len()
    );

    // Deploy the existence task and load the capture into it.
    let mut switch = FlyMon::new(FlyMonConfig {
        groups: 1,
        buckets_per_cmu: 65536,
        ..FlyMonConfig::default()
    });
    let task = TaskDefinition::builder("blacklist")
        .key(KeySpec::NONE)
        .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
        .memory(16384)
        .build();
    let handle = switch.deploy(&task).expect("deploys");
    let loaded = {
        let file = std::fs::File::open(&pcap_path).expect("open pcap");
        read_pcap(std::io::BufReader::new(file)).expect("read pcap")
    };
    switch.process_trace(&loaded);
    println!(
        "loaded {} blacklisted flows into '{}' ({})\n",
        loaded.len(),
        task.name,
        switch.task(handle).unwrap().algorithm.name()
    );

    // Live traffic: half blacklisted, half clean.
    let mut hits = 0usize;
    let mut clean_flagged = 0usize;
    let clean = TraceGenerator::new(77).wide_like(&TraceConfig {
        flows: 5_000,
        packets: 5_000,
        zipf_alpha: 0.0,
        seed: 77,
        ..TraceConfig::default()
    });
    for p in loaded.iter().take(2_500) {
        if switch.query_exists(handle, p) {
            hits += 1;
        }
    }
    for p in clean.iter().take(2_500) {
        if switch.query_exists(handle, p) {
            clean_flagged += 1;
        }
    }
    println!("blacklisted probes flagged: {hits}/2500 (Bloom filters never miss a member)");
    println!(
        "clean probes wrongly flagged: {clean_flagged}/2500 ({:.2}% false positives)",
        clean_flagged as f64 / 25.0
    );

    // Show a few verdicts.
    println!("\nsample verdicts:");
    for p in loaded.iter().take(3).chain(clean.iter().take(3)) {
        println!(
            "  {:>15}:{:<5} -> {:>15}:{:<5}  blacklisted: {}",
            fmt_ipv4(p.src_ip),
            p.src_port,
            fmt_ipv4(p.dst_ip),
            p.dst_port,
            switch.query_exists(handle, p)
        );
    }
}
