//! Network-wide measurement over a fleet of FlyMon switches.
//!
//! ```sh
//! cargo run --release --example network_wide
//! ```
//!
//! §3.4 positions FlyMon under software-defined-measurement controllers
//! that run network-wide queries. This example deploys the same task on
//! four simulated switches, splits the traffic across ingresses, and
//! merges the readouts — exactly (counter sketches are linear) for
//! frequency, by register max for cardinality.

use flymon::prelude::*;
use flymon_netsim::SwitchFleet;
use flymon_packet::{fmt_ipv4, KeySpec};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::GroundTruth;

fn main() {
    let trace = TraceGenerator::new(99).wide_like(&TraceConfig {
        flows: 20_000,
        packets: 500_000,
        zipf_alpha: 1.15,
        ..TraceConfig::default()
    });
    let config = FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 65536,
        ..FlyMonConfig::default()
    };

    // --- Network-wide heavy hitters ----------------------------------
    let freq_task = TaskDefinition::builder("nw-frequency")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 3 })
        .memory(16384)
        .build();
    let mut fleet = SwitchFleet::deploy(4, config, &freq_task).expect("fleet deploys");
    fleet.process_trace(&trace);
    println!("== network-wide heavy hitters (4 switches, merged registers) ==");

    let truth = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
    let mut top: Vec<_> = truth.frequency.iter().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
    let mut reps = std::collections::HashMap::new();
    for p in &trace {
        reps.entry(KeySpec::SRC_IP.extract(p)).or_insert(*p);
    }
    for (key, &true_count) in top.iter().take(5) {
        let pkt = reps[*key];
        let merged = fleet.merged_frequency(&pkt).expect("merges");
        let (sw0, h0) = fleet.switch(0);
        let local = sw0.query_frequency(h0.expect("deployed"), &pkt);
        println!(
            "  {:>15}: true {true_count:>6}  merged {merged:>6}  (switch 0 alone saw {local})",
            fmt_ipv4(pkt.src_ip)
        );
    }

    // --- Network-wide cardinality ------------------------------------
    let card_task = TaskDefinition::builder("nw-cardinality")
        .key(KeySpec::NONE)
        .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
        .algorithm(Algorithm::Hll)
        .memory(4096)
        .build();
    let mut fleet = SwitchFleet::deploy(4, config, &card_task).expect("fleet deploys");
    fleet.process_trace(&trace);
    let truth_card = GroundTruth::packet_counts(&trace, KeySpec::FIVE_TUPLE).cardinality();
    let merged = fleet.merged_cardinality().expect("merges");
    let (sw0, h0) = fleet.switch(0);
    println!("\n== network-wide cardinality (HLL registers merged by max) ==");
    println!(
        "  true {truth_card}  merged {merged:.0}  (switch 0 alone estimated {:.0})",
        sw0.cardinality(h0.expect("deployed"))
    );
}
