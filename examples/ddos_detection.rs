//! DDoS victim detection with FlyMon-BeauCoup (§4 of the paper).
//!
//! ```sh
//! cargo run --release --example ddos_detection
//! ```
//!
//! Generates background traffic plus a set of attacked destinations,
//! deploys a `Distinct(SrcIP)` task keyed by `DstIP`, and reports every
//! destination whose distinct-source count crossed the threshold —
//! scoring precision/recall against the exact ground truth.

use std::collections::HashSet;

use flymon::prelude::*;
use flymon_packet::{fmt_ipv4, KeySpec, Packet};
use flymon_traffic::gen::{DdosConfig, TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::distinct_counts;
use flymon_traffic::metrics::f1_score;

fn main() {
    let threshold = 512u64;

    // Traffic: 5K background flows + 10 victims x 2000 spoofed sources.
    let cfg = DdosConfig {
        background: TraceConfig {
            flows: 5_000,
            packets: 200_000,
            ..TraceConfig::default()
        },
        victims: 10,
        sources_per_victim: 2_000,
        packets_per_source: 1,
    };
    let (trace, victims) = TraceGenerator::new(2024).ddos(&cfg);
    println!("== DDoS victim detection ==");
    println!(
        "trace: {} packets, {} planted victims (>{threshold} distinct sources each)\n",
        trace.len(),
        victims.len()
    );

    // Deploy the detection task: key=DstIP, attribute=Distinct(SrcIP).
    let mut switch = FlyMon::new(FlyMonConfig {
        groups: 3,
        buckets_per_cmu: 65536,
        ..FlyMonConfig::default()
    });
    let task = TaskDefinition::builder("ddos-victims")
        .key(KeySpec::DST_IP)
        .attribute(Attribute::Distinct(KeySpec::SRC_IP))
        .algorithm(Algorithm::BeauCoup { d: 3 })
        .distinct_threshold(threshold)
        .memory(16384)
        .build();
    let handle = switch.deploy(&task).expect("deploys");
    println!(
        "deployed '{}' as {} ({:.1} ms modeled install)",
        task.name,
        switch.task(handle).unwrap().algorithm.name(),
        switch.task(handle).unwrap().install.latency_ms()
    );

    switch.process_trace(&trace);

    // Ground truth and reported sets over all destinations seen.
    let truth_counts = distinct_counts(&trace, KeySpec::DST_IP, KeySpec::SRC_IP);
    let truth: HashSet<_> = truth_counts
        .iter()
        .filter(|&(_, &c)| c >= threshold)
        .map(|(k, _)| *k)
        .collect();

    let mut representative = std::collections::HashMap::new();
    for p in &trace {
        representative.entry(KeySpec::DST_IP.extract(p)).or_insert(*p);
    }
    let reported: HashSet<_> = truth_counts
        .keys()
        .filter(|k| switch.beaucoup_reports(handle, &representative[*k]))
        .copied()
        .collect();

    let score = f1_score(&reported, &truth);
    println!(
        "\ndetected {} victims of {} true (precision {:.3}, recall {:.3}, F1 {:.3})",
        reported.len(),
        truth.len(),
        score.precision,
        score.recall,
        score.f1
    );

    println!("\nper-victim view (planted attacks):");
    for &v in &victims {
        let pkt = Packet::tcp(1, v, 1, 80);
        let coupons = switch.query_coupons(handle, &pkt);
        let est = switch.query_distinct(handle, &pkt);
        println!(
            "  {:>15}: coupons {:?} -> estimated ~{:>5.0} distinct sources, reported: {}",
            fmt_ipv4(v),
            coupons,
            est,
            switch.beaucoup_reports(handle, &pkt)
        );
    }
}
