//! Daemon-style streaming measurement: a supervised runtime ingesting a
//! phased workload (steady → 10× burst → steady) through the bounded
//! queue, rotating epochs under continuous traffic, surviving an
//! injected worker panic, and reporting health transitions as they
//! happen — the operator's view of the ISSUE-6 overload machinery.
//!
//! ```text
//! cargo run --release --example streaming_daemon            # full run
//! cargo run --release --example streaming_daemon -- --smoke # short CI run
//! ```

use flymon::prelude::*;
use flymon_netsim::{
    AdmissionConfig, IngestConfig, IngestFault, RuntimeHealth, StreamingRuntime, SwitchFleet,
};
use flymon_packet::{KeySpec, TaskFilter};
use flymon_traffic::gen::{Phase, PhasedConfig, PhasedSource};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steady = if smoke { 6 } else { 20 };
    let burst = if smoke { 4 } else { 10 };

    let def = TaskDefinition::builder("daemon-freq")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build();
    let fleet = SwitchFleet::deploy(
        3,
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 16384,
            ..FlyMonConfig::default()
        },
        &def,
    )
    .expect("fleet deploys");

    // The priority tenant (10.0.0.0/8) rides out the critical rung.
    let mut rt = StreamingRuntime::new(
        fleet,
        IngestConfig {
            queue_capacity: 2_048,
            drain_chunk: 512,
            backlog_limit: 4_096,
            admission: AdmissionConfig {
                priority: Some(TaskFilter::src(10 << 24, 8)),
                ..AdmissionConfig::default()
            },
            epoch_packets: 8_192,
            sync_every_steps: 1,
            ..IngestConfig::default()
        },
    );
    // Mid-stream supervision drill: switch 1's worker panics; the
    // runtime quarantines it and respawns from the standby checkpoint.
    rt.inject(IngestFault::WorkerPanic {
        at_step: (steady + 2) as u64,
        switch: 1,
    });

    let mut src = PhasedSource::new(PhasedConfig {
        flows: 5_000,
        base_chunk: 1_024,
        phases: vec![
            Phase { chunks: steady, rate: 1.0 },
            Phase { chunks: burst, rate: 10.0 },
            Phase { chunks: steady, rate: 1.0 },
        ],
        ..PhasedConfig::default()
    });

    println!("streaming daemon: {steady}+{burst}+{steady} chunks, queue 2048, drain 512/step");
    let mut last_health = RuntimeHealth::Healthy;
    let mut last_epochs = 0u64;
    loop {
        let out = match rt.step(&mut src) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("streaming daemon: runtime error: {e}");
                std::process::exit(1);
            }
        };
        if out.health != last_health {
            let s = rt.stats();
            println!(
                "health {last_health:?} -> {:?} (queued {}, shed {}, recovered panics {})",
                out.health,
                rt.ledger().in_flight,
                s.shed(),
                s.panics_recovered
            );
            last_health = out.health;
        }
        let s = rt.stats();
        if s.epochs_rotated != last_epochs {
            last_epochs = s.epochs_rotated;
            let archived = rt.last_epoch().map_or(0, |e| e.packets);
            println!(
                "epoch {last_epochs} rotated: {archived} packets archived, registers cleared under flow"
            );
        }
        if out.source_dry && rt.ledger().in_flight == 0 {
            break;
        }
    }

    let report = rt.report();
    let ledger = report.ledger;
    println!(
        "done: {} offered = {} represented + {} shed + {} lost + {} dropped (conserved: {})",
        ledger.fed,
        ledger.represented,
        ledger.shed,
        ledger.lost,
        ledger.dropped,
        ledger.conserved()
    );
    println!(
        "{} steps, {} syncs, {} epochs, {} panics supervised ({} checkpoint respawns), final health {:?}",
        report.stats.steps,
        report.stats.syncs,
        report.stats.epochs_rotated,
        report.stats.panics_recovered,
        report.stats.promotions,
        report.health
    );
    assert!(ledger.conserved(), "ledger must be conserved at quiescence");
    assert_eq!(report.health, RuntimeHealth::Healthy);
}
