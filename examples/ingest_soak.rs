//! Ingestion chaos soak driver: seeded fault schedules against the
//! supervised streaming runtime — queue stalls, slow consumers, worker
//! panics, and 10× input bursts — asserting after every step that the
//! stream ledger stays conserved
//! (`fed == represented + shed + lost + dropped + in_flight`), the
//! sentinel watch bound holds across epoch rotations, and every switch
//! audits clean.
//!
//! ```text
//! cargo run --release --example ingest_soak            # full soak, 100 seeds
//! cargo run --release --example ingest_soak -- --smoke # CI mode, 25 fixed seeds
//! ```
//!
//! Exits nonzero if any schedule reports a violation, printing the seed
//! and injected fault list needed to replay it.

use flymon_netsim::chaos::{run_ingest_soak, IngestChaosConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, cfg) = if smoke {
        (
            1..=25u64,
            IngestChaosConfig {
                switches: 3,
                chunks: 20,
                base_chunk: 768,
                queue_capacity: 3_072,
                drain_chunk: 768,
                ..IngestChaosConfig::default()
            },
        )
    } else {
        (1..=100u64, IngestChaosConfig::default())
    };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "ingest soak ({mode}): {} seeds x {} chunks, {} switches, queue {}, drain {}/step",
        seeds.end(),
        cfg.chunks,
        cfg.switches,
        cfg.queue_capacity,
        cfg.drain_chunk
    );

    let reports = run_ingest_soak(seeds, &cfg);
    let mut failed = false;
    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut panics = 0u64;
    let mut epochs = 0u64;
    let mut steps = 0u64;
    for r in &reports {
        offered += r.offered;
        shed += r.shed;
        panics += r.recovered_panics;
        epochs += r.epochs;
        steps += r.steps;
        if !r.is_clean() {
            failed = true;
            eprintln!("seed {} FAILED (faults: {:?}):", r.seed, r.faults);
            for v in &r.violations {
                eprintln!("  step #{} ({}): {}", v.event_index, v.event, v.detail);
            }
        }
    }
    println!(
        "{} schedules | {} steps, {} epochs rotated, {} worker panics supervised",
        reports.len(),
        steps,
        epochs,
        panics
    );
    println!(
        "{} packets offered, {} shed by the admission ladder ({:.3}%)",
        offered,
        shed,
        100.0 * shed as f64 / offered.max(1) as f64
    );
    if failed {
        eprintln!("ingest soak: INVARIANT VIOLATIONS FOUND");
        std::process::exit(1);
    }
    println!("ingest soak: all invariants held (conserved ledger, watch bound, clean audits)");
}
