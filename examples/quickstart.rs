//! Quickstart: deploy, measure, query, reconfigure.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the FlyMon lifecycle on a small simulated switch:
//! build the data plane, deploy a measurement task at runtime, feed
//! packets, read estimates, then swap the task for a different one
//! without touching the "hardware".

use flymon::prelude::*;
use flymon_packet::{fmt_ipv4, KeySpec, Packet};

fn main() {
    // A small switch: 2 CMU Groups × 3 CMUs × 4096 buckets.
    let mut switch = FlyMon::new(FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 4096,
        ..FlyMonConfig::default()
    });
    println!("== FlyMon quickstart ==");
    println!(
        "data plane: {} CMU Groups, {} CMUs, {} buckets each\n",
        switch.config().groups,
        switch.config().groups * switch.config().cmus_per_group,
        switch.config().buckets_per_cmu,
    );

    // The task algebra (Table 1): a task = filter × key × attribute ×
    // memory. Keys are any partial key of the candidate key set.
    println!("the task abstraction (Table 1 of the paper):");
    for (key, attr, use_case) in [
        ("DstIP", "Distinct(SrcIP)", "DDoS victim detection"),
        ("N/A", "Distinct(FlowID)", "flow cardinality"),
        ("FlowID", "Frequency(1)", "per-flow size / heavy hitters"),
        ("N/A", "Existence(FlowID)", "black lists"),
        ("FlowID", "Max(QueueLen)", "congestion detection"),
        ("FlowID", "Max(PktInterval)", "max inter-arrival time"),
    ] {
        println!("  key={key:8} attr={attr:18} -> {use_case}");
    }

    // Deploy a per-source packet counter, on the fly.
    let task = TaskDefinition::builder("per-src-frequency")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .memory(1024)
        .build();
    let handle = switch.deploy(&task).expect("deploys");
    {
        let deployed = switch.task(handle).unwrap();
        println!(
            "\ndeployed '{}' with {} ({} rule installs, {:.2} ms modeled delay)",
            deployed.def.name,
            deployed.algorithm.name(),
            deployed.install.total_rules(),
            deployed.install.latency_ms(),
        );
    }

    // Feed a tiny synthetic workload: three talkers of different sizes.
    let talkers = [
        (flymon_packet::parse_ipv4("10.0.0.1").unwrap(), 500u32),
        (flymon_packet::parse_ipv4("10.0.0.2").unwrap(), 120u32),
        (flymon_packet::parse_ipv4("192.168.7.9").unwrap(), 13u32),
    ];
    for &(src, count) in &talkers {
        for i in 0..count {
            switch.process(&Packet::tcp(src, 0x0a00_0063, 4000 + i as u16, 443));
        }
    }
    println!("\nprocessed {} packets; estimates:", switch.packets_processed());
    for &(src, truth) in &talkers {
        let est = switch.query_frequency(handle, &Packet::tcp(src, 0x0a00_0063, 1, 443));
        println!("  {:>13}: true {truth:5}  estimated {est:5}", fmt_ipv4(src));
    }

    // Reconfigure on the fly: retire the counter, deploy a cardinality
    // task in its place. No pipeline reload, no traffic interruption.
    switch.remove(handle).expect("removes");
    let cardinality = TaskDefinition::builder("flow-cardinality")
        .key(KeySpec::NONE)
        .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
        .memory(1024)
        .build();
    let card = switch.deploy(&cardinality).expect("deploys");
    for i in 0..5_000u32 {
        switch.process(&Packet::udp(i, 0x0a00_0063, (i % 50_000) as u16, 53));
    }
    println!(
        "\nswapped to '{}' ({}): 5000 distinct flows, estimated {:.0}",
        cardinality.name,
        switch.task(card).unwrap().algorithm.name(),
        switch.cardinality(card),
    );
}
