//! Chaos soak driver: randomized seeded fault schedules against a
//! WAL-backed, warm-standby fleet, asserting the robustness invariants
//! after every event (audit clean, ledger conserved, loss-window bound,
//! no panic).
//!
//! ```text
//! cargo run --release --example chaos_soak              # full soak, 100 seeds
//! cargo run --release --example chaos_soak -- --smoke   # CI mode, 20 fixed seeds
//! cargo run --release --example chaos_soak -- --smoke --partition
//!                      # same seeds, every control op over a lossy channel
//!                      # (10% drop/dup/reorder) with scheduled partitions,
//!                      # flaps, dup-storms and split-brain probes
//! cargo run --release --example chaos_soak -- --partition --seed 7 \
//!     --event-log soak.log   # one schedule; dump its channel event log
//!                            # (byte-identical per seed — CI diffs two runs)
//! ```
//!
//! Exits nonzero if any schedule reports a violation, printing the seed
//! and event index needed to replay it.

use flymon_netsim::chaos::{run_soak, soak_channel_config, ChaosConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let partition = args.iter().any(|a| a == "--partition");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: Option<u64> = flag_value("--seed").map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("--seed takes an integer, got {s:?}"))
    });
    let event_log = flag_value("--event-log");

    let (mut seeds, mut cfg) = if smoke {
        (
            1..=20u64,
            ChaosConfig {
                switches: 4,
                events: 25,
                slice_packets: 1_000,
                ..ChaosConfig::default()
            },
        )
    } else {
        (1..=100u64, ChaosConfig::default())
    };
    if let Some(s) = seed {
        seeds = s..=s;
    }
    if partition {
        cfg.channel = Some(soak_channel_config());
    }
    let mode = if smoke { "smoke" } else { "full" };
    let channel = if partition { ", lossy partitioned channel" } else { "" };
    println!(
        "chaos soak ({mode}{channel}): seeds {}..={} x {} events, {} switches, {} pkts/slice",
        seeds.start(),
        seeds.end(),
        cfg.events,
        cfg.switches,
        cfg.slice_packets
    );

    let reports = run_soak(seeds, &cfg);
    let mut failed = false;
    let mut kills = 0;
    let mut promotes = 0;
    let mut revives = 0;
    let mut reconfigs = 0;
    let mut failed_ops = 0;
    let mut stale_rejects = 0u64;
    let mut packets = 0u64;
    let mut lost = 0u64;
    for r in &reports {
        kills += r.kills;
        promotes += r.promotes;
        revives += r.revives;
        reconfigs += r.reconfigs;
        failed_ops += r.failed_ops;
        stale_rejects += r.stale_rejects;
        packets += r.packets;
        lost += r.lost;
        if !r.is_clean() {
            failed = true;
            eprintln!("seed {} FAILED:", r.seed);
            for v in &r.violations {
                eprintln!("  event #{} ({}): {}", v.event_index, v.event, v.detail);
            }
        }
    }
    println!(
        "{} schedules | {} kills, {} promotions, {} revivals, {} reconfigs",
        reports.len(),
        kills,
        promotes,
        revives,
        reconfigs
    );
    if partition {
        println!(
            "lossy channel: {} ops timed out (tolerated and retried), {} stale-term commands fenced",
            failed_ops, stale_rejects
        );
    }
    println!(
        "{} packets fed, {} explicitly lost to failures ({:.3}%)",
        packets,
        lost,
        100.0 * lost as f64 / packets.max(1) as f64
    );
    if let Some(path) = event_log {
        // One line per channel event, prefixed with the seed: the
        // determinism artifact. Two runs of the same seed and config
        // must produce byte-identical files — CI diffs them.
        let mut out = String::new();
        for r in &reports {
            for line in &r.channel_events {
                out.push_str(&format!("seed={} {}\n", r.seed, line));
            }
        }
        std::fs::write(&path, &out)
            .unwrap_or_else(|e| panic!("cannot write event log {path:?}: {e}"));
        println!(
            "wrote {} channel event lines to {path}",
            out.lines().count()
        );
    }
    if failed {
        eprintln!("chaos soak: INVARIANT VIOLATIONS FOUND");
        std::process::exit(1);
    }
    println!("chaos soak: all invariants held");
}
