//! Chaos soak driver: randomized seeded fault schedules against a
//! WAL-backed, warm-standby fleet, asserting the robustness invariants
//! after every event (audit clean, ledger conserved, loss-window bound,
//! no panic).
//!
//! ```text
//! cargo run --release --example chaos_soak            # full soak, 100 seeds
//! cargo run --release --example chaos_soak -- --smoke # CI mode, 20 fixed seeds
//! ```
//!
//! Exits nonzero if any schedule reports a violation, printing the seed
//! and event index needed to replay it.

use flymon_netsim::chaos::{run_soak, ChaosConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, cfg) = if smoke {
        (
            1..=20u64,
            ChaosConfig {
                switches: 4,
                events: 25,
                slice_packets: 1_000,
                ..ChaosConfig::default()
            },
        )
    } else {
        (1..=100u64, ChaosConfig::default())
    };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "chaos soak ({mode}): {} seeds x {} events, {} switches, {} pkts/slice",
        seeds.end(),
        cfg.events,
        cfg.switches,
        cfg.slice_packets
    );

    let reports = run_soak(seeds, &cfg);
    let mut failed = false;
    let mut kills = 0;
    let mut promotes = 0;
    let mut revives = 0;
    let mut reconfigs = 0;
    let mut packets = 0u64;
    let mut lost = 0u64;
    for r in &reports {
        kills += r.kills;
        promotes += r.promotes;
        revives += r.revives;
        reconfigs += r.reconfigs;
        packets += r.packets;
        lost += r.lost;
        if !r.is_clean() {
            failed = true;
            eprintln!("seed {} FAILED:", r.seed);
            for v in &r.violations {
                eprintln!("  event #{} ({}): {}", v.event_index, v.event, v.detail);
            }
        }
    }
    println!(
        "{} schedules | {} kills, {} promotions, {} revivals, {} reconfigs",
        reports.len(),
        kills,
        promotes,
        revives,
        reconfigs
    );
    println!(
        "{} packets fed, {} explicitly lost to failures ({:.3}%)",
        packets,
        lost,
        100.0 * lost as f64 / packets.max(1) as f64
    );
    if failed {
        eprintln!("chaos soak: INVARIANT VIOLATIONS FOUND");
        std::process::exit(1);
    }
    println!("chaos soak: all invariants held");
}
