//! The paper's §1 motivating workflow: drill down from congestion to the
//! elephants that cause it, reconfiguring tasks on the fly.
//!
//! ```sh
//! cargo run --release --example heavy_hitter_scheduling
//! ```
//!
//! 1. A `Max(QueueLen)` task watches for congestion.
//! 2. When congestion is found, the operator *reconfigures* — retiring
//!    the congestion task and deploying a heavy-hitter task on the same
//!    CMUs — to identify the elephant flows to reschedule.
//! 3. Everything happens through runtime rules; the data plane never
//!    reloads.

use flymon::prelude::*;
use flymon_packet::{fmt_ipv4, KeySpec, Packet};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::GroundTruth;

fn main() {
    let cfg = TraceConfig {
        flows: 8_000,
        packets: 400_000,
        zipf_alpha: 1.2, // strong elephants
        ..TraceConfig::default()
    };
    let trace = TraceGenerator::new(77).wide_like(&cfg);

    let mut switch = FlyMon::new(FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 65536,
        ..FlyMonConfig::default()
    });

    // --- Phase 1: congestion watch -----------------------------------
    let congestion = TaskDefinition::builder("congestion-watch")
        .key(KeySpec::src_ip_slash(8)) // per ingress aggregate
        .attribute(Attribute::Max(MaxParam::QueueLen))
        .memory(4096)
        .build();
    let watch = switch.deploy(&congestion).expect("deploys");
    println!("== phase 1: congestion watch ({}) ==", congestion.name);

    switch.process_trace(&trace);

    // Find the /8 aggregate with the worst queue — that's where to look.
    let mut worst: (u32, u64) = (0, 0);
    for net in [10u32, 24, 59, 131, 172, 192] {
        let probe = Packet::tcp(net << 24, 1, 1, 1);
        let q = switch.query_max(watch, &probe);
        println!("  {:>12}/8 : max queue {:>5} cells", fmt_ipv4(net << 24), q);
        if q > worst.1 {
            worst = (net << 24, q);
        }
    }
    println!(
        "congested aggregate: {}/8 (max queue {} cells)\n",
        fmt_ipv4(worst.0),
        worst.1
    );

    // --- Phase 2: on-the-fly switch to heavy hitters ------------------
    switch.remove(watch).expect("removes");
    let hh_task = TaskDefinition::builder("heavy-hitters")
        .key(KeySpec::FIVE_TUPLE)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::SuMaxSum { d: 2 }) // conservative update
        .filter(flymon_packet::TaskFilter::src(worst.0, 8))
        .memory(32768)
        .build();
    let hh = switch.deploy(&hh_task).expect("deploys");
    println!(
        "== phase 2: heavy hitters on {}/8 ({} — {:.1} ms install) ==",
        fmt_ipv4(worst.0),
        switch.task(hh).unwrap().algorithm.name(),
        switch.task(hh).unwrap().install.latency_ms()
    );

    switch.process_trace(&trace);

    // Report the elephants: flows above the threshold, checked against
    // exact ground truth.
    let threshold = 1024u64;
    let filtered: Vec<Packet> = trace
        .iter()
        .filter(|p| hh_task.filter.matches(p))
        .copied()
        .collect();
    let truth = GroundTruth::packet_counts(&filtered, KeySpec::FIVE_TUPLE);
    let mut elephants: Vec<(Packet, u64, u64)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for p in &filtered {
        if !seen.insert(KeySpec::FIVE_TUPLE.extract(p)) {
            continue;
        }
        let est = switch.query_frequency(hh, p);
        if est >= threshold {
            let t = truth.frequency[&KeySpec::FIVE_TUPLE.extract(p)];
            elephants.push((*p, est, t));
        }
    }
    elephants.sort_by_key(|&(_, est, _)| std::cmp::Reverse(est));
    println!(
        "flows over {threshold} pkts: {} reported, {} true",
        elephants.len(),
        truth.heavy_hitters(threshold).len()
    );
    for (p, est, t) in elephants.iter().take(8) {
        println!(
            "  {:>15}:{:<5} -> {:>15}:{:<5}  est {est:>6}  true {t:>6}",
            fmt_ipv4(p.src_ip),
            p.src_port,
            fmt_ipv4(p.dst_ip),
            p.dst_port
        );
    }
    println!("\n(these are the flows the operator would re-balance, §1)");
}
