//! On-the-fly reconfiguration under a traffic spike (the Fig. 12b
//! system experiment, at reduced scale).
//!
//! ```sh
//! cargo run --release --example dynamic_reconfig
//! ```
//!
//! Runs the 20-epoch accuracy timeline: task B churn in the middle of
//! task A's life, memory grown to ride a 4× flow spike and shrunk
//! afterwards — against a statically provisioned baseline that cannot
//! adapt.

use flymon_netsim::epochs::{run_accuracy_timeline, EpochTimelineConfig};
use flymon_traffic::gen::SpikeConfig;

fn main() {
    let config = EpochTimelineConfig {
        traffic: SpikeConfig {
            epochs: 20,
            base_flows: 2_500,
            spike_flows: 7_500,
            spike_start: 5,
            spike_end: 14,
            base_packets: 60_000,
            epoch_ns: 1_000_000_000,
            seed: 42,
        },
        base_buckets: 4096,
        grown_buckets: 16384,
        insert_b_at: 2,
        remove_b_at: 9,
        grow_at: 5,
        shrink_at: 15,
        buckets_per_cmu: 16384,
        faults: None,
    };

    println!("== dynamic reconfiguration timeline (Fig. 12b, reduced scale) ==");
    println!(
        "{} epochs, {} flows/epoch baseline, +{} during the spike\n",
        config.traffic.epochs, config.traffic.base_flows, config.traffic.spike_flows
    );
    println!(
        "{:>5} {:>7} {:>10} {:>12} {:>12}  events",
        "epoch", "flows", "A buckets", "FlyMon ARE", "Static ARE"
    );

    let points = run_accuracy_timeline(&config);
    for p in &points {
        println!(
            "{:>5} {:>7} {:>10} {:>12.4} {:>12.4}  {}",
            p.epoch + 1,
            p.flows,
            p.flymon_buckets,
            p.flymon_are,
            p.static_are,
            p.events.join(", ")
        );
    }

    let spike_range = config.traffic.spike_start..=config.traffic.spike_end;
    let avg = |f: &dyn Fn(&flymon_netsim::AccuracyPoint) -> f64, spike: bool| {
        let pts: Vec<f64> = points
            .iter()
            .filter(|p| spike_range.contains(&p.epoch) == spike)
            .map(f)
            .collect();
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    let fly_spike = avg(&|p| p.flymon_are, true);
    let static_spike = avg(&|p| p.static_are, true);
    println!(
        "\nspike-epoch ARE: FlyMon {:.4} vs Static {:.4} ({:.1}x worse without reallocation)",
        fly_spike,
        static_spike,
        static_spike / fly_spike
    );
    println!(
        "calm-epoch ARE:  FlyMon {:.4} vs Static {:.4}",
        avg(&|p| p.flymon_are, false),
        avg(&|p| p.static_are, false)
    );
}
