//! Closed-loop adaptation demo: the supervised streaming runtime with
//! an [`AdaptiveController`] attached, ingesting a shifting diurnal
//! workload with a spoofed flood in the middle.
//!
//! The controller sees every epoch rotation, grows the task as the day
//! phase and the flood raise collision pressure, and shrinks it again
//! as the traffic recedes — all through the WAL-logged transactional
//! control plane. The demo prints the decision log and asserts the
//! invariants CI cares about: the runtime settles healthy, the stream
//! ledger conserves, every switch audits clean, the reconfiguration
//! rate stays within the per-epoch budget, and the loop actually acted.
//!
//! ```text
//! cargo run --release --example adaptive_demo            # full demo
//! cargo run --release --example adaptive_demo -- --smoke # CI mode
//! ```
//!
//! Exits nonzero (panics) on any violated invariant.

use flymon::prelude::*;
use flymon_netsim::{
    AdaptiveController, ControllerConfig, IngestConfig, RuntimeHealth, StreamingRuntime,
    SwitchFleet,
};
use flymon_packet::KeySpec;
use flymon_traffic::gen::{AttackSpec, ShiftPhase, ShiftingConfig, ShiftingSource};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 2 } else { 1 };
    let mode = if smoke { "smoke" } else { "full" };

    let def = TaskDefinition::builder("demo")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(2_048)
        .build();
    let fleet = SwitchFleet::deploy(2, FlyMonConfig::default(), &def).expect("fleet deploys");
    let mut rt = StreamingRuntime::new(
        fleet,
        IngestConfig {
            queue_capacity: 32_768,
            drain_chunk: 8_192,
            epoch_packets: 16_384,
            ..IngestConfig::default()
        },
    );
    let policy = ControllerConfig {
        min_buckets: 2_048,
        max_buckets: 65_536,
        cooldown_epochs: 1,
        ..ControllerConfig::default()
    };
    rt.attach_controller(AdaptiveController::new(policy));

    let attack = AttackSpec {
        dst_ip: (203 << 24) | (113 << 8) | 7,
        share: 0.6,
        sources: 30_000,
    };
    let mut source = ShiftingSource::new(ShiftingConfig {
        flows: 10_000,
        base_chunk: 4_096,
        phases: vec![
            ShiftPhase { chunks: 12 / scale, rate: 1.0, zipf_alpha: 1.3, attack: None },
            ShiftPhase { chunks: 12 / scale, rate: 2.0, zipf_alpha: 1.05, attack: None },
            ShiftPhase { chunks: 8 / scale, rate: 3.0, zipf_alpha: 1.05, attack: Some(attack) },
            ShiftPhase { chunks: 12 / scale, rate: 1.0, zipf_alpha: 1.3, attack: None },
        ],
        ..ShiftingConfig::default()
    });

    println!("adaptive demo ({mode}): diurnal cycle with a spoofed flood\n");
    let report = rt.run(&mut source).expect("run completes");
    let ctl = rt.controller_report().expect("controller attached");

    println!(
        "ingested {} packets over {} epochs, health {:?}",
        report.stats.processed, report.stats.epochs_rotated, report.health
    );
    println!(
        "controller: {} grows, {} shrinks, {} splits, {} cooldown skips, {} budget skips",
        ctl.grows, ctl.shrinks, ctl.splits, ctl.skipped_cooldown, ctl.skipped_budget
    );
    for d in &ctl.decisions {
        println!(
            "  epoch {:>3}  {:<12} {:?}  (fill {:.3}, saturation {:.4}, churn {:?})  wal seq {}",
            d.epoch,
            d.task,
            d.action,
            d.signals.fill,
            d.signals.saturation,
            d.signals.churn.map(|c| (c * 1000.0).round() / 1000.0),
            d.wal_seq
        );
    }

    assert_eq!(report.health, RuntimeHealth::Healthy, "must settle healthy");
    assert!(report.ledger.conserved(), "{:?}", report.ledger);
    assert_eq!(ctl.epochs_seen, report.stats.epochs_rotated);
    assert!(ctl.actions() >= 1, "the loop never acted: {ctl:?}");
    assert!(
        ctl.actions() <= ctl.epochs_seen,
        "rate above the per-epoch budget"
    );
    assert_eq!(ctl.decisions.len() as u64, ctl.actions());
    for i in 0..rt.fleet().len() {
        assert!(
            rt.fleet().switch(i).0.audit().is_empty(),
            "switch {i} audit diverged"
        );
    }
    println!("\nall invariants hold: healthy, conserved, audit-clean, bounded rate");
}
