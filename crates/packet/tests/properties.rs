//! Property tests for the flow-key algebra.

use flymon_packet::{KeySpec, Packet, PacketBuilder, PrefixFilter, TaskFilter};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
        0u64..10_000_000_000,
    )
        .prop_map(|(s, d, sp, dp, proto, len, ts)| {
            PacketBuilder::new()
                .src_ip(s)
                .dst_ip(d)
                .src_port(sp)
                .dst_port(dp)
                .protocol(proto)
                .len(len)
                .ts_ns(ts)
                .build()
        })
}

fn arb_keyspec() -> impl Strategy<Value = KeySpec> {
    (
        0u8..=32,
        0u8..=32,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(s, d, sp, dp, pr, ts)| KeySpec {
            src_ip_prefix: s,
            dst_ip_prefix: d,
            src_port: sp,
            dst_port: dp,
            protocol: pr,
            timestamp: ts,
        })
}

proptest! {
    /// Two packets extract equal keys iff they agree on every selected
    /// field bit — the byte serialization is canonical.
    #[test]
    fn extraction_is_canonical(key in arb_keyspec(), a in arb_packet(), b in arb_packet()) {
        let mask = |v: u32, bits: u8| if bits == 0 { 0 } else { v & (u32::MAX << (32 - bits)) };
        let agree = mask(a.src_ip, key.src_ip_prefix) == mask(b.src_ip, key.src_ip_prefix)
            && mask(a.dst_ip, key.dst_ip_prefix) == mask(b.dst_ip, key.dst_ip_prefix)
            && (!key.src_port || a.src_port == b.src_port)
            && (!key.dst_port || a.dst_port == b.dst_port)
            && (!key.protocol || a.protocol == b.protocol)
            && (!key.timestamp || a.ts_ns / 1_000 == b.ts_ns / 1_000);
        prop_assert_eq!(key.extract(&a) == key.extract(&b), agree);
    }

    /// A covering key always distinguishes at least as much as the
    /// covered key: equal fine keys imply equal coarse keys.
    #[test]
    fn coarser_keys_merge_flows(a in arb_packet(), b in arb_packet(), bits in 0u8..=32) {
        let fine = KeySpec::SRC_IP;
        let coarse = KeySpec::src_ip_slash(bits);
        if fine.extract(&a) == fine.extract(&b) {
            prop_assert_eq!(coarse.extract(&a), coarse.extract(&b));
        }
    }

    /// Key width equals serialized length semantics: width 0 iff empty.
    #[test]
    fn width_and_emptiness_agree(key in arb_keyspec(), p in arb_packet()) {
        prop_assert_eq!(key.width_bits() == 0, key.is_empty());
        prop_assert_eq!(key.extract(&p).is_empty(), key.is_empty());
    }

    /// merge_disjoint, when it succeeds, covers both parts and has the
    /// summed width.
    #[test]
    fn merge_disjoint_is_a_union(a in arb_keyspec(), b in arb_keyspec()) {
        if let Some(m) = a.merge_disjoint(&b) {
            prop_assert!(m.covers(&a));
            prop_assert!(m.covers(&b));
            prop_assert_eq!(m.width_bits(), a.width_bits() + b.width_bits());
        }
    }

    /// Splitting a filter partitions its traffic: every packet matching
    /// the parent matches exactly one child.
    #[test]
    fn filter_split_partitions(net in any::<u32>(), bits in 0u8..32, p in arb_packet()) {
        let parent = TaskFilter {
            src: PrefixFilter::new(net, bits),
            dst: PrefixFilter::ANY,
        };
        let (lo, hi) = parent.split().unwrap();
        if parent.matches(&p) {
            prop_assert!(lo.matches(&p) ^ hi.matches(&p));
        } else {
            prop_assert!(!lo.matches(&p) && !hi.matches(&p));
        }
    }

    /// Prefix intersection is exactly containment of one in the other.
    #[test]
    fn prefix_intersection_symmetric(
        a_net in any::<u32>(), a_bits in 0u8..=32,
        b_net in any::<u32>(), b_bits in 0u8..=32,
    ) {
        let a = PrefixFilter::new(a_net, a_bits);
        let b = PrefixFilter::new(b_net, b_bits);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        // Intersecting prefixes share their shorter prefix.
        if a.intersects(&b) {
            let bits = a_bits.min(b_bits);
            prop_assert_eq!(
                PrefixFilter::new(a.net, bits).net,
                PrefixFilter::new(b.net, bits).net
            );
        }
    }
}
