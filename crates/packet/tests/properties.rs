//! Property tests for the flow-key algebra.
//!
//! Randomized with the in-repo [`SplitMix64`] generator (fixed seeds, so
//! every run checks the identical case set) instead of an external
//! property-testing framework — the workspace builds fully offline.

use flymon_packet::{KeySpec, Packet, PacketBuilder, PrefixFilter, SplitMix64, TaskFilter};

const CASES: usize = 512;

fn rand_packet(r: &mut SplitMix64) -> Packet {
    PacketBuilder::new()
        .src_ip(r.next_u32())
        .dst_ip(r.next_u32())
        .src_port(r.next_u16())
        .dst_port(r.next_u16())
        .protocol(r.next_u64() as u8)
        .len(r.next_u16())
        .ts_ns(r.range_u64(0, 10_000_000_000))
        .build()
}

/// A near-duplicate of `a`: each field is copied with probability 1/2,
/// which makes field-wise agreement (the interesting regime for key
/// extraction) common instead of vanishingly rare.
fn sibling_packet(r: &mut SplitMix64, a: &Packet) -> Packet {
    let b = rand_packet(r);
    PacketBuilder::new()
        .src_ip(if r.chance(0.5) { a.src_ip } else { b.src_ip })
        .dst_ip(if r.chance(0.5) { a.dst_ip } else { b.dst_ip })
        .src_port(if r.chance(0.5) { a.src_port } else { b.src_port })
        .dst_port(if r.chance(0.5) { a.dst_port } else { b.dst_port })
        .protocol(if r.chance(0.5) { a.protocol } else { b.protocol })
        .len(b.len)
        .ts_ns(if r.chance(0.5) { a.ts_ns } else { b.ts_ns })
        .build()
}

fn rand_keyspec(r: &mut SplitMix64) -> KeySpec {
    KeySpec {
        src_ip_prefix: r.range_u64(0, 33) as u8,
        dst_ip_prefix: r.range_u64(0, 33) as u8,
        src_port: r.chance(0.5),
        dst_port: r.chance(0.5),
        protocol: r.chance(0.5),
        timestamp: r.chance(0.5),
    }
}

/// Two packets extract equal keys iff they agree on every selected
/// field bit — the byte serialization is canonical.
#[test]
fn extraction_is_canonical() {
    let mut r = SplitMix64::new(0x11);
    for _ in 0..CASES {
        let key = rand_keyspec(&mut r);
        let a = rand_packet(&mut r);
        let b = sibling_packet(&mut r, &a);
        let mask = |v: u32, bits: u8| if bits == 0 { 0 } else { v & (u32::MAX << (32 - bits)) };
        let agree = mask(a.src_ip, key.src_ip_prefix) == mask(b.src_ip, key.src_ip_prefix)
            && mask(a.dst_ip, key.dst_ip_prefix) == mask(b.dst_ip, key.dst_ip_prefix)
            && (!key.src_port || a.src_port == b.src_port)
            && (!key.dst_port || a.dst_port == b.dst_port)
            && (!key.protocol || a.protocol == b.protocol)
            && (!key.timestamp || a.ts_ns / 1_000 == b.ts_ns / 1_000);
        assert_eq!(key.extract(&a) == key.extract(&b), agree, "key {key:?}");
    }
}

/// A covering key always distinguishes at least as much as the covered
/// key: equal fine keys imply equal coarse keys.
#[test]
fn coarser_keys_merge_flows() {
    let mut r = SplitMix64::new(0x22);
    for _ in 0..CASES {
        let a = rand_packet(&mut r);
        let mut b = sibling_packet(&mut r, &a);
        if r.chance(0.5) {
            b.src_ip = a.src_ip; // force the fine-key-equal regime often
        }
        let bits = r.range_u64(0, 33) as u8;
        let fine = KeySpec::SRC_IP;
        let coarse = KeySpec::src_ip_slash(bits);
        if fine.extract(&a) == fine.extract(&b) {
            assert_eq!(coarse.extract(&a), coarse.extract(&b));
        }
    }
}

/// Key width equals serialized length semantics: width 0 iff empty.
#[test]
fn width_and_emptiness_agree() {
    let mut r = SplitMix64::new(0x33);
    for _ in 0..CASES {
        let key = rand_keyspec(&mut r);
        let p = rand_packet(&mut r);
        assert_eq!(key.width_bits() == 0, key.is_empty());
        assert_eq!(key.extract(&p).is_empty(), key.is_empty());
    }
}

/// merge_disjoint, when it succeeds, covers both parts and has the
/// summed width.
#[test]
fn merge_disjoint_is_a_union() {
    let mut r = SplitMix64::new(0x44);
    for _ in 0..CASES {
        let a = rand_keyspec(&mut r);
        let b = rand_keyspec(&mut r);
        if let Some(m) = a.merge_disjoint(&b) {
            assert!(m.covers(&a));
            assert!(m.covers(&b));
            assert_eq!(m.width_bits(), a.width_bits() + b.width_bits());
        }
    }
}

/// Splitting a filter partitions its traffic: every packet matching the
/// parent matches exactly one child.
#[test]
fn filter_split_partitions() {
    let mut r = SplitMix64::new(0x55);
    for _ in 0..CASES {
        let net = r.next_u32();
        let bits = r.range_u64(0, 32) as u8;
        let mut p = rand_packet(&mut r);
        if r.chance(0.5) {
            // Steer half the packets inside the parent prefix so the
            // "matches the parent" branch is exercised heavily.
            let mask = if bits == 0 { 0 } else { u32::MAX << (32 - bits) };
            p.src_ip = (net & mask) | (p.src_ip & !mask);
        }
        let parent = TaskFilter {
            src: PrefixFilter::new(net, bits),
            dst: PrefixFilter::ANY,
        };
        let (lo, hi) = parent.split().unwrap();
        if parent.matches(&p) {
            assert!(lo.matches(&p) ^ hi.matches(&p));
        } else {
            assert!(!lo.matches(&p) && !hi.matches(&p));
        }
    }
}

/// Prefix intersection is exactly containment of one in the other.
#[test]
fn prefix_intersection_symmetric() {
    let mut r = SplitMix64::new(0x66);
    for _ in 0..CASES {
        let a_net = r.next_u32();
        let a_bits = r.range_u64(0, 33) as u8;
        let b_bits = r.range_u64(0, 33) as u8;
        // Half the time, derive b from a so intersection actually occurs.
        let b_net = if r.chance(0.5) {
            a_net ^ (r.next_u32() >> a_bits.min(31))
        } else {
            r.next_u32()
        };
        let a = PrefixFilter::new(a_net, a_bits);
        let b = PrefixFilter::new(b_net, b_bits);
        assert_eq!(a.intersects(&b), b.intersects(&a));
        // Intersecting prefixes share their shorter prefix.
        if a.intersects(&b) {
            let bits = a_bits.min(b_bits);
            assert_eq!(
                PrefixFilter::new(a.net, bits).net,
                PrefixFilter::new(b.net, bits).net
            );
        }
    }
}
