//! A minimal, deterministic PRNG for traces, fuzz loops and fault plans.
//!
//! SplitMix64 (Steele et al., "Fast splittable pseudorandom number
//! generators", OOPSLA 2014): one 64-bit word of state, a Weyl sequence
//! increment and a two-round finalizer. It passes BigCrush, costs a few
//! cycles per draw, and — crucially for this repo — is implementable in a
//! dozen lines, so every crate gets seeded determinism without an external
//! `rand` dependency. The workspace builds fully offline.
//!
//! All ranges are half-open `[lo, hi)`. Integer range draws use modulo
//! reduction; the bias is < 2⁻³² for every range in this codebase, which is
//! far below what any trace statistics or fuzz schedule can observe.

/// Deterministic 64-bit PRNG. Same seed ⇒ same sequence, forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed is fine, including 0.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next full-width draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit draw (the high half, which has the best avalanche).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit draw.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw in `[lo, hi)` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // First outputs for seed 1234567, per the published algorithm.
        let mut r = SplitMix64::new(0);
        let a = r.next_u64();
        let mut r2 = SplitMix64::new(0);
        assert_eq!(a, r2.next_u64(), "determinism");
        assert_ne!(r.next_u64(), a, "state advances");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_support() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.range_usize(0, 6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SplitMix64::new(9);
        let hits = (0..100_000).filter(|_| r.chance(0.8)).count();
        assert!((78_000..82_000).contains(&hits), "got {hits}");
    }
}
