//! Flow keys: any partial key of the candidate key set.

use crate::{fmt_ipv4, HeaderField, Packet};

/// Maximum serialized key length in bytes: SrcIP(4) + DstIP(4) + ports(2+2)
/// + protocol(1) + timestamp(4) = 17, rounded up for alignment headroom.
pub const MAX_KEY_BYTES: usize = 20;

/// Canonical byte serialization of an extracted flow key.
///
/// Inline, fixed-capacity buffer: extraction never allocates. Fields are
/// serialized big-endian in the canonical order of [`HeaderField::ALL`];
/// masked-out prefix bits are zeroed *and* the serialization length is
/// fixed per `KeySpec`, so two packets collide on bytes iff they agree on
/// the selected key bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKeyBytes {
    buf: [u8; MAX_KEY_BYTES],
    len: u8,
}

impl FlowKeyBytes {
    /// Empty key (matches the paper's `N/A` key for single-key tasks such
    /// as cardinality, where every packet maps to the same logical flow).
    pub const EMPTY: FlowKeyBytes = FlowKeyBytes {
        buf: [0; MAX_KEY_BYTES],
        len: 0,
    };

    fn push_u32(&mut self, v: u32) {
        let l = self.len as usize;
        self.buf[l..l + 4].copy_from_slice(&v.to_be_bytes());
        self.len += 4;
    }

    fn push_u16(&mut self, v: u16) {
        let l = self.len as usize;
        self.buf[l..l + 2].copy_from_slice(&v.to_be_bytes());
        self.len += 2;
    }

    fn push_u8(&mut self, v: u8) {
        self.buf[self.len as usize] = v;
        self.len += 1;
    }

    /// The serialized key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// True when no field is selected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl AsRef<[u8]> for FlowKeyBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// A *partial key* over the candidate key set (§2.1, §3.1.1).
///
/// A `KeySpec` selects which header fields participate in the flow key.
/// Address fields carry a prefix length so `SrcIP/24`-style keys are first
/// class. A `KeySpec` with all fields deselected is the `N/A` key used by
/// single-key tasks (flow cardinality): every packet belongs to one flow.
///
/// ```
/// use flymon_packet::{KeySpec, Packet};
/// let k = KeySpec::IP_PAIR;
/// let a = k.extract(&Packet::tcp(0x0a000001, 0x0a000002, 5, 6));
/// let b = k.extract(&Packet::tcp(0x0a000001, 0x0a000002, 7, 8));
/// assert_eq!(a, b); // ports are not part of the IP-pair key
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeySpec {
    /// Number of SrcIP prefix bits included (0 = field absent, 32 = full).
    pub src_ip_prefix: u8,
    /// Number of DstIP prefix bits included (0 = field absent, 32 = full).
    pub dst_ip_prefix: u8,
    /// Include the source port.
    pub src_port: bool,
    /// Include the destination port.
    pub dst_port: bool,
    /// Include the protocol number.
    pub protocol: bool,
    /// Include the (µs-quantized) ingress timestamp.
    pub timestamp: bool,
}

impl KeySpec {
    /// The empty (`N/A`) key: all packets fall into a single flow.
    pub const NONE: KeySpec = KeySpec {
        src_ip_prefix: 0,
        dst_ip_prefix: 0,
        src_port: false,
        dst_port: false,
        protocol: false,
        timestamp: false,
    };

    /// Full 32-bit source address.
    pub const SRC_IP: KeySpec = KeySpec {
        src_ip_prefix: 32,
        ..KeySpec::NONE
    };

    /// Full 32-bit destination address.
    pub const DST_IP: KeySpec = KeySpec {
        dst_ip_prefix: 32,
        ..KeySpec::NONE
    };

    /// Source–destination address pair.
    pub const IP_PAIR: KeySpec = KeySpec {
        src_ip_prefix: 32,
        dst_ip_prefix: 32,
        ..KeySpec::NONE
    };

    /// SrcIP + SrcPort (e.g. per-endpoint tasks).
    pub const SRC_IP_SRC_PORT: KeySpec = KeySpec {
        src_ip_prefix: 32,
        src_port: true,
        ..KeySpec::NONE
    };

    /// The classic 5-tuple.
    pub const FIVE_TUPLE: KeySpec = KeySpec {
        src_ip_prefix: 32,
        dst_ip_prefix: 32,
        src_port: true,
        dst_port: true,
        protocol: true,
        timestamp: false,
    };

    /// Source prefix key, e.g. `KeySpec::src_ip_slash(24)` for `SrcIP/24`.
    ///
    /// # Panics
    /// Panics if `bits > 32`.
    pub const fn src_ip_slash(bits: u8) -> KeySpec {
        assert!(bits <= 32);
        KeySpec {
            src_ip_prefix: bits,
            ..KeySpec::NONE
        }
    }

    /// Destination prefix key, e.g. `KeySpec::dst_ip_slash(16)`.
    ///
    /// # Panics
    /// Panics if `bits > 32`.
    pub const fn dst_ip_slash(bits: u8) -> KeySpec {
        assert!(bits <= 32);
        KeySpec {
            dst_ip_prefix: bits,
            ..KeySpec::NONE
        }
    }

    /// Returns the fields this key touches, in canonical order.
    pub fn fields(&self) -> Vec<HeaderField> {
        let mut out = Vec::new();
        if self.src_ip_prefix > 0 {
            out.push(HeaderField::SrcIp);
        }
        if self.dst_ip_prefix > 0 {
            out.push(HeaderField::DstIp);
        }
        if self.src_port {
            out.push(HeaderField::SrcPort);
        }
        if self.dst_port {
            out.push(HeaderField::DstPort);
        }
        if self.protocol {
            out.push(HeaderField::Protocol);
        }
        if self.timestamp {
            out.push(HeaderField::Timestamp);
        }
        out
    }

    /// Width of the selected key in bits (prefix bits count as their
    /// prefix length, exactly the "PHV copy" cost of the naive strategy in
    /// §3.1.1).
    pub fn width_bits(&self) -> u32 {
        let mut bits = u32::from(self.src_ip_prefix) + u32::from(self.dst_ip_prefix);
        if self.src_port {
            bits += 16;
        }
        if self.dst_port {
            bits += 16;
        }
        if self.protocol {
            bits += 8;
        }
        if self.timestamp {
            bits += 32;
        }
        bits
    }

    /// True when no field is selected (the `N/A` key).
    pub fn is_empty(&self) -> bool {
        self.width_bits() == 0
    }

    /// True when every field selected by `other` is also selected by
    /// `self` with at least the same prefix length. A CMU whose hash units
    /// are configured for `self`'s fields can derive `other` by masking.
    pub fn covers(&self, other: &KeySpec) -> bool {
        self.src_ip_prefix >= other.src_ip_prefix
            && self.dst_ip_prefix >= other.dst_ip_prefix
            && (self.src_port || !other.src_port)
            && (self.dst_port || !other.dst_port)
            && (self.protocol || !other.protocol)
            && (self.timestamp || !other.timestamp)
    }

    /// Merges two keys whose field sets are disjoint; `None` if any field
    /// overlaps. This is the key algebra behind XOR composition of
    /// compressed keys (§3.1.1: `C(SrcIP) ⊕ C(DstIP)` realizes the
    /// IP-pair key).
    pub fn merge_disjoint(&self, other: &KeySpec) -> Option<KeySpec> {
        let overlap = (self.src_ip_prefix > 0 && other.src_ip_prefix > 0)
            || (self.dst_ip_prefix > 0 && other.dst_ip_prefix > 0)
            || (self.src_port && other.src_port)
            || (self.dst_port && other.dst_port)
            || (self.protocol && other.protocol)
            || (self.timestamp && other.timestamp);
        if overlap {
            return None;
        }
        Some(KeySpec {
            src_ip_prefix: self.src_ip_prefix.max(other.src_ip_prefix),
            dst_ip_prefix: self.dst_ip_prefix.max(other.dst_ip_prefix),
            src_port: self.src_port || other.src_port,
            dst_port: self.dst_port || other.dst_port,
            protocol: self.protocol || other.protocol,
            timestamp: self.timestamp || other.timestamp,
        })
    }

    /// Serializes the selected key bits of `pkt` into canonical bytes.
    ///
    /// Prefix-masked addresses zero their host bits, so `SrcIP/24` keys of
    /// `10.0.0.1` and `10.0.0.2` serialize identically.
    pub fn extract(&self, pkt: &Packet) -> FlowKeyBytes {
        let mut out = FlowKeyBytes::EMPTY;
        if self.src_ip_prefix > 0 {
            out.push_u32(mask_prefix(pkt.src_ip, self.src_ip_prefix));
        }
        if self.dst_ip_prefix > 0 {
            out.push_u32(mask_prefix(pkt.dst_ip, self.dst_ip_prefix));
        }
        if self.src_port {
            out.push_u16(pkt.src_port);
        }
        if self.dst_port {
            out.push_u16(pkt.dst_port);
        }
        if self.protocol {
            out.push_u8(pkt.protocol);
        }
        if self.timestamp {
            out.push_u32(HeaderField::Timestamp.read(pkt));
        }
        out
    }

    /// Human-readable name, e.g. `SrcIP/24+DstPort`.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "N/A".to_string();
        }
        let mut parts = Vec::new();
        match self.src_ip_prefix {
            0 => {}
            32 => parts.push("SrcIP".to_string()),
            n => parts.push(format!("SrcIP/{n}")),
        }
        match self.dst_ip_prefix {
            0 => {}
            32 => parts.push("DstIP".to_string()),
            n => parts.push(format!("DstIP/{n}")),
        }
        if self.src_port {
            parts.push("SrcPort".to_string());
        }
        if self.dst_port {
            parts.push("DstPort".to_string());
        }
        if self.protocol {
            parts.push("Proto".to_string());
        }
        if self.timestamp {
            parts.push("Ts".to_string());
        }
        parts.join("+")
    }

    /// Renders the concrete key value of a packet for reports
    /// (e.g. `10.0.0.0/8` or `10.0.0.1->192.168.0.1`).
    pub fn render(&self, pkt: &Packet) -> String {
        if self.is_empty() {
            return "*".to_string();
        }
        let mut parts = Vec::new();
        if self.src_ip_prefix > 0 {
            let ip = fmt_ipv4(mask_prefix(pkt.src_ip, self.src_ip_prefix));
            if self.src_ip_prefix == 32 {
                parts.push(ip);
            } else {
                parts.push(format!("{ip}/{}", self.src_ip_prefix));
            }
        }
        if self.dst_ip_prefix > 0 {
            let ip = fmt_ipv4(mask_prefix(pkt.dst_ip, self.dst_ip_prefix));
            if self.dst_ip_prefix == 32 {
                parts.push(format!("->{ip}"));
            } else {
                parts.push(format!("->{ip}/{}", self.dst_ip_prefix));
            }
        }
        if self.src_port {
            parts.push(format!(":{}", pkt.src_port));
        }
        if self.dst_port {
            parts.push(format!(":{}", pkt.dst_port));
        }
        if self.protocol {
            parts.push(format!("p{}", pkt.protocol));
        }
        if self.timestamp {
            parts.push(format!("t{}", HeaderField::Timestamp.read(pkt)));
        }
        parts.concat()
    }
}

/// Capacity of an [`ExtractionCache`]: the most *distinct* `KeySpec`s a
/// packet can meaningfully meet in one pipeline pass. Each compression
/// stage holds at most 8 units ([`crate`]-independent bound mirrored from
/// `flymon_rmt::hash::MAX_HASH_UNITS`), and in practice a switch reuses a
/// handful of specs (the standing 5-tuple plus per-task keys), so 8 slots
/// absorb every realistic configuration; beyond that the cache degrades
/// to plain extraction, never to a wrong key.
pub const MAX_CACHED_KEYS: usize = 8;

/// A per-packet memo of `KeySpec → FlowKeyBytes` extractions.
///
/// Hash units — including units in *different* CMU groups — frequently
/// share a `KeySpec` (every group's unit 0 carries the standing 5-tuple
/// mask, and a task deployed across groups installs the same key mask in
/// each). Without a memo the flow key is re-serialized once per unit per
/// packet; with it, once per distinct spec per packet. Fixed capacity,
/// no heap: the datapath's allocation-free convention applies.
///
/// Callers must [`ExtractionCache::clear`] at each packet boundary —
/// entries are only valid for the packet they were extracted from.
#[derive(Debug, Clone)]
pub struct ExtractionCache {
    specs: [KeySpec; MAX_CACHED_KEYS],
    keys: [FlowKeyBytes; MAX_CACHED_KEYS],
    len: u8,
    /// Fallback slot when more than `MAX_CACHED_KEYS` distinct specs show
    /// up in one packet: the overflow spec extracts here (uncached).
    spill: FlowKeyBytes,
}

impl Default for ExtractionCache {
    fn default() -> Self {
        ExtractionCache {
            specs: [KeySpec::NONE; MAX_CACHED_KEYS],
            keys: [FlowKeyBytes::EMPTY; MAX_CACHED_KEYS],
            len: 0,
            spill: FlowKeyBytes::EMPTY,
        }
    }
}

impl ExtractionCache {
    /// Forgets every memoized key. Call once per packet, before the first
    /// extraction for that packet.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The memoized extraction of `spec` for `pkt`, serializing it on
    /// first sight. The linear scan beats any hashing scheme at this
    /// size: `KeySpec` is 8 bytes of plain data and `len` is single-digit.
    pub fn get_or_extract(&mut self, spec: &KeySpec, pkt: &Packet) -> &FlowKeyBytes {
        let n = usize::from(self.len);
        if let Some(i) = self.specs[..n].iter().position(|s| s == spec) {
            return &self.keys[i];
        }
        if n < MAX_CACHED_KEYS {
            self.specs[n] = *spec;
            self.keys[n] = spec.extract(pkt);
            self.len += 1;
            &self.keys[n]
        } else {
            self.spill = spec.extract(pkt);
            &self.spill
        }
    }

    /// The memoized extraction of `spec`, if one exists — the read-only
    /// companion to [`ExtractionCache::get_or_extract`]. The vectorized
    /// digest pass gathers key bytes from *several* packets' caches at
    /// once; shared borrows make that gather possible where `&mut`
    /// lookups would not. Returns `None` when the spec was never
    /// extracted (or landed in the uncached spill slot), in which case
    /// the caller falls back to scalar extraction.
    pub fn get(&self, spec: &KeySpec) -> Option<&FlowKeyBytes> {
        let n = usize::from(self.len);
        self.specs[..n]
            .iter()
            .position(|s| s == spec)
            .map(|i| &self.keys[i])
    }

    /// Number of distinct specs memoized since the last clear.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Keeps the top `bits` bits of `v`, zeroing the rest.
pub(crate) fn mask_prefix(v: u32, bits: u8) -> u32 {
    match bits {
        0 => 0,
        b if b >= 32 => v,
        b => v & (u32::MAX << (32 - b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    fn pkt() -> Packet {
        PacketBuilder::new()
            .src_ip(0x0a010203) // 10.1.2.3
            .dst_ip(0xc0a80001) // 192.168.0.1
            .src_port(1000)
            .dst_port(80)
            .protocol(6)
            .ts_ns(5_000)
            .build()
    }

    #[test]
    fn mask_prefix_edges() {
        assert_eq!(mask_prefix(0xffff_ffff, 0), 0);
        assert_eq!(mask_prefix(0xffff_ffff, 32), 0xffff_ffff);
        assert_eq!(mask_prefix(0xffff_ffff, 8), 0xff00_0000);
        assert_eq!(mask_prefix(0x0a010203, 24), 0x0a010200);
    }

    #[test]
    fn five_tuple_width_is_104_bits() {
        assert_eq!(KeySpec::FIVE_TUPLE.width_bits(), 104);
    }

    #[test]
    fn empty_key_maps_everything_together() {
        let k = KeySpec::NONE;
        assert!(k.is_empty());
        let a = k.extract(&pkt());
        let b = k.extract(&Packet::udp(9, 9, 9, 9));
        assert_eq!(a, b);
        assert!(a.is_empty());
    }

    #[test]
    fn prefix_key_groups_subnets() {
        let k = KeySpec::src_ip_slash(24);
        let a = k.extract(&Packet::tcp(0x0a010203, 1, 1, 1));
        let b = k.extract(&Packet::tcp(0x0a0102ff, 2, 2, 2));
        let c = k.extract(&Packet::tcp(0x0a010303, 1, 1, 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn extraction_is_canonical_and_injective_on_selected_bits() {
        let k = KeySpec::FIVE_TUPLE;
        let a = k.extract(&pkt());
        assert_eq!(a.as_bytes().len(), 13); // 4+4+2+2+1
        let mut other = pkt();
        other.src_port += 1;
        assert_ne!(a, k.extract(&other));
        // Unselected fields must not perturb the key.
        let mut len_changed = pkt();
        len_changed.len = 1500;
        assert_eq!(a, k.extract(&len_changed));
    }

    #[test]
    fn covers_relation() {
        assert!(KeySpec::FIVE_TUPLE.covers(&KeySpec::SRC_IP));
        assert!(KeySpec::SRC_IP.covers(&KeySpec::src_ip_slash(24)));
        assert!(!KeySpec::src_ip_slash(24).covers(&KeySpec::SRC_IP));
        assert!(!KeySpec::DST_IP.covers(&KeySpec::SRC_IP));
        assert!(KeySpec::IP_PAIR.covers(&KeySpec::IP_PAIR));
    }

    #[test]
    fn describe_and_render() {
        assert_eq!(KeySpec::NONE.describe(), "N/A");
        assert_eq!(KeySpec::IP_PAIR.describe(), "SrcIP+DstIP");
        assert_eq!(KeySpec::src_ip_slash(24).describe(), "SrcIP/24");
        assert_eq!(KeySpec::src_ip_slash(24).render(&pkt()), "10.1.2.0/24");
        assert_eq!(KeySpec::IP_PAIR.render(&pkt()), "10.1.2.3->192.168.0.1");
    }

    #[test]
    fn merge_disjoint_composes_ip_pair() {
        let merged = KeySpec::SRC_IP.merge_disjoint(&KeySpec::DST_IP).unwrap();
        assert_eq!(merged, KeySpec::IP_PAIR);
        // Overlapping fields refuse to merge.
        assert!(KeySpec::SRC_IP.merge_disjoint(&KeySpec::SRC_IP).is_none());
        assert!(KeySpec::IP_PAIR.merge_disjoint(&KeySpec::DST_IP).is_none());
        // Prefixes count as the field being present.
        assert!(KeySpec::src_ip_slash(8)
            .merge_disjoint(&KeySpec::src_ip_slash(24))
            .is_none());
        // Empty key is the identity.
        assert_eq!(
            KeySpec::NONE.merge_disjoint(&KeySpec::FIVE_TUPLE),
            Some(KeySpec::FIVE_TUPLE)
        );
    }

    #[test]
    fn extraction_cache_memoizes_per_spec() {
        let mut cache = ExtractionCache::default();
        let p = pkt();
        let direct = KeySpec::FIVE_TUPLE.extract(&p);
        assert_eq!(*cache.get_or_extract(&KeySpec::FIVE_TUPLE, &p), direct);
        assert_eq!(*cache.get_or_extract(&KeySpec::FIVE_TUPLE, &p), direct);
        assert_eq!(cache.len(), 1, "repeat spec hits the memo");
        assert_eq!(
            *cache.get_or_extract(&KeySpec::SRC_IP, &p),
            KeySpec::SRC_IP.extract(&p)
        );
        assert_eq!(cache.len(), 2);
        // clear() invalidates: the next packet re-extracts.
        cache.clear();
        assert!(cache.is_empty());
        let other = PacketBuilder::new().src_ip(7).build();
        assert_eq!(
            *cache.get_or_extract(&KeySpec::SRC_IP, &other),
            KeySpec::SRC_IP.extract(&other)
        );
    }

    #[test]
    fn extraction_cache_overflow_stays_correct() {
        // More distinct specs than slots: the overflow extraction must
        // still be correct (uncached), and memoized entries must survive.
        let mut cache = ExtractionCache::default();
        let p = pkt();
        let mut specs: Vec<KeySpec> = (1..=MAX_CACHED_KEYS as u8)
            .map(KeySpec::src_ip_slash)
            .collect();
        specs.push(KeySpec::FIVE_TUPLE); // the (capacity+1)-th spec
        for spec in &specs {
            assert_eq!(*cache.get_or_extract(spec, &p), spec.extract(&p));
        }
        assert_eq!(cache.len(), MAX_CACHED_KEYS);
        // Overflowed spec re-extracts every time but never corrupts slots.
        assert_eq!(
            *cache.get_or_extract(&KeySpec::FIVE_TUPLE, &p),
            KeySpec::FIVE_TUPLE.extract(&p)
        );
        assert_eq!(
            *cache.get_or_extract(&specs[0], &p),
            specs[0].extract(&p),
            "memoized slot survives overflow traffic"
        );
    }

    #[test]
    fn timestamp_key_quantizes_to_microseconds() {
        let k = KeySpec {
            timestamp: true,
            ..KeySpec::NONE
        };
        let mut a = pkt();
        a.ts_ns = 1_000;
        let mut b = pkt();
        b.ts_ns = 1_999;
        let mut c = pkt();
        c.ts_ns = 2_000;
        assert_eq!(k.extract(&a), k.extract(&b));
        assert_ne!(k.extract(&a), k.extract(&c));
    }
}
