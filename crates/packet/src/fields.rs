//! The candidate key set: individual protocol fields a key can draw from.

use crate::Packet;

/// A header field in the candidate key set.
///
/// The paper's evaluation (§5, "Setting") uses the IPv4 5-tuple plus the
/// ingress timestamp as the candidate key set; `Timestamp` is what lets a
/// BeauCoup CMU count "distinct timestamps" as a frequency proxy (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeaderField {
    /// IPv4 source address (32 bits).
    SrcIp,
    /// IPv4 destination address (32 bits).
    DstIp,
    /// Transport source port (16 bits).
    SrcPort,
    /// Transport destination port (16 bits).
    DstPort,
    /// IP protocol number (8 bits).
    Protocol,
    /// Ingress timestamp, quantized to microseconds (32 bits on the wire
    /// model; Tofino exposes a 48-bit ingress timestamp of which sketches
    /// use a 32-bit slice).
    Timestamp,
}

impl HeaderField {
    /// All fields of the candidate key set, in canonical order.
    pub const ALL: [HeaderField; 6] = [
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::Protocol,
        HeaderField::Timestamp,
    ];

    /// Width of the field in bits.
    pub fn width_bits(self) -> u32 {
        match self {
            HeaderField::SrcIp | HeaderField::DstIp | HeaderField::Timestamp => 32,
            HeaderField::SrcPort | HeaderField::DstPort => 16,
            HeaderField::Protocol => 8,
        }
    }

    /// Reads the field's value from a packet, zero-extended to 32 bits.
    ///
    /// `Timestamp` is quantized to microseconds so that "distinct
    /// timestamps" has the granularity the paper's BeauCoup-for-frequency
    /// trick relies on.
    pub fn read(self, pkt: &Packet) -> u32 {
        match self {
            HeaderField::SrcIp => pkt.src_ip,
            HeaderField::DstIp => pkt.dst_ip,
            HeaderField::SrcPort => u32::from(pkt.src_port),
            HeaderField::DstPort => u32::from(pkt.dst_port),
            HeaderField::Protocol => u32::from(pkt.protocol),
            HeaderField::Timestamp => (pkt.ts_ns / 1_000) as u32,
        }
    }

    /// Short human-readable name used in rule dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            HeaderField::SrcIp => "SrcIP",
            HeaderField::DstIp => "DstIP",
            HeaderField::SrcPort => "SrcPort",
            HeaderField::DstPort => "DstPort",
            HeaderField::Protocol => "Proto",
            HeaderField::Timestamp => "Ts",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn widths_sum_to_candidate_key_size() {
        // 5-tuple = 104 bits (§3.1.1); plus the 32-bit timestamp = 136.
        let five_tuple: u32 = HeaderField::ALL
            .iter()
            .filter(|f| !matches!(f, HeaderField::Timestamp))
            .map(|f| f.width_bits())
            .sum();
        assert_eq!(five_tuple, 104);
        let total: u32 = HeaderField::ALL.iter().map(|f| f.width_bits()).sum();
        assert_eq!(total, 136);
    }

    #[test]
    fn read_extracts_each_field() {
        let p = PacketBuilder::new()
            .src_ip(0x01020304)
            .dst_ip(0x05060708)
            .src_port(9)
            .dst_port(10)
            .protocol(11)
            .ts_ns(12_345_678)
            .build();
        assert_eq!(HeaderField::SrcIp.read(&p), 0x01020304);
        assert_eq!(HeaderField::DstIp.read(&p), 0x05060708);
        assert_eq!(HeaderField::SrcPort.read(&p), 9);
        assert_eq!(HeaderField::DstPort.read(&p), 10);
        assert_eq!(HeaderField::Protocol.read(&p), 11);
        assert_eq!(HeaderField::Timestamp.read(&p), 12_345); // µs
    }
}
