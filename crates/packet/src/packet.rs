//! The packet abstraction seen by the measurement data plane.

use crate::Ipv4;

/// One packet as observed by the switch data plane.
///
/// This is the *parsed* view: the 5-tuple header fields plus the standard
/// metadata FlyMon's initialization stage can select as attribute
/// parameters (§3.2: "The parameters can be constant values or standard
/// metadata such as packet size, timestamp, queue length, and delay").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// IPv4 source address (host byte order).
    pub src_ip: Ipv4,
    /// IPv4 destination address (host byte order).
    pub dst_ip: Ipv4,
    /// Transport-layer source port (0 for protocols without ports).
    pub src_port: u16,
    /// Transport-layer destination port (0 for protocols without ports).
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub protocol: u8,
    /// Total packet length in bytes (used by `Frequency(PktBytes)` tasks).
    pub len: u16,
    /// Ingress timestamp in nanoseconds since the start of the trace.
    pub ts_ns: u64,
    /// Egress queue occupancy in cells when this packet was enqueued
    /// (used by congestion detection: `Max(QueueLen)`).
    pub queue_len: u32,
    /// Queuing delay experienced by this packet in nanoseconds
    /// (used by HOL-blocking detection: `Max(QueueDelay)`).
    pub queue_delay_ns: u32,
}

impl Packet {
    /// Creates a TCP packet with the given 5-tuple and defaults for the
    /// remaining fields. Primarily for tests and examples.
    pub fn tcp(src_ip: Ipv4, dst_ip: Ipv4, src_port: u16, dst_port: u16) -> Self {
        PacketBuilder::new()
            .src_ip(src_ip)
            .dst_ip(dst_ip)
            .src_port(src_port)
            .dst_port(dst_port)
            .protocol(6)
            .build()
    }

    /// Creates a UDP packet with the given 5-tuple and defaults for the
    /// remaining fields.
    pub fn udp(src_ip: Ipv4, dst_ip: Ipv4, src_port: u16, dst_port: u16) -> Self {
        PacketBuilder::new()
            .src_ip(src_ip)
            .dst_ip(dst_ip)
            .src_port(src_port)
            .dst_port(dst_port)
            .protocol(17)
            .build()
    }
}

/// Builder for [`Packet`]; every field has a sensible default so tests and
/// generators only set what they care about.
#[derive(Debug, Clone, Copy)]
pub struct PacketBuilder {
    pkt: Packet,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Starts from an all-defaults packet: zero addresses/ports, TCP,
    /// 64-byte frame at t = 0 with an empty queue.
    pub fn new() -> Self {
        Self {
            pkt: Packet {
                src_ip: 0,
                dst_ip: 0,
                src_port: 0,
                dst_port: 0,
                protocol: 6,
                len: 64,
                ts_ns: 0,
                queue_len: 0,
                queue_delay_ns: 0,
            },
        }
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, v: Ipv4) -> Self {
        self.pkt.src_ip = v;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, v: Ipv4) -> Self {
        self.pkt.dst_ip = v;
        self
    }

    /// Sets the source port.
    pub fn src_port(mut self, v: u16) -> Self {
        self.pkt.src_port = v;
        self
    }

    /// Sets the destination port.
    pub fn dst_port(mut self, v: u16) -> Self {
        self.pkt.dst_port = v;
        self
    }

    /// Sets the IP protocol number.
    pub fn protocol(mut self, v: u8) -> Self {
        self.pkt.protocol = v;
        self
    }

    /// Sets the packet length in bytes.
    pub fn len(mut self, v: u16) -> Self {
        self.pkt.len = v;
        self
    }

    /// Sets the ingress timestamp in nanoseconds.
    pub fn ts_ns(mut self, v: u64) -> Self {
        self.pkt.ts_ns = v;
        self
    }

    /// Sets the queue occupancy metadata.
    pub fn queue_len(mut self, v: u32) -> Self {
        self.pkt.queue_len = v;
        self
    }

    /// Sets the queuing-delay metadata in nanoseconds.
    pub fn queue_delay_ns(mut self, v: u32) -> Self {
        self.pkt.queue_delay_ns = v;
        self
    }

    /// Finalizes the packet.
    pub fn build(self) -> Packet {
        self.pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let p = PacketBuilder::new().build();
        assert_eq!(p.protocol, 6);
        assert_eq!(p.len, 64);
        assert_eq!(p.ts_ns, 0);
    }

    #[test]
    fn builder_sets_all_fields() {
        let p = PacketBuilder::new()
            .src_ip(0x0a000001)
            .dst_ip(0x0a000002)
            .src_port(1234)
            .dst_port(80)
            .protocol(17)
            .len(1500)
            .ts_ns(42)
            .queue_len(7)
            .queue_delay_ns(99)
            .build();
        assert_eq!(p.src_ip, 0x0a000001);
        assert_eq!(p.dst_ip, 0x0a000002);
        assert_eq!(p.src_port, 1234);
        assert_eq!(p.dst_port, 80);
        assert_eq!(p.protocol, 17);
        assert_eq!(p.len, 1500);
        assert_eq!(p.ts_ns, 42);
        assert_eq!(p.queue_len, 7);
        assert_eq!(p.queue_delay_ns, 99);
    }

    #[test]
    fn tcp_and_udp_shorthands() {
        let t = Packet::tcp(1, 2, 3, 4);
        assert_eq!(t.protocol, 6);
        let u = Packet::udp(1, 2, 3, 4);
        assert_eq!(u.protocol, 17);
        assert_eq!((u.src_ip, u.dst_ip, u.src_port, u.dst_port), (1, 2, 3, 4));
    }
}
