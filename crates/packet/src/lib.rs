//! Packet model and flow-key algebra for the FlyMon reproduction.
//!
//! A measurement task in FlyMon (§2.1 of the paper) is the combination of a
//! *flow key* and a *flow attribute with parameters*. This crate provides the
//! vocabulary both sides of that definition are written in:
//!
//! - [`Packet`]: an IPv4 packet header plus the standard metadata the data
//!   plane exposes (packet length, arrival timestamp, queue length, queue
//!   delay). These metadata are what attribute *parameters* can refer to.
//! - [`HeaderField`]: the individual protocol fields of the candidate key
//!   set (SrcIP, DstIP, SrcPort, DstPort, Protocol, plus the ingress
//!   timestamp used by the paper's evaluation setting).
//! - [`KeySpec`]: a *partial key* of the candidate key set — any combination
//!   of fields, with per-address prefix lengths (SrcIP/24, IP-pair, 5-tuple,
//!   ...). [`KeySpec::extract`] serializes the selected bits of a packet
//!   into canonical bytes for hashing.
//! - [`TaskFilter`]: prefix-based traffic filters used to isolate tasks and
//!   to split heavy tasks into sub-tasks (§3.1.1, §3.3).
//!
//! The crate is intentionally dependency-free and allocation-free on the hot
//! path: key extraction writes into a fixed-size inline buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fields;
mod filter;
mod key;
mod packet;
pub mod rng;

pub use fields::HeaderField;
pub use filter::{PrefixFilter, TaskFilter};
pub use key::{ExtractionCache, FlowKeyBytes, KeySpec, MAX_CACHED_KEYS, MAX_KEY_BYTES};
pub use packet::{Packet, PacketBuilder};
pub use rng::SplitMix64;

/// Convenience alias for an IPv4 address in host byte order.
///
/// We deliberately use a plain `u32` (rather than `std::net::Ipv4Addr`) so
/// that prefix masking, hashing and arithmetic on addresses stay explicit
/// and cheap; [`fmt_ipv4`] renders the dotted form for human output.
pub type Ipv4 = u32;

/// Formats a host-byte-order IPv4 address in dotted-decimal notation.
pub fn fmt_ipv4(ip: Ipv4) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

/// Parses dotted-decimal IPv4 notation into a host-byte-order `u32`.
///
/// Returns `None` on malformed input. Used by examples and tests; the hot
/// path never parses strings.
pub fn parse_ipv4(s: &str) -> Option<Ipv4> {
    let mut parts = s.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_round_trip() {
        for s in ["0.0.0.0", "10.0.0.1", "192.168.69.100", "255.255.255.255"] {
            let ip = parse_ipv4(s).unwrap();
            assert_eq!(fmt_ipv4(ip), s);
        }
    }

    #[test]
    fn ipv4_rejects_malformed() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert_eq!(parse_ipv4(s), None, "{s:?} should not parse");
        }
    }

    #[test]
    fn ipv4_byte_order_is_big_endian_semantics() {
        assert_eq!(parse_ipv4("1.2.3.4"), Some(0x0102_0304));
    }
}
