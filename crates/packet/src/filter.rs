//! Traffic filters used for task isolation and task splitting.

use crate::key::mask_prefix;
use crate::{fmt_ipv4, Ipv4, Packet};

/// An IPv4 prefix filter, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixFilter {
    /// Network address (host bits must be zero; enforced by constructor).
    pub net: Ipv4,
    /// Prefix length in bits, `0..=32`. Zero matches everything.
    pub bits: u8,
}

impl PrefixFilter {
    /// Matches all addresses.
    pub const ANY: PrefixFilter = PrefixFilter { net: 0, bits: 0 };

    /// Creates a prefix filter; host bits of `net` are masked off.
    ///
    /// # Panics
    /// Panics if `bits > 32`.
    pub fn new(net: Ipv4, bits: u8) -> Self {
        assert!(bits <= 32, "prefix length {bits} out of range");
        PrefixFilter {
            net: mask_prefix(net, bits),
            bits,
        }
    }

    /// True when `ip` falls inside the prefix.
    pub fn matches(&self, ip: Ipv4) -> bool {
        mask_prefix(ip, self.bits) == self.net
    }

    /// True when the two prefixes share any address: for prefixes this is
    /// exactly "one contains the other".
    pub fn intersects(&self, other: &PrefixFilter) -> bool {
        let bits = self.bits.min(other.bits);
        mask_prefix(self.net, bits) == mask_prefix(other.net, bits)
    }

    /// Splits `self` into its two child half-prefixes, if any remain
    /// (§3.1.1: "separate a task with filter [SrcIP:10.0.0.0/8] to subtask
    /// 1 with [10.0.0.0/9] and subtask 2 with [10.128.0.0/9]").
    pub fn split(&self) -> Option<(PrefixFilter, PrefixFilter)> {
        if self.bits >= 32 {
            return None;
        }
        let child_bits = self.bits + 1;
        let lo = PrefixFilter::new(self.net, child_bits);
        let hi = PrefixFilter::new(self.net | (1u32 << (32 - child_bits)), child_bits);
        Some((lo, hi))
    }

    /// Renders as CIDR notation.
    pub fn describe(&self) -> String {
        if self.bits == 0 {
            "*".to_string()
        } else {
            format!("{}/{}", fmt_ipv4(self.net), self.bits)
        }
    }
}

/// A task's traffic filter (§3.4: "The task definition in FlyMon includes a
/// filter, a key, an attribute, and a memory size").
///
/// The filter selects which packets feed the task; two tasks with
/// intersecting filters cannot share a CMU (§3.3, Limitation of Address
/// Translation), which [`TaskFilter::intersects`] lets the control plane
/// check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskFilter {
    /// Source-address prefix; `PrefixFilter::ANY` for no constraint.
    pub src: PrefixFilter,
    /// Destination-address prefix; `PrefixFilter::ANY` for no constraint.
    pub dst: PrefixFilter,
}

impl TaskFilter {
    /// Matches all traffic.
    pub const ANY: TaskFilter = TaskFilter {
        src: PrefixFilter::ANY,
        dst: PrefixFilter::ANY,
    };

    /// Filter on a source prefix only.
    pub fn src(net: Ipv4, bits: u8) -> Self {
        TaskFilter {
            src: PrefixFilter::new(net, bits),
            dst: PrefixFilter::ANY,
        }
    }

    /// Filter on a destination prefix only.
    pub fn dst(net: Ipv4, bits: u8) -> Self {
        TaskFilter {
            src: PrefixFilter::ANY,
            dst: PrefixFilter::new(net, bits),
        }
    }

    /// True when the packet passes both prefix constraints.
    pub fn matches(&self, pkt: &Packet) -> bool {
        self.src.matches(pkt.src_ip) && self.dst.matches(pkt.dst_ip)
    }

    /// True when some packet could match both filters.
    pub fn intersects(&self, other: &TaskFilter) -> bool {
        self.src.intersects(&other.src) && self.dst.intersects(&other.dst)
    }

    /// Splits along the source prefix into two disjoint sub-filters, the
    /// paper's task-splitting mechanism for reducing per-subtask collision
    /// rates. Falls back to splitting the destination prefix when the
    /// source prefix is already a /32.
    pub fn split(&self) -> Option<(TaskFilter, TaskFilter)> {
        if let Some((lo, hi)) = self.src.split() {
            return Some((
                TaskFilter { src: lo, ..*self },
                TaskFilter { src: hi, ..*self },
            ));
        }
        let (lo, hi) = self.dst.split()?;
        Some((
            TaskFilter { dst: lo, ..*self },
            TaskFilter { dst: hi, ..*self },
        ))
    }

    /// Renders as `src->dst` CIDR notation.
    pub fn describe(&self) -> String {
        format!("{}->{}", self.src.describe(), self.dst.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_ipv4;

    #[test]
    fn prefix_matching() {
        let f = PrefixFilter::new(parse_ipv4("10.0.0.0").unwrap(), 8);
        assert!(f.matches(parse_ipv4("10.1.2.3").unwrap()));
        assert!(!f.matches(parse_ipv4("11.0.0.0").unwrap()));
        assert!(PrefixFilter::ANY.matches(0xdead_beef));
    }

    #[test]
    fn constructor_masks_host_bits() {
        let f = PrefixFilter::new(parse_ipv4("10.1.2.3").unwrap(), 8);
        assert_eq!(f.net, parse_ipv4("10.0.0.0").unwrap());
    }

    #[test]
    fn prefix_intersection_is_containment() {
        let p8 = PrefixFilter::new(parse_ipv4("10.0.0.0").unwrap(), 8);
        let p16 = PrefixFilter::new(parse_ipv4("10.5.0.0").unwrap(), 16);
        let other = PrefixFilter::new(parse_ipv4("20.0.0.0").unwrap(), 8);
        assert!(p8.intersects(&p16));
        assert!(p16.intersects(&p8));
        assert!(!p8.intersects(&other));
        assert!(PrefixFilter::ANY.intersects(&p8));
    }

    #[test]
    fn split_matches_paper_example() {
        // filter[SrcIP:10.0.0.0/8] -> [10.0.0.0/9] and [10.128.0.0/9]
        let f = PrefixFilter::new(parse_ipv4("10.0.0.0").unwrap(), 8);
        let (lo, hi) = f.split().unwrap();
        assert_eq!(lo.describe(), "10.0.0.0/9");
        assert_eq!(hi.describe(), "10.128.0.0/9");
        // The halves are disjoint and cover the parent.
        assert!(!lo.intersects(&hi));
        assert!(f.intersects(&lo) && f.intersects(&hi));
    }

    #[test]
    fn split_exhausts_at_32_bits() {
        let f = PrefixFilter::new(1, 32);
        assert!(f.split().is_none());
    }

    #[test]
    fn task_filter_matching_and_intersection() {
        let a = TaskFilter::src(parse_ipv4("10.0.0.0").unwrap(), 24);
        let b = TaskFilter::src(parse_ipv4("10.0.0.0").unwrap(), 16);
        let c = TaskFilter::src(parse_ipv4("20.0.0.0").unwrap(), 8);
        // Paper §3.3: 10.0.0.0/24 and 10.0.0.0/16 intersect -> cannot
        // coexist on one CMU.
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));

        let pkt = Packet::tcp(parse_ipv4("10.0.0.7").unwrap(), 1, 2, 3);
        assert!(a.matches(&pkt));
        assert!(!c.matches(&pkt));
    }

    #[test]
    fn task_filter_split_prefers_src_then_dst() {
        let t = TaskFilter::src(parse_ipv4("10.0.0.0").unwrap(), 8);
        let (lo, hi) = t.split().unwrap();
        assert!(!lo.intersects(&hi));

        let full_src = TaskFilter {
            src: PrefixFilter::new(1, 32),
            dst: PrefixFilter::new(parse_ipv4("192.168.0.0").unwrap(), 16),
        };
        let (dlo, dhi) = full_src.split().unwrap();
        assert_eq!(dlo.src, full_src.src);
        assert!(!dlo.intersects(&dhi));
    }

    #[test]
    fn describe_forms() {
        assert_eq!(TaskFilter::ANY.describe(), "*->*");
        let t = TaskFilter::dst(parse_ipv4("192.168.0.0").unwrap(), 24);
        assert_eq!(t.describe(), "*->192.168.0.0/24");
    }
}
