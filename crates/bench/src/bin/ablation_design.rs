//! Ablations of FlyMon's three resource-saving design choices:
//!
//! 1. **Key-slice sharing** (§3.2): CMUs of one group derive their "row
//!    hashes" as bit slices of a single compressed key instead of
//!    running independent hash functions — claimed to have "a negligible
//!    impact on measurement accuracy".
//! 2. **XOR key composition** (§3.1.1): `C(SrcIP) ⊕ C(DstIP)` stands in
//!    for a dedicated IP-pair hash unit.
//! 3. **Address translation method** (§3.3): shift-based and TCAM-based
//!    translation compute the same mapping and differ only in resource
//!    cost.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin ablation_design
//! ```

use flymon::addr::{fig11_shift_phv_bits, fig11_tcam_usage, AddrTranslation, TranslationMethod};
use flymon::prelude::*;
use flymon_bench::{fmt_bytes, print_table, representatives, small_trace};
use flymon_packet::KeySpec;
use flymon_sketches::CountMinSketch;
use flymon_traffic::ground_truth::GroundTruth;
use flymon_traffic::metrics::average_relative_error;

fn main() {
    slice_sharing_vs_independent_hashes();
    xor_composition_vs_dedicated_unit();
    translation_equivalence();
}

/// Ablation 1: shared-digest slices vs independent row hashes.
fn slice_sharing_vs_independent_hashes() {
    let trace = small_trace();
    let truth = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
    let reps = representatives(&trace, KeySpec::SRC_IP);

    let mut rows = Vec::new();
    for &bytes in &[20usize << 10, 60 << 10, 200 << 10] {
        let buckets = (bytes / 2 / 3).max(8);

        // CMU CMS: 3 rows sliced from one 32-bit compressed key.
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1 << 17,
            max_partitions_log2: 10,
            ..FlyMonConfig::default()
        });
        let h = fm
            .deploy(
                &TaskDefinition::builder("cms")
                    .key(KeySpec::SRC_IP)
                    .algorithm(Algorithm::Cms { d: 3 })
                    .memory(buckets)
                    .build(),
            )
            .expect("deploys");
        fm.process_trace(&trace);
        let shared = average_relative_error(truth.frequency.iter().map(|(k, &v)| (*k, v)), |k| {
            fm.query_frequency(h, &reps[k]) as f64
        });

        // Software CMS: 3 fully independent hash functions, identical
        // row width (next power of two, matching the CMU rounding).
        let width = buckets.next_power_of_two();
        let mut sw = CountMinSketch::new(3, width);
        for p in &trace {
            sw.update(KeySpec::SRC_IP.extract(p).as_bytes(), 1);
        }
        let independent =
            average_relative_error(truth.frequency.iter().map(|(k, &v)| (*k, v)), |k| {
                sw.query(k.as_bytes()) as f64
            });

        rows.push(vec![
            fmt_bytes(bytes),
            format!("{shared:.4}"),
            format!("{independent:.4}"),
            format!("{:+.1}%", (shared / independent - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Ablation 1: shared-digest bit slices vs independent row hashes (CMS ARE)",
        &["memory", "sliced (CMU)", "independent (sw)", "delta"],
        &rows,
    );
    println!("paper claim (§3.2): the strategy has negligible accuracy impact.\n");
}

/// Ablation 2: XOR-composed IP-pair key vs a dedicated hash unit.
fn xor_composition_vs_dedicated_unit() {
    let trace = small_trace();
    let truth = GroundTruth::packet_counts(&trace, KeySpec::IP_PAIR);
    let reps = representatives(&trace, KeySpec::IP_PAIR);

    let run = |seed_singles: bool| {
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1 << 16,
            preconfigure_five_tuple: false,
            ..FlyMonConfig::default()
        });
        if seed_singles {
            // Occupy two units with SrcIP and DstIP (disjoint filters so
            // CMUs stay shareable), forcing the pair task onto XOR.
            for (key, net) in [(KeySpec::SRC_IP, 0x63000000u32), (KeySpec::DST_IP, 0x64000000)] {
                fm.deploy(
                    &TaskDefinition::builder("seed")
                        .key(key)
                        .algorithm(Algorithm::Cms { d: 1 })
                        .filter(flymon_packet::TaskFilter::src(net, 8))
                        .memory(2048)
                        .build(),
                )
                .expect("seed deploys");
            }
        }
        let h = fm
            .deploy(
                &TaskDefinition::builder("pair")
                    .key(KeySpec::IP_PAIR)
                    .algorithm(Algorithm::Cms { d: 1 })
                    .memory(16384)
                    .build(),
            )
            .expect("pair deploys");
        let masks = fm.task(h).unwrap().install.hash_mask_rules;
        fm.process_trace(&trace);
        let are = average_relative_error(truth.frequency.iter().map(|(k, &v)| (*k, v)), |k| {
            fm.query_frequency(h, &reps[k]) as f64
        });
        (are, masks)
    };

    let (dedicated, masks_dedicated) = run(false);
    let (xored, masks_xored) = run(true);
    print_table(
        "Ablation 2: IP-pair key via XOR composition vs dedicated hash unit (CMS d=1 ARE)",
        &["variant", "ARE", "new hash masks"],
        &[
            vec![
                "dedicated unit".into(),
                format!("{dedicated:.4}"),
                masks_dedicated.to_string(),
            ],
            vec![
                "XOR of C(SrcIP)⊕C(DstIP)".into(),
                format!("{xored:.4}"),
                masks_xored.to_string(),
            ],
        ],
    );
    println!(
        "XOR composition saves the hash-mask install (and a hash unit)\n\
         while keeping accuracy in the same range (§3.1.1).\n"
    );
}

/// Ablation 3: the two translation mechanisms are semantically identical
/// and differ only in resources.
fn translation_equivalence() {
    let m = 65536;
    let mut mismatches = 0u32;
    for p in 0u8..=5 {
        for idx in 0..(1u32 << p) {
            let shift = AddrTranslation::new(p, idx, TranslationMethod::ShiftBased);
            let tcam = AddrTranslation::new(p, idx, TranslationMethod::TcamBased);
            for addr in (0..m as u32).step_by(997) {
                if shift.translate(addr, m) != tcam.translate(addr, m) {
                    mismatches += 1;
                }
            }
        }
    }
    let model = flymon_rmt::resources::TofinoModel::default();
    print_table(
        "Ablation 3: shift-based vs TCAM-based address translation",
        &["partitions", "semantic mismatches", "TCAM (frac/stage)", "PHV (bits)"],
        &[8usize, 32, 64]
            .iter()
            .map(|&k| {
                vec![
                    k.to_string(),
                    mismatches.to_string(),
                    format!("{:.3}", fig11_tcam_usage(k, model.tcam_slots_per_stage)),
                    fig11_shift_phv_bits(k).to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "both mechanisms compute the same sub-range mapping; operators pick\n\
         by which resource (TCAM vs PHV/stages) is spare (§3.3)."
    );
}
