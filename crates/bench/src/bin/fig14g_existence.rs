//! Figure 14g: existence check FP vs memory — the bit-level Bloom
//! optimization of §4.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14g_existence
//! ```
//!
//! Inserts 20K keys, probes with ~95K (75K of which are absent), and
//! compares the bit-optimized CMU Bloom filter (every bit of a 16-bit
//! bucket usable) against the naive one (a whole bucket per bit).

use flymon::prelude::*;
use flymon_bench::{fmt_bytes, print_table};
use flymon_packet::{KeySpec, Packet};
use flymon_traffic::metrics::false_positive_rate;

fn probe_packet(i: u32) -> Packet {
    Packet::tcp(0x0a00_0000 | i, 0xc0a8_0001, (i % 60_000) as u16, 443)
}

fn main() {
    let inserted = 20_000u32;
    let probes = 95_000u32;

    let sweeps: [usize; 5] = [2 << 10, 4 << 10, 6 << 10, 8 << 10, 10 << 10];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];
        for bit_optimized in [false, true] {
            let def = TaskDefinition::builder("blacklist")
                .key(KeySpec::NONE)
                .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Bloom { d: 3, bit_optimized })
                .memory((bytes / 2 / 3).max(8))
                .build();
            let mut fm = FlyMon::new(FlyMonConfig {
                groups: 1,
                buckets_per_cmu: 65536,
                max_partitions_log2: 12,
                ..FlyMonConfig::default()
            });
            let h = fm.deploy(&def).expect("deploys");
            for i in 0..inserted {
                fm.process(&probe_packet(i));
            }
            // Probe: first `inserted` are members (must all hit — no
            // false negatives), the rest are absent.
            let mut fp = 0usize;
            let mut tn = 0usize;
            for i in 0..probes {
                let hit = fm.query_exists(h, &probe_packet(i));
                if i < inserted {
                    assert!(hit, "Bloom filters must not have false negatives");
                } else if hit {
                    fp += 1;
                } else {
                    tn += 1;
                }
            }
            row.push(format!("{:.4}", false_positive_rate(fp, tn)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14g: existence-check false-positive rate vs memory",
        &["memory", "w/o bit-opt FP", "w/ bit-opt FP"],
        &rows,
    );
    println!(
        "paper shape: with the bit-level optimization every bucket bit is a\n\
         filter bit (16x the bits per byte), so FP collapses, reaching\n\
         <0.1% around 40 KB in the paper's setting."
    );
}
