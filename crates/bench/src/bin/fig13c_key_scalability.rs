//! Figure 13c: deployable CMUs vs candidate key size, with and without
//! the less-copy (compression) strategy.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig13c_key_scalability
//! ```

use flymon::compiler::phv_limited_cmus;
use flymon_bench::print_table;

fn main() {
    // 32: one address; 64: IP pair; 104: 5-tuple; 360: + IPv6 addresses.
    let rows: Vec<Vec<String>> = [32u64, 64, 104, 360]
        .iter()
        .map(|&bits| {
            vec![
                bits.to_string(),
                phv_limited_cmus(bits, false).to_string(),
                phv_limited_cmus(bits, true).to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 13c: CMUs deployable vs candidate key size",
        &["key size (bits)", "w/o compression", "w/ compression"],
        &rows,
    );
    println!(
        "with compression the PHV cost is key-size independent (compressed\n\
         keys are 32-bit digests); at 360-bit candidate keys (IPv6) FlyMon\n\
         deploys {}x more CMUs (paper: ~5x).",
        phv_limited_cmus(360, true) / phv_limited_cmus(360, false).max(1)
    );
}
