//! Figure 6: the reduced operation set and the algorithms it hosts.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig06_reduced_ops
//! ```
//!
//! Prints the decomposition/aggregation result of §3.1.2: which stateful
//! operation (of the SALU's four slots) each built-in algorithm's
//! data-plane half runs on, together with its preparation-stage helper.

use flymon_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = [
        ("CMS", "Frequency", "Cond-ADD (p2 = reg max)", "—"),
        ("MRAC", "Frequency (distribution)", "Cond-ADD (p2 = reg max)", "—"),
        ("TowerSketch", "Frequency", "Cond-ADD (p2 = level cap)", "level step/cap constants"),
        ("Counter Braids", "Frequency", "Cond-ADD (both layers)", "MapZero carry judgement"),
        ("SuMax(Sum)", "Frequency", "Cond-ADD (p2 = chained min)", "running-min in PHV"),
        ("SuMax(Max)", "Max", "MAX", "—"),
        ("HyperLogLog", "Distinct (single-key)", "MAX", "leading-zero ρ patterns"),
        ("Bloom Filter", "Existence", "AND-OR (OR side)", "one-hot bit select"),
        ("Linear Counting", "Distinct (single-key)", "AND-OR (OR side)", "one-hot bit select"),
        ("BeauCoup", "Distinct (multi-key)", "AND-OR (OR side)", "coupon one-hot mapping"),
        ("Odd Sketch (§6)", "Similarity", "XOR (4th slot)", "gated one-hot (first occurrence)"),
    ]
    .iter()
    .map(|(alg, attr, op, prep)| {
        vec![alg.to_string(), attr.to_string(), op.to_string(), prep.to_string()]
    })
    .collect();
    print_table(
        "Figure 6: built-in algorithms on the reduced operation set",
        &["algorithm", "attribute", "stateful operation", "preparation stage"],
        &rows,
    );
    println!(
        "three operations (Cond-ADD, MAX, AND-OR) cover all four attributes\n\
         of Table 1; the fourth SALU slot hosts the §6 expansion (XOR for\n\
         Odd Sketch). Decomposition shares ops across algorithms;\n\
         aggregation fuses AND and OR behind the SALU's conditional."
    );
}
