//! Figure 13a: resource overhead of CMU Groups beside switch.p4.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig13a_overhead
//! ```

use flymon::compiler::cmu_group_footprint;
use flymon::group::GroupConfig;
use flymon_bench::print_table;
use flymon_rmt::resources::{ResourceKind, TofinoModel};

fn main() {
    let model = TofinoModel::default();
    let group = cmu_group_footprint(&GroupConfig::default(), &model);
    let base = model.baseline_switch();

    let configs = [
        ("switch.p4", base),
        ("switch.p4 + 1 CMU-Group", base.add(&group)),
        ("switch.p4 + 3 CMU-Group", base.add(&group.scale(3))),
    ];

    let kinds = [
        ResourceKind::HashUnit,
        ResourceKind::Salu,
        ResourceKind::Sram,
        ResourceKind::Tcam,
        ResourceKind::Vliw,
        ResourceKind::LogicalTableId,
    ];
    let mut rows = Vec::new();
    for (name, fp) in &configs {
        let mut row = vec![name.to_string()];
        for k in kinds {
            row.push(format!(
                "{:.3}",
                fp.get(k) as f64 / model.capacity(k) as f64
            ));
        }
        row.push(if fp.fits(&model) { "yes" } else { "NO" }.to_string());
        rows.push(row);
    }
    print_table(
        "Figure 13a: utilization with CMU Groups integrated into switch.p4",
        &["configuration", "Hash", "SALU", "SRAM", "TCAM", "VLIW", "LTID", "fits"],
        &rows,
    );

    println!(
        "per-group overhead: mean {:.1}% across the six resources, bottleneck\n\
         Hash Unit at {:.1}% (paper: \"less than 8.3%\"); more than 3 groups\n\
         integrate beside switch.p4.",
        group.mean_utilization(&model) * 100.0,
        100.0 * group.get(ResourceKind::HashUnit) as f64
            / model.capacity(ResourceKind::HashUnit) as f64
    );
    // How many groups actually fit beside switch.p4 in the model?
    let mut n = 0u64;
    while base.add(&group.scale(n + 1)).fits(&model) {
        n += 1;
    }
    println!("groups that fit beside switch.p4 in this model: {n}");
}
