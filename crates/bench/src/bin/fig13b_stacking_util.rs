//! Figure 13b: hash/SALU utilization vs allotted MAU stages under
//! cross-stacking.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig13b_stacking_util
//! ```

use flymon_bench::print_table;
use flymon_rmt::stacking::Placement;

fn main() {
    let rows: Vec<Vec<String>> = (4..=12)
        .map(|stages| {
            let p = Placement::plan(stages, false);
            vec![
                stages.to_string(),
                p.groups.len().to_string(),
                p.cmus().to_string(),
                format!("{:.4}", p.utilization(|u| u.hash)),
                format!("{:.4}", p.utilization(|u| u.salu)),
            ]
        })
        .collect();
    print_table(
        "Figure 13b: cross-stacking utilization vs number of stages",
        &["stages", "groups", "CMUs", "HASH util", "SALU util"],
        &rows,
    );
    println!(
        "paper checkpoint at 12 stages: HASH 75%, SALU 56.25% (§5.2);\n\
         SALU utilization is capped because current Tofino spends a hash\n\
         distribution unit on every SRAM access."
    );
}
