//! Figure 14d: flow cardinality RE vs memory — BeauCoup vs FlyMon-HLL.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14d_cardinality
//! ```

use flymon::prelude::*;
use flymon_bench::{eval_trace, fmt_bytes, print_table};
use flymon_packet::KeySpec;
use flymon_sketches::beaucoup::{BeauCoup, BeauCoupConfig};
use flymon_traffic::ground_truth::GroundTruth;
use flymon_traffic::metrics::relative_error;

fn main() {
    let trace = eval_trace();
    let truth = GroundTruth::packet_counts(&trace, KeySpec::FIVE_TUPLE).cardinality() as f64;
    println!("trace: {} packets, true cardinality {truth}\n", trace.len());

    let sweeps: [usize; 5] = [16, 128, 1024, 4096, 8192];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];

        // BeauCoup: `bytes/6` single-bucket coupon collectors, each
        // owning a hash partition of the flow space (stochastic
        // averaging); the cardinality estimate is the sum of the
        // per-partition inversions. Each collector is ranged for the
        // cardinalities its partition will plausibly see.
        let collectors = (bytes / 6).max(1);
        let range_hint = (100_000 / collectors as u64).max(64);
        let cfg = BeauCoupConfig::for_threshold(range_hint, 1, 1);
        let mut bcs: Vec<BeauCoup> = (0..collectors).map(|_| BeauCoup::new(cfg)).collect();
        for p in &trace {
            let key = KeySpec::FIVE_TUPLE.extract(p);
            let c = flymon_rmt::hash::murmur3_32(0xca4d, key.as_bytes()) as usize % collectors;
            bcs[c].update(b"", key.as_bytes());
        }
        let est: f64 = bcs.iter().map(|b| b.estimate(b"")).sum();
        row.push(format!("{:.3}", relative_error(truth, est)));

        // FlyMon-HLL: bytes/2 16-bit registers.
        let def = TaskDefinition::builder("cardinality")
            .key(KeySpec::NONE)
            .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
            .algorithm(Algorithm::Hll)
            .memory((bytes / 2).max(8))
            .build();
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 65536,
            max_partitions_log2: 13,
            ..FlyMonConfig::default()
        });
        let h = fm.deploy(&def).expect("deploys");
        fm.process_trace(&trace);
        row.push(format!("{:.3}", relative_error(truth, fm.cardinality(h))));
        rows.push(row);
    }
    print_table(
        "Figure 14d: flow cardinality RE vs memory",
        &["memory", "BeauCoup RE", "FlyMon-HLL RE"],
        &rows,
    );
    println!(
        "paper shape: BeauCoup gets RE < 0.2 from ~16 bytes; HLL needs more\n\
         memory but converges to sub-percent error by ~8 KB."
    );
}
