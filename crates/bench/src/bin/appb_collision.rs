//! Appendix B: compressed-key collision probability `1 − e^(−n/m)`.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin appb_collision
//! ```
//!
//! Empirically measures the fraction of flows whose 24-bit compressed key
//! collides with another flow's, against the paper's closed form — the
//! §3.1.1 claim is 2.35% for 400K flows.

use std::collections::HashMap;

use flymon_bench::print_table;
use flymon_packet::{KeySpec, Packet, SplitMix64};
use flymon_rmt::hash::HashUnit;

fn main() {
    let mut unit = HashUnit::new(0);
    unit.set_mask(KeySpec::FIVE_TUPLE);
    let mut rng = SplitMix64::new(0xAB);

    let mut rows = Vec::new();
    for &(n, bits) in &[(100_000u32, 24u32), (400_000, 24), (400_000, 20), (400_000, 28)] {
        let m = 1u64 << bits;
        let mut buckets: HashMap<u32, u32> = HashMap::new();
        for _ in 0..n {
            let pkt = Packet::tcp(
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u16(),
                rng.next_u16(),
            );
            let digest = unit.compute(&pkt) & ((m - 1) as u32);
            *buckets.entry(digest).or_insert(0) += 1;
        }
        let collided: u64 = buckets
            .values()
            .filter(|&&c| c > 1)
            .map(|&c| u64::from(c))
            .sum();
        let empirical = collided as f64 / f64::from(n);
        let theory = 1.0 - (-(f64::from(n)) / m as f64).exp();
        rows.push(vec![
            n.to_string(),
            bits.to_string(),
            format!("{:.4}", empirical),
            format!("{:.4}", theory),
        ]);
    }
    print_table(
        "Appendix B: compressed-key collision probability",
        &["flows n", "key bits", "empirical", "1 - e^(-n/m)"],
        &rows,
    );
    println!(
        "paper checkpoint: 400K flows on a 24-bit compressed key collide\n\
         at ~2.35% — \"a small percentage of collisions ... has little\n\
         effect on the accuracy of network measurements\" (§3.1.1)."
    );
}
