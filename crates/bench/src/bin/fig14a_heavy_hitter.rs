//! Figure 14a: heavy-hitter detection F1 vs memory, six algorithms.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14a_heavy_hitter
//! ```
//!
//! Threshold 1024 packets on the WIDE-like trace. Series: FlyMon-BeauCoup
//! (d=3, counting distinct timestamps), FlyMon-CMS (d=3), FlyMon-SuMax
//! (d=3), UnivMon, original BeauCoup (d=1, d=3).

use std::collections::HashSet;

use flymon::prelude::*;
use flymon_bench::{eval_trace, fmt_bytes, print_table, representatives, score_heavy_hitters};
use flymon_packet::{FlowKeyBytes, KeySpec, Packet};
use flymon_sketches::beaucoup::{BeauCoup, BeauCoupConfig};
use flymon_sketches::univmon::UnivMon;
use flymon_traffic::ground_truth::GroundTruth;

const THRESHOLD: u64 = 1024;
const KEY: KeySpec = KeySpec::SRC_IP;

fn flymon_config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 4,
        buckets_per_cmu: 1 << 18,
        max_partitions_log2: 10, // fine-grained memory sweep
        ..FlyMonConfig::default()
    }
}

fn flymon_hh(
    def: &TaskDefinition,
    trace: &[Packet],
    reps: &std::collections::HashMap<FlowKeyBytes, Packet>,
    report: impl Fn(&FlyMon, TaskHandle, &Packet) -> bool,
) -> (usize, HashSet<FlowKeyBytes>) {
    let mut fm = FlyMon::new(flymon_config());
    let h = fm.deploy(def).expect("deploys");
    fm.process_trace(trace);
    let reported = reps
        .iter()
        .filter(|(_, p)| report(&fm, h, p))
        .map(|(k, _)| *k)
        .collect();
    (
        fm.task(h).unwrap().memory_bytes(fm.config().bucket_bits),
        reported,
    )
}

fn main() {
    let trace = eval_trace();
    let truth = GroundTruth::packet_counts(&trace, KEY);
    let reps = representatives(&trace, KEY);
    println!(
        "trace: {} packets, {} flows, {} true heavy hitters (threshold {THRESHOLD})\n",
        trace.len(),
        truth.cardinality(),
        truth.heavy_hitters(THRESHOLD).len()
    );

    let sweeps: [usize; 5] = [10 << 10, 30 << 10, 100 << 10, 300 << 10, 1 << 20];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];

        // FlyMon-BeauCoup (d=3): distinct µs timestamps as frequency.
        let def = TaskDefinition::builder("hh-beaucoup")
            .key(KEY)
            .attribute(Attribute::Distinct(KeySpec {
                timestamp: true,
                ..KeySpec::NONE
            }))
            .algorithm(Algorithm::BeauCoup { d: 3 })
            .distinct_threshold(THRESHOLD)
            .memory((bytes / 2 / 3).clamp(8, 1 << 18))
            .build();
        let (_, reported) = flymon_hh(&def, &trace, &reps, |fm, h, p| fm.beaucoup_reports(h, p));
        row.push(format!(
            "{:.3}",
            score_heavy_hitters(&truth, THRESHOLD, &reported).f1
        ));

        // FlyMon-CMS (d=3).
        let def = TaskDefinition::builder("hh-cms")
            .key(KEY)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory((bytes / 2 / 3).clamp(8, 1 << 18))
            .build();
        let (_, reported) = flymon_hh(&def, &trace, &reps, |fm, h, p| {
            fm.query_frequency(h, p) >= THRESHOLD
        });
        row.push(format!(
            "{:.3}",
            score_heavy_hitters(&truth, THRESHOLD, &reported).f1
        ));

        // FlyMon-SuMax (d=3): conservative update across 3 groups.
        let def = TaskDefinition::builder("hh-sumax")
            .key(KEY)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::SuMaxSum { d: 3 })
            .memory((bytes / 2 / 3).clamp(8, 1 << 18))
            .build();
        let (_, reported) = flymon_hh(&def, &trace, &reps, |fm, h, p| {
            fm.query_frequency(h, p) >= THRESHOLD
        });
        row.push(format!(
            "{:.3}",
            score_heavy_hitters(&truth, THRESHOLD, &reported).f1
        ));

        // UnivMon.
        let mut um = UnivMon::with_memory(bytes);
        for p in &trace {
            um.update(KEY.extract(p).as_bytes());
        }
        let um_reported: HashSet<Vec<u8>> =
            um.heavy_hitters(THRESHOLD).into_iter().map(|(k, _)| k).collect();
        let reported: HashSet<FlowKeyBytes> = reps
            .keys()
            .filter(|k| um_reported.contains(k.as_bytes()))
            .copied()
            .collect();
        row.push(format!(
            "{:.3}",
            score_heavy_hitters(&truth, THRESHOLD, &reported).f1
        ));

        // Original BeauCoup (d=1, d=3) counting distinct timestamps.
        for d in [1usize, 3] {
            let cfg = BeauCoupConfig::for_threshold(THRESHOLD, d, (bytes / 6 / d).max(8));
            let mut bc = BeauCoup::new(cfg);
            for p in &trace {
                let ts = ((p.ts_ns / 1_000) as u32).to_be_bytes();
                bc.update(KEY.extract(p).as_bytes(), &ts);
            }
            let reported: HashSet<FlowKeyBytes> = reps
                .keys()
                .filter(|k| bc.reports(k.as_bytes()))
                .copied()
                .collect();
            row.push(format!(
                "{:.3}",
                score_heavy_hitters(&truth, THRESHOLD, &reported).f1
            ));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14a: heavy-hitter F1 vs memory (threshold 1024)",
        &[
            "memory",
            "FlyMon-BeauCoup(3)",
            "FlyMon-CMS(3)",
            "FlyMon-SuMax(3)",
            "UnivMon",
            "BeauCoup(1)",
            "BeauCoup(3)",
        ],
        &rows,
    );
    println!(
        "paper shape: counter-based series reach F1 > 0.99 by ~100 KB with\n\
         FlyMon-SuMax the most memory-efficient; BeauCoup-based series climb\n\
         more slowly; FlyMon-BeauCoup reaches F1 > 0.9 faster than original\n\
         BeauCoup."
    );
}
