//! Figure 11: resource overhead of the two address-translation methods.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig11_addr_translation
//! ```

use flymon::addr::{fig11_shift_phv_bits, fig11_tcam_usage};
use flymon_bench::print_table;
use flymon_rmt::resources::TofinoModel;

fn main() {
    let model = TofinoModel::default();
    let rows: Vec<Vec<String>> = [8usize, 16, 32, 64]
        .iter()
        .map(|&p| {
            vec![
                p.to_string(),
                format!("{:.3}", fig11_tcam_usage(p, model.tcam_slots_per_stage)),
                fig11_shift_phv_bits(p).to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 11: address-translation overhead vs number of partitions",
        &["partitions", "TCAM usage (frac of 1 stage)", "shift-based PHV (bits)"],
        &rows,
    );
    println!(
        "paper checkpoints: 32 partitions need 12.5% of one stage's TCAM\n\
         (§5.1), enabling 5 memory levels (m..m/32) and 96 tasks per group;\n\
         the shift-based method trades that TCAM for log2(partitions)\n\
         pre-computed 16-bit offsets per CMU."
    );
}
