//! Table 3: built-in algorithms — CMU Group usage and deployment delay.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin tab03_deployment_delay
//! ```
//!
//! Deploys each built-in algorithm on a fresh switch and reports the CMU
//! Group usage plus the modeled rule-install latency (3 ms per
//! synchronous table rule, 16 ms per hash-mask rule, 0.3 ms per batched
//! rule — the §5.1 measurements).

use flymon::prelude::*;
use flymon_bench::print_table;
use flymon_packet::KeySpec;

fn main() {
    // (name, paper delay ms, task definition)
    let cases: Vec<(&str, f64, TaskDefinition)> = vec![
        (
            "CMS (d=3)",
            16.93,
            TaskDefinition::builder("cms")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 3 })
                .memory(16384)
                .build(),
        ),
        (
            "BeauCoup (d=3)",
            40.18,
            TaskDefinition::builder("beaucoup")
                .key(KeySpec::DST_IP)
                .attribute(Attribute::Distinct(KeySpec::SRC_IP))
                .algorithm(Algorithm::BeauCoup { d: 3 })
                .memory(16384)
                .build(),
        ),
        (
            "Bloom Filter (d=3)",
            13.67,
            TaskDefinition::builder("bloom")
                .key(KeySpec::NONE)
                .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Bloom {
                    d: 3,
                    bit_optimized: true,
                })
                .memory(16384)
                .build(),
        ),
        (
            "SuMax(Max) (d=3)",
            19.68,
            TaskDefinition::builder("sumax-max")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::Max(MaxParam::QueueLen))
                .algorithm(Algorithm::SuMaxMax { d: 3 })
                .memory(16384)
                .build(),
        ),
        (
            "HyperLogLog",
            5.98,
            TaskDefinition::builder("hll")
                .key(KeySpec::NONE)
                .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Hll)
                .memory(16384)
                .build(),
        ),
        (
            "SuMax(Sum) (d=3)",
            19.47,
            TaskDefinition::builder("sumax-sum")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::SuMaxSum { d: 3 })
                .memory(16384)
                .build(),
        ),
        (
            "MRAC",
            6.51,
            TaskDefinition::builder("mrac")
                .key(KeySpec::FIVE_TUPLE)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Mrac)
                .memory(16384)
                .build(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, paper_ms, def) in &cases {
        let mut switch = FlyMon::new(FlyMonConfig::default());
        let handle = switch.deploy(def).expect("deploys");
        let task = switch.task(handle).unwrap();
        rows.push(vec![
            name.to_string(),
            def.attribute.name().to_string(),
            task.algorithm.groups_used().to_string(),
            format!(
                "{}H + {}S + {}B",
                task.install.hash_mask_rules,
                task.install.sync_table_rules,
                task.install.batched_table_rules
            ),
            format!("{:.2}", task.install.latency_ms()),
            format!("{paper_ms:.2}"),
        ]);
    }
    print_table(
        "Table 3: built-in algorithms, CMU Group usage and deployment delay",
        &[
            "algorithm",
            "attribute",
            "CMUG",
            "rules (hash/sync/batched)",
            "delay (ms)",
            "paper (ms)",
        ],
        &rows,
    );
    println!(
        "all algorithms deploy within 100 ms without interrupting traffic\n\
         (§5.1; constants: 3 ms/table rule, 16 ms/hash-mask rule, batching)"
    );
}
