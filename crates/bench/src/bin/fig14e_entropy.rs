//! Figure 14e: flow entropy RE vs memory — UnivMon vs FlyMon-MRAC.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14e_entropy
//! ```

use flymon::prelude::*;
use flymon_bench::{eval_trace, fmt_bytes, print_table};
use flymon_packet::KeySpec;
use flymon_sketches::univmon::UnivMon;
use flymon_traffic::ground_truth::GroundTruth;
use flymon_traffic::metrics::relative_error;

const KEY: KeySpec = KeySpec::FIVE_TUPLE;

fn main() {
    let trace = eval_trace();
    let truth = GroundTruth::packet_counts(&trace, KEY).entropy();
    println!(
        "trace: {} packets, true flow entropy {truth:.4} nats\n",
        trace.len()
    );

    let sweeps: [usize; 4] = [200 << 10, 300 << 10, 400 << 10, 500 << 10];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];

        // UnivMon entropy via the universal estimator.
        let mut um = UnivMon::with_memory(bytes);
        for p in &trace {
            um.update(KEY.extract(p).as_bytes());
        }
        row.push(format!("{:.3}", relative_error(truth, um.entropy())));

        // FlyMon-MRAC on a 32-bit-register CMU (heavy flows exceed
        // 16-bit counters; the paper's CMUs support both widths).
        let def = TaskDefinition::builder("entropy")
            .key(KEY)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Mrac)
            .memory((bytes / 4).max(8))
            .build();
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1 << 17,
            bucket_bits: 32,
            max_partitions_log2: 10,
            ..FlyMonConfig::default()
        });
        let h = fm.deploy(&def).expect("deploys");
        fm.process_trace(&trace);
        row.push(format!("{:.3}", relative_error(truth, fm.entropy(h, 10))));
        rows.push(row);
    }
    print_table(
        "Figure 14e: flow entropy RE vs memory",
        &["memory", "UnivMon RE", "FlyMon-MRAC RE"],
        &rows,
    );
    println!(
        "paper shape: MRAC reaches RE < 0.2 at ~200 KB, ahead of UnivMon\n\
         (which needed ~340 KB in the paper's runs)."
    );
}
