//! Figure 12a: impact of reconfiguration on traffic forwarding.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig12a_forwarding
//! ```

use flymon_bench::print_table;
use flymon_netsim::forwarding::{outage_seconds, run_forwarding, DeploymentStyle, ForwardingConfig};

fn main() {
    let config = ForwardingConfig::default();
    let styles = [
        DeploymentStyle::Bare,
        DeploymentStyle::FlyMon,
        DeploymentStyle::Static,
    ];
    let series: Vec<_> = styles
        .iter()
        .map(|&s| (s, run_forwarding(s, &config)))
        .collect();

    // Coarse 5-second throughput averages so the table stays readable.
    let mut rows = Vec::new();
    let window = 5.0;
    let mut t = 0.0;
    while t < config.duration_s {
        let mut row = vec![format!("{:>3.0}-{:<3.0}", t, t + window)];
        for (_, samples) in &series {
            let in_window: Vec<f64> = samples
                .iter()
                .filter(|s| s.time_s >= t && s.time_s < t + window)
                .map(|s| s.gbps)
                .collect();
            let avg = in_window.iter().sum::<f64>() / in_window.len() as f64;
            row.push(format!("{avg:.1}"));
        }
        // Mark reconfiguration events inside the window.
        let events: Vec<String> = config
            .events
            .iter()
            .filter(|(et, _)| *et >= t && *et < t + window)
            .map(|(et, e)| format!("e@{et:.0}s {e:?}"))
            .collect();
        row.push(events.join(" "));
        rows.push(row);
        t += window;
    }
    print_table(
        "Figure 12a: throughput (Gbps) under reconfiguration events",
        &["time (s)", "Bare", "FlyMon", "Static", "events"],
        &rows,
    );

    for (style, samples) in &series {
        println!(
            "{style:?}: total outage {:.1} s",
            outage_seconds(samples, config.sample_period_s)
        );
    }
    println!(
        "\npaper shape: FlyMon/Bare never dip (rule installs are ms-scale);\n\
         each critical Static reconfiguration interrupts traffic 4-8 s."
    );
}
