//! Figure 14f: maximum inter-arrival time ARE vs memory (d=2, d=3).
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14f_interval
//! ```
//!
//! The 3-CMU combinatorial task of §4 (Bloom membership + arrival
//! recorder + interval maximizer), at d parallel instances whose
//! row-wise minimum suppresses hash-collision overestimates.

use flymon::prelude::*;
use flymon_bench::{fmt_bytes, print_table, representatives};
use flymon_packet::KeySpec;
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::max_intervals;
use flymon_traffic::metrics::average_relative_error;

const KEY: KeySpec = KeySpec::FIVE_TUPLE;

fn main() {
    // A denser trace so flows have many packets (intervals need
    // recurrence); 30 s window like the paper's interval experiment.
    let trace = TraceGenerator::new(0x1f).wide_like(&TraceConfig {
        flows: 60_000,
        packets: 1_200_000,
        zipf_alpha: 1.05,
        duration_ns: 30_000_000_000,
        seed: 0x1f,
    });
    // Ground truth in µs (the data plane records µs timestamps).
    let truth: Vec<(flymon_packet::FlowKeyBytes, u64)> = max_intervals(&trace, KEY)
        .into_iter()
        .map(|(k, ns)| (k, ns / 1_000))
        .filter(|&(_, us)| us > 0)
        .collect();
    let reps = representatives(&trace, KEY);
    println!(
        "trace: {} packets, {} flows with a defined max interval\n",
        trace.len(),
        truth.len()
    );

    let sweeps: [usize; 4] = [4 << 20, 6 << 20, 8 << 20, 10 << 20];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];
        for d in [2usize, 3] {
            let def = TaskDefinition::builder("max-interval")
                .key(KEY)
                .attribute(Attribute::Max(MaxParam::PacketIntervalUs))
                .algorithm(Algorithm::MaxInterval { d })
                .memory((bytes / 4 / 3 / d).clamp(8, 1 << 19))
                .build();
            let mut fm = FlyMon::new(FlyMonConfig {
                groups: 3,
                buckets_per_cmu: 1 << 19,
                bucket_bits: 32,
                max_partitions_log2: 8,
                ..FlyMonConfig::default()
            });
            let h = fm.deploy(&def).expect("deploys");
            fm.process_trace(&trace);
            let are = average_relative_error(truth.iter().map(|&(k, v)| (k, v)), |k| {
                fm.query_max(h, &reps[k]) as f64
            });
            row.push(format!("{are:.3}"));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14f: max inter-arrival time ARE vs memory",
        &["memory", "d=2", "d=3"],
        &rows,
    );
    println!(
        "paper shape: ARE falls with memory; d=3 beats d=2 (taking the\n\
         minimum over more instances cancels collision overestimates);\n\
         the paper reaches ARE < 4 at 5 MB with d=3."
    );
}
