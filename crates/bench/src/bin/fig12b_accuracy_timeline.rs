//! Figure 12b: impact of reconfiguration on measurement accuracy.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig12b_accuracy_timeline
//! ```
//!
//! The paper-scale run: 20 one-second epochs of ~10K flows, +30K flows
//! injected during epochs 6–15, task-B churn at epochs 3/10, memory
//! reallocation at epochs 6/16.

use flymon_bench::print_table;
use flymon_netsim::epochs::{run_accuracy_timeline, EpochTimelineConfig};

fn main() {
    let config = EpochTimelineConfig::default();
    println!(
        "{} epochs, {}+{} flows, spike epochs {}..={}\n",
        config.traffic.epochs,
        config.traffic.base_flows,
        config.traffic.spike_flows,
        config.traffic.spike_start + 1,
        config.traffic.spike_end + 1
    );
    let points = run_accuracy_timeline(&config);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                (p.epoch + 1).to_string(),
                p.flows.to_string(),
                p.flymon_buckets.to_string(),
                format!("{:.4}", p.flymon_are),
                format!("{:.4}", p.static_are),
                p.events.join(", "),
            ]
        })
        .collect();
    print_table(
        "Figure 12b: per-epoch ARE of task A",
        &["epoch", "flows", "A buckets", "FlyMon ARE", "Static ARE", "events"],
        &rows,
    );

    let spike: Vec<&flymon_netsim::AccuracyPoint> = points
        .iter()
        .filter(|p| (config.traffic.spike_start..=config.traffic.spike_end).contains(&p.epoch))
        .collect();
    let fly: f64 = spike.iter().map(|p| p.flymon_are).sum::<f64>() / spike.len() as f64;
    let stat: f64 = spike.iter().map(|p| p.static_are).sum::<f64>() / spike.len() as f64;
    println!(
        "spike-epoch ARE: FlyMon {fly:.4}, Static {stat:.4} ({:.1}x — the paper\n\
         reports 15x under its trace); task-B insertion/removal leaves task\n\
         A's accuracy untouched.",
        stat / fly
    );
}
