//! Figure 14c: DDoS victim detection F1 vs memory.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14c_ddos
//! ```
//!
//! FlyMon-BeauCoup (multi-table AND, §4) against the original BeauCoup,
//! at d=1 and d=3, with a 512-distinct-source threshold. The attack mix
//! plants victims on both sides of the threshold so precision and recall
//! both matter.

use std::collections::HashSet;

use flymon::prelude::*;
use flymon_bench::{fmt_bytes, print_table, representatives};
use flymon_packet::{FlowKeyBytes, KeySpec, Packet, PacketBuilder};
use flymon_sketches::beaucoup::{BeauCoup, BeauCoupConfig};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::distinct_counts;
use flymon_traffic::metrics::f1_score;

const THRESHOLD: u64 = 512;
const KEY: KeySpec = KeySpec::DST_IP;

/// Background plus 60 planted destinations with 100..=3050 distinct
/// sources (sweeping across the threshold).
fn attack_trace() -> Vec<Packet> {
    let mut gen = TraceGenerator::new(0xDD05);
    let mut trace = gen.wide_like(&TraceConfig {
        flows: 30_000,
        packets: 700_000,
        zipf_alpha: 1.1,
        duration_ns: 30_000_000_000,
        seed: 0xDD05,
    });
    let mut extra = Vec::new();
    for v in 0u32..60 {
        let victim = (203u32 << 24) | (113 << 8) | v;
        let sources = 100 + v * 50;
        for s in 0..sources {
            extra.push(
                PacketBuilder::new()
                    .src_ip((198 << 24) | (v << 16) | s)
                    .dst_ip(victim)
                    .src_port(s as u16)
                    .dst_port(80)
                    .ts_ns(u64::from(s) * 1_000_000)
                    .build(),
            );
        }
    }
    trace.extend(extra);
    trace.sort_by_key(|p| p.ts_ns);
    trace
}

fn main() {
    let trace = attack_trace();
    let truth_counts = distinct_counts(&trace, KEY, KeySpec::SRC_IP);
    let truth: HashSet<FlowKeyBytes> = truth_counts
        .iter()
        .filter(|&(_, &c)| c >= THRESHOLD)
        .map(|(k, _)| *k)
        .collect();
    let reps = representatives(&trace, KEY);
    println!(
        "trace: {} packets, {} destinations, {} true victims (threshold {THRESHOLD})\n",
        trace.len(),
        truth_counts.len(),
        truth.len()
    );

    let sweeps: [usize; 5] = [10 << 10, 30 << 10, 100 << 10, 300 << 10, 1 << 20];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];

        // FlyMon-BeauCoup at d=1 and d=3.
        for d in [1usize, 3] {
            let def = TaskDefinition::builder("ddos")
                .key(KEY)
                .attribute(Attribute::Distinct(KeySpec::SRC_IP))
                .algorithm(Algorithm::BeauCoup { d })
                .distinct_threshold(THRESHOLD)
                .memory((bytes / 2 / d).clamp(8, 1 << 19))
                .build();
            let mut fm = FlyMon::new(FlyMonConfig {
                groups: 2,
                buckets_per_cmu: 1 << 19,
                max_partitions_log2: 10,
                ..FlyMonConfig::default()
            });
            let h = fm.deploy(&def).expect("deploys");
            fm.process_trace(&trace);
            let reported: HashSet<FlowKeyBytes> = reps
                .iter()
                .filter(|(_, p)| fm.beaucoup_reports(h, p))
                .map(|(k, _)| *k)
                .collect();
            row.push(format!("{:.3}", f1_score(&reported, &truth).f1));
        }

        // Original BeauCoup at d=1 and d=3.
        for d in [1usize, 3] {
            let cfg = BeauCoupConfig::for_threshold(THRESHOLD, d, (bytes / 6 / d).max(8));
            let mut bc = BeauCoup::new(cfg);
            for p in &trace {
                bc.update(KEY.extract(p).as_bytes(), &p.src_ip.to_be_bytes());
            }
            let reported: HashSet<FlowKeyBytes> = reps
                .keys()
                .filter(|k| bc.reports(k.as_bytes()))
                .copied()
                .collect();
            row.push(format!("{:.3}", f1_score(&reported, &truth).f1));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14c: DDoS victim detection F1 vs memory (threshold 512)",
        &[
            "memory",
            "FlyMon-BeauCoup(1)",
            "FlyMon-BeauCoup(3)",
            "BeauCoup(1)",
            "BeauCoup(3)",
        ],
        &rows,
    );
    println!(
        "paper shape: FlyMon-BeauCoup(3) overtakes the original once memory\n\
         exceeds ~100 KB (the multi-table AND suppresses collision FPs)."
    );
}
