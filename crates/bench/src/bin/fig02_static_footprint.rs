//! Figure 2: resource footprint of four single-key sketches statically
//! deployed, and why static deployment cannot cover the task space.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig02_static_footprint
//! ```

use flymon::compiler::{max_static_key_copies, static_sum_footprint, StaticSketch};
use flymon_bench::print_table;
use flymon_rmt::resources::{ResourceKind, TofinoModel};

fn main() {
    let model = TofinoModel::default();
    // The four resources Figure 2 plots.
    let kinds = [
        ResourceKind::HashUnit,
        ResourceKind::LogicalTableId,
        ResourceKind::Salu,
        ResourceKind::Sram,
    ];

    let mut rows = Vec::new();
    for sketch in StaticSketch::ALL {
        let fp = sketch.footprint(&model);
        let mut row = vec![sketch.name().to_string()];
        for k in kinds {
            row.push(format!(
                "{:.1}%",
                100.0 * fp.get(k) as f64 / model.capacity(k) as f64
            ));
        }
        rows.push(row);
    }
    let sum = static_sum_footprint(&model);
    let mut row = vec!["Sum".to_string()];
    for k in kinds {
        row.push(format!(
            "{:.1}%",
            100.0 * sum.get(k) as f64 / model.capacity(k) as f64
        ));
    }
    rows.push(row);
    print_table(
        "Figure 2: static single-key sketch footprints",
        &["sketch", "Hash Unit", "Logical Table ID", "Stateful ALU", "Stateful Memory"],
        &rows,
    );

    // The §1 argument: covering m keys × n attributes statically costs
    // O(m·n); the 4-key suite fits only a couple of times.
    let copies = max_static_key_copies(&model);
    println!(
        "static suites (4 sketches each) that fit beside switch.p4: {copies}\n\
         -> at 4 keys x 4 attributes the static approach needs 16 sketch\n\
            instances; the suite above fits {copies}x, so full coverage is\n\
            infeasible — while one FlyMon CMU Group (<8.3% overhead) hosts\n\
            up to 96 concurrent tasks over the same key/attribute space."
    );
}
