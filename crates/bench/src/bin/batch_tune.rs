//! Quick batched-datapath tuning loop: serial throughput of
//! `FlyMon::process_batch` across batch sizes and prefetch settings on
//! the canonical evaluation trace. A development aid for the stage-major
//! hot path — recorded numbers come from `cargo bench --bench datapath`.

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::eval_trace;
use flymon_packet::KeySpec;

fn main() {
    let trace = eval_trace();
    let def = TaskDefinition::builder("bench-freq")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 3 })
        .memory(8192)
        .build();
    let config = FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    };
    for (batch, prefetch) in [
        (16, true),
        (64, true),
        (256, true),
        (1024, true),
        (64, false),
        (256, false),
    ] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut fm = FlyMon::new(config);
            fm.deploy(&def).expect("deploys");
            fm.set_batch_size(batch);
            fm.set_prefetch(prefetch);
            let begun = Instant::now();
            fm.process_batch(&trace);
            best = best.min(begun.elapsed().as_secs_f64());
        }
        println!(
            "batch {batch:>5}  prefetch {prefetch:5}  {:>10.0} pkt/s",
            trace.len() as f64 / best
        );
    }
}
