//! Figure 8 (and Appendix E / Figure 16): cross-stacked CMU Group layout.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig08_cross_stacking
//! ```

use flymon_bench::print_table;
use flymon_rmt::stacking::{GroupStage, Placement};

fn main() {
    // The per-stage resource-usage table of Figure 8, verbatim.
    let rows: Vec<Vec<String>> = GroupStage::ALL
        .iter()
        .map(|s| {
            let u = s.usage();
            vec![
                format!("{:?}", s),
                format!("{:.2}%", u.hash * 100.0),
                format!("{:.2}%", u.vliw * 100.0),
                format!("{:.2}%", u.tcam * 100.0),
                format!("{:.2}%", u.salu * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 8 (table): per-MAU-stage usage of the four CMU-Group stages",
        &["stage", "Hash", "VLIW", "TCAM", "SALU"],
        &rows,
    );

    let plain = Placement::plan(12, false);
    println!("== Figure 8: cross-stacked layout, 12 MAU stages ==");
    print!("{}", plain.render_layout());
    println!(
        "groups: {}  cmus: {}  feasible: {}\n",
        plain.groups.len(),
        plain.cmus(),
        plain.feasible()
    );

    let spliced = Placement::plan(12, true);
    println!("== Appendix E (Figure 16): spliced layout via mirror+recirculate ==");
    print!("{}", spliced.render_layout());
    println!(
        "groups: {} ({} spliced)  cmus: {}  bandwidth overhead: {:.0}% of measured traffic\n",
        spliced.groups.len(),
        spliced.spliced_groups(),
        spliced.cmus(),
        spliced.bandwidth_overhead() * 100.0
    );

    println!("paper: 9 groups / 27 CMUs without splicing; +3 groups with (Appendix E)");
}
