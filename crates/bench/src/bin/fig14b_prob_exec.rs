//! Figure 14b: heavy-hitter F1 under probabilistic execution.
//!
//! ```sh
//! cargo run --release -p flymon-bench --bin fig14b_prob_exec
//! ```
//!
//! The sampling escape hatch for intersecting tasks (§3.3/§5.3): a CMU
//! executes the task with probability p per packet; estimates are scaled
//! by 1/p at query time. The paper finds p down to 1/8 barely moves
//! heavy-hitter F1.

use std::collections::HashSet;

use flymon::prelude::*;
use flymon_bench::{eval_trace, fmt_bytes, print_table, representatives, score_heavy_hitters};
use flymon_packet::{FlowKeyBytes, KeySpec};
use flymon_traffic::ground_truth::GroundTruth;

const THRESHOLD: u64 = 1024;
const KEY: KeySpec = KeySpec::SRC_IP;

fn main() {
    let trace = eval_trace();
    let truth = GroundTruth::packet_counts(&trace, KEY);
    let reps = representatives(&trace, KEY);
    println!(
        "trace: {} packets, {} true heavy hitters (threshold {THRESHOLD})\n",
        trace.len(),
        truth.heavy_hitters(THRESHOLD).len()
    );

    let sweeps: [usize; 5] = [40 << 10, 80 << 10, 120 << 10, 160 << 10, 200 << 10];
    let mut rows = Vec::new();
    for &bytes in &sweeps {
        let mut row = vec![fmt_bytes(bytes)];
        for prob_log2 in 0u8..=3 {
            let def = TaskDefinition::builder("hh-sampled")
                .key(KEY)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 3 })
                .probability_log2(prob_log2)
                .memory((bytes / 2 / 3).max(8))
                .build();
            let mut fm = FlyMon::new(FlyMonConfig {
                groups: 2,
                buckets_per_cmu: 65536,
                max_partitions_log2: 10,
                ..FlyMonConfig::default()
            });
            let h = fm.deploy(&def).expect("deploys");
            fm.process_trace(&trace);
            let scale = 1u64 << prob_log2;
            let reported: HashSet<FlowKeyBytes> = reps
                .iter()
                .filter(|(_, p)| fm.query_frequency(h, p) * scale >= THRESHOLD)
                .map(|(k, _)| *k)
                .collect();
            row.push(format!(
                "{:.3}",
                score_heavy_hitters(&truth, THRESHOLD, &reported).f1
            ));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14b: heavy-hitter F1 under probabilistic execution",
        &["memory", "p=1.0", "p=0.5", "p=0.25", "p=0.125"],
        &rows,
    );
    println!("paper shape: sampling down to p=0.125 has little effect on HH F1.");
}
