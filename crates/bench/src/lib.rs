//! Shared plumbing for the figure/table regenerators.
//!
//! One binary per table/figure of the paper lives under `src/bin/`; this
//! library holds the pieces they share: canonical workloads, memory-sweep
//! helpers, heavy-hitter scoring and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use flymon_packet::{FlowKeyBytes, KeySpec, Packet};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::GroundTruth;
use flymon_traffic::metrics::{f1_score, F1};

/// The canonical evaluation trace ("WIDE-like", §5.3 scale-down): 50K
/// flows, ~1.5M packets over 15 s. Heavy-tailed, so the 1024-packet
/// heavy-hitter threshold catches roughly the top hundred flows.
pub fn eval_trace() -> Vec<Packet> {
    TraceGenerator::new(0x51DE).wide_like(&TraceConfig {
        flows: 50_000,
        packets: 1_500_000,
        zipf_alpha: 1.1,
        duration_ns: 15_000_000_000,
        seed: 0x51DE,
    })
}

/// A smaller trace for the quick sweeps (30 s halved scale).
pub fn small_trace() -> Vec<Packet> {
    TraceGenerator::new(0x31DE).wide_like(&TraceConfig {
        flows: 20_000,
        packets: 600_000,
        zipf_alpha: 1.1,
        duration_ns: 15_000_000_000,
        seed: 0x31DE,
    })
}

/// A ~100k-packet trace for CI smoke runs of the datapath bench: big
/// enough to exercise sharding and the merge laws, small enough that a
/// cold CI runner finishes in seconds. Never used for recorded numbers.
pub fn smoke_trace() -> Vec<Packet> {
    TraceGenerator::new(0x51DE).wide_like(&TraceConfig {
        flows: 10_000,
        packets: 100_000,
        zipf_alpha: 1.1,
        duration_ns: 1_000_000_000,
        seed: 0x51DE,
    })
}

/// One representative packet per flow of `key` — queries replay the
/// data-plane path, so they need a packet, not just key bytes.
pub fn representatives(trace: &[Packet], key: KeySpec) -> HashMap<FlowKeyBytes, Packet> {
    let mut map = HashMap::new();
    for p in trace {
        map.entry(key.extract(p)).or_insert(*p);
    }
    map
}

/// Scores a reported heavy-hitter set against exact per-flow counts.
pub fn score_heavy_hitters(
    truth: &GroundTruth,
    threshold: u64,
    reported: &HashSet<FlowKeyBytes>,
) -> F1 {
    let true_set = truth.heavy_hitters(threshold);
    f1_score(reported, &true_set)
}

/// Renders a fixed-width table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", render(headers.iter().map(|s| s.to_string()).collect()));
    for row in rows {
        println!("{}", render(row.clone()));
    }
    println!();
}

/// A minimal wall-clock micro-benchmark harness.
///
/// Replaces the external `criterion` dependency so `cargo bench` works
/// fully offline: each measured function is warmed up once, timed over
/// `samples` runs, and summarized as min/median wall time (min is the
/// most noise-robust point estimate for short deterministic kernels).
/// `elements` adds a throughput line in Melem/s based on the median.
pub fn bench<R>(name: &str, samples: usize, elements: Option<u64>, mut f: impl FnMut() -> R) {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f()); // warm-up: faults pages, fills caches
    let mut times: Vec<std::time::Duration> = (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    print!("{name:<28} min {min:>12.3?}  median {median:>12.3?}");
    if let Some(n) = elements {
        let melems = n as f64 / median.as_secs_f64() / 1e6;
        print!("  {melems:>8.2} Melem/s");
    }
    println!();
}

/// Writes a benchmark artifact into the repo's `results/` directory
/// (next to the committed figure regenerations) and returns its path.
/// Benchmarks use this to leave machine-readable perf trajectories
/// (e.g. `BENCH_datapath.json`) that later PRs can compare against.
pub fn emit_results_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

/// Appends one line to a results artifact (creating the file if it does
/// not exist yet) and returns its path. The JSONL perf-history logs
/// (e.g. `BENCH_history.jsonl`) use this: every full benchmark run adds
/// one self-contained record, so the trajectory across PRs and machines
/// survives the per-file overwrites of [`emit_results_file`].
pub fn append_results_line(name: &str, line: &str) -> std::path::PathBuf {
    use std::io::Write;
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
    writeln!(file, "{}", line.trim_end())
        .unwrap_or_else(|e| panic!("cannot append to {}: {e}", path.display()));
    path
}

/// Reads one numeric field out of a committed results artifact by plain
/// string search. The artifacts are emitted by this crate with stable
/// formatting, so a JSON parser would be a dependency for nothing; the
/// first occurrence of `"field":` wins. Returns `None` when the file or
/// the field is missing or malformed — callers treat that as "no
/// baseline recorded yet".
pub fn read_results_field(name: &str, field: &str) -> Option<f64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    let text = std::fs::read_to_string(path).ok()?;
    let key = format!("\"{field}\"");
    let rest = &text[text.find(&key)? + key.len()..];
    let rest = rest[rest.find(':')? + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".+-eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Formats a byte count the way the paper labels its x-axes.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.0} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_cover_every_flow() {
        let trace = small_trace();
        let reps = representatives(&trace, KeySpec::SRC_IP);
        let truth = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
        assert_eq!(reps.len(), truth.cardinality());
        for (k, p) in reps.iter().take(100) {
            assert_eq!(&KeySpec::SRC_IP.extract(p), k);
        }
    }

    #[test]
    fn eval_trace_has_heavy_hitters_at_paper_threshold() {
        let trace = small_trace();
        let truth = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
        let hh = truth.heavy_hitters(1024);
        assert!(
            hh.len() >= 10 && hh.len() <= 500,
            "want a plausible HH population, got {}",
            hh.len()
        );
    }

    #[test]
    fn results_field_reader_finds_the_committed_baseline() {
        // The datapath artifact is committed, so the string-search
        // reader must find its baseline on any checkout.
        let pps = read_results_field("BENCH_datapath.json", "serial_packets_per_sec");
        assert!(pps.is_some_and(|v| v > 0.0), "baseline field unreadable");
        assert!(read_results_field("BENCH_datapath.json", "no_such_field").is_none());
        assert!(read_results_field("no_such_file.json", "x").is_none());
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(16), "16 B");
        assert_eq!(fmt_bytes(10 * 1024), "10 KB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0 MB");
    }
}
