//! Control-plane reconfiguration cost: wall-clock deploy/remove cycles
//! (the modeled rule-install latency is Table 3; this measures the
//! software control plane itself).

use criterion::{criterion_group, criterion_main, Criterion};
use flymon::prelude::*;
use flymon_packet::KeySpec;

fn bench_reconfig(c: &mut Criterion) {
    c.bench_function("deploy_remove_cms_d3", |b| {
        let mut fm = FlyMon::new(FlyMonConfig::default());
        let def = TaskDefinition::builder("t")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(16384)
            .build();
        b.iter(|| {
            let h = fm.deploy(&def).expect("deploys");
            fm.remove(h).expect("removes");
        });
    });

    c.bench_function("reallocate_memory", |b| {
        let mut fm = FlyMon::new(FlyMonConfig::default());
        let def = TaskDefinition::builder("t")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(2048)
            .build();
        let mut h = fm.deploy(&def).expect("deploys");
        let mut big = false;
        b.iter(|| {
            big = !big;
            h = fm
                .reallocate_memory(h, if big { 16384 } else { 2048 })
                .expect("reallocates");
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reconfig
}
criterion_main!(benches);
