//! Control-plane reconfiguration cost: wall-clock deploy/remove cycles
//! (the modeled rule-install latency is Table 3; this measures the
//! software control plane itself).
//!
//! ```sh
//! cargo bench -p flymon-bench --bench reconfiguration
//! ```

use flymon::prelude::*;
use flymon_bench::bench;
use flymon_packet::KeySpec;

fn main() {
    {
        let mut fm = FlyMon::new(FlyMonConfig::default());
        let def = TaskDefinition::builder("t")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(16384)
            .build();
        bench("deploy_remove_cms_d3", 20, None, || {
            let h = fm.deploy(&def).expect("deploys");
            fm.remove(h).expect("removes");
        });
    }

    {
        let mut fm = FlyMon::new(FlyMonConfig::default());
        let def = TaskDefinition::builder("t")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(2048)
            .build();
        let mut h = fm.deploy(&def).expect("deploys");
        let mut big = false;
        bench("reallocate_memory", 20, None, || {
            big = !big;
            h = fm
                .reallocate_memory(h, if big { 16384 } else { 2048 })
                .expect("reallocates");
        });
    }
}
