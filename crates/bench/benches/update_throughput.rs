//! Per-packet update cost of each built-in algorithm hosted on CMUs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use flymon::prelude::*;
use flymon_packet::KeySpec;
use flymon_traffic::gen::{TraceConfig, TraceGenerator};

fn bench_algorithms(c: &mut Criterion) {
    let trace = TraceGenerator::new(7).wide_like(&TraceConfig {
        flows: 5_000,
        packets: 50_000,
        ..TraceConfig::default()
    });

    let cases: Vec<(&str, TaskDefinition, FlyMonConfig)> = vec![
        (
            "cms_d3",
            TaskDefinition::builder("cms")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "beaucoup_d3",
            TaskDefinition::builder("bc")
                .key(KeySpec::DST_IP)
                .attribute(Attribute::Distinct(KeySpec::SRC_IP))
                .algorithm(Algorithm::BeauCoup { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "hll",
            TaskDefinition::builder("hll")
                .key(KeySpec::NONE)
                .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Hll)
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "sumax_sum_d3",
            TaskDefinition::builder("sumax")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::SuMaxSum { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 3,
                ..FlyMonConfig::default()
            },
        ),
        (
            "bloom_d3",
            TaskDefinition::builder("bloom")
                .key(KeySpec::NONE)
                .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Bloom {
                    d: 3,
                    bit_optimized: true,
                })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("cmu_update");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, def, cfg) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut fm = FlyMon::new(cfg);
                    fm.deploy(&def).expect("deploys");
                    fm
                },
                |mut fm| {
                    fm.process_trace(&trace);
                    fm
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms
}
criterion_main!(benches);
