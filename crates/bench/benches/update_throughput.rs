//! Per-packet update cost of each built-in algorithm hosted on CMUs.
//!
//! ```sh
//! cargo bench -p flymon-bench --bench update_throughput
//! ```

use flymon::prelude::*;
use flymon_bench::bench;
use flymon_packet::KeySpec;
use flymon_traffic::gen::{TraceConfig, TraceGenerator};

fn main() {
    let trace = TraceGenerator::new(7).wide_like(&TraceConfig {
        flows: 5_000,
        packets: 50_000,
        ..TraceConfig::default()
    });

    let cases: Vec<(&str, TaskDefinition, FlyMonConfig)> = vec![
        (
            "cms_d3",
            TaskDefinition::builder("cms")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "beaucoup_d3",
            TaskDefinition::builder("bc")
                .key(KeySpec::DST_IP)
                .attribute(Attribute::Distinct(KeySpec::SRC_IP))
                .algorithm(Algorithm::BeauCoup { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "hll",
            TaskDefinition::builder("hll")
                .key(KeySpec::NONE)
                .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Hll)
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
        (
            "sumax_sum_d3",
            TaskDefinition::builder("sumax")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::SuMaxSum { d: 3 })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 3,
                ..FlyMonConfig::default()
            },
        ),
        (
            "bloom_d3",
            TaskDefinition::builder("bloom")
                .key(KeySpec::NONE)
                .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
                .algorithm(Algorithm::Bloom {
                    d: 3,
                    bit_optimized: true,
                })
                .memory(16384)
                .build(),
            FlyMonConfig {
                groups: 1,
                ..FlyMonConfig::default()
            },
        ),
    ];

    println!("== cmu_update: per-packet cost over {} packets ==", trace.len());
    for (name, def, cfg) in cases {
        bench(name, 10, Some(trace.len() as u64), || {
            let mut fm = FlyMon::new(cfg);
            fm.deploy(&def).expect("deploys");
            fm.process_trace(&trace);
            fm.packets_processed()
        });
    }
}
