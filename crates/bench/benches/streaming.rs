//! Streaming ingestion throughput, rotation latency and overload
//! behavior.
//!
//! Scenarios against the supervised streaming runtime:
//!
//! - **steady** — a trace streamed chunk-by-chunk through the bounded
//!   queue with capacity to spare: the runtime's throughput, and its
//!   overhead versus feeding the same fleet the whole trace directly;
//! - **rotating** — the same stream with epoch rotation every 8k
//!   processed packets: what constant-memory readout costs;
//! - **rotation stall** — the ingestion pause a single epoch rotation
//!   imposes, fully-dirty and idle (the double-buffered bank swap makes
//!   the stall O(tasks); merging and re-zeroing run after ingestion
//!   resumes, and an idle rotation is a watermark check);
//! - **zero-allocation readout** — the steady-state readout loop
//!   ([`SwitchFleet::merged_task_row_into`] into a reused scratch) is
//!   run under a counting global allocator and asserted to allocate
//!   nothing;
//! - **overload** — a 10× phased burst over an undersized queue: the
//!   degradation ladder's shed rate, backpressure blocking, and the
//!   health excursion, with the conserved ledger checked at the end;
//! - **rotation sweep** (full runs only) — rotation stall vs fleet
//!   memory from 64 KB to 8 MB, idle and fully-dirty, showing the
//!   stall stays flat while total rotation work scales with memory.
//!
//! Full runs overwrite `results/BENCH_streaming.json` and append a
//! record (throughput + shed rate + rotation stall) to
//! `results/BENCH_history.jsonl`. CI runs
//! `cargo bench --bench streaming -- --smoke`: smaller stream, schema
//! only, nothing recorded — plus a tolerance guard that exits 1 when
//! the smoke rotation stall regresses more than 25% over the committed
//! baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{
    append_results_line, emit_results_file, fmt_bytes, print_table, read_results_field,
    smoke_trace,
};
use flymon_netsim::{
    AdmissionConfig, IngestConfig, RuntimeHealth, StreamingRuntime, SwitchFleet, TraceChunks,
};
use flymon_packet::{KeySpec, Packet, TaskFilter};
use flymon_traffic::gen::{Phase, PhasedConfig, PhasedSource, TraceConfig, TraceGenerator};

/// Counts heap allocations so the readout loop can be asserted
/// allocation-free. Only `alloc`/`realloc` count — frees are irrelevant
/// to the steady-state claim.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Fail the smoke guard when the smoke rotation stall exceeds the
/// committed baseline by more than this factor.
const STALL_TOLERANCE: f64 = 1.25;

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn task() -> TaskDefinition {
    TaskDefinition::builder("stream-bench")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build()
}

fn fleet() -> SwitchFleet {
    SwitchFleet::deploy(3, config(), &task()).expect("bench fleet deploys")
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Min rotation stall over `rounds` rotations of `fleet`, feeding
/// `feed` before each when provided (fully-dirty) or rotating cold
/// (idle). Also returns the min *total* rotation wall time — stall plus
/// the post-resume merge and bank retirement — which is what the whole
/// rotation used to cost when everything sat inside the stall.
fn rotation_stall(
    fleet: &mut SwitchFleet,
    feed: Option<&[Packet]>,
    rounds: usize,
) -> (f64, f64) {
    let mut stall_us = f64::INFINITY;
    let mut total_us = f64::INFINITY;
    for _ in 0..rounds {
        if let Some(feed) = feed {
            fleet.process_trace(feed);
        }
        let begun = Instant::now();
        fleet.rotate_epoch_all().expect("rotation");
        total_us = total_us.min(begun.elapsed().as_secs_f64() * 1e6);
        stall_us = stall_us.min(fleet.last_rotation_stall().as_secs_f64() * 1e6);
    }
    (stall_us, total_us)
}

/// Runs the steady-state readout loop — every row of the primary task
/// merged into one reused scratch — and returns the allocations it
/// made after warm-up. Asserted to be zero: the borrowed row views,
/// the elision checks and the vectorized merge kernels never touch the
/// heap once the scratch has grown.
fn readout_allocs(fleet: &SwitchFleet, rows: usize, iters: usize) -> u64 {
    let mut scratch = ReadoutScratch::default();
    for row in 0..rows {
        // Warm-up: grows the scratch to the largest row.
        fleet
            .merged_task_row_into(0, row, &mut scratch)
            .expect("readout");
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        for row in 0..rows {
            let occ = fleet
                .merged_task_row_into(0, row, &mut scratch)
                .expect("readout");
            std::hint::black_box((occ, scratch.acc.as_slice()));
        }
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace = if smoke {
        smoke_trace()
    } else {
        TraceGenerator::new(0x57EA).wide_like(&TraceConfig {
            flows: 20_000,
            packets: 1_000_000,
            zipf_alpha: 1.1,
            duration_ns: 10_000_000_000,
            seed: 0x57EA,
        })
    };
    let n = trace.len();
    let rev = git_rev();
    println!("streaming {n} packets through the supervised runtime (rev {rev})\n");

    // Direct-feed reference: the same fleet, no queue, no supervision.
    let mut direct = fleet();
    let begun = Instant::now();
    direct.process_trace(&trace);
    let direct_secs = begun.elapsed().as_secs_f64();
    let direct_pps = n as f64 / direct_secs;

    // Steady: everything admitted, per-step sync barriers, no rotation.
    let steady_cfg = IngestConfig {
        queue_capacity: 16_384,
        drain_chunk: 4_096,
        epoch_packets: 0,
        ..IngestConfig::default()
    };
    let mut rt = StreamingRuntime::new(fleet(), steady_cfg.clone());
    let mut src = TraceChunks::new(trace.clone(), 4_096);
    let begun = Instant::now();
    let steady = rt.run(&mut src).expect("steady run");
    let steady_secs = begun.elapsed().as_secs_f64();
    let steady_pps = n as f64 / steady_secs;
    assert_eq!(steady.stats.shed(), 0, "steady run must not shed");
    assert!(steady.ledger.conserved(), "{:?}", steady.ledger);

    // Rotating: identical stream, epoch readout+reset every 8k packets.
    let mut rt = StreamingRuntime::new(
        fleet(),
        IngestConfig {
            epoch_packets: 8_192,
            ..steady_cfg
        },
    );
    let mut src = TraceChunks::new(trace.clone(), 4_096);
    let begun = Instant::now();
    let rotating = rt.run(&mut src).expect("rotating run");
    let rotating_secs = begun.elapsed().as_secs_f64();
    let rotating_pps = n as f64 / rotating_secs;
    assert!(rotating.ledger.conserved(), "{:?}", rotating.ledger);
    let epochs = rotating.stats.epochs_rotated;
    let (run_rotations, run_stall) = rt.fleet().rotation_stall_totals();

    // Rotation stall: the ingestion pause one rotation imposes, on the
    // same fleet geometry the scenarios use. Min over several rounds —
    // stalls are microseconds, so min is the noise-robust estimate.
    let feed = &trace[..trace.len().min(8_192)];
    let rounds = 5;
    let (dirty_stall_us, dirty_total_us) =
        rotation_stall(&mut fleet(), Some(feed), rounds);
    let (idle_stall_us, _) = rotation_stall(&mut fleet(), None, rounds);

    // Zero-allocation readout: assert, then record the (zero) count.
    let allocs = readout_allocs(&direct, 2, 256);
    assert_eq!(
        allocs, 0,
        "steady-state readout loop allocated {allocs} times"
    );

    // Overload: 10× phased burst over an undersized queue.
    let burst_chunks = if smoke { 4 } else { 12 };
    let steady_chunks = if smoke { 4 } else { 10 };
    let mut rt = StreamingRuntime::new(
        fleet(),
        IngestConfig {
            queue_capacity: 1_024,
            drain_chunk: 512,
            backlog_limit: 2_048,
            admission: AdmissionConfig {
                priority: Some(TaskFilter::src(10 << 24, 8)),
                ..AdmissionConfig::default()
            },
            epoch_packets: 8_192,
            ..IngestConfig::default()
        },
    );
    let mut src = PhasedSource::new(PhasedConfig {
        flows: 5_000,
        base_chunk: 1_024,
        phases: vec![
            Phase { chunks: steady_chunks, rate: 1.0 },
            Phase { chunks: burst_chunks, rate: 10.0 },
            Phase { chunks: steady_chunks, rate: 1.0 },
        ],
        ..PhasedConfig::default()
    });
    let begun = Instant::now();
    let overload = rt.run(&mut src).expect("overload run");
    let overload_secs = begun.elapsed().as_secs_f64();
    let offered = overload.stats.offered;
    let shed = overload.stats.shed();
    let shed_rate = shed as f64 / offered.max(1) as f64;
    assert!(overload.ledger.conserved(), "{:?}", overload.ledger);
    assert_eq!(overload.health, RuntimeHealth::Healthy, "must settle");

    print_table(
        "Streaming ingestion",
        &["scenario", "pkts", "seconds", "pkts/s", "shed rate"],
        &[
            vec![
                "direct feed (no queue)".into(),
                format!("{n}"),
                format!("{direct_secs:.3}"),
                format!("{direct_pps:.0}"),
                "-".into(),
            ],
            vec![
                "steady stream".into(),
                format!("{n}"),
                format!("{steady_secs:.3}"),
                format!("{steady_pps:.0}"),
                "0.000".into(),
            ],
            vec![
                format!("rotating ({epochs} epochs)"),
                format!("{n}"),
                format!("{rotating_secs:.3}"),
                format!("{rotating_pps:.0}"),
                "0.000".into(),
            ],
            vec![
                "10x burst overload".into(),
                format!("{offered}"),
                format!("{overload_secs:.3}"),
                format!("{:.0}", overload.stats.processed as f64 / overload_secs),
                format!("{shed_rate:.3}"),
            ],
        ],
    );
    println!(
        "overload ladder: {} random + {} priority + {} overflow shed, \
         {} blocked steps, {} health transitions",
        overload.stats.shed_random,
        overload.stats.shed_priority,
        overload.stats.shed_overflow,
        overload.stats.blocked_steps,
        overload.stats.health_transitions
    );
    println!(
        "rotation stall: {dirty_stall_us:.1} us dirty ({:.1} us total rotation, \
         {:.1}x off the stall path), {idle_stall_us:.1} us idle; \
         run average {:.1} us over {run_rotations} rotations; \
         readout loop: {allocs} allocations",
        dirty_total_us,
        dirty_total_us / dirty_stall_us.max(f64::MIN_POSITIVE),
        run_stall.as_secs_f64() * 1e6 / (run_rotations.max(1) as f64),
    );

    // Rotation-latency sweep: stall vs fleet memory, idle and dirty.
    // The stall is O(tasks) under the bank swap, so it should stay flat
    // while the total rotation (merge + retirement, off the stall path)
    // grows with memory. Full runs only — the sweep's largest point
    // builds an 8 MB fleet.
    let mut sweep_rows = Vec::new();
    let mut sweep_json = Vec::new();
    if !smoke {
        let feed = smoke_trace();
        // 2 switches x 2 rows x bpc buckets x 2 bytes = 8 x bpc bytes.
        for bpc in [8_192usize, 65_536, 524_288, 1_048_576] {
            let bytes = 8 * bpc;
            let cfg = FlyMonConfig {
                groups: 2,
                buckets_per_cmu: bpc,
                ..FlyMonConfig::default()
            };
            let def = TaskDefinition::builder("sweep")
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 2 })
                .memory(bpc)
                .build();
            let mut f =
                SwitchFleet::deploy(2, cfg, &def).expect("sweep fleet deploys");
            let (idle_us, _) = rotation_stall(&mut f, None, 3);
            let (stall_us, total_us) = rotation_stall(&mut f, Some(&feed), 3);
            sweep_rows.push(vec![
                fmt_bytes(bytes),
                format!("{idle_us:.1}"),
                format!("{stall_us:.1}"),
                format!("{total_us:.1}"),
                format!("{:.1}x", total_us / stall_us.max(f64::MIN_POSITIVE)),
            ]);
            sweep_json.push(format!(
                "{{\"fleet_bytes\": {bytes}, \"idle_stall_us\": {idle_us:.1}, \
                 \"dirty_stall_us\": {stall_us:.1}, \"dirty_total_us\": {total_us:.1}}}"
            ));
        }
        print_table(
            "Rotation stall vs fleet memory",
            &["fleet memory", "idle stall us", "dirty stall us", "total us", "off-stall"],
            &sweep_rows,
        );
    }

    // Read the committed baseline *before* this run overwrites the file.
    let committed_stall = read_results_field("BENCH_streaming.json", "rotation_stall_us");

    let json = format!(
        "{{\n  \"trace_packets\": {n},\n  \"smoke\": {smoke},\n  \"git_rev\": \"{rev}\",\n  \
         \"direct\": {{\"seconds\": {direct_secs:.6}, \"packets_per_sec\": {direct_pps:.0}}},\n  \
         \"steady\": {{\"seconds\": {steady_secs:.6}, \"packets_per_sec\": {steady_pps:.0}, \
         \"overhead_vs_direct\": {:.3}, \"syncs\": {}}},\n  \
         \"rotating\": {{\"seconds\": {rotating_secs:.6}, \"packets_per_sec\": {rotating_pps:.0}, \
         \"epochs\": {epochs}, \"overhead_vs_steady\": {:.3}}},\n  \
         \"rotation\": {{\"rotation_stall_us\": {dirty_stall_us:.1}, \
         \"rotation_stall_idle_us\": {idle_stall_us:.1}, \
         \"rotation_total_us\": {dirty_total_us:.1}, \"readout_allocs\": {allocs}}},\n  \
         \"rotation_sweep\": [{}],\n  \
         \"overload\": {{\"offered\": {offered}, \"processed\": {}, \"shed\": {shed}, \
         \"shed_rate\": {shed_rate:.4}, \"shed_random\": {}, \"shed_priority\": {}, \
         \"shed_overflow\": {}, \"blocked_steps\": {}, \"health_transitions\": {}}}\n}}\n",
        direct_pps / steady_pps,
        steady.stats.syncs,
        steady_pps / rotating_pps,
        sweep_json.join(", "),
        overload.stats.processed,
        overload.stats.shed_random,
        overload.stats.shed_priority,
        overload.stats.shed_overflow,
        overload.stats.blocked_steps,
        overload.stats.health_transitions
    );
    let path = emit_results_file("BENCH_streaming.json", &json);
    println!("wrote {}", path.display());

    if smoke {
        // CI tolerance guard: fail loudly when the rotation stall
        // regresses more than 25% over the committed baseline. (Smoke
        // uses a smaller trace, but the stall bench rotates the same
        // fleet geometry with the same per-rotation feed, so the
        // per-rotation stall is comparable across smoke and full runs.)
        let Some(baseline) = committed_stall else {
            println!("smoke guard: no committed rotation baseline found, skipping");
            return;
        };
        let ceiling = baseline * STALL_TOLERANCE;
        if dirty_stall_us > ceiling {
            eprintln!(
                "SMOKE GUARD FAILED: rotation stall {dirty_stall_us:.1} us exceeds \
                 {STALL_TOLERANCE}x the committed baseline {baseline:.1} us \
                 (ceiling {ceiling:.1} us)"
            );
            std::process::exit(1);
        }
        println!(
            "smoke guard passed: rotation stall {dirty_stall_us:.1} us <= {ceiling:.1} us \
             ({STALL_TOLERANCE}x of committed baseline {baseline:.1} us)"
        );
        return;
    }

    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = format!(
        r#"{{"unix_ts":{ts},"git_rev":"{rev}","bench":"streaming","trace_packets":{n},"steady_packets_per_sec":{steady_pps:.0},"rotating_packets_per_sec":{rotating_pps:.0},"rotation_stall_us":{dirty_stall_us:.1},"rotation_stall_idle_us":{idle_stall_us:.1},"readout_allocs":{allocs},"overload_shed_rate":{shed_rate:.4}}}"#
    );
    let hist = append_results_line("BENCH_history.jsonl", &line);
    println!("appended {}", hist.display());
}
