//! Streaming ingestion throughput and overload behavior.
//!
//! Three scenarios against the supervised streaming runtime:
//!
//! - **steady** — a trace streamed chunk-by-chunk through the bounded
//!   queue with capacity to spare: the runtime's throughput, and its
//!   overhead versus feeding the same fleet the whole trace directly;
//! - **rotating** — the same stream with epoch rotation every 8k
//!   processed packets: what constant-memory readout costs;
//! - **overload** — a 10× phased burst over an undersized queue: the
//!   degradation ladder's shed rate, backpressure blocking, and the
//!   health excursion, with the conserved ledger checked at the end.
//!
//! Full runs overwrite `results/BENCH_streaming.json` and append a
//! record (throughput + shed rate) to `results/BENCH_history.jsonl`.
//! CI runs `cargo bench --bench streaming -- --smoke`: smaller stream,
//! schema only, nothing recorded.

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{append_results_line, emit_results_file, print_table, smoke_trace};
use flymon_netsim::{
    AdmissionConfig, IngestConfig, RuntimeHealth, StreamingRuntime, SwitchFleet, TraceChunks,
};
use flymon_packet::{KeySpec, TaskFilter};
use flymon_traffic::gen::{Phase, PhasedConfig, PhasedSource, TraceConfig, TraceGenerator};

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn task() -> TaskDefinition {
    TaskDefinition::builder("stream-bench")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build()
}

fn fleet() -> SwitchFleet {
    SwitchFleet::deploy(3, config(), &task()).expect("bench fleet deploys")
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace = if smoke {
        smoke_trace()
    } else {
        TraceGenerator::new(0x57EA).wide_like(&TraceConfig {
            flows: 20_000,
            packets: 1_000_000,
            zipf_alpha: 1.1,
            duration_ns: 10_000_000_000,
            seed: 0x57EA,
        })
    };
    let n = trace.len();
    let rev = git_rev();
    println!("streaming {n} packets through the supervised runtime (rev {rev})\n");

    // Direct-feed reference: the same fleet, no queue, no supervision.
    let mut direct = fleet();
    let begun = Instant::now();
    direct.process_trace(&trace);
    let direct_secs = begun.elapsed().as_secs_f64();
    let direct_pps = n as f64 / direct_secs;

    // Steady: everything admitted, per-step sync barriers, no rotation.
    let steady_cfg = IngestConfig {
        queue_capacity: 16_384,
        drain_chunk: 4_096,
        epoch_packets: 0,
        ..IngestConfig::default()
    };
    let mut rt = StreamingRuntime::new(fleet(), steady_cfg.clone());
    let mut src = TraceChunks::new(trace.clone(), 4_096);
    let begun = Instant::now();
    let steady = rt.run(&mut src).expect("steady run");
    let steady_secs = begun.elapsed().as_secs_f64();
    let steady_pps = n as f64 / steady_secs;
    assert_eq!(steady.stats.shed(), 0, "steady run must not shed");
    assert!(steady.ledger.conserved(), "{:?}", steady.ledger);

    // Rotating: identical stream, epoch readout+reset every 8k packets.
    let mut rt = StreamingRuntime::new(
        fleet(),
        IngestConfig {
            epoch_packets: 8_192,
            ..steady_cfg
        },
    );
    let mut src = TraceChunks::new(trace.clone(), 4_096);
    let begun = Instant::now();
    let rotating = rt.run(&mut src).expect("rotating run");
    let rotating_secs = begun.elapsed().as_secs_f64();
    let rotating_pps = n as f64 / rotating_secs;
    assert!(rotating.ledger.conserved(), "{:?}", rotating.ledger);
    let epochs = rotating.stats.epochs_rotated;

    // Overload: 10× phased burst over an undersized queue.
    let burst_chunks = if smoke { 4 } else { 12 };
    let steady_chunks = if smoke { 4 } else { 10 };
    let mut rt = StreamingRuntime::new(
        fleet(),
        IngestConfig {
            queue_capacity: 1_024,
            drain_chunk: 512,
            backlog_limit: 2_048,
            admission: AdmissionConfig {
                priority: Some(TaskFilter::src(10 << 24, 8)),
                ..AdmissionConfig::default()
            },
            epoch_packets: 8_192,
            ..IngestConfig::default()
        },
    );
    let mut src = PhasedSource::new(PhasedConfig {
        flows: 5_000,
        base_chunk: 1_024,
        phases: vec![
            Phase { chunks: steady_chunks, rate: 1.0 },
            Phase { chunks: burst_chunks, rate: 10.0 },
            Phase { chunks: steady_chunks, rate: 1.0 },
        ],
        ..PhasedConfig::default()
    });
    let begun = Instant::now();
    let overload = rt.run(&mut src).expect("overload run");
    let overload_secs = begun.elapsed().as_secs_f64();
    let offered = overload.stats.offered;
    let shed = overload.stats.shed();
    let shed_rate = shed as f64 / offered.max(1) as f64;
    assert!(overload.ledger.conserved(), "{:?}", overload.ledger);
    assert_eq!(overload.health, RuntimeHealth::Healthy, "must settle");

    print_table(
        "Streaming ingestion",
        &["scenario", "pkts", "seconds", "pkts/s", "shed rate"],
        &[
            vec![
                "direct feed (no queue)".into(),
                format!("{n}"),
                format!("{direct_secs:.3}"),
                format!("{direct_pps:.0}"),
                "-".into(),
            ],
            vec![
                "steady stream".into(),
                format!("{n}"),
                format!("{steady_secs:.3}"),
                format!("{steady_pps:.0}"),
                "0.000".into(),
            ],
            vec![
                format!("rotating ({epochs} epochs)"),
                format!("{n}"),
                format!("{rotating_secs:.3}"),
                format!("{rotating_pps:.0}"),
                "0.000".into(),
            ],
            vec![
                "10x burst overload".into(),
                format!("{offered}"),
                format!("{overload_secs:.3}"),
                format!("{:.0}", overload.stats.processed as f64 / overload_secs),
                format!("{shed_rate:.3}"),
            ],
        ],
    );
    println!(
        "overload ladder: {} random + {} priority + {} overflow shed, \
         {} blocked steps, {} health transitions",
        overload.stats.shed_random,
        overload.stats.shed_priority,
        overload.stats.shed_overflow,
        overload.stats.blocked_steps,
        overload.stats.health_transitions
    );

    let json = format!(
        "{{\n  \"trace_packets\": {n},\n  \"smoke\": {smoke},\n  \"git_rev\": \"{rev}\",\n  \
         \"direct\": {{\"seconds\": {direct_secs:.6}, \"packets_per_sec\": {direct_pps:.0}}},\n  \
         \"steady\": {{\"seconds\": {steady_secs:.6}, \"packets_per_sec\": {steady_pps:.0}, \
         \"overhead_vs_direct\": {:.3}, \"syncs\": {}}},\n  \
         \"rotating\": {{\"seconds\": {rotating_secs:.6}, \"packets_per_sec\": {rotating_pps:.0}, \
         \"epochs\": {epochs}, \"overhead_vs_steady\": {:.3}}},\n  \
         \"overload\": {{\"offered\": {offered}, \"processed\": {}, \"shed\": {shed}, \
         \"shed_rate\": {shed_rate:.4}, \"shed_random\": {}, \"shed_priority\": {}, \
         \"shed_overflow\": {}, \"blocked_steps\": {}, \"health_transitions\": {}}}\n}}\n",
        direct_pps / steady_pps,
        steady.stats.syncs,
        steady_pps / rotating_pps,
        overload.stats.processed,
        overload.stats.shed_random,
        overload.stats.shed_priority,
        overload.stats.shed_overflow,
        overload.stats.blocked_steps,
        overload.stats.health_transitions
    );
    let path = emit_results_file("BENCH_streaming.json", &json);
    println!("wrote {}", path.display());

    if !smoke {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let line = format!(
            r#"{{"unix_ts":{ts},"git_rev":"{rev}","bench":"streaming","trace_packets":{n},"steady_packets_per_sec":{steady_pps:.0},"rotating_packets_per_sec":{rotating_pps:.0},"overload_shed_rate":{shed_rate:.4}}}"#
        );
        let hist = append_results_line("BENCH_history.jsonl", &line);
        println!("appended {}", hist.display());
    }
}
