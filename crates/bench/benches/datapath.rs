//! Stage-major batched replay vs. per-packet replay vs. the sharded
//! datapath, plus CRC kernel duels.
//!
//! Replays the canonical ≥1M-packet evaluation trace several ways
//! through one switch configuration:
//!
//! - **serial (batched)** — `FlyMon::process_trace` at the defaults
//!   (batch 64, full 8-lane SIMD-width kernels, prefetch off): the
//!   recorded headline number;
//! - **lane sweep** — the same replay at lane widths 1 (scalar), 4 and
//!   8, quantifying what the lane-lockstep match/digest/address passes
//!   buy on this host;
//! - **batch sweep** — batch sizes 16/64/256, to keep the default
//!   honest as the hot path evolves;
//! - **prefetch duel** — prefetch on vs. the default off;
//! - **per-packet** — the interpreter path (`FlyMon::process` in a
//!   loop), asserted bit-identical to the batched replay;
//!
//! then through a [`ShardedDatapath`] at several worker counts — the
//! ingress/worker pipeline, or its inline striped fallback on hosts
//! without real parallelism — verifying the merged registers stay
//! bit-identical, the per-worker packet accounting covers the trace
//! exactly, and tabulating per-core efficiency (per-worker processing
//! rate vs. the serial headline). Kernel microbenches race byte-at-a-
//! time CRC32 against slicing-by-8 and the 8-lane lockstep kernel.
//!
//! The JSON records `cpus` and the compiled-in `target_features` so a
//! number is never compared across incompatible builds silently.
//!
//! Full runs overwrite `results/BENCH_datapath.json` (the snapshot later
//! PRs diff against) *and* append one record to
//! `results/BENCH_history.jsonl` (the append-only trajectory; schema in
//! `results/README.md`).
//!
//! Run with `cargo bench --bench datapath`; CI runs
//! `cargo bench --bench datapath -- --smoke` on a ~100k-packet trace:
//! schema check plus a tolerance guard — the smoke serial throughput
//! must stay within 25% of the committed baseline field, else exit 1.

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{
    append_results_line, emit_results_file, eval_trace, print_table, read_results_field,
    smoke_trace,
};
use flymon_netsim::{ReplayMode, ShardedDatapath};
use flymon_packet::KeySpec;
use flymon_rmt::hash::{
    crc32_lanes, crc32_slice8, crc32_with_table, tables8_for, CRC32_POLYNOMIALS, CRC_LANES,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH_SIZES: [usize; 3] = [16, 64, 256];
const LANE_WIDTHS: [usize; 3] = [1, 4, 8];

/// PR-5 serial throughput from `results/BENCH_datapath.json` as
/// committed by the stage-major batching PR — the baseline this PR's
/// SIMD-width acceptance bar (≥1.15x) is measured against, and the
/// floor the CI smoke guard scales from.
const PR5_SERIAL_PPS: f64 = 13_706_653.0;

/// The smoke guard fails when smoke serial throughput drops below this
/// fraction of the committed baseline (the `baseline` object in
/// `results/BENCH_datapath.json`).
const SMOKE_TOLERANCE: f64 = 0.75;

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn task() -> TaskDefinition {
    TaskDefinition::builder("bench-freq")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 3 })
        .memory(8192)
        .build()
}

/// The x86 feature set this binary was compiled against (compile-time
/// `cfg!`, not runtime detection — it is the code that was *emitted*
/// that matters for comparing numbers).
fn target_features() -> String {
    let mut f: Vec<&str> = Vec::new();
    if cfg!(target_feature = "sse2") {
        f.push("sse2");
    }
    if cfg!(target_feature = "ssse3") {
        f.push("ssse3");
    }
    if cfg!(target_feature = "sse4.2") {
        f.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        f.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        f.push("avx2");
    }
    if cfg!(target_feature = "bmi2") {
        f.push("bmi2");
    }
    if cfg!(target_feature = "fma") {
        f.push("fma");
    }
    if f.is_empty() {
        "portable".to_string()
    } else {
        f.join(",")
    }
}

/// Races the old byte-at-a-time kernel against slicing-by-8 and the
/// 8-lane lockstep kernel on 13-byte inputs (the serialized 5-tuple —
/// the longest key the standing masks produce). Returns
/// (bytewise, slice8, lanes8) in Mkeys/s.
fn kernel_duel() -> (f64, f64, f64) {
    const KEYS: usize = 1 << 14;
    const ROUNDS: usize = 8;
    let tables = tables8_for(CRC32_POLYNOMIALS[0]).expect("family tables");
    let mut keys = vec![[0u8; 13]; KEYS];
    let mut rng = flymon_packet::SplitMix64::new(0xbe7c);
    for k in &mut keys {
        for b in k.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    }
    let time = |f: &dyn Fn(&[u8]) -> u32| {
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let begun = Instant::now();
            let mut acc = 0u32;
            for k in &keys {
                acc ^= f(k);
            }
            std::hint::black_box(acc);
            best = best.min(begun.elapsed().as_secs_f64());
        }
        KEYS as f64 / best / 1e6
    };
    let old = time(&|k| crc32_with_table(&tables[0], 0x5eed, k));
    let new = time(&|k| crc32_slice8(tables, 0x5eed, k));
    // Lane-lockstep: the same keys in groups of CRC_LANES independent
    // chains — the shape the vectorized digest pass feeds it.
    let lanes = {
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let begun = Instant::now();
            let mut acc = 0u32;
            let mut out = [0u32; CRC_LANES];
            for group in keys.chunks(CRC_LANES) {
                let mut inputs: [&[u8]; CRC_LANES] = [&[]; CRC_LANES];
                for (l, k) in group.iter().enumerate() {
                    inputs[l] = k;
                }
                let m = group.len();
                crc32_lanes(tables, 0x5eed, &inputs[..m], &mut out[..m]);
                for &o in &out[..m] {
                    acc ^= o;
                }
            }
            std::hint::black_box(acc);
            best = best.min(begun.elapsed().as_secs_f64());
        }
        KEYS as f64 / best / 1e6
    };
    (old, new, lanes)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Times one batched replay of `trace` on a fresh switch. Returns
/// (seconds, switch, handle) so callers can read registers back.
fn batched_replay(
    trace: &[flymon_packet::Packet],
    batch_size: usize,
    lanes: usize,
    prefetch: bool,
) -> (f64, FlyMon, TaskHandle) {
    let mut fm = FlyMon::new(config());
    let h = fm.deploy(&task()).expect("bench deploy");
    fm.set_batch_size(batch_size);
    fm.set_lane_width(lanes);
    fm.set_prefetch(prefetch);
    let begun = Instant::now();
    fm.process_batch(trace);
    (begun.elapsed().as_secs_f64(), fm, h)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Read the committed baseline *before* this run overwrites the file.
    let committed_baseline = read_results_field("BENCH_datapath.json", "serial_packets_per_sec");
    let trace = if smoke { smoke_trace() } else { eval_trace() };
    let n = trace.len();
    if !smoke {
        assert!(n >= 1_000_000, "the evaluation trace must be ≥1M packets");
    }
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let features = target_features();
    let rev = git_rev();
    println!(
        "replaying {n} packets, batched vs per-packet vs sharded \
         ({cpus} CPUs, features [{features}], rev {rev})\n"
    );

    let (kernel_old, kernel_new, kernel_lanes) = kernel_duel();
    println!(
        "CRC32 kernel, 13-byte keys: bytewise {kernel_old:.1} Mkeys/s, \
         slice8 {kernel_new:.1} Mkeys/s ({:.2}x), \
         8-lane lockstep {kernel_lanes:.1} Mkeys/s ({:.2}x)\n",
        kernel_new / kernel_old,
        kernel_lanes / kernel_old
    );

    // Headline: the stage-major batched replay at the defaults (batch
    // size, full lane width, prefetch off — see DESIGN.md for why the
    // hint defaults off).
    let defaults = FlyMon::new(config());
    let default_batch = defaults.batch_size();
    let default_lanes = defaults.lane_width();
    let default_prefetch = defaults.prefetch_enabled();
    drop(defaults);
    let (serial_secs, serial, h) =
        batched_replay(&trace, default_batch, default_lanes, default_prefetch);
    let serial_pps = n as f64 / serial_secs;

    // Per-packet interpreter reference: timed for the table, and the
    // bit-identity witness for the whole batched path.
    let mut per_packet = FlyMon::new(config());
    let h_pp = per_packet.deploy(&task()).expect("per-packet deploy");
    let begun = Instant::now();
    for p in &trace {
        per_packet.process(p);
    }
    let pp_secs = begun.elapsed().as_secs_f64();
    let pp_pps = n as f64 / pp_secs;
    for row in 0..3 {
        assert_eq!(
            serial.read_row(h, row).expect("batched row"),
            per_packet.read_row(h_pp, row).expect("per-packet row"),
            "batched replay diverged from per-packet replay at row {row}"
        );
    }

    let mut rows = vec![
        vec![
            format!("serial (batch {default_batch}, {default_lanes} lanes)"),
            format!("{serial_secs:.3}"),
            format!("{serial_pps:.0}"),
            "1.00".to_string(),
        ],
        vec![
            "per-packet".to_string(),
            format!("{pp_secs:.3}"),
            format!("{pp_pps:.0}"),
            format!("{:.2}", serial_secs / pp_secs),
        ],
    ];

    // Lane-width sweep: scalar vs 4-wide vs the full 8-wide lockstep,
    // fresh switch per width, identical registers demanded.
    let mut lane_json = Vec::new();
    for lanes in LANE_WIDTHS {
        let secs = if lanes == default_lanes {
            serial_secs
        } else {
            let (secs, fm, hl) = batched_replay(&trace, default_batch, lanes, default_prefetch);
            for row in 0..3 {
                assert_eq!(
                    fm.read_row(hl, row).expect("lane row"),
                    serial.read_row(h, row).expect("serial row"),
                    "lane width {lanes} diverged at row {row}"
                );
            }
            secs
        };
        let pps = n as f64 / secs;
        lane_json.push(format!(
            r#"{{"lane_width":{lanes},"seconds":{secs:.6},"packets_per_sec":{pps:.0}}}"#
        ));
        rows.push(vec![
            format!("lanes {lanes}"),
            format!("{secs:.3}"),
            format!("{pps:.0}"),
            format!("{:.2}", serial_secs / secs),
        ]);
    }

    // Batch-size sweep: fresh switch per size, same registers demanded.
    let mut sweep_json = Vec::new();
    for batch in BATCH_SIZES {
        let secs = if batch == default_batch {
            serial_secs
        } else {
            let (secs, fm, hb) = batched_replay(&trace, batch, default_lanes, default_prefetch);
            for row in 0..3 {
                assert_eq!(
                    fm.read_row(hb, row).expect("sweep row"),
                    serial.read_row(h, row).expect("serial row"),
                    "batch size {batch} diverged at row {row}"
                );
            }
            secs
        };
        let pps = n as f64 / secs;
        sweep_json.push(format!(
            r#"{{"batch_size":{batch},"seconds":{secs:.6},"packets_per_sec":{pps:.0}}}"#
        ));
        rows.push(vec![
            format!("batch {batch}"),
            format!("{secs:.3}"),
            format!("{pps:.0}"),
            format!("{:.2}", serial_secs / secs),
        ]);
    }

    // Prefetch duel at the defaults: the hint defaults *off*; measure
    // what turning it on does with the gathered lane-group addresses.
    let (pf_secs, pf_fm, pf_h) = batched_replay(&trace, default_batch, default_lanes, true);
    for row in 0..3 {
        assert_eq!(
            pf_fm.read_row(pf_h, row).expect("prefetch row"),
            serial.read_row(h, row).expect("serial row"),
            "prefetch changed register contents at row {row}"
        );
    }
    let pf_pps = n as f64 / pf_secs;
    rows.push(vec![
        "prefetch on".to_string(),
        format!("{pf_secs:.3}"),
        format!("{pf_pps:.0}"),
        format!("{:.2}", serial_secs / pf_secs),
    ]);

    let mut parallel_json = Vec::new();
    let mut core_rows = Vec::new();
    for workers in WORKER_COUNTS {
        let mut dp = ShardedDatapath::deploy(workers, config(), &task()).expect("sharded deploy");
        let stats = dp.process_trace(&trace);
        let secs = stats.elapsed.as_secs_f64();
        let pps = stats.packets_per_sec();
        let mode = match stats.mode {
            ReplayMode::Serial => "serial".to_string(),
            ReplayMode::Pipelined { workers } => format!("pipelined({workers})"),
        };

        // The merged registers must be bit-identical to the serial
        // replay — a sharded datapath that is fast but wrong is useless.
        for row in 0..3 {
            assert_eq!(
                dp.merged_row(row).expect("merged row"),
                serial.read_row(h, row).expect("serial row"),
                "row {row} diverged at {workers} workers"
            );
        }
        // Accounting must cover the trace exactly: a delivered-twice or
        // never-delivered packet shows up here rather than as a quietly
        // wrong throughput number.
        let claimed: u64 = dp.worker_stats().iter().map(|w| w.packets).sum();
        assert_eq!(
            claimed, n as u64,
            "workers must receive every packet exactly once at {workers} workers"
        );

        let worker_json: Vec<String> = dp
            .worker_stats()
            .iter()
            .map(|w| {
                format!(
                    r#"{{"worker":{},"packets":{},"packets_per_sec":{:.0},"busy_seconds":{:.6},"recirculated":{},"dropped":{}}}"#,
                    w.worker,
                    w.packets,
                    w.packets_per_sec(),
                    w.busy.as_secs_f64(),
                    w.recirculated,
                    w.dropped
                )
            })
            .collect();
        for w in dp.worker_stats() {
            // Per-core efficiency: each worker's pure processing rate
            // (ring waits excluded) against the serial headline.
            core_rows.push(vec![
                format!("x{workers} [{mode}]"),
                format!("{}", w.worker),
                format!("{}", w.packets),
                format!("{:.0}", w.packets_per_sec()),
                format!("{:.2}", w.packets_per_sec() / serial_pps),
            ]);
        }
        parallel_json.push(format!(
            r#"{{"workers":{},"mode":"{}","seconds":{:.6},"packets_per_sec":{:.0},"speedup":{:.3},"imbalance":{:.3},"recirculated":{},"dropped":{},"per_worker":[{}]}}"#,
            workers,
            mode,
            secs,
            pps,
            serial_secs / secs,
            stats.imbalance,
            stats.recirculated,
            stats.dropped,
            worker_json.join(",")
        ));
        rows.push(vec![
            format!("sharded x{workers} [{mode}]"),
            format!("{secs:.3}"),
            format!("{pps:.0}"),
            format!("{:.2}", serial_secs / secs),
        ]);
    }

    print_table(
        "Datapath replay throughput",
        &["mode", "seconds", "pkts/s", "speedup"],
        &rows,
    );
    print_table(
        "Per-core efficiency (processing rate vs serial headline)",
        &["datapath", "worker", "packets", "pkts/s", "efficiency"],
        &core_rows,
    );
    if cpus < *WORKER_COUNTS.iter().max().unwrap() {
        println!(
            "note: only {cpus} CPU(s) visible — parallel speedups are \
             bounded by the host, not the datapath"
        );
    }

    let json = format!(
        "{{\n  \"trace_packets\": {n},\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n  \
         \"target_features\": \"{features}\",\n  \"git_rev\": \"{rev}\",\n  \
         \"kernel\": {{\"name\": \"crc32-slice8\", \"bytewise_mkeys_per_sec\": {kernel_old:.1}, \
         \"slice8_mkeys_per_sec\": {kernel_new:.1}, \"lanes8_mkeys_per_sec\": {kernel_lanes:.1}, \
         \"speedup\": {:.3}, \"lanes_speedup\": {:.3}}},\n  \
         \"baseline\": {{\"source\": \"PR-5 stage-major batching\", \"serial_packets_per_sec\": {PR5_SERIAL_PPS:.0}}},\n  \
         \"serial\": {{\"batch_size\": {default_batch}, \"lane_width\": {default_lanes}, \
         \"prefetch\": {default_prefetch}, \"seconds\": {serial_secs:.6}, \
         \"packets_per_sec\": {serial_pps:.0}, \"speedup_vs_baseline\": {:.3}}},\n  \
         \"per_packet\": {{\"seconds\": {pp_secs:.6}, \"packets_per_sec\": {pp_pps:.0}}},\n  \
         \"lane_sweep\": [\n    {}\n  ],\n  \
         \"batch_sweep\": [\n    {}\n  ],\n  \
         \"prefetch\": {{\"batch_size\": {default_batch}, \"on_packets_per_sec\": {pf_pps:.0}, \
         \"off_packets_per_sec\": {serial_pps:.0}, \"on_over_off\": {:.3}}},\n  \
         \"parallel\": [\n    {}\n  ]\n}}\n",
        kernel_new / kernel_old,
        kernel_lanes / kernel_old,
        serial_pps / PR5_SERIAL_PPS,
        lane_json.join(",\n    "),
        sweep_json.join(",\n    "),
        pf_pps / serial_pps,
        parallel_json.join(",\n    ")
    );
    let path = emit_results_file("BENCH_datapath.json", &json);
    println!("wrote {}", path.display());

    if smoke {
        // Tolerance guard: CI fails when the smoke serial throughput
        // falls more than 25% below the committed baseline. (Smoke
        // numbers are never recorded; they only gate regressions.)
        let Some(baseline) = committed_baseline else {
            eprintln!("smoke guard: no committed baseline found, skipping");
            return;
        };
        let floor = baseline * SMOKE_TOLERANCE;
        if serial_pps < floor {
            eprintln!(
                "smoke guard FAILED: serial {serial_pps:.0} pkt/s is below \
                 {SMOKE_TOLERANCE}x the committed baseline {baseline:.0} pkt/s \
                 (floor {floor:.0})"
            );
            std::process::exit(1);
        }
        println!(
            "smoke guard OK: serial {serial_pps:.0} pkt/s ≥ {floor:.0} pkt/s \
             ({SMOKE_TOLERANCE}x of committed baseline {baseline:.0})"
        );
    } else {
        // Append-only perf trajectory, one record per full run. Schema
        // documented in results/README.md.
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let line = format!(
            r#"{{"unix_ts":{ts},"git_rev":"{rev}","cpus":{cpus},"target_features":"{features}","trace_packets":{n},"serial_batch_size":{default_batch},"serial_lane_width":{default_lanes},"serial_packets_per_sec":{serial_pps:.0},"speedup_vs_baseline":{:.3},"per_packet_packets_per_sec":{pp_pps:.0},"prefetch_on_over_off":{:.3},"lane_sweep":[{}],"batch_sweep":[{}]}}"#,
            serial_pps / PR5_SERIAL_PPS,
            pf_pps / serial_pps,
            lane_json.join(","),
            sweep_json.join(",")
        );
        let hist = append_results_line("BENCH_history.jsonl", &line);
        println!("appended {}", hist.display());
    }
}
