//! Serial vs. sharded-parallel trace replay, plus the CRC kernel duel.
//!
//! Replays the canonical ≥1M-packet evaluation trace through one switch
//! serially, then through a [`ShardedDatapath`] at several worker
//! counts, verifying the merged registers stay bit-identical and the
//! per-worker packet accounting covers the trace exactly. A kernel
//! microbench races the old byte-at-a-time CRC32 against the
//! slicing-by-8 kernel on realistic key sizes. Everything lands in
//! `results/BENCH_datapath.json` together with the host CPU count and
//! git revision — the perf trajectory every later datapath change is
//! measured against, comparable across PRs and machines.
//!
//! Run with `cargo bench --bench datapath`; CI runs
//! `cargo bench --bench datapath -- --smoke` on a ~100k-packet trace
//! (schema check only, numbers not recorded).

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{emit_results_file, eval_trace, print_table, smoke_trace};
use flymon_netsim::ShardedDatapath;
use flymon_packet::KeySpec;
use flymon_rmt::hash::{crc32_slice8, crc32_with_table, tables8_for, CRC32_POLYNOMIALS};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// PR-2 numbers from `results/BENCH_datapath.json` at commit a945bad —
/// the baseline this PR's acceptance bar is measured against.
const PR2_SERIAL_PPS: f64 = 5_066_717.0;
const PR2_SPEEDUP_4W: f64 = 0.958;

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn task() -> TaskDefinition {
    TaskDefinition::builder("bench-freq")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 3 })
        .memory(8192)
        .build()
}

/// Races the old byte-at-a-time kernel against slicing-by-8 on 13-byte
/// inputs (the serialized 5-tuple — the longest key the standing masks
/// produce). Returns (old Mkeys/s, new Mkeys/s).
fn kernel_duel() -> (f64, f64) {
    const KEYS: usize = 1 << 14;
    const ROUNDS: usize = 8;
    let tables = tables8_for(CRC32_POLYNOMIALS[0]).expect("family tables");
    let mut keys = vec![[0u8; 13]; KEYS];
    let mut rng = flymon_packet::SplitMix64::new(0xbe7c);
    for k in &mut keys {
        for b in k.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    }
    let time = |f: &dyn Fn(&[u8]) -> u32| {
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let begun = Instant::now();
            let mut acc = 0u32;
            for k in &keys {
                acc ^= f(k);
            }
            std::hint::black_box(acc);
            best = best.min(begun.elapsed().as_secs_f64());
        }
        KEYS as f64 / best / 1e6
    };
    let old = time(&|k| crc32_with_table(&tables[0], 0x5eed, k));
    let new = time(&|k| crc32_slice8(tables, 0x5eed, k));
    (old, new)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace = if smoke { smoke_trace() } else { eval_trace() };
    let n = trace.len();
    if !smoke {
        assert!(n >= 1_000_000, "the evaluation trace must be ≥1M packets");
    }
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let rev = git_rev();
    println!("replaying {n} packets, serial vs sharded ({cpus} CPUs, rev {rev})\n");

    let (kernel_old, kernel_new) = kernel_duel();
    println!(
        "CRC32 kernel, 13-byte keys: bytewise {kernel_old:.1} Mkeys/s, \
         slice8 {kernel_new:.1} Mkeys/s ({:.2}x)\n",
        kernel_new / kernel_old
    );

    // Serial baseline.
    let mut serial = FlyMon::new(config());
    let h = serial.deploy(&task()).expect("serial deploy");
    let started = Instant::now();
    serial.process_trace(&trace);
    let serial_secs = started.elapsed().as_secs_f64();
    let serial_pps = n as f64 / serial_secs;

    let mut rows = vec![vec![
        "serial".to_string(),
        format!("{serial_secs:.3}"),
        format!("{serial_pps:.0}"),
        "1.00".to_string(),
    ]];
    let mut parallel_json = Vec::new();

    for workers in WORKER_COUNTS {
        let mut dp =
            ShardedDatapath::deploy(workers, config(), &task()).expect("sharded deploy");
        let stats = dp.process_trace(&trace);
        let secs = stats.elapsed.as_secs_f64();
        let pps = stats.packets_per_sec();

        // The merged registers must be bit-identical to the serial
        // replay — a sharded datapath that is fast but wrong is useless.
        for row in 0..3 {
            assert_eq!(
                dp.merged_row(row).expect("merged row"),
                serial.read_row(h, row).expect("serial row"),
                "row {row} diverged at {workers} workers"
            );
        }
        // Accounting must cover the trace exactly: with the busy/elapsed
        // skew fixed, a claimed-twice or never-claimed packet shows up
        // here rather than as a quietly wrong throughput number.
        let claimed: u64 = dp.worker_stats().iter().map(|w| w.packets).sum();
        assert_eq!(
            claimed, n as u64,
            "workers must claim every packet exactly once at {workers} workers"
        );

        let worker_json: Vec<String> = dp
            .worker_stats()
            .iter()
            .map(|w| {
                format!(
                    r#"{{"worker":{},"packets":{},"packets_per_sec":{:.0},"recirculated":{},"dropped":{}}}"#,
                    w.worker,
                    w.packets,
                    w.packets_per_sec(),
                    w.recirculated,
                    w.dropped
                )
            })
            .collect();
        parallel_json.push(format!(
            r#"{{"workers":{},"seconds":{:.6},"packets_per_sec":{:.0},"speedup":{:.3},"recirculated":{},"dropped":{},"per_worker":[{}]}}"#,
            workers,
            secs,
            pps,
            serial_secs / secs,
            stats.recirculated,
            stats.dropped,
            worker_json.join(",")
        ));
        rows.push(vec![
            format!("sharded x{workers}"),
            format!("{secs:.3}"),
            format!("{pps:.0}"),
            format!("{:.2}", serial_secs / secs),
        ]);
    }

    print_table(
        "Datapath replay throughput",
        &["mode", "seconds", "pkts/s", "speedup"],
        &rows,
    );
    if cpus < *WORKER_COUNTS.iter().max().unwrap() {
        println!(
            "note: only {cpus} CPU(s) visible — parallel speedups are \
             bounded by the host, not the datapath"
        );
    }

    let json = format!(
        "{{\n  \"trace_packets\": {n},\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n  \"git_rev\": \"{rev}\",\n  \
         \"kernel\": {{\"name\": \"crc32-slice8\", \"bytewise_mkeys_per_sec\": {kernel_old:.1}, \
         \"slice8_mkeys_per_sec\": {kernel_new:.1}, \"speedup\": {:.3}}},\n  \
         \"baseline\": {{\"source\": \"PR-2 (a945bad)\", \"serial_packets_per_sec\": {PR2_SERIAL_PPS:.0}, \
         \"speedup_4_workers\": {PR2_SPEEDUP_4W}}},\n  \
         \"serial\": {{\"seconds\": {serial_secs:.6}, \"packets_per_sec\": {serial_pps:.0}, \
         \"speedup_vs_baseline\": {:.3}}},\n  \"parallel\": [\n    {}\n  ]\n}}\n",
        kernel_new / kernel_old,
        serial_pps / PR2_SERIAL_PPS,
        parallel_json.join(",\n    ")
    );
    let path = emit_results_file("BENCH_datapath.json", &json);
    println!("wrote {}", path.display());
}
