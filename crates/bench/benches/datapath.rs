//! Serial vs. sharded-parallel trace replay.
//!
//! Replays the canonical ≥1M-packet evaluation trace through one switch
//! serially, then through a [`ShardedDatapath`] at several worker
//! counts, verifying the merged registers stay bit-identical and
//! recording packets/sec for each mode into
//! `results/BENCH_datapath.json` — the perf trajectory every later
//! datapath change is measured against.
//!
//! Run with `cargo bench --bench datapath`.

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{emit_results_file, eval_trace, print_table};
use flymon_netsim::ShardedDatapath;
use flymon_packet::KeySpec;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn task() -> TaskDefinition {
    TaskDefinition::builder("bench-freq")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 3 })
        .memory(8192)
        .build()
}

fn main() {
    let trace = eval_trace();
    let n = trace.len();
    assert!(n >= 1_000_000, "the evaluation trace must be ≥1M packets");
    println!("replaying {n} packets, serial vs sharded\n");

    // Serial baseline.
    let mut serial = FlyMon::new(config());
    let h = serial.deploy(&task()).expect("serial deploy");
    let started = Instant::now();
    serial.process_trace(&trace);
    let serial_secs = started.elapsed().as_secs_f64();
    let serial_pps = n as f64 / serial_secs;

    let mut rows = vec![vec![
        "serial".to_string(),
        format!("{serial_secs:.3}"),
        format!("{serial_pps:.0}"),
        "1.00".to_string(),
    ]];
    let mut parallel_json = Vec::new();

    for workers in WORKER_COUNTS {
        let mut dp =
            ShardedDatapath::deploy(workers, config(), &task()).expect("sharded deploy");
        let stats = dp.process_trace(&trace);
        let secs = stats.elapsed.as_secs_f64();
        let pps = stats.packets_per_sec();

        // The merged registers must be bit-identical to the serial
        // replay — a sharded datapath that is fast but wrong is useless.
        for row in 0..3 {
            assert_eq!(
                dp.merged_row(row).expect("merged row"),
                serial.read_row(h, row).expect("serial row"),
                "row {row} diverged at {workers} workers"
            );
        }

        let worker_json: Vec<String> = dp
            .worker_stats()
            .iter()
            .map(|w| {
                format!(
                    r#"{{"worker":{},"packets":{},"packets_per_sec":{:.0},"recirculated":{},"dropped":{}}}"#,
                    w.worker,
                    w.packets,
                    w.packets_per_sec(),
                    w.recirculated,
                    w.dropped
                )
            })
            .collect();
        parallel_json.push(format!(
            r#"{{"workers":{},"seconds":{:.6},"packets_per_sec":{:.0},"speedup":{:.3},"recirculated":{},"dropped":{},"per_worker":[{}]}}"#,
            workers,
            secs,
            pps,
            serial_secs / secs,
            stats.recirculated,
            stats.dropped,
            worker_json.join(",")
        ));
        rows.push(vec![
            format!("sharded x{workers}"),
            format!("{secs:.3}"),
            format!("{pps:.0}"),
            format!("{:.2}", serial_secs / secs),
        ]);
    }

    print_table(
        "Datapath replay throughput",
        &["mode", "seconds", "pkts/s", "speedup"],
        &rows,
    );

    let json = format!(
        "{{\n  \"trace_packets\": {n},\n  \"serial\": {{\"seconds\": {serial_secs:.6}, \"packets_per_sec\": {serial_pps:.0}}},\n  \"parallel\": [\n    {}\n  ]\n}}\n",
        parallel_json.join(",\n    ")
    );
    let path = emit_results_file("BENCH_datapath.json", &json);
    println!("wrote {}", path.display());
}
