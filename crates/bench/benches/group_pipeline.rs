//! Raw CMU-Group pipeline cost: compression + initialization +
//! preparation + operation for one packet, as task load grows.
//!
//! ```sh
//! cargo bench -p flymon-bench --bench group_pipeline
//! ```

use flymon::prelude::*;
use flymon_bench::bench;
use flymon_packet::{KeySpec, TaskFilter};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};

fn main() {
    let trace = TraceGenerator::new(9).wide_like(&TraceConfig {
        flows: 2_000,
        packets: 20_000,
        ..TraceConfig::default()
    });

    println!("== pipeline: {} packets per run ==", trace.len());
    for (label, groups, tasks) in [("1group_1task", 1usize, 1u32), ("4groups_12tasks", 4, 12)] {
        let mut fm = FlyMon::new(FlyMonConfig {
            groups,
            buckets_per_cmu: 65536,
            ..FlyMonConfig::default()
        });
        for i in 0..tasks {
            let def = TaskDefinition::builder(format!("t{i}"))
                .key(KeySpec::SRC_IP)
                .attribute(Attribute::frequency_packets())
                .algorithm(Algorithm::Cms { d: 1 })
                .filter(TaskFilter::src(i << 28, 4))
                .memory(2048)
                .build();
            fm.deploy(&def).expect("deploys");
        }
        bench(label, 10, Some(trace.len() as u64), || {
            fm.process_trace(&trace);
            fm.packets_processed()
        });
    }
}
