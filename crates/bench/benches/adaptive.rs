//! Closed-loop adaptation versus static allocation under shifting load.
//!
//! One frequency task (per-source CMS) watches a [`ShiftingSource`]
//! workload: skewed night traffic, flatter day traffic at double load,
//! a spoofed flood on top of the day peak, then recovery — repeated
//! for several diurnal cycles. The same stream is replayed against:
//!
//! - three **static** fleets (small / medium / large fixed allocations);
//! - one **adaptive** fleet whose [`AdaptiveController`] grows, shrinks
//!   and (at the ceiling) splits the task from its own epoch readouts.
//!
//! Every epoch records the task's ARE over that epoch's resolvable
//! flows (true count ≥ 8) and the bytes the task held. The statics
//! trace out the size↔accuracy tradeoff curve; **accuracy-per-byte**
//! is judged on that curve: interpolating it (log-log) at the adaptive
//! fleet's *mean* byte footprint gives the ARE a static allocation of
//! the same average memory would pay. The controller beats it by
//! spending those bytes where the traffic is — big during the flood,
//! small at night — so in full runs the bench *asserts* the adaptive
//! mean ARE sits strictly below the static curve at equal mean bytes
//! (and reports the gain), with zero audit divergences and a bounded
//! reconfiguration rate.
//!
//! Full runs overwrite `results/BENCH_adaptive.json` and append a
//! record to `results/BENCH_history.jsonl`. CI runs
//! `cargo bench --bench adaptive -- --smoke`: one short cycle, schema
//! and audit checks only, no recorded numbers and no win assertion.

use std::collections::HashMap;
use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{append_results_line, emit_results_file, print_table};
use flymon_netsim::{AdaptiveController, ControllerConfig, SwitchFleet};
use flymon_packet::{FlowKeyBytes, KeySpec, Packet};
use flymon_traffic::gen::{AttackSpec, ShiftPhase, ShiftingConfig, ShiftingSource};
use flymon_traffic::metrics::average_relative_error;

/// Register width ⇒ bytes per allocated bucket.
const BUCKET_BYTES: usize = 2;
/// A flow is "resolvable" in an epoch once its true count reaches this.
const ARE_MIN_COUNT: u64 = 8;

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 3,
        ..FlyMonConfig::default()
    }
}

fn freq_def(buckets: usize) -> TaskDefinition {
    TaskDefinition::builder("shift")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(buckets)
        .build()
}

/// One diurnal cycle; `scale` shrinks it for smoke runs.
fn cycle(scale: usize) -> Vec<ShiftPhase> {
    let attack = AttackSpec {
        dst_ip: (203 << 24) | (113 << 8) | 7,
        share: 0.6,
        sources: 50_000,
    };
    vec![
        ShiftPhase { chunks: 12 / scale, rate: 1.0, zipf_alpha: 1.3, attack: None },
        ShiftPhase { chunks: 12 / scale, rate: 2.0, zipf_alpha: 1.05, attack: None },
        ShiftPhase { chunks: 8 / scale, rate: 3.0, zipf_alpha: 1.05, attack: Some(attack) },
        ShiftPhase { chunks: 12 / scale, rate: 1.0, zipf_alpha: 1.3, attack: None },
    ]
}

fn workload(smoke: bool) -> ShiftingConfig {
    let (cycles, scale, flows, base_chunk) = if smoke {
        (1, 2, 5_000, 2_048)
    } else {
        (3, 1, 20_000, 8_192)
    };
    ShiftingConfig {
        flows,
        base_chunk,
        ns_per_packet: 1_000,
        phases: (0..cycles).flat_map(|_| cycle(scale)).collect(),
        seed: 0x5217_F7ED,
    }
}

/// Thresholds sized so each phase's steady fill sits inside the
/// deadband at some power-of-4 allocation: the controller converges to
/// a per-phase equilibrium instead of hunting.
fn policy(min_buckets: usize, max_buckets: usize) -> ControllerConfig {
    ControllerConfig {
        grow_fill: 0.55,
        shrink_fill: 0.10,
        grow_factor: 4.0,
        shrink_factor: 0.25,
        min_buckets,
        max_buckets,
        cooldown_epochs: 1,
        epoch_budget: 1,
        ..ControllerConfig::default()
    }
}

struct Outcome {
    label: String,
    epochs: usize,
    mean_are: f64,
    mean_kib: f64,
    min_kib: f64,
    max_kib: f64,
    actions: u64,
    audit_divergences: usize,
    secs: f64,
}

/// The ARE a static allocation averaging `kib` would pay, read off the
/// statics' size↔accuracy curve by log-log interpolation (power-law
/// segments — CMS error is ~1/buckets, a straight line in log space).
/// Clamps to the end segments outside the swept range.
fn static_curve_are(statics: &[&Outcome], kib: f64) -> f64 {
    assert!(statics.len() >= 2, "need a curve to interpolate");
    let mut pts: Vec<(f64, f64)> = statics
        .iter()
        .map(|o| (o.mean_kib, o.mean_are.max(1e-9)))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let seg = pts
        .windows(2)
        .find(|w| kib <= w[1].0)
        .map_or([pts[pts.len() - 2], pts[pts.len() - 1]], |w| [w[0], w[1]]);
    let [(x0, y0), (x1, y1)] = seg;
    let t = (kib.ln() - x0.ln()) / (x1.ln() - x0.ln());
    (y0.ln() + t * (y1.ln() - y0.ln())).exp()
}

/// Replays the workload epoch-by-epoch (one source pull = one epoch),
/// scoring ARE against per-epoch exact counts before each rotation.
fn run_scenario(label: &str, start_buckets: usize, ctl: Option<ControllerConfig>) -> Outcome {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut fleet =
        SwitchFleet::deploy(2, config(), &freq_def(start_buckets)).expect("fleet deploys");
    let mut controller = ctl.map(AdaptiveController::new);
    let mut src = ShiftingSource::new(workload(smoke));
    let mut truth: HashMap<FlowKeyBytes, u64> = HashMap::new();
    let mut reps: HashMap<FlowKeyBytes, Packet> = HashMap::new();
    let mut ares = Vec::new();
    let mut kibs = Vec::new();
    let begun = Instant::now();
    while let Some(chunk) = src.next_chunk() {
        for p in &chunk {
            let k = KeySpec::SRC_IP.extract(p);
            *truth.entry(k).or_insert(0) += 1;
            reps.entry(k).or_insert(*p);
        }
        fleet.process_trace(&chunk);
        // Query before rotating: the registers still hold this epoch.
        let are = average_relative_error(
            truth
                .iter()
                .filter(|&(_, &c)| c >= ARE_MIN_COUNT)
                .map(|(k, &c)| (*k, c)),
            |k| fleet.merged_frequency(&reps[k]).expect("query") as f64,
        );
        let bytes: usize = fleet
            .task_infos()
            .iter()
            .map(|i| i.allocated_buckets * BUCKET_BYTES)
            .sum();
        ares.push(are);
        kibs.push(bytes as f64 / 1024.0);
        let epoch = fleet.rotate_epoch_all().expect("rotate");
        if let Some(c) = controller.as_mut() {
            c.on_epoch(&mut fleet, &epoch, false).expect("controller");
        }
        if std::env::var_os("FLYMON_BENCH_TRACE").is_some() {
            let flows = truth.values().filter(|&&c| c >= ARE_MIN_COUNT).count();
            eprintln!(
                "{label} epoch {:>3}: are {:.4} kib {:>5.0} flows>={ARE_MIN_COUNT} {:>6} distinct {:>6}",
                ares.len(),
                are,
                bytes as f64 / 1024.0,
                flows,
                truth.len()
            );
        }
        truth.clear();
        reps.clear();
    }
    let secs = begun.elapsed().as_secs_f64();
    let audit_divergences: usize = (0..fleet.len()).map(|i| fleet.switch(i).0.audit().len()).sum();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (mean_are, mean_kib) = (mean(&ares), mean(&kibs));
    Outcome {
        label: label.into(),
        epochs: ares.len(),
        mean_are,
        mean_kib,
        min_kib: kibs.iter().copied().fold(f64::INFINITY, f64::min),
        max_kib: kibs.iter().copied().fold(0.0, f64::max),
        actions: controller.as_ref().map_or(0, |c| c.report().actions()),
        audit_divergences,
        secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rev = flymon_bench_git_rev();
    let mode = if smoke { "smoke" } else { "full" };
    println!("adaptive vs static under shifting load ({mode}, rev {rev})\n");

    let (small, medium, large) = (2_048, 8_192, 32_768);
    let adaptive_policy = policy(4_096, large);
    let scenarios: Vec<Outcome> = vec![
        run_scenario("static-small", small, None),
        run_scenario("static-medium", medium, None),
        run_scenario("static-large", large, None),
        run_scenario("adaptive", 4_096, Some(adaptive_policy)),
    ];

    print_table(
        "Shifting-load sweep (ARE over flows with true count >= 8)",
        &["fleet", "epochs", "mean ARE", "mean KiB", "min..max KiB", "actions", "seconds"],
        &scenarios
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    format!("{}", o.epochs),
                    format!("{:.4}", o.mean_are),
                    format!("{:.1}", o.mean_kib),
                    format!("{:.0}..{:.0}", o.min_kib, o.max_kib),
                    format!("{}", o.actions),
                    format!("{:.2}", o.secs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let (statics, rest) = scenarios.split_at(scenarios.len() - 1);
    let statics: Vec<&Outcome> = statics.iter().collect();
    let adaptive = &rest[0];
    for o in &scenarios {
        assert_eq!(o.audit_divergences, 0, "{}: switch audits diverged", o.label);
    }
    // The control-plane rate stays bounded by the per-epoch budget.
    let rate = adaptive.actions as f64 / adaptive.epochs.max(1) as f64;
    assert!(
        rate <= adaptive_policy.epoch_budget as f64,
        "reconfiguration rate {rate:.2}/epoch exceeds the budget"
    );
    // Accuracy-per-byte: what a static allocation of the adaptive
    // fleet's average footprint would pay, vs what the controller pays.
    let equal_bytes_are = static_curve_are(&statics, adaptive.mean_kib);
    let gain = equal_bytes_are / adaptive.mean_are.max(1e-9);
    println!(
        "at the adaptive mean of {:.1} KiB the static curve pays ARE {:.4}; \
         adaptive pays {:.4} ({gain:.2}x accuracy-per-byte), \
         {} reconfigurations over {} epochs ({rate:.2}/epoch)\n",
        adaptive.mean_kib, equal_bytes_are, adaptive.mean_are, adaptive.actions, adaptive.epochs,
    );
    if !smoke {
        assert!(
            gain > 1.0,
            "adaptive ARE {:.4} does not beat the static curve ({:.4}) at equal mean bytes",
            adaptive.mean_are,
            equal_bytes_are
        );
    }

    let rows: Vec<String> = scenarios
        .iter()
        .map(|o| {
            format!(
                "    {{\"fleet\": \"{}\", \"epochs\": {}, \"mean_are\": {:.6}, \
                 \"mean_kib\": {:.2}, \"min_kib\": {:.2}, \"max_kib\": {:.2}, \
                 \"actions\": {}, \"audit_divergences\": {}, \
                 \"seconds\": {:.3}}}",
                o.label,
                o.epochs,
                o.mean_are,
                o.mean_kib,
                o.min_kib,
                o.max_kib,
                o.actions,
                o.audit_divergences,
                o.secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"git_rev\": \"{rev}\",\n  \
         \"bucket_bytes\": {BUCKET_BYTES},\n  \"are_min_count\": {ARE_MIN_COUNT},\n  \
         \"reconfig_rate_per_epoch\": {rate:.4},\n  \
         \"equal_bytes_static_are\": {equal_bytes_are:.6},\n  \
         \"accuracy_per_byte_gain\": {gain:.4},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = emit_results_file("BENCH_adaptive.json", &json);
    println!("wrote {}", path.display());

    if !smoke {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let line = format!(
            r#"{{"unix_ts":{ts},"git_rev":"{rev}","bench":"adaptive","epochs":{},"accuracy_per_byte_gain":{gain:.4},"adaptive_mean_are":{:.6},"adaptive_mean_kib":{:.2},"equal_bytes_static_are":{equal_bytes_are:.6},"actions":{}}}"#,
            adaptive.epochs, adaptive.mean_are, adaptive.mean_kib, adaptive.actions
        );
        let hist = append_results_line("BENCH_history.jsonl", &line);
        println!("appended {}", hist.display());
    }
}

fn flymon_bench_git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}
