//! Control-operation latency over the lossy control channel.
//!
//! Replays the same fleet-level control sequence — deploy an extra
//! task, reallocate the anchor task, rotate the fleet epoch, remove
//! the extra task — through a [`ControlChannel`] at 0%, 1% and 10%
//! per-leg drop (with matching duplication and reordering rates), plus
//! a channel-less "direct" baseline. Per fleet-level operation it
//! records the *virtual* completion latency (the channel's modeled
//! clock: flights, timeouts and backoff, never slept), so the numbers
//! are seed-deterministic; wall-clock throughput is reported alongside
//! to show the channel machinery itself costs nothing measurable.
//!
//! Every operation must complete (retrying on the rare exhausted
//! budget), every switch audit must stay clean, and latency must grow
//! monotonically with the drop rate — retries are paid in modeled
//! time, not in correctness.
//!
//! Full runs overwrite `results/BENCH_channel.json` and append a
//! record to `results/BENCH_history.jsonl`. CI runs
//! `cargo bench --bench channel -- --smoke`: short cycles, schema and
//! invariant checks only, no recorded numbers.

use std::time::Instant;

use flymon::prelude::*;
use flymon_bench::{append_results_line, emit_results_file, print_table};
use flymon_netsim::{ChannelConfig, SwitchFleet};
use flymon_packet::KeySpec;

const SWITCHES: usize = 3;

fn config() -> FlyMonConfig {
    FlyMonConfig {
        groups: 2,
        buckets_per_cmu: 16384,
        ..FlyMonConfig::default()
    }
}

fn anchor_def() -> TaskDefinition {
    TaskDefinition::builder("anchor")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build()
}

fn extra_def() -> TaskDefinition {
    TaskDefinition::builder("bench-extra")
        .key(KeySpec::NONE)
        .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
        .memory(1024)
        .build()
}

struct Outcome {
    label: String,
    drop_pct: f64,
    ops: usize,
    mean_ms: f64,
    p99_ms: f64,
    retries_per_cmd: f64,
    timeouts: u64,
    reconciled: u64,
    wall_secs: f64,
}

/// Runs `cycles` control cycles and measures each fleet-level
/// operation's modeled completion latency. `drop` of `None` runs the
/// channel-less direct path (zero modeled latency by construction).
fn run_scenario(label: &str, drop: Option<f64>, cycles: usize) -> Outcome {
    let mut fleet = SwitchFleet::deploy(SWITCHES, config(), &anchor_def()).expect("fleet deploys");
    if let Some(d) = drop {
        let cfg = ChannelConfig {
            drop_rate: d,
            dup_rate: d,
            reorder_rate: d,
            ..ChannelConfig::default()
        };
        fleet
            .attach_channel(0xBE4C_0DE5 ^ (d * 1e4) as u64, cfg)
            .expect("channel attaches");
    }
    let now_ms = |f: &SwitchFleet| f.channel().map_or(0.0, |c| c.now_ms());
    let mut latencies: Vec<f64> = Vec::new();
    let mut timeouts = 0u64;
    let extra = extra_def();
    let begun = Instant::now();
    for cycle in 0..cycles {
        // One cycle: deploy / reallocate / rotate / remove, each a
        // fleet-level op fanning out one command per switch. A timed-out
        // op is retried (deploys roll back, removes skip swept
        // switches), and the retry's modeled time counts toward the
        // sample — the controller pays for the loss either way.
        let t0 = now_ms(&fleet);
        let idx = loop {
            match fleet.deploy_task(&extra) {
                Ok(i) => break i,
                Err(FlymonError::ChannelTimeout { .. }) => timeouts += 1,
                Err(e) => panic!("cycle {cycle}: deploy failed {e:?}"),
            }
        };
        latencies.push(now_ms(&fleet) - t0);

        let t0 = now_ms(&fleet);
        let buckets = if cycle % 2 == 0 { 4096 } else { 8192 };
        loop {
            match fleet.reallocate_task(0, buckets) {
                Ok(()) => break,
                Err(FlymonError::ChannelTimeout { .. }) => timeouts += 1,
                Err(e) => panic!("cycle {cycle}: reallocate failed {e:?}"),
            }
        }
        latencies.push(now_ms(&fleet) - t0);

        let t0 = now_ms(&fleet);
        loop {
            match fleet.rotate_epoch_all() {
                Ok(_) => break,
                Err(FlymonError::ChannelTimeout { .. }) => timeouts += 1,
                Err(e) => panic!("cycle {cycle}: rotate failed {e:?}"),
            }
        }
        latencies.push(now_ms(&fleet) - t0);

        let t0 = now_ms(&fleet);
        loop {
            match fleet.remove_task(idx) {
                Ok(()) => break,
                Err(FlymonError::ChannelTimeout { .. }) => timeouts += 1,
                Err(e) => panic!("cycle {cycle}: remove failed {e:?}"),
            }
        }
        latencies.push(now_ms(&fleet) - t0);
    }
    let wall_secs = begun.elapsed().as_secs_f64();

    for i in 0..fleet.len() {
        assert!(
            fleet.switch(i).0.audit().is_empty(),
            "{label}: switch {i} audit diverged: {:?}",
            fleet.switch(i).0.audit()
        );
        assert_eq!(fleet.switch(i).0.task_count(), 1, "{label}: switch {i} leaked a task");
    }
    let (retries_per_cmd, reconciled) = fleet.channel().map_or((0.0, 0), |c| {
        let s = c.stats();
        (s.retries as f64 / s.commands.max(1) as f64, s.reconciled)
    });
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = sorted[((sorted.len() as f64 * 0.99).ceil() as usize).min(sorted.len()) - 1];
    Outcome {
        label: label.into(),
        drop_pct: drop.unwrap_or(0.0) * 100.0,
        ops: latencies.len(),
        mean_ms: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
        p99_ms: p99,
        retries_per_cmd,
        timeouts,
        reconciled,
        wall_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rev = flymon_bench_git_rev();
    let mode = if smoke { "smoke" } else { "full" };
    println!("control-op latency over the lossy channel ({mode}, rev {rev})\n");

    let cycles = if smoke { 5 } else { 200 };
    let scenarios: Vec<Outcome> = vec![
        run_scenario("direct", None, cycles),
        run_scenario("drop-0", Some(0.0), cycles),
        run_scenario("drop-1", Some(0.01), cycles),
        run_scenario("drop-10", Some(0.10), cycles),
    ];

    print_table(
        "Control-op completion latency (virtual ms over the modeled channel)",
        &["channel", "drop %", "ops", "mean ms", "p99 ms", "retries/cmd", "timeouts", "wall s"],
        &scenarios
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    format!("{:.0}", o.drop_pct),
                    format!("{}", o.ops),
                    format!("{:.3}", o.mean_ms),
                    format!("{:.3}", o.p99_ms),
                    format!("{:.3}", o.retries_per_cmd),
                    format!("{}", o.timeouts),
                    format!("{:.2}", o.wall_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Loss is paid in modeled latency, never in correctness: the audit
    // and task-count asserts ran per scenario, and latency must grow
    // with the drop rate.
    let by = |l: &str| scenarios.iter().find(|o| o.label == l).expect("scenario");
    assert!(
        by("drop-0").mean_ms < by("drop-1").mean_ms && by("drop-1").mean_ms < by("drop-10").mean_ms,
        "latency must grow monotonically with the drop rate"
    );
    assert!(
        by("drop-10").retries_per_cmd > 0.0,
        "a 10% drop rate must force retries"
    );
    println!(
        "drop 10% pays {:.2}x the lossless mean latency ({:.3} ms vs {:.3} ms) \
         at {:.3} retries/command, all operations completed\n",
        by("drop-10").mean_ms / by("drop-0").mean_ms.max(1e-9),
        by("drop-10").mean_ms,
        by("drop-0").mean_ms,
        by("drop-10").retries_per_cmd,
    );

    let rows: Vec<String> = scenarios
        .iter()
        .map(|o| {
            format!(
                "    {{\"channel\": \"{}\", \"drop_pct\": {:.1}, \"ops\": {}, \
                 \"mean_ms\": {:.4}, \"p99_ms\": {:.4}, \"retries_per_cmd\": {:.4}, \
                 \"timeouts\": {}, \"reconciled\": {}, \"wall_secs\": {:.3}}}",
                o.label,
                o.drop_pct,
                o.ops,
                o.mean_ms,
                o.p99_ms,
                o.retries_per_cmd,
                o.timeouts,
                o.reconciled,
                o.wall_secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"git_rev\": \"{rev}\",\n  \
         \"switches\": {SWITCHES},\n  \"cycles\": {cycles},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = emit_results_file("BENCH_channel.json", &json);
    println!("wrote {}", path.display());

    if !smoke {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let d10 = by("drop-10");
        let line = format!(
            r#"{{"unix_ts":{ts},"git_rev":"{rev}","bench":"channel","ops":{},"drop10_mean_ms":{:.4},"drop10_p99_ms":{:.4},"drop10_retries_per_cmd":{:.4},"drop10_timeouts":{}}}"#,
            d10.ops, d10.mean_ms, d10.p99_ms, d10.retries_per_cmd, d10.timeouts
        );
        let hist = append_results_line("BENCH_history.jsonl", &line);
        println!("appended {}", hist.display());
    }
}

fn flymon_bench_git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}
