//! A from-scratch Zipf(α) sampler over ranks `1..=n`.
//!
//! Implemented in-repo (rather than pulling `rand_distr`) so the
//! workspace builds fully offline. Sampling uses a precomputed CDF and
//! binary search: O(n) setup, O(log n) per sample, exact distribution.

use flymon_packet::SplitMix64;

/// Zipf distribution over `1..=n` with exponent `alpha`:
/// `P(rank = k) ∝ k^(-alpha)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u: f64 = rng.next_f64();
        // partition_point returns the count of cdf entries < u, i.e. the
        // 0-based index of the first entry >= u; ranks are 1-based.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }

    /// Expected flow sizes for a population of `total` samples: the exact
    /// expectation `total * pmf(k)` per rank, rounded by largest-remainder
    /// assignment so that `Σ counts == total` *exactly*. Useful for
    /// deterministic flow-size assignment (avoids sampling noise in
    /// ground-truth-heavy experiments) without inflating the ground-truth
    /// total — tail ranks whose expectation rounds to zero get zero,
    /// they are not bumped to one.
    pub fn expected_counts(&self, total: u64) -> Vec<u64> {
        let n = self.cdf.len();
        let mut counts = Vec::with_capacity(n);
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut assigned: u64 = 0;
        for k in 1..=n {
            let exact = (total as f64) * self.pmf(k);
            let floor = exact.floor().max(0.0) as u64;
            counts.push(floor);
            assigned += floor;
            remainders.push((exact - floor as f64, k - 1));
        }
        // Hand the residual to the largest fractional remainders, ties to
        // the heavier (earlier) rank — this keeps the counts monotone
        // non-increasing, since exact expectations strictly decrease.
        remainders.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        // `residual < n` up to floating-point slack in the pmf sum;
        // cycling covers the slack instead of panicking on an index.
        let residual = total.saturating_sub(assigned) as usize;
        for &(_, i) in remainders.iter().cycle().take(residual) {
            counts[i] += 1;
        }
        debug_assert_eq!(counts.iter().sum::<u64>(), total);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_one_dominates_with_high_alpha() {
        let z = Zipf::new(1000, 2.0);
        assert!(z.pmf(1) > 0.6);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(10));
    }

    #[test]
    fn samples_follow_the_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SplitMix64::new(7);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        // Compare empirical vs theoretical frequency of the head ranks.
        for k in 1..=5 {
            let expect = z.pmf(k);
            let got = f64::from(counts[k - 1]) / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: got {got}, expect {expect}"
            );
        }
        // Every sampled rank is in range (indexing above would have
        // panicked otherwise), and the tail is nonempty.
        assert!(counts[49] < counts[0]);
    }

    #[test]
    fn expected_counts_are_monotone_and_conserved() {
        let z = Zipf::new(20, 1.3);
        let c = z.expected_counts(10_000);
        assert_eq!(c.len(), 20);
        for w in c.windows(2) {
            assert!(w[0] >= w[1], "expected counts must be non-increasing");
        }
        assert_eq!(c.iter().sum::<u64>(), 10_000, "totals must be conserved");
    }

    #[test]
    fn expected_counts_conserve_total_even_with_huge_tails() {
        // Regression: the old rounding clamped every rank to >= 1, so a
        // key space larger than the packet budget inflated the total —
        // 100k ranks over 10k packets produced >= 100k packets and
        // skewed every accuracy-per-byte denominator downstream.
        let z = Zipf::new(100_000, 1.1);
        let c = z.expected_counts(10_000);
        assert_eq!(c.iter().sum::<u64>(), 10_000);
        assert!(
            c.iter().filter(|&&x| x == 0).count() > 50_000,
            "most tail ranks must round to zero, not one"
        );
        for w in c.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // And a total of zero stays zero.
        assert_eq!(z.expected_counts(0).iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
