//! Accuracy metrics, exactly as defined in Appendix C of the paper.

use std::collections::HashSet;
use std::hash::Hash;

/// ARE (Average Relative Error): `1/n · Σ |f_i − f̂_i| / f_i` over the
/// *true* flow set (items the estimator missed contribute `|f_i − 0|/f_i`).
///
/// # Panics
/// Panics if any true value is zero (the metric is undefined there).
pub fn average_relative_error<K: Eq + Hash>(
    truth: impl IntoIterator<Item = (K, u64)>,
    estimate: impl Fn(&K) -> f64,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (k, t) in truth {
        assert!(t > 0, "ARE undefined for zero ground truth");
        let e = estimate(&k);
        sum += (t as f64 - e).abs() / t as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// RE (Relative Error): `|x − x̂| / x` for a scalar statistic.
///
/// # Panics
/// Panics if the true value is zero.
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    assert!(truth != 0.0, "RE undefined for zero ground truth");
    (truth - estimate).abs() / truth.abs()
}

/// F1 score with its precision/recall components:
/// `PR` = fraction of reported instances that are true,
/// `RR` = fraction of true instances that were reported,
/// `F1 = 2·PR·RR / (PR + RR)`.
///
/// Both-empty sets score a perfect 1.0 (nothing to find, nothing
/// reported); an empty intersection scores 0.0.
pub fn f1_score<K: Eq + Hash>(reported: &HashSet<K>, truth: &HashSet<K>) -> F1 {
    if reported.is_empty() && truth.is_empty() {
        return F1 {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
    }
    let tp = reported.intersection(truth).count() as f64;
    let precision = if reported.is_empty() {
        0.0
    } else {
        tp / reported.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        tp / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1 {
        precision,
        recall,
        f1,
    }
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1 {
    /// Fraction of reported instances that are true (PR).
    pub precision: f64,
    /// Fraction of true instances that were reported (RR).
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
}

/// WMRE (Weighted Mean Relative Error) between two flow-size
/// distributions `n` and `n̂` (indexed by flow size):
/// `Σ|n_i − n̂_i| / Σ((n_i + n̂_i)/2)` — the standard metric for MRAC-style
/// distribution estimates (Kumar et al., SIGMETRICS 2004).
pub fn wmre(truth: &[f64], estimate: &[f64]) -> f64 {
    let len = truth.len().max(estimate.len());
    let at = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..len {
        let (t, e) = (at(truth, i), at(estimate, i));
        num += (t - e).abs();
        den += (t + e) / 2.0;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// FP (False Positive rate): `N_fp / (N_fp + N_tn)` — the fraction of
/// negatives wrongly categorized as positive.
pub fn false_positive_rate(false_positives: usize, true_negatives: usize) -> f64 {
    let denom = false_positives + true_negatives;
    if denom == 0 {
        0.0
    } else {
        false_positives as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn are_basic() {
        let truth = vec![("a", 10u64), ("b", 100u64)];
        // a estimated 12 (RE 0.2), b estimated 90 (RE 0.1) -> ARE 0.15.
        let are = average_relative_error(truth, |k| if *k == "a" { 12.0 } else { 90.0 });
        assert!((are - 0.15).abs() < 1e-12);
    }

    #[test]
    fn are_counts_missed_flows_fully() {
        let truth = vec![("a", 10u64)];
        let are = average_relative_error(truth, |_| 0.0);
        assert!((are - 1.0).abs() < 1e-12);
    }

    #[test]
    fn are_of_empty_truth_is_zero() {
        let are = average_relative_error(Vec::<((), u64)>::new(), |_| 0.0);
        assert_eq!(are, 0.0);
    }

    #[test]
    fn re_basic() {
        assert!((relative_error(200.0, 180.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        let t: HashSet<u32> = [1, 2, 3].into_iter().collect();
        let perfect = f1_score(&t, &t);
        assert_eq!(perfect.f1, 1.0);

        let empty: HashSet<u32> = HashSet::new();
        assert_eq!(f1_score(&empty, &empty).f1, 1.0);
        assert_eq!(f1_score(&empty, &t).f1, 0.0);
        assert_eq!(f1_score(&t, &empty).f1, 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        let truth: HashSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let reported: HashSet<u32> = [3, 4, 5, 6, 7, 8].into_iter().collect();
        let r = f1_score(&reported, &truth);
        assert!((r.precision - 2.0 / 6.0).abs() < 1e-12);
        assert!((r.recall - 0.5).abs() < 1e-12);
        let expect = 2.0 * r.precision * r.recall / (r.precision + r.recall);
        assert!((r.f1 - expect).abs() < 1e-12);
    }

    #[test]
    fn wmre_basics() {
        // Identical distributions score 0.
        assert_eq!(wmre(&[0.0, 10.0, 5.0], &[0.0, 10.0, 5.0]), 0.0);
        // Completely disjoint mass scores 2 (the metric's maximum).
        assert!((wmre(&[0.0, 10.0], &[10.0, 0.0]) - 2.0).abs() < 1e-12);
        // Length mismatch treats missing entries as zero.
        assert!(wmre(&[5.0], &[5.0, 1.0]) > 0.0);
        assert_eq!(wmre(&[], &[]), 0.0);
    }

    #[test]
    fn fp_rate() {
        assert_eq!(false_positive_rate(0, 100), 0.0);
        assert!((false_positive_rate(5, 95) - 0.05).abs() < 1e-12);
        assert_eq!(false_positive_rate(0, 0), 0.0);
    }
}
