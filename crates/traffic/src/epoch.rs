//! Epoch slicing: dividing a trace into measurement windows.
//!
//! FlyMon (like most sketch systems) measures in epochs: the control plane
//! reads and resets the data plane at epoch boundaries (§5.1 divides a
//! 20-second trace into 20 discrete epochs).

use flymon_packet::Packet;

/// Splits a time-sorted trace into consecutive epochs of `epoch_ns` each.
///
/// Returns one slice per epoch covering `[i*epoch_ns, (i+1)*epoch_ns)`;
/// the last epoch may be partial. Empty leading/middle epochs are
/// represented as empty slices so indices stay aligned with wall time.
///
/// # Panics
/// Panics if `epoch_ns == 0` or the trace is not sorted by timestamp.
pub fn split_epochs(trace: &[Packet], epoch_ns: u64) -> Vec<&[Packet]> {
    assert!(epoch_ns > 0, "epoch duration must be positive");
    assert!(
        trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "trace must be sorted by timestamp"
    );
    let mut epochs = Vec::new();
    if trace.is_empty() {
        return epochs;
    }
    let last_epoch = trace.last().unwrap().ts_ns / epoch_ns;
    let mut start = 0usize;
    for e in 0..=last_epoch {
        let end_ts = (e + 1) * epoch_ns;
        let end = start + trace[start..].partition_point(|p| p.ts_ns < end_ts);
        epochs.push(&trace[start..end]);
        start = end;
    }
    epochs
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::PacketBuilder;

    fn at(ts: u64) -> Packet {
        PacketBuilder::new().ts_ns(ts).build()
    }

    #[test]
    fn splits_on_boundaries() {
        let trace = vec![at(0), at(5), at(10), at(15), at(29)];
        let epochs = split_epochs(&trace, 10);
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].len(), 2);
        assert_eq!(epochs[1].len(), 2);
        assert_eq!(epochs[2].len(), 1);
    }

    #[test]
    fn boundary_packet_goes_to_next_epoch() {
        let trace = vec![at(9), at(10)];
        let epochs = split_epochs(&trace, 10);
        assert_eq!(epochs[0].len(), 1);
        assert_eq!(epochs[1].len(), 1);
    }

    #[test]
    fn empty_middle_epochs_preserved() {
        let trace = vec![at(1), at(35)];
        let epochs = split_epochs(&trace, 10);
        assert_eq!(epochs.len(), 4);
        assert!(epochs[1].is_empty());
        assert!(epochs[2].is_empty());
        assert_eq!(epochs[3].len(), 1);
    }

    #[test]
    fn empty_trace_gives_no_epochs() {
        assert!(split_epochs(&[], 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = split_epochs(&[at(5), at(1)], 10);
    }
}
