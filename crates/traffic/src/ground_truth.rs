//! Brute-force exact answers for every attribute the paper measures.
//!
//! Every accuracy experiment compares a sketch estimate against the exact
//! statistic; this module computes those statistics by direct enumeration.

use std::collections::{HashMap, HashSet};

use flymon_packet::{FlowKeyBytes, KeySpec, Packet};

/// Exact statistics of one trace under one flow key.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    key: KeySpec,
    /// Exact per-flow packet/byte counts (value chosen at construction).
    pub frequency: HashMap<FlowKeyBytes, u64>,
}

impl GroundTruth {
    /// Exact per-flow *packet counts* under `key` — the
    /// `Frequency(Const(1))` attribute.
    pub fn packet_counts(trace: &[Packet], key: KeySpec) -> Self {
        Self::frequency(trace, key, |_| 1)
    }

    /// Exact per-flow *byte counts* under `key` — `Frequency(PktBytes)`.
    pub fn byte_counts(trace: &[Packet], key: KeySpec) -> Self {
        Self::frequency(trace, key, |p| u64::from(p.len))
    }

    /// Exact per-flow accumulation of an arbitrary parameter.
    pub fn frequency(trace: &[Packet], key: KeySpec, param: impl Fn(&Packet) -> u64) -> Self {
        let mut frequency = HashMap::new();
        for p in trace {
            *frequency.entry(key.extract(p)).or_insert(0) += param(p);
        }
        GroundTruth { key, frequency }
    }

    /// The key this truth was computed under.
    pub fn key(&self) -> KeySpec {
        self.key
    }

    /// Number of distinct flows.
    pub fn cardinality(&self) -> usize {
        self.frequency.len()
    }

    /// Flows whose count meets `threshold` — heavy hitters.
    pub fn heavy_hitters(&self, threshold: u64) -> HashSet<FlowKeyBytes> {
        self.frequency
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Flow-size distribution: `dist[s]` = number of flows with exactly
    /// `s` packets (index 0 unused).
    pub fn size_distribution(&self) -> Vec<u64> {
        let max = self.frequency.values().max().copied().unwrap_or(0) as usize;
        let mut dist = vec![0u64; max + 1];
        for &c in self.frequency.values() {
            dist[c as usize] += 1;
        }
        dist
    }

    /// Empirical flow entropy `-Σ (f_i/T) ln(f_i/T)` (natural log; the
    /// RE metric is scale-free so the base does not matter as long as the
    /// estimate uses the same one).
    pub fn entropy(&self) -> f64 {
        entropy_of_counts(self.frequency.values().copied())
    }
}

/// Entropy of a multiset given its per-class counts.
pub fn entropy_of_counts(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.ln()
        })
        .sum()
}

/// Exact distinct-count of `param_key` values per `key` flow — the
/// `Distinct(param)` attribute (DDoS victims: key = DstIP, param = SrcIP).
pub fn distinct_counts(
    trace: &[Packet],
    key: KeySpec,
    param_key: KeySpec,
) -> HashMap<FlowKeyBytes, u64> {
    let mut sets: HashMap<FlowKeyBytes, HashSet<FlowKeyBytes>> = HashMap::new();
    for p in trace {
        sets.entry(key.extract(p))
            .or_default()
            .insert(param_key.extract(p));
    }
    sets.into_iter().map(|(k, s)| (k, s.len() as u64)).collect()
}

/// Exact per-flow maximum of a parameter — the `Max(param)` attribute.
pub fn max_values(
    trace: &[Packet],
    key: KeySpec,
    param: impl Fn(&Packet) -> u64,
) -> HashMap<FlowKeyBytes, u64> {
    let mut out: HashMap<FlowKeyBytes, u64> = HashMap::new();
    for p in trace {
        let v = param(p);
        out.entry(key.extract(p))
            .and_modify(|m| *m = (*m).max(v))
            .or_insert(v);
    }
    out
}

/// Exact per-flow *maximum packet inter-arrival time* in nanoseconds —
/// the combinatorial task of §4. Flows seen only once have no interval
/// and are omitted.
pub fn max_intervals(trace: &[Packet], key: KeySpec) -> HashMap<FlowKeyBytes, u64> {
    let mut last_seen: HashMap<FlowKeyBytes, u64> = HashMap::new();
    let mut max_int: HashMap<FlowKeyBytes, u64> = HashMap::new();
    for p in trace {
        let k = key.extract(p);
        if let Some(prev) = last_seen.insert(k, p.ts_ns) {
            let interval = p.ts_ns.saturating_sub(prev);
            max_int
                .entry(k)
                .and_modify(|m| *m = (*m).max(interval))
                .or_insert(interval);
        }
    }
    max_int
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::PacketBuilder;

    fn p(src: u32, dst: u32, ts: u64, len: u16) -> Packet {
        PacketBuilder::new()
            .src_ip(src)
            .dst_ip(dst)
            .ts_ns(ts)
            .len(len)
            .build()
    }

    #[test]
    fn packet_counts_by_src() {
        let trace = vec![p(1, 9, 0, 64), p(1, 8, 1, 64), p(2, 9, 2, 64)];
        let gt = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
        assert_eq!(gt.cardinality(), 2);
        let k1 = KeySpec::SRC_IP.extract(&trace[0]);
        assert_eq!(gt.frequency[&k1], 2);
    }

    #[test]
    fn byte_counts_accumulate_lengths() {
        let trace = vec![p(1, 9, 0, 100), p(1, 9, 1, 200)];
        let gt = GroundTruth::byte_counts(&trace, KeySpec::SRC_IP);
        let k = KeySpec::SRC_IP.extract(&trace[0]);
        assert_eq!(gt.frequency[&k], 300);
    }

    #[test]
    fn heavy_hitters_respect_threshold() {
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(p(1, 9, 0, 64));
        }
        trace.push(p(2, 9, 0, 64));
        let gt = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
        let hh = gt.heavy_hitters(10);
        assert_eq!(hh.len(), 1);
        assert!(hh.contains(&KeySpec::SRC_IP.extract(&trace[0])));
    }

    #[test]
    fn size_distribution_counts_flows_not_packets() {
        let trace = vec![p(1, 9, 0, 64), p(1, 9, 1, 64), p(2, 9, 2, 64)];
        let gt = GroundTruth::packet_counts(&trace, KeySpec::SRC_IP);
        let dist = gt.size_distribution();
        assert_eq!(dist[1], 1); // one flow of size 1
        assert_eq!(dist[2], 1); // one flow of size 2
    }

    #[test]
    fn entropy_of_uniform_counts() {
        // 4 equal classes -> ln(4).
        let h = entropy_of_counts([5, 5, 5, 5]);
        assert!((h - 4.0f64.ln()).abs() < 1e-12);
        // Single class -> 0.
        assert_eq!(entropy_of_counts([42]), 0.0);
        assert_eq!(entropy_of_counts([]), 0.0);
    }

    #[test]
    fn distinct_counts_ddos_shape() {
        // Victim 9 gets 3 distinct sources; victim 8 gets 1.
        let trace = vec![
            p(1, 9, 0, 64),
            p(2, 9, 1, 64),
            p(3, 9, 2, 64),
            p(1, 9, 3, 64), // repeat source, must not count twice
            p(1, 8, 4, 64),
        ];
        let d = distinct_counts(&trace, KeySpec::DST_IP, KeySpec::SRC_IP);
        assert_eq!(d[&KeySpec::DST_IP.extract(&trace[0])], 3);
        assert_eq!(d[&KeySpec::DST_IP.extract(&trace[4])], 1);
    }

    #[test]
    fn max_values_track_maxima() {
        let trace = vec![p(1, 9, 0, 100), p(1, 9, 1, 1500), p(1, 9, 2, 600)];
        let m = max_values(&trace, KeySpec::SRC_IP, |p| u64::from(p.len));
        assert_eq!(m[&KeySpec::SRC_IP.extract(&trace[0])], 1500);
    }

    #[test]
    fn max_intervals_need_two_packets() {
        let trace = vec![p(1, 9, 100, 64), p(2, 9, 150, 64), p(1, 9, 400, 64)];
        let m = max_intervals(&trace, KeySpec::SRC_IP);
        assert_eq!(m[&KeySpec::SRC_IP.extract(&trace[0])], 300);
        assert!(!m.contains_key(&KeySpec::SRC_IP.extract(&trace[1])));
    }
}
