//! Minimal libpcap reader/writer (classic `tcpdump` format, no
//! dependencies).
//!
//! The paper evaluates on a WIDE backbone capture; this module lets real
//! captures drive the simulator. It understands the classic pcap global
//! header (magic `0xa1b2c3d4`, microsecond timestamps, both endiannesses,
//! plus the nanosecond `0xa1b23c4d` variant), Ethernet II framing, IPv4,
//! and TCP/UDP ports. Non-IPv4 records are skipped. Writing emits
//! little-endian microsecond pcap with synthesized Ethernet headers, so
//! generated traces open in Wireshark.

use std::io::{Read, Write};

use flymon_packet::{Packet, PacketBuilder};

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a pcap file (bad magic).
    BadMagic(u32),
    /// Truncated record or header.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_NS: u32 = 0xa1b2_3c4d;

struct Endian {
    swap: bool,
    nanos: bool,
}

impl Endian {
    fn u32(&self, b: [u8; 4]) -> u32 {
        if self.swap {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(PcapError::Truncated)
            };
        }
        filled += n;
    }
    Ok(true)
}

/// Reads a pcap capture, returning the IPv4 packets it contains (other
/// link-layer payloads are skipped). Timestamps are normalized so the
/// first packet is at t = 0.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<Packet>, PcapError> {
    let mut header = [0u8; 24];
    if !read_exact_or_eof(&mut r, &mut header)? {
        return Ok(Vec::new());
    }
    let raw_magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let endian = match raw_magic {
        MAGIC_US => Endian {
            swap: false,
            nanos: false,
        },
        MAGIC_NS => Endian {
            swap: false,
            nanos: true,
        },
        m if m.swap_bytes() == MAGIC_US => Endian {
            swap: true,
            nanos: false,
        },
        m if m.swap_bytes() == MAGIC_NS => Endian {
            swap: true,
            nanos: true,
        },
        m => return Err(PcapError::BadMagic(m)),
    };

    let mut out = Vec::new();
    let mut first_ts: Option<u64> = None;
    loop {
        let mut rec = [0u8; 16];
        if !read_exact_or_eof(&mut r, &mut rec)? {
            break;
        }
        let ts_sec = endian.u32([rec[0], rec[1], rec[2], rec[3]]) as u64;
        let ts_frac = endian.u32([rec[4], rec[5], rec[6], rec[7]]) as u64;
        let incl_len = endian.u32([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let orig_len = endian.u32([rec[12], rec[13], rec[14], rec[15]]);
        let mut frame = vec![0u8; incl_len];
        if !read_exact_or_eof(&mut r, &mut frame)? {
            return Err(PcapError::Truncated);
        }
        let ts_ns = ts_sec * 1_000_000_000 + if endian.nanos { ts_frac } else { ts_frac * 1_000 };
        let base = *first_ts.get_or_insert(ts_ns);

        if let Some(pkt) = parse_ethernet_ipv4(&frame, ts_ns - base, orig_len) {
            out.push(pkt);
        }
    }
    Ok(out)
}

/// Parses Ethernet II + IPv4 (+ TCP/UDP ports where present).
fn parse_ethernet_ipv4(frame: &[u8], ts_ns: u64, orig_len: u32) -> Option<Packet> {
    if frame.len() < 14 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None; // not IPv4
    }
    let ip = &frame[14..];
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0x0f) * 4;
    if ip.len() < ihl {
        return None;
    }
    let protocol = ip[9];
    let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    let l4 = &ip[ihl..];
    let (src_port, dst_port) = match protocol {
        6 | 17 if l4.len() >= 4 => (
            u16::from_be_bytes([l4[0], l4[1]]),
            u16::from_be_bytes([l4[2], l4[3]]),
        ),
        _ => (0, 0),
    };
    Some(
        PacketBuilder::new()
            .src_ip(src_ip)
            .dst_ip(dst_ip)
            .src_port(src_port)
            .dst_port(dst_port)
            .protocol(protocol)
            .len(orig_len.min(u32::from(u16::MAX)) as u16)
            .ts_ns(ts_ns)
            .build(),
    )
}

/// Writes packets as a classic little-endian microsecond pcap with
/// synthesized Ethernet/IPv4/TCP-UDP headers (queue metadata is not
/// representable in pcap and is dropped).
pub fn write_pcap<W: Write>(mut w: W, trace: &[Packet]) -> Result<(), PcapError> {
    // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen,
    // linktype 1 (Ethernet).
    w.write_all(&MAGIC_US.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?;
    w.write_all(&4u16.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&65535u32.to_le_bytes())?;
    w.write_all(&1u32.to_le_bytes())?;

    for p in trace {
        let mut frame = Vec::with_capacity(54);
        // Ethernet II: synthetic MACs, IPv4 ethertype.
        frame.extend_from_slice(&[2, 0, 0, 0, 0, 1]);
        frame.extend_from_slice(&[2, 0, 0, 0, 0, 2]);
        frame.extend_from_slice(&0x0800u16.to_be_bytes());
        // IPv4 header (20 bytes, no options).
        let total_len = u16::max(p.len, 28); // at least IP + L4 ports
        frame.push(0x45);
        frame.push(0);
        frame.extend_from_slice(&total_len.to_be_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
        frame.push(64); // ttl
        frame.push(p.protocol);
        frame.extend_from_slice(&[0, 0]); // checksum (not validated here)
        frame.extend_from_slice(&p.src_ip.to_be_bytes());
        frame.extend_from_slice(&p.dst_ip.to_be_bytes());
        // L4 ports (first 4 bytes of TCP/UDP).
        frame.extend_from_slice(&p.src_port.to_be_bytes());
        frame.extend_from_slice(&p.dst_port.to_be_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]); // rest of L4 stub

        let ts_sec = (p.ts_ns / 1_000_000_000) as u32;
        let ts_us = ((p.ts_ns % 1_000_000_000) / 1_000) as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_us.to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&u32::from(total_len).to_le_bytes())?;
        w.write_all(&frame)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TraceConfig, TraceGenerator};

    #[test]
    fn round_trip_preserves_headers() {
        let trace = TraceGenerator::new(6).wide_like(&TraceConfig {
            flows: 50,
            packets: 1_000,
            ..TraceConfig::default()
        });
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let back = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        let t0 = trace[0].ts_ns;
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.dst_ip, b.dst_ip);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
            assert_eq!(a.protocol, b.protocol);
            // Timestamps round to µs and are normalized to the first
            // packet by the reader.
            assert!((a.ts_ns - t0).abs_diff(b.ts_ns) < 2_000);
        }
    }

    #[test]
    fn big_endian_captures_parse() {
        // Hand-build a 1-packet big-endian µs capture.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        // Frame: reuse the writer's format for the payload.
        let pkt = flymon_packet::Packet::tcp(0x01020304, 0x05060708, 80, 443);
        let mut one = Vec::new();
        write_pcap(&mut one, &[pkt]).unwrap();
        let frame = &one[40..]; // skip its global+record header
        // Record header (BE): t=1s, 500µs.
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&500u32.to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&60u32.to_be_bytes());
        buf.extend_from_slice(frame);
        let parsed = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].src_ip, 0x01020304);
        assert_eq!(parsed[0].dst_port, 443);
        assert_eq!(parsed[0].len, 60);
    }

    #[test]
    fn non_ipv4_frames_are_skipped() {
        let mut buf = Vec::new();
        let pkt = flymon_packet::Packet::udp(1, 2, 3, 4);
        write_pcap(&mut buf, &[pkt]).unwrap();
        // Corrupt the ethertype to ARP (0x0806).
        let ethertype_off = 24 + 16 + 12;
        buf[ethertype_off] = 0x08;
        buf[ethertype_off + 1] = 0x06;
        assert!(read_pcap(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(
            read_pcap(&buf[..]),
            Err(PcapError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_record_is_detected() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[flymon_packet::Packet::tcp(1, 2, 3, 4)]).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_pcap(buf.as_slice()), Err(PcapError::Truncated)));
    }

    #[test]
    fn empty_capture_is_empty() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert!(read_pcap(buf.as_slice()).unwrap().is_empty());
        // Zero bytes entirely -> empty, not an error.
        assert!(read_pcap(&[][..]).unwrap().is_empty());
    }

    #[test]
    fn timestamps_are_normalized_to_first_packet() {
        let mut a = flymon_packet::Packet::tcp(1, 2, 3, 4);
        a.ts_ns = 5_000_000_000;
        let mut b = a;
        b.ts_ns = 5_000_500_000;
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[a, b]).unwrap();
        let parsed = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(parsed[0].ts_ns, 0);
        assert_eq!(parsed[1].ts_ns, 500_000);
    }
}
