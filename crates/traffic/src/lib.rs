//! Workload generation, ground truth and accuracy metrics.
//!
//! The paper evaluates on a WIDE backbone trace (§5.3) and on iPerf
//! traffic; neither is available here, so this crate provides the
//! documented synthetic equivalents (DESIGN.md, "Substitutions"):
//!
//! - [`zipf`]: a Zipf sampler implemented from scratch (flow sizes in
//!   backbone traces are heavy-tailed; Zipf with α ≈ 1.0–1.3 is the
//!   standard stand-in).
//! - [`gen`]: trace generators — WIDE-like mixed traffic, DDoS victim
//!   scenarios, port scans, and the traffic-spike timeline of Fig. 12b.
//! - [`epoch`]: epoch slicing of a trace by timestamp.
//! - [`ground_truth`]: exact answers (per-flow frequency, distinct counts,
//!   maxima, cardinality, flow-size distribution, entropy, heavy hitters)
//!   computed by brute force for comparison against sketch estimates.
//! - [`metrics`]: ARE / RE / F1 / FP exactly as defined in Appendix C.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod gen;
pub mod ground_truth;
pub mod io;
pub mod metrics;
pub mod pcap;
pub mod zipf;

pub use epoch::split_epochs;
pub use gen::{
    AttackSpec, DdosConfig, Phase, PhasedConfig, PhasedSource, ShiftPhase, ShiftingConfig,
    ShiftingSource, SpikeConfig, TraceConfig, TraceGenerator,
};
pub use ground_truth::GroundTruth;
pub use metrics::{average_relative_error, f1_score, false_positive_rate, relative_error, wmre};
pub use zipf::Zipf;
