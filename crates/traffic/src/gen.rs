//! Synthetic trace generators.
//!
//! Stand-ins for the WIDE 2020 backbone trace and the iPerf testbed of the
//! paper's evaluation. Each generator is deterministic given its seed so
//! experiments are reproducible.

use flymon_packet::{Packet, PacketBuilder, SplitMix64};

use crate::zipf::Zipf;

/// Configuration of a WIDE-like mixed trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Number of distinct 5-tuple flows (§5.1 uses ~10K per epoch).
    pub flows: usize,
    /// Total packet budget; per-flow sizes are Zipf-distributed and scaled
    /// to approximately this total.
    pub packets: u64,
    /// Zipf skew of flow sizes (backbone traces: ~1.0–1.3).
    pub zipf_alpha: f64,
    /// Trace duration in nanoseconds (§5.3 uses 15 s and 30 s windows).
    pub duration_ns: u64,
    /// RNG seed; same seed ⇒ identical trace.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            flows: 10_000,
            packets: 500_000,
            zipf_alpha: 1.1,
            duration_ns: 15_000_000_000,
            seed: 0xf17_4075,
        }
    }
}

/// Configuration of a DDoS-victim scenario layered over background
/// traffic: `victims` destination addresses each receive packets from
/// `sources_per_victim` distinct sources (the ground truth for the DDoS
/// victim detection task, §4/§5.3).
#[derive(Debug, Clone, Copy)]
pub struct DdosConfig {
    /// Background traffic.
    pub background: TraceConfig,
    /// Number of attacked destination addresses.
    pub victims: usize,
    /// Distinct attacking sources per victim (the detection threshold in
    /// §5.3 is 512 distinct sources).
    pub sources_per_victim: usize,
    /// Packets sent by each attacking source (1 = pure spoofed SYN flood).
    pub packets_per_source: u32,
}

impl Default for DdosConfig {
    fn default() -> Self {
        DdosConfig {
            background: TraceConfig::default(),
            victims: 20,
            sources_per_victim: 2_000,
            packets_per_source: 1,
        }
    }
}

/// Configuration of the Fig. 12b accuracy timeline: a sequence of epochs
/// with a flow-count spike in the middle.
#[derive(Debug, Clone, Copy)]
pub struct SpikeConfig {
    /// Total number of epochs (paper: 20).
    pub epochs: usize,
    /// Baseline distinct flows per epoch (paper: ~10K).
    pub base_flows: usize,
    /// Extra flows injected during the spike (paper: +30K).
    pub spike_flows: usize,
    /// First epoch (0-based, inclusive) of the spike (paper: epoch 6 of
    /// 1..=20, i.e. index 5).
    pub spike_start: usize,
    /// Last epoch (0-based, inclusive) of the spike (paper: epoch 15,
    /// i.e. index 14).
    pub spike_end: usize,
    /// Packets per epoch at baseline; scaled up proportionally during the
    /// spike.
    pub base_packets: u64,
    /// Epoch duration in nanoseconds.
    pub epoch_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpikeConfig {
    fn default() -> Self {
        SpikeConfig {
            epochs: 20,
            base_flows: 10_000,
            spike_flows: 30_000,
            spike_start: 5,
            spike_end: 14,
            base_packets: 200_000,
            epoch_ns: 1_000_000_000,
            seed: 42,
        }
    }
}

/// One phase of a [`PhasedSource`]: `chunks` pulls at `rate` times the
/// baseline offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// How many chunk pulls this phase lasts.
    pub chunks: usize,
    /// Offered-load multiplier (1.0 = baseline; 10.0 = a 10x burst).
    pub rate: f64,
}

/// Configuration of a [`PhasedSource`].
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// Distinct flows in the population (Zipf-ranked).
    pub flows: usize,
    /// Zipf skew of per-packet flow choice.
    pub zipf_alpha: f64,
    /// Packets offered per chunk pull at rate 1.0; a phase at rate `r`
    /// offers `base_chunk * r` per pull.
    pub base_chunk: usize,
    /// Modeled inter-packet gap at rate 1.0; higher rates compress it.
    pub ns_per_packet: u64,
    /// The phase schedule, consumed in order; the source is exhausted
    /// when the last phase ends.
    pub phases: Vec<Phase>,
    /// RNG seed; same seed, same stream.
    pub seed: u64,
}

impl Default for PhasedConfig {
    fn default() -> Self {
        PhasedConfig {
            flows: 5_000,
            zipf_alpha: 1.1,
            base_chunk: 2_048,
            ns_per_packet: 1_000,
            phases: vec![
                Phase { chunks: 8, rate: 1.0 },
                Phase { chunks: 4, rate: 10.0 },
                Phase { chunks: 8, rate: 1.0 },
            ],
            seed: 0x0091_35ED,
        }
    }
}

/// A streaming trace source with phased offered load.
///
/// Unlike [`TraceGenerator`], which materializes whole traces, this
/// source emits one chunk per pull and holds no per-packet state between
/// pulls — memory is bounded by the flow population and the chunk size,
/// never by how long the stream runs. That makes it the workload driver
/// for the streaming ingestion runtime: steady phases establish a
/// baseline, burst phases (e.g. 10x) overrun a bounded queue on purpose.
///
/// Flow identities derive deterministically from `(seed, zipf rank)`.
/// The heaviest eighth of the ranks sources from `10.0.0.0/8`, so a
/// prefix filter on that net is a stable stand-in for a high-priority
/// tenant when exercising priority-aware load shedding.
#[derive(Debug)]
pub struct PhasedSource {
    cfg: PhasedConfig,
    zipf: Zipf,
    rng: SplitMix64,
    phase: usize,
    chunks_in_phase: usize,
    now_ns: u64,
    emitted: u64,
}

impl PhasedSource {
    /// Builds the source; pulls start in the first phase.
    pub fn new(cfg: PhasedConfig) -> Self {
        let zipf = Zipf::new(cfg.flows.max(1), cfg.zipf_alpha);
        let rng = SplitMix64::new(cfg.seed);
        PhasedSource {
            cfg,
            zipf,
            rng,
            phase: 0,
            chunks_in_phase: 0,
            now_ns: 0,
            emitted: 0,
        }
    }

    /// The active phase's rate multiplier; `None` once exhausted.
    pub fn current_rate(&self) -> Option<f64> {
        self.cfg.phases.get(self.phase).map(|p| p.rate)
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The deterministic 5-tuple of Zipf rank `rank` (0 = heaviest).
    fn flow_of(&self, rank: usize) -> (u32, u32, u16, u16, u8) {
        ranked_flow(self.cfg.seed, self.cfg.flows, rank)
    }

    /// Emits the next chunk, or `None` once every phase has run. Chunk
    /// size scales with the active phase's rate; timestamps advance by
    /// the rate-compressed inter-packet gap, so bursts are denser in
    /// modeled time as well as bigger.
    pub fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        let phase = *self.cfg.phases.get(self.phase)?;
        let count = ((self.cfg.base_chunk as f64) * phase.rate).round().max(1.0) as usize;
        let gap = ((self.cfg.ns_per_packet as f64) / phase.rate.max(1e-9)).max(1.0) as u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = self.zipf.sample(&mut self.rng) - 1; // 0-based, 0 = heaviest
            let (src_ip, dst_ip, src_port, dst_port, proto) = self.flow_of(rank);
            self.now_ns += gap;
            out.push(
                PacketBuilder::new()
                    .src_ip(src_ip)
                    .dst_ip(dst_ip)
                    .src_port(src_port)
                    .dst_port(dst_port)
                    .protocol(proto)
                    .len(if proto == 6 { 1400 } else { 128 })
                    .ts_ns(self.now_ns)
                    .build(),
            );
        }
        self.emitted += out.len() as u64;
        self.chunks_in_phase += 1;
        if self.chunks_in_phase >= phase.chunks {
            self.phase += 1;
            self.chunks_in_phase = 0;
        }
        Some(out)
    }
}

/// The deterministic 5-tuple of Zipf rank `rank` (0 = heaviest) in a
/// population of `flows` flows derived from `seed`. Shared by
/// [`PhasedSource`] and [`ShiftingSource`], so the same seed yields the
/// same flow universe in both drivers. The heaviest eighth of the ranks
/// sources from `10.0.0.0/8` (the priority tenant).
fn ranked_flow(seed: u64, flows: usize, rank: usize) -> (u32, u32, u16, u16, u8) {
    let mut r = SplitMix64::new(
        seed.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (rank as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    let src_net: u32 = if rank * 8 < flows.max(1) {
        10 << 24 // the priority tenant's net
    } else {
        [24u32, 59, 131, 172, 192][r.range_usize(0, 5)] << 24
    };
    let dst_net: u32 = [10u32, 47, 88, 140, 203][r.range_usize(0, 5)] << 24;
    let src_ip = src_net | (r.next_u32() & 0x00ff_ffff);
    let dst_ip = dst_net | (r.next_u32() & 0x00ff_ffff);
    let src_port = r.range_u64(1024, u64::from(u16::MAX)) as u16;
    let dst_port = [80u16, 443, 53, 22, 8080, 3306][r.range_usize(0, 6)];
    let proto = if r.chance(0.8) { 6 } else { 17 };
    (src_ip, dst_ip, src_port, dst_port, proto)
}

/// A spoofed-source flood riding one [`ShiftPhase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSpec {
    /// The victim destination address.
    pub dst_ip: u32,
    /// Fraction of the phase's packets that are attack packets.
    pub share: f64,
    /// Size of the spoofed source pool, drawn from `198.18.0.0/16`
    /// (the benchmarking range — disjoint from every background net).
    pub sources: u32,
}

/// One phase of a [`ShiftingSource`]: offered load, flow-size skew and
/// an optional attack overlay, all shifting together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftPhase {
    /// How many chunk pulls this phase lasts.
    pub chunks: usize,
    /// Offered-load multiplier (1.0 = baseline).
    pub rate: f64,
    /// Zipf skew of per-packet flow choice during this phase — the
    /// diurnal knob (night traffic is head-heavy, day traffic flatter).
    pub zipf_alpha: f64,
    /// When set, this phase carries a spoofed flood.
    pub attack: Option<AttackSpec>,
}

/// Configuration of a [`ShiftingSource`].
#[derive(Debug, Clone)]
pub struct ShiftingConfig {
    /// Distinct background flows (Zipf-ranked, shared across phases).
    pub flows: usize,
    /// Packets offered per pull at rate 1.0.
    pub base_chunk: usize,
    /// Modeled inter-packet gap at rate 1.0.
    pub ns_per_packet: u64,
    /// The phase schedule, consumed in order.
    pub phases: Vec<ShiftPhase>,
    /// RNG seed; same seed, same stream.
    pub seed: u64,
}

impl Default for ShiftingConfig {
    fn default() -> Self {
        // A compressed diurnal cycle with an attack in the middle:
        // skewed night traffic, flatter day traffic at double load, a
        // spoofed flood on top of the day peak, then recovery.
        ShiftingConfig {
            flows: 5_000,
            base_chunk: 2_048,
            ns_per_packet: 1_000,
            phases: vec![
                ShiftPhase { chunks: 8, rate: 1.0, zipf_alpha: 1.3, attack: None },
                ShiftPhase { chunks: 8, rate: 2.0, zipf_alpha: 1.05, attack: None },
                ShiftPhase {
                    chunks: 6,
                    rate: 3.0,
                    zipf_alpha: 1.05,
                    attack: Some(AttackSpec {
                        dst_ip: (203 << 24) | (113 << 8) | 7,
                        share: 0.5,
                        sources: 20_000,
                    }),
                },
                ShiftPhase { chunks: 8, rate: 1.0, zipf_alpha: 1.3, attack: None },
            ],
            seed: 0x5217_F7ED,
        }
    }
}

/// A streaming source whose *traffic mix* shifts between phases, not
/// just its rate: each [`ShiftPhase`] re-skews the Zipf flow choice
/// (diurnal shape) and may overlay a spoofed-source flood. The
/// background flow universe is fixed across phases (same
/// `(seed, rank)` identities as [`PhasedSource`]), so a flow that is
/// heavy at night is still *the same flow* — merely diluted — during
/// the day; what changes is the distribution the sampler draws from.
///
/// This is the workload the closed-loop adaptive controller is
/// benchmarked against: no single static memory allocation is right
/// for all three regimes (skewed-quiet, flat-busy, flood).
#[derive(Debug)]
pub struct ShiftingSource {
    cfg: ShiftingConfig,
    zipf: Zipf,
    zipf_phase: usize,
    rng: SplitMix64,
    phase: usize,
    chunks_in_phase: usize,
    now_ns: u64,
    emitted: u64,
}

impl ShiftingSource {
    /// Builds the source; pulls start in the first phase.
    ///
    /// # Panics
    /// Panics if the schedule is empty (there would be nothing to pull).
    pub fn new(cfg: ShiftingConfig) -> Self {
        assert!(!cfg.phases.is_empty(), "shifting schedule needs a phase");
        let zipf = Zipf::new(cfg.flows.max(1), cfg.phases[0].zipf_alpha);
        let rng = SplitMix64::new(cfg.seed);
        ShiftingSource {
            cfg,
            zipf,
            zipf_phase: 0,
            rng,
            phase: 0,
            chunks_in_phase: 0,
            now_ns: 0,
            emitted: 0,
        }
    }

    /// The active phase (index into the schedule); `None` once
    /// exhausted.
    pub fn current_phase(&self) -> Option<usize> {
        (self.phase < self.cfg.phases.len()).then_some(self.phase)
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Emits the next chunk, or `None` once the schedule has run out.
    pub fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        let phase = *self.cfg.phases.get(self.phase)?;
        if self.zipf_phase != self.phase {
            // Re-skew at the phase boundary; the flow universe itself
            // (rank -> 5-tuple) is unchanged.
            self.zipf = Zipf::new(self.cfg.flows.max(1), phase.zipf_alpha);
            self.zipf_phase = self.phase;
        }
        let count = ((self.cfg.base_chunk as f64) * phase.rate).round().max(1.0) as usize;
        let gap = ((self.cfg.ns_per_packet as f64) / phase.rate.max(1e-9)).max(1.0) as u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            self.now_ns += gap;
            let attack = phase
                .attack
                .filter(|a| self.rng.chance(a.share));
            let pkt = if let Some(a) = attack {
                // One spoofed SYN-flood packet: a source drawn from the
                // pool (consecutive addresses from 198.18.0.0 up), aimed
                // at the victim.
                let s = self.rng.range_u64(0, u64::from(a.sources.max(1))) as u32;
                let src = ((198u32 << 24) | (18 << 16)).wrapping_add(s);
                PacketBuilder::new()
                    .src_ip(src)
                    .dst_ip(a.dst_ip)
                    .src_port(self.rng.next_u16())
                    .dst_port(80)
                    .protocol(6)
                    .len(64)
                    .ts_ns(self.now_ns)
                    .build()
            } else {
                let rank = self.zipf.sample(&mut self.rng) - 1; // 0-based
                let (src_ip, dst_ip, src_port, dst_port, proto) =
                    ranked_flow(self.cfg.seed, self.cfg.flows, rank);
                PacketBuilder::new()
                    .src_ip(src_ip)
                    .dst_ip(dst_ip)
                    .src_port(src_port)
                    .dst_port(dst_port)
                    .protocol(proto)
                    .len(if proto == 6 { 1400 } else { 128 })
                    .ts_ns(self.now_ns)
                    .build()
            };
            out.push(pkt);
        }
        self.emitted += out.len() as u64;
        self.chunks_in_phase += 1;
        if self.chunks_in_phase >= phase.chunks {
            self.phase += 1;
            self.chunks_in_phase = 0;
        }
        Some(out)
    }
}

/// Deterministic trace generator.
#[derive(Debug)]
pub struct TraceGenerator {
    rng: SplitMix64,
}

impl TraceGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            rng: SplitMix64::new(seed),
        }
    }

    fn random_flow(&mut self) -> (u32, u32, u16, u16, u8) {
        // Sources/destinations drawn from a handful of /8s so that
        // prefix-keyed tasks (SrcIP/8, /16, /24) see realistic grouping.
        let src_net: u32 = [10u32, 24, 59, 131, 172, 192][self.rng.range_usize(0, 6)] << 24;
        let dst_net: u32 = [10u32, 47, 88, 140, 192, 203][self.rng.range_usize(0, 6)] << 24;
        let src_ip = src_net | (self.rng.next_u32() & 0x00ff_ffff);
        let dst_ip = dst_net | (self.rng.next_u32() & 0x00ff_ffff);
        let src_port = self.rng.range_u64(1024, u64::from(u16::MAX)) as u16;
        let dst_port = [80u16, 443, 53, 22, 8080, 3306][self.rng.range_usize(0, 6)];
        let proto = if self.rng.chance(0.8) { 6 } else { 17 };
        (src_ip, dst_ip, src_port, dst_port, proto)
    }

    fn packet_len(&mut self) -> u16 {
        // Bimodal internet mix: small control packets and full frames.
        match self.rng.range_u64(0, 10) {
            0..=4 => self.rng.range_u64(64, 129) as u16,
            5..=6 => self.rng.range_u64(129, 577) as u16,
            _ => self.rng.range_u64(1000, 1501) as u16,
        }
    }

    /// Generates a WIDE-like trace: `cfg.flows` distinct 5-tuples with
    /// Zipf-distributed sizes, packets uniformly spread over the duration,
    /// sorted by timestamp, with queue metadata from a simple queue
    /// simulation.
    pub fn wide_like(&mut self, cfg: &TraceConfig) -> Vec<Packet> {
        let zipf = Zipf::new(cfg.flows, cfg.zipf_alpha);
        let sizes = zipf.expected_counts(cfg.packets);
        let mut packets = Vec::with_capacity(sizes.iter().sum::<u64>() as usize);
        for &count in &sizes {
            let (src_ip, dst_ip, src_port, dst_port, proto) = self.random_flow();
            for _ in 0..count {
                let ts = self.rng.range_u64(0, cfg.duration_ns);
                packets.push(
                    PacketBuilder::new()
                        .src_ip(src_ip)
                        .dst_ip(dst_ip)
                        .src_port(src_port)
                        .dst_port(dst_port)
                        .protocol(proto)
                        .len(self.packet_len())
                        .ts_ns(ts)
                        .build(),
                );
            }
        }
        finalize(&mut packets);
        packets
    }

    /// Generates a DDoS scenario: background traffic plus `victims`
    /// destinations each hit by `sources_per_victim` distinct sources.
    /// Victim addresses are `203.0.113.x` (TEST-NET-3), disjoint from the
    /// background destination pool's host structure so ground truth is
    /// unambiguous. Returns `(trace, victim_addresses)`.
    pub fn ddos(&mut self, cfg: &DdosConfig) -> (Vec<Packet>, Vec<u32>) {
        let mut packets = self.wide_like(&cfg.background);
        let mut victims = Vec::with_capacity(cfg.victims);
        for v in 0..cfg.victims {
            let victim = (203u32 << 24) | (113 << 8) | (v as u32 & 0xff) | ((v as u32 >> 8) << 16);
            victims.push(victim);
            for s in 0..cfg.sources_per_victim {
                // Distinct spoofed sources per victim.
                let src = (198u32 << 24) | ((v as u32 & 0xff) << 16) | (s as u32 & 0xffff);
                for _ in 0..cfg.packets_per_source {
                    let ts = self.rng.range_u64(0, cfg.background.duration_ns);
                    packets.push(
                        PacketBuilder::new()
                            .src_ip(src)
                            .dst_ip(victim)
                            .src_port(self.rng.next_u16())
                            .dst_port(80)
                            .protocol(6)
                            .len(64)
                            .ts_ns(ts)
                            .build(),
                    );
                }
            }
        }
        finalize(&mut packets);
        (packets, victims)
    }

    /// Generates a port-scan scenario: background plus one scanner probing
    /// `ports` distinct destination ports on `target`. Returns the trace;
    /// the scanner is `198.51.100.1` (TEST-NET-2).
    pub fn port_scan(&mut self, cfg: &TraceConfig, target: u32, ports: u16) -> Vec<Packet> {
        let mut packets = self.wide_like(cfg);
        let scanner = (198u32 << 24) | (51 << 16) | (100 << 8) | 1;
        for port in 0..ports {
            let ts = self.rng.range_u64(0, cfg.duration_ns);
            packets.push(
                PacketBuilder::new()
                    .src_ip(scanner)
                    .dst_ip(target)
                    .src_port(40_000)
                    .dst_port(port)
                    .protocol(6)
                    .len(64)
                    .ts_ns(ts)
                    .build(),
            );
        }
        finalize(&mut packets);
        packets
    }

    /// Generates the Fig. 12b epoch timeline: one trace per epoch, flow
    /// count spiking between `spike_start..=spike_end`. Timestamps are
    /// absolute (epoch `i` occupies `[i*epoch_ns, (i+1)*epoch_ns)`).
    pub fn spike_timeline(&mut self, cfg: &SpikeConfig) -> Vec<Vec<Packet>> {
        let mut epochs = Vec::with_capacity(cfg.epochs);
        for e in 0..cfg.epochs {
            let spiking = (cfg.spike_start..=cfg.spike_end).contains(&e);
            let flows = cfg.base_flows + if spiking { cfg.spike_flows } else { 0 };
            let scale = flows as f64 / cfg.base_flows as f64;
            let epoch_cfg = TraceConfig {
                flows,
                packets: (cfg.base_packets as f64 * scale) as u64,
                zipf_alpha: 1.1,
                duration_ns: cfg.epoch_ns,
                seed: cfg.seed,
            };
            let mut trace = self.wide_like(&epoch_cfg);
            let base_ts = e as u64 * cfg.epoch_ns;
            for p in &mut trace {
                p.ts_ns += base_ts;
            }
            epochs.push(trace);
        }
        epochs
    }
}

/// Sorts by timestamp and fills queue metadata with a fluid-queue model:
/// the queue drains at a constant rate; arrivals enqueue their bytes. This
/// yields queue lengths/delays correlated with instantaneous load, which
/// is all `Max(QueueLen)` / `Max(QueueDelay)` tasks need.
fn finalize(packets: &mut [Packet]) {
    packets.sort_by_key(|p| p.ts_ns);
    const DRAIN_BYTES_PER_NS: f64 = 12.5; // 100 Gbps
    const CELL_BYTES: f64 = 80.0;
    let mut queue_bytes = 0.0f64;
    let mut last_ts = 0u64;
    for p in packets.iter_mut() {
        let dt = (p.ts_ns - last_ts) as f64;
        queue_bytes = (queue_bytes - dt * DRAIN_BYTES_PER_NS).max(0.0);
        queue_bytes += f64::from(p.len);
        last_ts = p.ts_ns;
        p.queue_len = (queue_bytes / CELL_BYTES) as u32;
        p.queue_delay_ns = (queue_bytes / DRAIN_BYTES_PER_NS) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            flows: 500,
            packets: 20_000,
            zipf_alpha: 1.1,
            duration_ns: 1_000_000_000,
            seed: 1,
        }
    }

    #[test]
    fn wide_like_is_deterministic() {
        let a = TraceGenerator::new(9).wide_like(&small_cfg());
        let b = TraceGenerator::new(9).wide_like(&small_cfg());
        assert_eq!(a, b);
        let c = TraceGenerator::new(10).wide_like(&small_cfg());
        assert_ne!(a, c);
    }

    #[test]
    fn wide_like_matches_config_scale() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(2).wide_like(&cfg);
        let distinct: HashSet<_> = trace
            .iter()
            .map(|p| (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.protocol))
            .collect();
        // expected_counts may merge a few colliding random 5-tuples, and
        // rounding inflates the packet total slightly.
        assert!(distinct.len() >= cfg.flows * 95 / 100);
        assert!(trace.len() as u64 >= cfg.packets * 9 / 10);
        assert!(trace.len() as u64 <= cfg.packets * 13 / 10);
        assert!(trace.iter().all(|p| p.ts_ns < cfg.duration_ns));
    }

    #[test]
    fn trace_is_time_sorted_with_queue_metadata() {
        let trace = TraceGenerator::new(3).wide_like(&small_cfg());
        assert!(trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // The fluid queue must register some occupancy somewhere.
        assert!(trace.iter().any(|p| p.queue_len > 0));
    }

    #[test]
    fn flow_sizes_are_skewed() {
        let trace = TraceGenerator::new(4).wide_like(&small_cfg());
        let mut counts = std::collections::HashMap::new();
        for p in &trace {
            *counts.entry((p.src_ip, p.src_port)).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let mean = trace.len() as f64 / counts.len() as f64;
        assert!(
            max as f64 > 20.0 * mean,
            "top flow ({max}) should dwarf the mean ({mean:.1})"
        );
    }

    #[test]
    fn ddos_victims_have_many_distinct_sources() {
        let cfg = DdosConfig {
            background: small_cfg(),
            victims: 3,
            sources_per_victim: 700,
            packets_per_source: 1,
        };
        let (trace, victims) = TraceGenerator::new(5).ddos(&cfg);
        assert_eq!(victims.len(), 3);
        for &v in &victims {
            let srcs: HashSet<_> = trace
                .iter()
                .filter(|p| p.dst_ip == v)
                .map(|p| p.src_ip)
                .collect();
            assert!(srcs.len() >= 700, "victim has only {} sources", srcs.len());
        }
    }

    #[test]
    fn port_scan_touches_requested_ports() {
        let target = 0x0a00_0001;
        let trace = TraceGenerator::new(6).port_scan(&small_cfg(), target, 300);
        let scanner = (198u32 << 24) | (51 << 16) | (100 << 8) | 1;
        let ports: HashSet<_> = trace
            .iter()
            .filter(|p| p.src_ip == scanner && p.dst_ip == target)
            .map(|p| p.dst_port)
            .collect();
        assert_eq!(ports.len(), 300);
    }

    #[test]
    fn phased_source_is_deterministic_and_finite() {
        let cfg = PhasedConfig {
            flows: 500,
            base_chunk: 256,
            phases: vec![Phase { chunks: 3, rate: 1.0 }, Phase { chunks: 2, rate: 4.0 }],
            ..PhasedConfig::default()
        };
        let drain = |mut s: PhasedSource| {
            let mut all = Vec::new();
            while let Some(c) = s.next_chunk() {
                all.push(c);
            }
            all
        };
        let a = drain(PhasedSource::new(cfg.clone()));
        let b = drain(PhasedSource::new(cfg.clone()));
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 5, "3 + 2 chunk pulls, then exhausted");
        let c = drain(PhasedSource::new(PhasedConfig { seed: 1, ..cfg }));
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn phased_burst_scales_offered_load_and_compresses_time() {
        let cfg = PhasedConfig {
            flows: 300,
            base_chunk: 1_000,
            ns_per_packet: 1_000,
            phases: vec![Phase { chunks: 1, rate: 1.0 }, Phase { chunks: 1, rate: 10.0 }],
            ..PhasedConfig::default()
        };
        let mut src = PhasedSource::new(cfg);
        assert_eq!(src.current_rate(), Some(1.0));
        let steady = src.next_chunk().unwrap();
        assert_eq!(src.current_rate(), Some(10.0));
        let burst = src.next_chunk().unwrap();
        assert_eq!(steady.len(), 1_000);
        assert_eq!(burst.len(), 10_000, "a 10x phase offers 10x the packets");
        assert!(src.next_chunk().is_none());
        assert_eq!(src.current_rate(), None);
        assert_eq!(src.emitted(), 11_000);
        // Timestamps are strictly monotonic across the whole stream, and
        // the burst is denser in modeled time.
        let all: Vec<_> = steady.iter().chain(&burst).collect();
        assert!(all.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
        let steady_span = steady.last().unwrap().ts_ns - steady[0].ts_ns;
        let burst_span = burst.last().unwrap().ts_ns - burst[0].ts_ns;
        assert!(
            burst_span < steady_span * 2,
            "10x packets should not take 10x modeled time: {burst_span} vs {steady_span}"
        );
    }

    #[test]
    fn phased_source_carries_a_priority_tenant() {
        let mut src = PhasedSource::new(PhasedConfig {
            flows: 2_000,
            base_chunk: 20_000,
            phases: vec![Phase { chunks: 1, rate: 1.0 }],
            ..PhasedConfig::default()
        });
        let chunk = src.next_chunk().unwrap();
        let priority = chunk
            .iter()
            .filter(|p| p.src_ip >> 24 == 10)
            .count();
        // The heaviest eighth of the Zipf ranks lives in 10/8, so well
        // over an eighth of the *packets* do.
        assert!(
            priority * 3 > chunk.len(),
            "priority tenant carries {} of {} packets",
            priority,
            chunk.len()
        );
    }

    #[test]
    fn shifting_source_is_deterministic_and_finite() {
        let cfg = ShiftingConfig {
            flows: 400,
            base_chunk: 512,
            phases: vec![
                ShiftPhase { chunks: 2, rate: 1.0, zipf_alpha: 1.3, attack: None },
                ShiftPhase { chunks: 1, rate: 2.0, zipf_alpha: 1.0, attack: None },
            ],
            ..ShiftingConfig::default()
        };
        let drain = |mut s: ShiftingSource| {
            let mut all = Vec::new();
            while let Some(c) = s.next_chunk() {
                all.push(c);
            }
            all
        };
        let a = drain(ShiftingSource::new(cfg.clone()));
        let b = drain(ShiftingSource::new(cfg.clone()));
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 3, "2 + 1 chunk pulls, then exhausted");
        assert_eq!(a[2].len(), 1024, "rate 2.0 doubles the chunk");
        let c = drain(ShiftingSource::new(ShiftingConfig { seed: 3, ..cfg }));
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn shifting_attack_phase_floods_the_victim_from_many_sources() {
        let victim = (203u32 << 24) | (113 << 8) | 7;
        let mut src = ShiftingSource::new(ShiftingConfig {
            flows: 500,
            base_chunk: 20_000,
            phases: vec![ShiftPhase {
                chunks: 1,
                rate: 1.0,
                zipf_alpha: 1.1,
                attack: Some(AttackSpec { dst_ip: victim, share: 0.5, sources: 5_000 }),
            }],
            ..ShiftingConfig::default()
        });
        let chunk = src.next_chunk().unwrap();
        let attack: Vec<_> = chunk.iter().filter(|p| p.dst_ip == victim).collect();
        let frac = attack.len() as f64 / chunk.len() as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "attack share 0.5 materialized as {frac:.3}"
        );
        let srcs: HashSet<_> = attack.iter().map(|p| p.src_ip).collect();
        assert!(srcs.len() > 2_000, "only {} distinct spoofed sources", srcs.len());
        assert!(srcs.iter().all(|&s| s >> 16 == (198 << 8) | 18));
    }

    #[test]
    fn shifting_alpha_reskews_but_keeps_the_flow_universe() {
        let cfg = ShiftingConfig {
            flows: 2_000,
            base_chunk: 30_000,
            phases: vec![
                ShiftPhase { chunks: 1, rate: 1.0, zipf_alpha: 1.5, attack: None },
                ShiftPhase { chunks: 1, rate: 1.0, zipf_alpha: 0.7, attack: None },
            ],
            ..ShiftingConfig::default()
        };
        let mut src = ShiftingSource::new(cfg.clone());
        let night = src.next_chunk().unwrap();
        let day = src.next_chunk().unwrap();
        let head_share = |chunk: &[Packet]| {
            let mut counts = std::collections::HashMap::new();
            for p in chunk {
                *counts.entry(p.src_ip).or_insert(0u64) += 1;
            }
            let mut sizes: Vec<u64> = counts.into_values().collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            sizes.iter().take(10).sum::<u64>() as f64 / chunk.len() as f64
        };
        assert!(
            head_share(&night) > 2.0 * head_share(&day),
            "alpha 1.5 head share {:.3} should dwarf alpha 0.7's {:.3}",
            head_share(&night),
            head_share(&day)
        );
        // The same flow universe underlies both phases: the heaviest
        // night flow still appears during the day.
        let top_night = {
            let mut counts = std::collections::HashMap::new();
            for p in &night {
                *counts.entry(p.src_ip).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert!(day.iter().any(|p| p.src_ip == top_night));
        // And it shares PhasedSource's universe for the same seed: the
        // priority tenant's net shows up.
        assert!(night.iter().any(|p| p.src_ip >> 24 == 10));
    }

    #[test]
    fn spike_timeline_shapes_flow_counts() {
        let cfg = SpikeConfig {
            epochs: 8,
            base_flows: 300,
            spike_flows: 900,
            spike_start: 2,
            spike_end: 4,
            base_packets: 5_000,
            epoch_ns: 1_000_000,
            seed: 7,
        };
        let epochs = TraceGenerator::new(7).spike_timeline(&cfg);
        assert_eq!(epochs.len(), 8);
        let flows = |e: &Vec<Packet>| {
            e.iter()
                .map(|p| (p.src_ip, p.dst_ip, p.src_port, p.dst_port))
                .collect::<HashSet<_>>()
                .len()
        };
        let quiet = flows(&epochs[0]);
        let busy = flows(&epochs[3]);
        assert!(
            busy > quiet * 3,
            "spike epoch should have ~4x flows: {busy} vs {quiet}"
        );
        // Epoch timestamps are disjoint and ordered.
        assert!(epochs[1].first().unwrap().ts_ns >= cfg.epoch_ns);
        assert!(epochs[0].last().unwrap().ts_ns < cfg.epoch_ns);
    }
}
