//! Trace interchange: a plain CSV format for packet traces.
//!
//! Real deployments replay captured traces (the paper uses a WIDE
//! backbone capture). This module defines a minimal, dependency-free
//! textual format so externally-derived traces (e.g. exported from pcap
//! with `tshark -T fields`) can drive the simulator, and synthetic
//! traces can be persisted for exact reproduction:
//!
//! ```text
//! # src_ip,dst_ip,src_port,dst_port,protocol,len,ts_ns[,queue_len,queue_delay_ns]
//! 10.0.0.1,192.168.0.9,443,51234,6,1500,1200345
//! ```
//!
//! Addresses are dotted decimal; lines starting with `#` are comments.

use std::io::{BufRead, Write};

use flymon_packet::{fmt_ipv4, parse_ipv4, Packet, PacketBuilder};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the CSV format (with the optional queue columns).
pub fn write_trace<W: Write>(mut w: W, trace: &[Packet]) -> Result<(), TraceIoError> {
    writeln!(
        w,
        "# src_ip,dst_ip,src_port,dst_port,protocol,len,ts_ns,queue_len,queue_delay_ns"
    )?;
    for p in trace {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{}",
            fmt_ipv4(p.src_ip),
            fmt_ipv4(p.dst_ip),
            p.src_port,
            p.dst_port,
            p.protocol,
            p.len,
            p.ts_ns,
            p.queue_len,
            p.queue_delay_ns
        )?;
    }
    Ok(())
}

/// Reads a trace from the CSV format. The queue columns are optional
/// (defaulting to 0), so 7-column exports work directly.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<Packet>, TraceIoError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 7 && fields.len() != 9 {
            return Err(TraceIoError::Parse {
                line: line_no,
                reason: format!("expected 7 or 9 fields, got {}", fields.len()),
            });
        }
        let bad = |what: &str| TraceIoError::Parse {
            line: line_no,
            reason: format!("bad {what}"),
        };
        let src_ip = parse_ipv4(fields[0]).ok_or_else(|| bad("src_ip"))?;
        let dst_ip = parse_ipv4(fields[1]).ok_or_else(|| bad("dst_ip"))?;
        let src_port: u16 = fields[2].parse().map_err(|_| bad("src_port"))?;
        let dst_port: u16 = fields[3].parse().map_err(|_| bad("dst_port"))?;
        let protocol: u8 = fields[4].parse().map_err(|_| bad("protocol"))?;
        let len: u16 = fields[5].parse().map_err(|_| bad("len"))?;
        let ts_ns: u64 = fields[6].parse().map_err(|_| bad("ts_ns"))?;
        let mut b = PacketBuilder::new()
            .src_ip(src_ip)
            .dst_ip(dst_ip)
            .src_port(src_port)
            .dst_port(dst_port)
            .protocol(protocol)
            .len(len)
            .ts_ns(ts_ns);
        if fields.len() == 9 {
            let queue_len: u32 = fields[7].parse().map_err(|_| bad("queue_len"))?;
            let queue_delay: u32 = fields[8].parse().map_err(|_| bad("queue_delay_ns"))?;
            b = b.queue_len(queue_len).queue_delay_ns(queue_delay);
        }
        out.push(b.build());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TraceConfig, TraceGenerator};

    #[test]
    fn round_trip_preserves_everything() {
        let trace = TraceGenerator::new(3).wide_like(&TraceConfig {
            flows: 100,
            packets: 2_000,
            ..TraceConfig::default()
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn seven_column_form_parses_with_zero_queues() {
        let csv = "# comment\n10.0.0.1,192.168.0.9,443,51234,6,1500,1200345\n";
        let t = read_trace(csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].src_port, 443);
        assert_eq!(t[0].queue_len, 0);
        assert_eq!(t[0].ts_ns, 1_200_345);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let csv = "\n# header\n\n1.2.3.4,5.6.7.8,1,2,17,64,0\n\n";
        assert_eq!(read_trace(csv.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_report_position() {
        let csv = "1.2.3.4,5.6.7.8,1,2,17,64,0\nnot,a,packet\n";
        match read_trace(csv.as_bytes()) {
            Err(TraceIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_ip = "1.2.3.999,5.6.7.8,1,2,17,64,0\n";
        assert!(matches!(
            read_trace(bad_ip.as_bytes()),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
    }
}
