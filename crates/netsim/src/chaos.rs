//! Chaos soak harness: randomized seeded fault schedules against a
//! [`SwitchFleet`] with a warm standby.
//!
//! Each schedule is fully determined by its seed: a [`SplitMix64`]
//! stream picks every event (traffic slices — serial or parallel —
//! standby syncs, kills, promotions, revivals, and control-plane
//! reconfigurations, some through armed [`FaultPlan`]s) and every
//! packet. After *every* event the harness asserts the robustness
//! invariants:
//!
//! 1. **Audit clean** — every switch, dead or alive, reconciles its
//!    shadow state against its data plane with zero divergences (this
//!    covers balanced refcounts and leaked partitions).
//! 2. **Ledger conserved** — `fed == represented + lost + dropped`
//!    ([`PacketLedger::balanced`]).
//! 3. **Loss window bound** — the merged estimate of a sentinel flow
//!    plus the explicit loss bound covers every sentinel packet ever
//!    fed: `estimate + loss_bound >= true_count`.
//! 4. **No panic** — [`run_soak`] converts a panicking schedule into a
//!    reported violation instead of tearing down the harness.
//! 5. **Batch-boundary checkpoints restore identically** — a private
//!    probe switch replays every traffic slice through the stage-major
//!    batched datapath ([`FlyMon::process_batch`]) and, at each slice
//!    boundary, a full checkpoint of it must restore to bit-identical
//!    registers (guards the batched SALU path's dirty-watermark
//!    bookkeeping without perturbing the fleet's own sync barriers).
//!
//! Violations carry the seed, the event index and what went wrong, so
//! any soak failure replays exactly with `run_schedule(seed, &cfg)`.
//!
//! A second harness ([`run_ingest_schedule`] / [`run_ingest_soak`])
//! soaks the streaming runtime instead of the bare fleet: seeded
//! ingestion faults — queue stalls, slow consumers, worker panics, and
//! 10× input bursts — against the conserved stream ledger
//! `fed == represented + shed + lost + dropped (+ in_flight)`, the
//! sentinel watch bound across epoch rotations, and per-switch audits.

use std::panic::{catch_unwind, AssertUnwindSafe};

use flymon::prelude::*;
use flymon_packet::{KeySpec, Packet, SplitMix64};

use crate::channel::ChannelConfig;
use crate::fleet::SwitchFleet;
use crate::ingest::{ChunkSource, IngestConfig, IngestFault, RuntimeHealth, StreamingRuntime};

/// Shape of one chaos schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fleet size.
    pub switches: usize,
    /// Events per schedule.
    pub events: usize,
    /// Packets per traffic slice.
    pub slice_packets: usize,
    /// Switch geometry.
    pub config: FlyMonConfig,
    /// When set, a lossy control channel (seeded off the schedule seed)
    /// is attached to the fleet and the event table widens with channel
    /// faults: partitions, heals, link flaps, duplicate/reorder storms
    /// and split-brain probes. `None` keeps the PR-6 schedule exactly.
    pub channel: Option<ChannelConfig>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            switches: 4,
            events: 40,
            slice_packets: 2_000,
            config: FlyMonConfig {
                groups: 2,
                buckets_per_cmu: 16384,
                ..FlyMonConfig::default()
            },
            channel: None,
        }
    }
}

/// A [`ChannelConfig`] for partition soaks: lossy enough to exercise
/// every retry path, tame enough that commands still complete within
/// the retry budget when the link is not partitioned.
pub fn soak_channel_config() -> ChannelConfig {
    ChannelConfig {
        drop_rate: 0.10,
        dup_rate: 0.10,
        reorder_rate: 0.10,
        ..ChannelConfig::default()
    }
}

/// One event drawn from the seeded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Feed a slice of generated traffic, serially or in parallel.
    Traffic {
        /// Whether the slice went through the parallel datapath.
        parallel: bool,
        /// Packets in the slice.
        packets: usize,
    },
    /// Ship checkpoints to the warm standby.
    Sync,
    /// Fail a switch.
    Kill(usize),
    /// Promote the standby in place of a dead switch.
    Promote(usize),
    /// Revive a dead switch (clearing its registers).
    Revive(usize),
    /// Deploy an ephemeral secondary task on a switch — sometimes
    /// through an armed fault plan, sometimes left deployed — then
    /// usually remove it.
    Reconfigure(usize),
    /// Partition a switch's control link (channel schedules only).
    Partition(usize),
    /// Heal every partition and re-announce the fencing term.
    Heal,
    /// Flap a link: partition it, push a standby sync into the hole
    /// (commands to the flapped switch time out), then heal it.
    Flap(usize),
    /// Temporarily crank duplication + reordering to storm levels and
    /// drive a sync plus a deploy/remove cycle through the storm.
    DupStorm,
    /// Simulate a partitioned stale primary: rewind the controller's
    /// fencing term, issue a fleet-wide command, and require every
    /// switch to reject it with zero state change.
    SplitBrainProbe,
}

/// An invariant that failed after an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the event in the schedule (usize::MAX for a panic).
    pub event_index: usize,
    /// The event that was applied (or a description of the panic).
    pub event: String,
    /// What broke.
    pub detail: String,
}

/// Outcome of one seeded schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// The schedule's seed.
    pub seed: u64,
    /// Events applied.
    pub events: usize,
    /// Kills applied.
    pub kills: usize,
    /// Successful standby promotions.
    pub promotes: usize,
    /// Revivals applied.
    pub revives: usize,
    /// Reconfiguration attempts (including faulted ones).
    pub reconfigs: usize,
    /// Packets fed across all traffic slices.
    pub packets: u64,
    /// Packets explicitly lost by the end of the schedule.
    pub lost: u64,
    /// Control operations abandoned on a channel timeout (the command
    /// never applied; tolerated, not a violation).
    pub failed_ops: usize,
    /// Stale-term commands the switches fenced off (every one audited
    /// in the channel event log, none silently dropped).
    pub stale_rejects: u64,
    /// The control channel's full event log — empty without a channel;
    /// the determinism guard diffs two runs of the same seed over it.
    pub channel_events: Vec<String>,
    /// Every invariant failure, in schedule order.
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// True when the schedule completed with zero violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The sentinel heavy flow whose true count anchors invariant 3.
fn sentinel() -> Packet {
    Packet::tcp(0x0a00_00fe, 0x0a00_0001, 443, 50_000)
}

/// Deterministic traffic slice: ~25% sentinel packets, the rest spread
/// over a seeded flow population.
fn gen_slice(rng: &mut SplitMix64, packets: usize, true_sentinel: &mut u64) -> Vec<Packet> {
    let mut out = Vec::with_capacity(packets);
    for _ in 0..packets {
        if rng.next_u64().is_multiple_of(4) {
            *true_sentinel += 1;
            out.push(sentinel());
        } else {
            let src = 0xc0a8_0000 | (rng.next_u32() & 0x3ff);
            out.push(Packet::udp(src, 0x0a00_0001, rng.next_u16(), 53));
        }
    }
    out
}

fn ephemeral_def(tag: u64) -> TaskDefinition {
    TaskDefinition::builder(format!("chaos-ephemeral-{tag}"))
        .key(KeySpec::NONE)
        .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
        .memory(1024)
        .build()
}

/// Indices matching a liveness predicate.
fn pick(fleet: &SwitchFleet, rng: &mut SplitMix64, want_alive: bool) -> Option<usize> {
    let candidates: Vec<usize> = (0..fleet.len())
        .filter(|&i| fleet.is_alive(i) == want_alive)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[(rng.next_u64() % candidates.len() as u64) as usize])
    }
}

/// Invariant 5: a checkpoint captured at a batch boundary must restore
/// to bit-identical registers. The probe is private to the harness, so
/// moving its snapshot barrier here cannot disturb the fleet's
/// standby-sync deltas. Draws no randomness — schedule determinism is
/// untouched.
fn batch_boundary_restore_divergence(probe: &mut FlyMon) -> Option<String> {
    let chk = probe.checkpoint(CaptureMode::Full);
    let restored = match FlyMon::restore(&chk) {
        Ok(fm) => fm,
        Err(e) => return Some(format!("batch-boundary checkpoint failed to restore: {e}")),
    };
    for (g, (ga, gb)) in probe.groups().iter().zip(restored.groups()).enumerate() {
        for (c, (ca, cb)) in ga.cmus().iter().zip(gb.cmus()).enumerate() {
            let len = ca.register().len();
            let a = ca.register().read_range(0, len).expect("full range reads");
            let b = cb.register().read_range(0, len).expect("full range reads");
            if a != b {
                return Some(format!(
                    "batch-boundary restore diverged: group {g} cmu {c} registers differ"
                ));
            }
        }
    }
    None
}

fn check_invariants(
    fleet: &SwitchFleet,
    true_sentinel: u64,
    event_index: usize,
    event: &ChaosEvent,
    violations: &mut Vec<Violation>,
) {
    let mut fail = |detail: String| {
        violations.push(Violation {
            event_index,
            event: format!("{event:?}"),
            detail,
        })
    };
    for i in 0..fleet.len() {
        let divergences = fleet.switch(i).0.audit();
        if !divergences.is_empty() {
            fail(format!(
                "switch {i} audit found {} divergence(s): {:?}",
                divergences.len(),
                divergences[0]
            ));
        }
    }
    let ledger = fleet.ledger();
    if !ledger.balanced() {
        fail(format!("packet ledger out of balance: {ledger:?}"));
    }
    if fleet.alive_count() > 0 {
        match fleet.merged_frequency_bounded(&sentinel()) {
            Ok(b) if b.estimate + b.loss_bound < true_sentinel => fail(format!(
                "loss window bound broken: estimate {} + bound {} < true count {}",
                b.estimate, b.loss_bound, true_sentinel
            )),
            Ok(_) => {}
            Err(e) => fail(format!("merged readout failed with survivors alive: {e}")),
        }
    }
}

/// Runs one seeded schedule to completion and reports every violation.
/// Identical `(seed, cfg)` always produces the identical schedule,
/// traffic and report.
pub fn run_schedule(seed: u64, cfg: &ChaosConfig) -> ChaosReport {
    let mut rng = SplitMix64::new(seed);
    let def = TaskDefinition::builder("chaos-main")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build();
    let mut fleet = SwitchFleet::deploy(cfg.switches, cfg.config, &def)
        .expect("chaos fleet deploys cleanly");
    fleet.enable_standby();
    if let Some(ch) = &cfg.channel {
        // The channel's rng stream is derived from (not equal to) the
        // schedule seed, so channel rolls never perturb event rolls.
        fleet
            .attach_channel(seed ^ 0xC4A7_7E1C_0DE5_EED5, *ch)
            .expect("chaos channel config validates");
    }
    // Invariant 5's private probe: sees every traffic slice through the
    // batched datapath, checkpointed at each slice boundary.
    let mut probe = FlyMon::new(cfg.config);
    probe.deploy(&def).expect("chaos probe deploys cleanly");

    let mut report = ChaosReport {
        seed,
        ..ChaosReport::default()
    };
    let mut true_sentinel = 0u64;

    for event_index in 0..cfg.events {
        // Without a channel the roll table is byte-identical to the
        // pre-channel harness; with one, five channel-fault ranges are
        // appended (the 0..=99 core keeps its exact boundaries).
        let table = if cfg.channel.is_some() { 130 } else { 100 };
        let roll = rng.next_u64() % table;
        let event = match roll {
            0..=34 => ChaosEvent::Traffic {
                parallel: rng.next_u64().is_multiple_of(2),
                packets: cfg.slice_packets,
            },
            35..=49 => ChaosEvent::Sync,
            50..=64 => match pick(&fleet, &mut rng, true) {
                Some(i) => ChaosEvent::Kill(i),
                None => ChaosEvent::Sync,
            },
            65..=79 => match pick(&fleet, &mut rng, false) {
                Some(i) => ChaosEvent::Promote(i),
                None => ChaosEvent::Sync,
            },
            80..=89 => match pick(&fleet, &mut rng, false) {
                Some(i) => ChaosEvent::Revive(i),
                None => ChaosEvent::Sync,
            },
            90..=99 => match pick(&fleet, &mut rng, true) {
                Some(i) => ChaosEvent::Reconfigure(i),
                None => ChaosEvent::Sync,
            },
            100..=106 => ChaosEvent::Partition((rng.next_u64() % cfg.switches as u64) as usize),
            107..=112 => ChaosEvent::Heal,
            113..=118 => ChaosEvent::Flap((rng.next_u64() % cfg.switches as u64) as usize),
            119..=124 => ChaosEvent::DupStorm,
            _ => ChaosEvent::SplitBrainProbe,
        };

        match &event {
            ChaosEvent::Traffic { parallel, packets } => {
                let slice = gen_slice(&mut rng, *packets, &mut true_sentinel);
                report.packets += slice.len() as u64;
                if *parallel {
                    fleet.process_trace_parallel(&slice);
                } else {
                    fleet.process_trace(&slice);
                }
                probe.process_batch(&slice);
                if let Some(detail) = batch_boundary_restore_divergence(&mut probe) {
                    report.violations.push(Violation {
                        event_index,
                        event: format!("{event:?}"),
                        detail,
                    });
                }
            }
            ChaosEvent::Sync => {
                fleet.sync_standby();
            }
            ChaosEvent::Kill(i) => {
                fleet.fail_switch(*i);
                report.kills += 1;
            }
            ChaosEvent::Promote(i) => match fleet.promote_standby(*i) {
                Ok(_) => report.promotes += 1,
                // A promote command swallowed by a partitioned or lossy
                // channel never applied: the switch stays dead, the
                // schedule moves on — tolerated, not a violation.
                Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                Err(e) => report.violations.push(Violation {
                    event_index,
                    event: format!("{event:?}"),
                    detail: format!("promotion of a synced switch failed: {e}"),
                }),
            },
            ChaosEvent::Revive(i) => match fleet.revive_switch(*i) {
                Ok(()) => report.revives += 1,
                Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                Err(e) => report.violations.push(Violation {
                    event_index,
                    event: format!("{event:?}"),
                    detail: format!("revival of a deployed switch failed: {e}"),
                }),
            },
            ChaosEvent::Reconfigure(i) => {
                report.reconfigs += 1;
                if fleet.channel().is_some() && fleet.fully_alive() {
                    // Channel-routed: deploy fleet-wide, then (usually)
                    // remove, proving exactly-once application — a
                    // duplicated commit that applied twice would leave
                    // the per-switch task counts off by one.
                    let keep = rng.next_u64().is_multiple_of(4);
                    let def = ephemeral_def(rng.next_u64() % 1_000_000);
                    let before: Vec<usize> = (0..fleet.len())
                        .map(|s| fleet.switch(s).0.task_count())
                        .collect();
                    match fleet.deploy_task(&def) {
                        Ok(t) if !keep => match fleet.remove_task(t) {
                            Ok(()) => {
                                let after: Vec<usize> = (0..fleet.len())
                                    .map(|s| fleet.switch(s).0.task_count())
                                    .collect();
                                if after != before {
                                    report.violations.push(Violation {
                                        event_index,
                                        event: format!("{event:?}"),
                                        detail: format!(
                                            "exactly-once broken: task counts {before:?} -> \
                                             {after:?} after a deploy/remove cycle"
                                        ),
                                    });
                                }
                            }
                            Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                            Err(e) => report.violations.push(Violation {
                                event_index,
                                event: format!("{event:?}"),
                                detail: format!("channel-routed remove failed: {e}"),
                            }),
                        },
                        Ok(_) => {}
                        Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                        // Any other failure rolled back (the invariant
                        // check below proves it left no trace) — kept
                        // ephemerals can legitimately starve capacity.
                        Err(_) => {}
                    }
                } else {
                    let faulted = rng.next_u64().is_multiple_of(3);
                    let keep = rng.next_u64().is_multiple_of(4);
                    let def = ephemeral_def(rng.next_u64() % 1_000_000);
                    let fm = fleet.switch_mut(*i);
                    if faulted {
                        fm.arm_faults(FaultPlan::new(rng.next_u64()).fail_probability(0.5));
                    }
                    let deployed = fm.deploy(&def);
                    fm.disarm_faults();
                    if let Ok(h) = deployed {
                        if !keep {
                            let _ = fleet.switch_mut(*i).remove(h);
                        }
                    }
                    // A failed (faulted or capacity-starved) deploy
                    // rolled back; the invariant check below proves it
                    // left no trace.
                }
            }
            ChaosEvent::Partition(i) => {
                if let Some(ch) = fleet.channel_mut() {
                    ch.set_partitioned(*i, true);
                }
            }
            ChaosEvent::Heal => {
                if let Some(ch) = fleet.channel_mut() {
                    ch.heal_all();
                    // Reconnect handshake: re-announce the fencing term
                    // so a switch that missed a promotion's broadcast
                    // while partitioned cannot be captured by a stale
                    // primary (the lazy-propagation loophole).
                    ch.broadcast_term();
                }
            }
            ChaosEvent::Flap(i) => {
                if let Some(ch) = fleet.channel_mut() {
                    ch.set_partitioned(*i, true);
                }
                // Push a sync into the hole: commands to the flapped
                // switch burn their retry budget and time out; every
                // other switch ships normally.
                fleet.sync_standby();
                if let Some(ch) = fleet.channel_mut() {
                    ch.set_partitioned(*i, false);
                    ch.broadcast_term();
                }
            }
            ChaosEvent::DupStorm => {
                let base = fleet.channel().map(|c| *c.config());
                if let Some(base) = base {
                    fleet
                        .channel_mut()
                        .expect("channel checked above")
                        .set_rates(base.drop_rate, 0.5, 0.5)
                        .expect("storm rates validate");
                    fleet.sync_standby();
                    if fleet.fully_alive() {
                        let before: Vec<usize> = (0..fleet.len())
                            .map(|s| fleet.switch(s).0.task_count())
                            .collect();
                        let def = ephemeral_def(rng.next_u64() % 1_000_000);
                        match fleet.deploy_task(&def) {
                            Ok(t) => match fleet.remove_task(t) {
                                Ok(()) => {
                                    let after: Vec<usize> = (0..fleet.len())
                                        .map(|s| fleet.switch(s).0.task_count())
                                        .collect();
                                    if after != before {
                                        report.violations.push(Violation {
                                            event_index,
                                            event: format!("{event:?}"),
                                            detail: format!(
                                                "dup storm broke exactly-once: task counts \
                                                 {before:?} -> {after:?}"
                                            ),
                                        });
                                    }
                                }
                                Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                                Err(e) => report.violations.push(Violation {
                                    event_index,
                                    event: format!("{event:?}"),
                                    detail: format!("storm remove failed: {e}"),
                                }),
                            },
                            Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                            Err(_) => {}
                        }
                    }
                    fleet
                        .channel_mut()
                        .expect("channel checked above")
                        .set_rates(base.drop_rate, base.dup_rate, base.reorder_rate)
                        .expect("base rates validated at attach");
                }
            }
            ChaosEvent::SplitBrainProbe => {
                if fleet.channel().is_some() && fleet.fully_alive() {
                    // Make every switch current first: heal partitions
                    // and announce the term (minting one if no
                    // promotion has happened yet), so the rewound
                    // command below tests fencing, not propagation lag.
                    {
                        let ch = fleet.channel_mut().expect("channel checked above");
                        ch.heal_all();
                        if ch.term() == 0 {
                            ch.mint_term();
                        }
                    }
                    fleet
                        .channel_mut()
                        .expect("channel checked above")
                        .broadcast_term();
                    let term = fleet.channel().expect("channel checked above").term();
                    let before: Vec<usize> = (0..fleet.len())
                        .map(|s| fleet.switch(s).0.task_count())
                        .collect();
                    // The stale primary writes: rewind the controller's
                    // term and issue a fleet-wide deploy.
                    fleet
                        .channel_mut()
                        .expect("channel checked above")
                        .force_term(term - 1);
                    let def = ephemeral_def(rng.next_u64() % 1_000_000);
                    let outcome = fleet.deploy_task(&def);
                    fleet
                        .channel_mut()
                        .expect("channel checked above")
                        .force_term(term);
                    let after: Vec<usize> = (0..fleet.len())
                        .map(|s| fleet.switch(s).0.task_count())
                        .collect();
                    match outcome {
                        Err(FlymonError::Fenced { .. }) => {
                            if after != before {
                                report.violations.push(Violation {
                                    event_index,
                                    event: format!("{event:?}"),
                                    detail: format!(
                                        "fenced command still mutated state: task counts \
                                         {before:?} -> {after:?}"
                                    ),
                                });
                            }
                        }
                        Ok(_) => report.violations.push(Violation {
                            event_index,
                            event: format!("{event:?}"),
                            detail: "stale-term command was accepted: split brain".into(),
                        }),
                        // All-attempts-dropped is astronomically rare
                        // but possible; the command still never applied.
                        Err(FlymonError::ChannelTimeout { .. }) => report.failed_ops += 1,
                        Err(e) => report.violations.push(Violation {
                            event_index,
                            event: format!("{event:?}"),
                            detail: format!("split-brain probe failed unexpectedly: {e}"),
                        }),
                    }
                }
            }
        }

        check_invariants(
            &fleet,
            true_sentinel,
            event_index,
            &event,
            &mut report.violations,
        );
        report.events += 1;
    }

    // Settle: heal the control plane first (a schedule must not end
    // judged through a partition it injected itself), then one final
    // sync + promotion sweep over the dead, then a last full check so
    // no schedule ends in an unexamined state.
    if let Some(ch) = fleet.channel_mut() {
        ch.heal_all();
        ch.broadcast_term();
    }
    fleet.sync_standby();
    for i in 0..fleet.len() {
        if !fleet.is_alive(i) && fleet.promote_standby(i).is_ok() {
            report.promotes += 1;
        }
    }
    check_invariants(
        &fleet,
        true_sentinel,
        cfg.events,
        &ChaosEvent::Sync,
        &mut report.violations,
    );
    report.lost = fleet.lost_packets();
    if let Some(ch) = fleet.channel() {
        report.stale_rejects = ch.stats().stale_rejects;
        report.channel_events = ch.event_log().to_vec();
    }
    report
}

/// Runs many seeded schedules, converting panics into violations (a
/// panicking schedule is a bug, not a reason to stop soaking).
pub fn run_soak(seeds: impl IntoIterator<Item = u64>, cfg: &ChaosConfig) -> Vec<ChaosReport> {
    seeds
        .into_iter()
        .map(|seed| {
            catch_unwind(AssertUnwindSafe(|| run_schedule(seed, cfg))).unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                ChaosReport {
                    seed,
                    violations: vec![Violation {
                        event_index: usize::MAX,
                        event: "panic".into(),
                        detail: msg,
                    }],
                    ..ChaosReport::default()
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ingestion chaos: fault schedules against the streaming runtime.
// ---------------------------------------------------------------------------

/// Shape of one ingestion chaos schedule (see [`run_ingest_schedule`]).
#[derive(Debug, Clone)]
pub struct IngestChaosConfig {
    /// Fleet size under the streaming runtime.
    pub switches: usize,
    /// Chunks the source offers per schedule.
    pub chunks: usize,
    /// Packets per chunk at the baseline rate.
    pub base_chunk: usize,
    /// Ingress queue capacity.
    pub queue_capacity: usize,
    /// Worker drain budget per step.
    pub drain_chunk: usize,
    /// Switch geometry.
    pub config: FlyMonConfig,
}

impl Default for IngestChaosConfig {
    fn default() -> Self {
        IngestChaosConfig {
            switches: 3,
            chunks: 30,
            base_chunk: 1_024,
            queue_capacity: 4_096,
            drain_chunk: 1_024,
            config: FlyMonConfig {
                groups: 2,
                buckets_per_cmu: 16384,
                ..FlyMonConfig::default()
            },
        }
    }
}

/// Outcome of one seeded ingestion schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestChaosReport {
    /// The schedule's seed.
    pub seed: u64,
    /// Steps the runtime executed.
    pub steps: u64,
    /// Packets the source offered.
    pub offered: u64,
    /// Packets shed across all ladder rungs.
    pub shed: u64,
    /// Worker panics caught and supervised.
    pub recovered_panics: u64,
    /// Epoch rotations performed mid-stream.
    pub epochs: u64,
    /// The faults injected, rendered for replay diagnostics.
    pub faults: Vec<String>,
    /// Every invariant failure, in step order.
    pub violations: Vec<Violation>,
}

impl IngestChaosReport {
    /// True when the schedule completed with zero violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A chunked source with a burst window: chunks inside the window carry
/// `burst_factor`× the baseline packets — the input-burst ingestion
/// fault (the other faults are injected into the runtime itself).
/// Sentinel packets are woven in as in [`gen_slice`].
struct BurstChunks {
    rng: SplitMix64,
    chunks: usize,
    emitted: usize,
    base: usize,
    burst_from: usize,
    burst_len: usize,
    burst_factor: usize,
    true_sentinel: u64,
}

impl ChunkSource for BurstChunks {
    fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        if self.emitted >= self.chunks {
            return None;
        }
        let in_burst =
            self.emitted >= self.burst_from && self.emitted < self.burst_from + self.burst_len;
        let size = if in_burst {
            self.base * self.burst_factor
        } else {
            self.base
        };
        self.emitted += 1;
        Some(gen_slice(&mut self.rng, size, &mut self.true_sentinel))
    }
}

/// Runs one seeded ingestion schedule: a bursty sentinel-bearing stream
/// through a [`StreamingRuntime`] over a fresh fleet, with a seeded
/// subset of ingestion faults (queue stall, slow consumer, worker
/// panic) layered on top of a guaranteed 10× input burst. After every
/// step the harness asserts:
///
/// 1. **Stream ledger conserved** —
///    `fed == represented + shed + lost + dropped + in_flight`
///    ([`crate::ingest::StreamLedger::conserved`]).
/// 2. **Watch bound** — the sentinel flow's archived + live estimate
///    plus the explicit loss bound covers every sentinel packet the
///    worker has processed, across epoch rotations.
/// 3. **Audit clean** — every switch reconciles shadow state against
///    its data plane, including a replica respawned after a panic.
///
/// At quiescence the ledger must additionally collapse to the exact
/// form `fed == represented + shed + lost + dropped` (`in_flight == 0`)
/// and the runtime must settle back to `Healthy`.
pub fn run_ingest_schedule(seed: u64, cfg: &IngestChaosConfig) -> IngestChaosReport {
    let mut rng = SplitMix64::new(seed);
    let def = TaskDefinition::builder("ingest-chaos")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(8192)
        .build();
    let fleet = SwitchFleet::deploy(cfg.switches, cfg.config, &def)
        .expect("ingest chaos fleet deploys cleanly");

    let mut rt = StreamingRuntime::new(
        fleet,
        IngestConfig {
            queue_capacity: cfg.queue_capacity,
            drain_chunk: cfg.drain_chunk,
            backlog_limit: cfg.queue_capacity * 4,
            epoch_packets: cfg.base_chunk as u64 * (2 + rng.next_u64() % 6),
            sync_every_steps: 1,
            max_idle_steps: 64,
            seed: rng.next_u64(),
            ..IngestConfig::default()
        },
    );
    rt.watch(sentinel());

    let mut report = IngestChaosReport {
        seed,
        ..IngestChaosReport::default()
    };

    // The guaranteed burst: 10× the baseline chunk for a few chunks.
    let mut src = BurstChunks {
        rng: SplitMix64::new(rng.next_u64()),
        chunks: cfg.chunks,
        emitted: 0,
        base: cfg.base_chunk,
        burst_from: 2 + (rng.next_u64() % 8) as usize,
        burst_len: 2 + (rng.next_u64() % 4) as usize,
        burst_factor: 10,
        true_sentinel: 0,
    };
    report.faults.push(format!(
        "InputBurst {{ from_chunk: {}, chunks: {}, factor: 10 }}",
        src.burst_from, src.burst_len
    ));

    // A seeded subset of the runtime-side faults.
    if rng.chance(0.7) {
        let f = IngestFault::QueueStall {
            from_step: 2 + rng.next_u64() % 20,
            steps: 2 + rng.next_u64() % 6,
        };
        report.faults.push(format!("{f:?}"));
        rt.inject(f);
    }
    if rng.chance(0.7) {
        let f = IngestFault::SlowConsumer {
            from_step: 2 + rng.next_u64() % 25,
            steps: 2 + rng.next_u64() % 6,
            factor: 2 + (rng.next_u64() % 8) as usize,
        };
        report.faults.push(format!("{f:?}"));
        rt.inject(f);
    }
    if rng.chance(0.7) {
        let f = IngestFault::WorkerPanic {
            at_step: 2 + rng.next_u64() % 30,
            switch: (rng.next_u64() % cfg.switches as u64) as usize,
        };
        report.faults.push(format!("{f:?}"));
        rt.inject(f);
    }

    let mut step_index = 0usize;
    loop {
        let out = match rt.step(&mut src) {
            Ok(out) => out,
            Err(e) => {
                report.violations.push(Violation {
                    event_index: step_index,
                    event: "step".into(),
                    detail: format!("streaming step failed: {e}"),
                });
                break;
            }
        };
        let mut fail = |detail: String| {
            report.violations.push(Violation {
                event_index: step_index,
                event: format!("{out:?}"),
                detail,
            })
        };
        let ledger = rt.ledger();
        if !ledger.conserved() {
            fail(format!("stream ledger out of balance: {ledger:?}"));
        }
        if let Some((estimate, bound, processed)) = rt.watch_bound() {
            if estimate + bound < processed {
                fail(format!(
                    "watch bound broken: estimate {estimate} + bound {bound} < processed {processed}"
                ));
            }
        }
        for i in 0..rt.fleet().len() {
            let divergences = rt.fleet().switch(i).0.audit();
            if !divergences.is_empty() {
                fail(format!(
                    "switch {i} audit found {} divergence(s): {:?}",
                    divergences.len(),
                    divergences[0]
                ));
            }
        }
        step_index += 1;
        if out.source_dry && rt.ledger().in_flight == 0 {
            break;
        }
    }

    // Settle (final sync clears any pending recovery) and check the
    // quiescent invariants.
    let _ = rt.run(&mut src);
    let ledger = rt.ledger();
    if ledger.in_flight != 0 || !ledger.conserved() {
        report.violations.push(Violation {
            event_index: step_index,
            event: "settle".into(),
            detail: format!("quiescent ledger not conserved: {ledger:?}"),
        });
    }
    if rt.health() != RuntimeHealth::Healthy {
        report.violations.push(Violation {
            event_index: step_index,
            event: "settle".into(),
            detail: format!("runtime did not settle to Healthy: {:?}", rt.health()),
        });
    }

    let stats = rt.stats();
    report.steps = stats.steps;
    report.offered = stats.offered;
    report.shed = stats.shed();
    report.recovered_panics = stats.panics_recovered;
    report.epochs = stats.epochs_rotated;
    report
}

/// Runs many seeded ingestion schedules, converting panics into
/// violations — the streaming mirror of [`run_soak`].
pub fn run_ingest_soak(
    seeds: impl IntoIterator<Item = u64>,
    cfg: &IngestChaosConfig,
) -> Vec<IngestChaosReport> {
    seeds
        .into_iter()
        .map(|seed| {
            catch_unwind(AssertUnwindSafe(|| run_ingest_schedule(seed, cfg))).unwrap_or_else(
                |panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    IngestChaosReport {
                        seed,
                        violations: vec![Violation {
                            event_index: usize::MAX,
                            event: "panic".into(),
                            detail: msg,
                        }],
                        ..IngestChaosReport::default()
                    }
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChaosConfig {
        ChaosConfig {
            switches: 3,
            events: 15,
            slice_packets: 500,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn single_schedule_is_clean_and_eventful() {
        let report = run_schedule(0xC0FFEE, &quick());
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert_eq!(report.events, 15);
        assert!(report.packets > 0, "schedule fed no traffic");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_schedule(7, &quick());
        let b = run_schedule(7, &quick());
        assert_eq!(a, b, "chaos schedules must be seed-deterministic");
    }

    #[test]
    fn soak_over_several_seeds_is_clean() {
        let reports = run_soak(1..=4u64, &quick());
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.is_clean(), "seed {}: {:#?}", r.seed, r.violations);
        }
        // Across a few seeds the soak must actually exercise failover.
        let kills: usize = reports.iter().map(|r| r.kills).sum();
        let promotes: usize = reports.iter().map(|r| r.promotes).sum();
        assert!(kills > 0, "no schedule killed a switch");
        assert!(promotes > 0, "no schedule promoted the standby");
    }

    fn quick_channel() -> ChaosConfig {
        ChaosConfig {
            switches: 3,
            events: 20,
            slice_packets: 500,
            channel: Some(soak_channel_config()),
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn channel_schedule_is_clean_and_exercises_the_channel() {
        let report = run_schedule(0xFEED, &quick_channel());
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert!(
            !report.channel_events.is_empty(),
            "a channel schedule must log channel traffic"
        );
    }

    #[test]
    fn channel_schedule_is_seed_deterministic_including_event_log() {
        let a = run_schedule(42, &quick_channel());
        let b = run_schedule(42, &quick_channel());
        assert_eq!(a, b, "channel schedules must be seed-deterministic");
        assert_eq!(a.channel_events, b.channel_events);
    }

    #[test]
    fn channel_soak_exercises_partitions_and_fencing() {
        let reports = run_soak(1..=6u64, &quick_channel());
        for r in &reports {
            assert!(r.is_clean(), "seed {}: {:#?}", r.seed, r.violations);
        }
        let stale: u64 = reports.iter().map(|r| r.stale_rejects).sum();
        assert!(
            stale > 0,
            "six channel seeds must hit at least one split-brain probe"
        );
        let partitioned = reports
            .iter()
            .any(|r| r.channel_events.iter().any(|e| e.contains("partition")));
        assert!(partitioned, "no schedule partitioned a link");
    }

    fn quick_ingest() -> IngestChaosConfig {
        IngestChaosConfig {
            switches: 3,
            chunks: 16,
            base_chunk: 512,
            queue_capacity: 2_048,
            drain_chunk: 512,
            ..IngestChaosConfig::default()
        }
    }

    #[test]
    fn ingest_schedule_is_clean_and_sheds_under_burst() {
        let report = run_ingest_schedule(0xBEEF, &quick_ingest());
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert!(report.offered > 0);
        assert!(
            report.shed > 0,
            "a 10x burst over a small queue must shed: {report:?}"
        );
    }

    #[test]
    fn ingest_schedule_is_seed_deterministic() {
        let a = run_ingest_schedule(21, &quick_ingest());
        let b = run_ingest_schedule(21, &quick_ingest());
        assert_eq!(a, b, "ingestion schedules must be seed-deterministic");
    }

    #[test]
    fn ingest_soak_over_several_seeds_is_clean() {
        let reports = run_ingest_soak(1..=4u64, &quick_ingest());
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.is_clean(), "seed {}: {:#?}", r.seed, r.violations);
        }
        // Across a few seeds the soak must exercise supervision.
        let panics: u64 = reports.iter().map(|r| r.recovered_panics).sum();
        let epochs: u64 = reports.iter().map(|r| r.epochs).sum();
        assert!(panics > 0, "no schedule injected a worker panic");
        assert!(epochs > 0, "no schedule rotated an epoch");
    }
}
