//! Figure 12a: impact of reconfiguration on traffic forwarding.
//!
//! The model: 12 iPerf-like server–client pairs push TCP traffic whose
//! aggregate goodput wanders between 80 and 93 Gbps (TCP dynamics are
//! modeled as a bounded random walk — the paper's own plot shows exactly
//! that band). Reconfiguration events fire every 10 s:
//!
//! - **FlyMon** installs runtime rules; the install takes milliseconds
//!   and the data plane keeps forwarding — throughput is unaffected.
//! - **Static** reloads the P4 program; the pipeline goes down for
//!   4–8 s per reload (§5.1). The Static baseline also applies the
//!   paper's two optimizations: deletions are skipped, and consecutive
//!   critical events are batched into a single reload.
//! - **Bare** runs no measurement at all (the control curve).

use flymon_packet::SplitMix64;

/// The three data planes Figure 12a compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentStyle {
    /// No measurement functions at all.
    Bare,
    /// FlyMon: reconfiguration via runtime rules.
    FlyMon,
    /// Static: reconfiguration via P4 reload (with the paper's two
    /// optimizations: skip deletions, batch critical events).
    Static,
}

/// One reconfiguration event in the experiment timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigEvent {
    /// Deploy a new measurement task.
    AddTask,
    /// Remove a task (non-critical: Static skips it).
    DeleteTask,
    /// Change a task's memory allocation.
    Reallocate,
}

impl ReconfigEvent {
    /// Whether the static baseline must reload the pipeline for this
    /// event ("no reconfiguration when there is a task deletion event
    /// because it is not critical", §5.1).
    pub fn critical(self) -> bool {
        !matches!(self, ReconfigEvent::DeleteTask)
    }
}

/// Experiment configuration (defaults reproduce the paper's setup).
#[derive(Debug, Clone)]
pub struct ForwardingConfig {
    /// Total experiment duration in seconds (paper: 100 s).
    pub duration_s: f64,
    /// Sampling period of the throughput curve in seconds.
    pub sample_period_s: f64,
    /// The event timeline: `(time_s, event)` pairs (paper: e1..e9, one
    /// every 10 s).
    pub events: Vec<(f64, ReconfigEvent)>,
    /// Throughput band floor in Gbps (paper: ~80).
    pub min_gbps: f64,
    /// Throughput band ceiling in Gbps (paper: ~93).
    pub max_gbps: f64,
    /// RNG seed for the TCP random walk and outage lengths.
    pub seed: u64,
}

impl Default for ForwardingConfig {
    fn default() -> Self {
        use ReconfigEvent::*;
        // e1..e9 every 10 s: a mix of adds, reallocations and deletes.
        let kinds = [
            AddTask, AddTask, Reallocate, DeleteTask, AddTask, Reallocate, DeleteTask, AddTask,
            Reallocate,
        ];
        ForwardingConfig {
            duration_s: 100.0,
            sample_period_s: 0.5,
            events: kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| ((i as f64 + 1.0) * 10.0, k))
                .collect(),
            min_gbps: 80.0,
            max_gbps: 93.0,
            seed: 12,
        }
    }
}

/// One point of the throughput timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Sample time in seconds.
    pub time_s: f64,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
}

/// Runs the forwarding simulation for one deployment style.
pub fn run_forwarding(style: DeploymentStyle, config: &ForwardingConfig) -> Vec<ThroughputSample> {
    let mut rng = SplitMix64::new(config.seed);
    // Outage windows for the static baseline: 4-8 s per critical
    // reload, with consecutive critical events batched when their
    // windows would overlap.
    let mut outages: Vec<(f64, f64)> = Vec::new();
    if style == DeploymentStyle::Static {
        // The paper's second optimization: "batch two critical events
        // (i.e., add, reallocation) to a single reconfiguration" — the
        // reload is deferred until the second event of each pair.
        let critical: Vec<f64> = config
            .events
            .iter()
            .filter(|(_, e)| e.critical())
            .map(|&(t, _)| t)
            .collect();
        for pair in critical.chunks(2) {
            let t = *pair.last().unwrap();
            let len = rng.range_f64(4.0, 8.0);
            match outages.last_mut() {
                // Still merge if a previous outage runs into this one.
                Some((_, end)) if *end >= t => {
                    *end = (t + len).max(*end);
                }
                _ => outages.push((t, t + len)),
            }
        }
    }

    let mut samples = Vec::new();
    let mut level = (config.min_gbps + config.max_gbps) / 2.0;
    let mut t = 0.0;
    while t <= config.duration_s {
        // Bounded random walk inside the TCP band.
        level += rng.range_f64(-2.0, 2.0);
        level = level.clamp(config.min_gbps, config.max_gbps);
        let mut gbps = level;

        // FlyMon's reconfigurations are millisecond-scale rule installs:
        // invisible at the 0.5 s sampling period. Static outages zero
        // the goodput (TCP stalls while the pipeline reloads).
        if outages.iter().any(|&(s, e)| t >= s && t < e) {
            gbps = 0.0;
        }
        samples.push(ThroughputSample { time_s: t, gbps });
        t += config.sample_period_s;
    }
    samples
}

/// Seconds of (near-)zero throughput in a timeline — the outage total.
pub fn outage_seconds(samples: &[ThroughputSample], period_s: f64) -> f64 {
    samples.iter().filter(|s| s.gbps < 1.0).count() as f64 * period_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flymon_never_interrupts_traffic() {
        let cfg = ForwardingConfig::default();
        for style in [DeploymentStyle::FlyMon, DeploymentStyle::Bare] {
            let samples = run_forwarding(style, &cfg);
            assert!(
                samples.iter().all(|s| s.gbps >= cfg.min_gbps - 1e-9),
                "{style:?} dipped below the TCP band"
            );
        }
    }

    #[test]
    fn static_outages_are_4_to_8_seconds_each() {
        let cfg = ForwardingConfig::default();
        let samples = run_forwarding(DeploymentStyle::Static, &cfg);
        let outage = outage_seconds(&samples, cfg.sample_period_s);
        // Default timeline: 7 critical events; batching may merge some.
        let critical = cfg.events.iter().filter(|(_, e)| e.critical()).count() as f64;
        assert!(outage >= 4.0, "at least one reload outage: {outage}");
        assert!(
            outage <= critical * 8.0,
            "outage {outage} exceeds worst case"
        );
    }

    #[test]
    fn deletions_are_skipped_by_static() {
        let cfg = ForwardingConfig {
            events: vec![(10.0, ReconfigEvent::DeleteTask)],
            ..ForwardingConfig::default()
        };
        let samples = run_forwarding(DeploymentStyle::Static, &cfg);
        assert_eq!(outage_seconds(&samples, cfg.sample_period_s), 0.0);
    }

    #[test]
    fn throughput_stays_in_band() {
        let cfg = ForwardingConfig::default();
        let samples = run_forwarding(DeploymentStyle::Bare, &cfg);
        assert!(samples
            .iter()
            .all(|s| s.gbps >= 80.0 && s.gbps <= 93.0));
        assert_eq!(samples.len(), 201); // 100s at 0.5s period, inclusive
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ForwardingConfig::default();
        let a = run_forwarding(DeploymentStyle::Static, &cfg);
        let b = run_forwarding(DeploymentStyle::Static, &cfg);
        assert_eq!(a, b);
    }
}
