//! Switch-level simulation: the system experiments of §5.1.
//!
//! Two simulations substitute for the paper's hardware testbed
//! (Tofino + two iPerf servers on 100 Gbps NICs):
//!
//! - [`forwarding`]: the Figure 12a experiment — a switch forwarding
//!   ~80–93 Gbps of TCP traffic while reconfiguration events fire every
//!   10 s. FlyMon reconfigures by installing runtime rules (zero traffic
//!   impact, millisecond-scale); the *Static* baseline reloads the P4
//!   pipeline, interrupting traffic for 4–8 s.
//! - [`epochs`]: the Figure 12b experiment — a 20-epoch accuracy
//!   timeline with a flow spike, task insertion/removal and on-the-fly
//!   memory reallocation, comparing FlyMon against a statically
//!   provisioned sketch.
//!
//! [`datapath`] is the substrate both lean on for scale: a sharded,
//! multi-threaded trace replay whose merged readouts are bit-identical
//! to a serial single-switch replay for linear/max/OR-mergeable sketches.
//! [`fleet`] layers network-wide measurement (merged readouts, WAL-backed
//! switches, warm-standby failover) on top, [`adapt`] closes the loop
//! with an epoch-driven controller that grows, shrinks and splits tasks
//! from their own readouts, [`channel`] routes every controller→switch
//! command through a lossy, deterministic control channel (drops,
//! duplicates, reorders, partitions; exactly-once delivery and fencing
//! terms on top), and [`chaos`] soaks that machinery under randomized
//! seeded fault schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod channel;
pub mod chaos;
pub mod datapath;
pub mod epochs;
pub mod fleet;
pub mod forwarding;
pub mod ingest;
pub mod runner;

pub use adapt::{
    AdaptAction, AdaptiveController, ControllerConfig, ControllerReport, Decision, TaskSignals,
};
pub use channel::{ChannelConfig, ChannelStats, ControlChannel, ScriptStep, TxnResult};
pub use chaos::{
    run_ingest_schedule, run_ingest_soak, run_schedule, run_soak, soak_channel_config, ChaosConfig,
    ChaosReport, IngestChaosConfig, IngestChaosReport,
};
pub use datapath::{
    scan_row, MergeLaw, ReplayMode, ReplayStats, RowOccupancy, ShardedDatapath, WorkerStats,
    MERGE_LANES,
};
pub use epochs::{run_accuracy_timeline, AccuracyPoint, EpochTimelineConfig};
pub use fleet::{
    BoundedEstimate, EpochReadout, FleetEpoch, FleetTaskInfo, PacketLedger, SwitchFleet, TaskEpoch,
};
pub use ingest::{
    AdmissionConfig, BoundedQueue, ChunkSource, IngestConfig, IngestError, IngestFault,
    QueueStats, RuntimeHealth, RuntimeReport, RuntimeStats, StepOutcome, StreamLedger,
    StreamingRuntime, TraceChunks,
};
pub use runner::run_epochs;
pub use forwarding::{
    run_forwarding, DeploymentStyle, ForwardingConfig, ReconfigEvent, ThroughputSample,
};
