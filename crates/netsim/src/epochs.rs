//! Figure 12b: impact of reconfiguration on measurement accuracy.
//!
//! A 20-epoch timeline with a traffic spike in the middle. Task A (a
//! per-source frequency task) runs throughout on both systems:
//!
//! - **FlyMon** inserts task B at epoch 3 and removes it at epoch 10
//!   (same CMU Group — proving insertion/removal does not perturb A),
//!   grows A's memory at epoch 6 to ride the spike and shrinks it at
//!   epoch 16.
//! - **Static** keeps its compile-time allocation; the spike overloads
//!   it and its ARE blows up (the paper reports 15× higher ARE).

use flymon::prelude::*;
use flymon_packet::{KeySpec, TaskFilter};
use flymon_traffic::gen::{SpikeConfig, TraceGenerator};
use flymon_traffic::ground_truth::GroundTruth;
use flymon_traffic::metrics::average_relative_error;

/// Configuration of the accuracy-timeline experiment.
#[derive(Debug, Clone)]
pub struct EpochTimelineConfig {
    /// The traffic timeline (epochs, flows, spike window).
    pub traffic: SpikeConfig,
    /// Task A's baseline buckets per row.
    pub base_buckets: usize,
    /// Task A's buckets per row while the spike is handled.
    pub grown_buckets: usize,
    /// Epoch (0-based) at which FlyMon inserts task B (paper: 3).
    pub insert_b_at: usize,
    /// Epoch at which FlyMon removes task B (paper: 10).
    pub remove_b_at: usize,
    /// Epoch at which FlyMon grows task A's memory (paper: 6).
    pub grow_at: usize,
    /// Epoch at which FlyMon shrinks it back (paper: 16).
    pub shrink_at: usize,
    /// Buckets per CMU register of the simulated switch.
    pub buckets_per_cmu: usize,
    /// Optional fault plan armed on the FlyMon switch for the duration
    /// of the timeline. Reconfigurations that fail under it roll back
    /// and are reported as events; the timeline (and task A) carries on.
    pub faults: Option<FaultPlan>,
}

impl Default for EpochTimelineConfig {
    fn default() -> Self {
        EpochTimelineConfig {
            traffic: SpikeConfig::default(),
            base_buckets: 16384,
            grown_buckets: 65536,
            insert_b_at: 2,
            remove_b_at: 9,
            grow_at: 5,
            shrink_at: 15,
            buckets_per_cmu: 65536,
            faults: None,
        }
    }
}

/// One epoch's outcome.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Distinct flows in the epoch (task A's key).
    pub flows: usize,
    /// Task A's ARE under FlyMon.
    pub flymon_are: f64,
    /// Task A's ARE under the static deployment.
    pub static_are: f64,
    /// Task A's current per-row allocation under FlyMon.
    pub flymon_buckets: usize,
    /// Reconfiguration events applied before this epoch.
    pub events: Vec<&'static str>,
}

fn task_a(buckets: usize) -> TaskDefinition {
    // Task A takes two of the group's three CMUs and task B the third:
    // same CMU Group, disjoint CMUs — a CMU executes one task per
    // packet, so two all-traffic tasks cannot share one CMU (§3.3).
    TaskDefinition::builder("task-A")
        .key(KeySpec::SRC_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 2 })
        .memory(buckets)
        .filter(TaskFilter::ANY)
        .build()
}

fn task_b(buckets: usize) -> TaskDefinition {
    TaskDefinition::builder("task-B")
        .key(KeySpec::DST_IP)
        .attribute(Attribute::frequency_packets())
        .algorithm(Algorithm::Cms { d: 1 })
        .memory(buckets)
        .build()
}

/// Runs the timeline; returns one point per epoch.
pub fn run_accuracy_timeline(config: &EpochTimelineConfig) -> Vec<AccuracyPoint> {
    let mut generator = TraceGenerator::new(config.traffic.seed);
    let timeline = generator.spike_timeline(&config.traffic);

    let fm_config = FlyMonConfig {
        groups: 2,
        buckets_per_cmu: config.buckets_per_cmu,
        ..FlyMonConfig::default()
    };
    let mut flymon = FlyMon::new(fm_config);
    let mut static_dep = FlyMon::new(fm_config);

    // Task A must land before faults are armed — it is the measurement
    // under test; the faults exercise the *reconfigurations* around it.
    let mut a_fly = flymon.deploy(&task_a(config.base_buckets)).expect("deploy A");
    let a_static = static_dep
        .deploy(&task_a(config.base_buckets))
        .expect("deploy static A");
    if let Some(plan) = config.faults.clone() {
        flymon.arm_faults(plan);
    }
    let mut b_fly = None;
    let mut fly_buckets = config.base_buckets;

    // Attempts a memory reallocation, degrading gracefully: a failed
    // call either leaves the task at its old geometry (possibly under a
    // restored handle) or — in the pathological double-failure — loses
    // it; either way the timeline continues.
    let realloc = |fm: &mut FlyMon,
                       handle: &mut TaskHandle,
                       buckets: usize,
                       ok: &'static str,
                       failed: &'static str|
     -> Option<&'static str> {
        match fm.reallocate_memory(*handle, buckets) {
            Ok(h) => {
                *handle = h;
                Some(ok)
            }
            Err(FlymonError::ReallocationReverted { restored }) => {
                *handle = restored;
                Some(failed)
            }
            Err(_) => Some(failed),
        }
    };

    let mut points = Vec::with_capacity(timeline.len());
    for (e, trace) in timeline.iter().enumerate() {
        let mut events = Vec::new();
        // Reconfiguration events fire at epoch boundaries, before the
        // epoch's traffic, and only on FlyMon. Under an armed fault
        // plan any of them may fail; failures roll back cleanly and
        // become events instead of panics.
        if e == config.insert_b_at {
            match flymon.deploy(&task_b(config.base_buckets)) {
                Ok(h) => {
                    b_fly = Some(h);
                    events.push("insert task B");
                }
                Err(_) => events.push("insert task B failed (rolled back)"),
            }
        }
        if e == config.remove_b_at {
            if let Some(b) = b_fly.take() {
                match flymon.remove(b) {
                    Ok(()) => events.push("remove task B"),
                    Err(_) => {
                        // Removal failed; the task is still deployed.
                        b_fly = Some(b);
                        events.push("remove task B failed (still deployed)");
                    }
                }
            }
        }
        if e == config.grow_at {
            if let Some(ev) = realloc(
                &mut flymon,
                &mut a_fly,
                config.grown_buckets,
                "grow task A memory",
                "grow task A failed (reverted)",
            ) {
                if ev == "grow task A memory" {
                    fly_buckets = config.grown_buckets;
                }
                events.push(ev);
            }
        }
        if e == config.shrink_at {
            if let Some(ev) = realloc(
                &mut flymon,
                &mut a_fly,
                config.base_buckets,
                "shrink task A memory",
                "shrink task A failed (reverted)",
            ) {
                if ev == "shrink task A memory" {
                    fly_buckets = config.base_buckets;
                }
                events.push(ev);
            }
        }
        // The control plane's shadow state must mirror the data plane
        // after every reconfiguration wave, faults or not.
        debug_assert!(flymon.audit().is_empty(), "audit: {:?}", flymon.audit());

        flymon.process_trace(trace);
        static_dep.process_trace(trace);

        // Per-epoch ARE of task A over every flow of the epoch.
        let truth = GroundTruth::packet_counts(trace, KeySpec::SRC_IP);
        let mut representative = std::collections::HashMap::new();
        for p in trace {
            representative
                .entry(KeySpec::SRC_IP.extract(p))
                .or_insert(*p);
        }
        let are_of = |fm: &FlyMon, h| {
            average_relative_error(truth.frequency.iter().map(|(k, &v)| (*k, v)), |k| {
                fm.query_frequency(h, &representative[k]) as f64
            })
        };
        points.push(AccuracyPoint {
            epoch: e,
            flows: truth.cardinality(),
            flymon_are: are_of(&flymon, a_fly),
            static_are: are_of(&static_dep, a_static),
            flymon_buckets: fly_buckets,
            events,
        });

        // Epoch boundary: read out and reset. A fault-failed reset
        // restores the partitions it touched; the counts then simply
        // carry into the next epoch.
        let _ = flymon.reset_task(a_fly);
        if let Some(b) = b_fly {
            let _ = flymon.reset_task(b);
        }
        static_dep.reset_task(a_static).expect("reset static A");
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EpochTimelineConfig {
        EpochTimelineConfig {
            traffic: SpikeConfig {
                epochs: 8,
                base_flows: 400,
                spike_flows: 1600,
                spike_start: 3,
                spike_end: 5,
                base_packets: 8_000,
                epoch_ns: 10_000_000,
                seed: 5,
            },
            base_buckets: 1024,
            grown_buckets: 4096,
            insert_b_at: 1,
            remove_b_at: 6,
            grow_at: 3,
            shrink_at: 7,
            buckets_per_cmu: 4096,
            faults: None,
        }
    }

    #[test]
    fn spike_hurts_static_but_not_flymon() {
        let points = run_accuracy_timeline(&tiny_config());
        assert_eq!(points.len(), 8);
        // During the spike, the statically provisioned task degrades
        // far more than FlyMon's reallocated one.
        let spike = &points[4];
        assert!(
            spike.static_are > 3.0 * spike.flymon_are,
            "static {:.3} vs flymon {:.3}",
            spike.static_are,
            spike.flymon_are
        );
        // Before the spike the two are comparable.
        let calm = &points[0];
        assert!(
            calm.static_are < 0.6 && calm.flymon_are < 0.6,
            "calm-epoch AREs should be small: {:.3} / {:.3}",
            calm.static_are,
            calm.flymon_are
        );
    }

    #[test]
    fn task_b_churn_does_not_disturb_task_a() {
        let points = run_accuracy_timeline(&tiny_config());
        // Epoch 1 inserts task B; epoch 2 runs with it; both pre-spike
        // epochs should stay accurate.
        for e in [1usize, 2] {
            assert!(
                points[e].flymon_are < 0.6,
                "epoch {e} ARE {:.3} too high after B churn",
                points[e].flymon_are
            );
        }
        assert!(points[1].events.contains(&"insert task B"));
        assert!(points[6].events.contains(&"remove task B"));
    }

    #[test]
    fn faulted_insert_rolls_back_and_timeline_survives() {
        // Ops 1–2 are epoch 0's boundary reset of task A (two register
        // writes, d=2); op 3 is the first install op of task B's deploy
        // at epoch 1. B never lands, the failure surfaces as an event,
        // and task A keeps measuring accurately through the timeline.
        let mut config = tiny_config();
        config.faults = Some(FaultPlan::new(3).fail_nth(3));
        let points = run_accuracy_timeline(&config);
        assert_eq!(points.len(), 8);
        assert!(points[1]
            .events
            .contains(&"insert task B failed (rolled back)"));
        // B was never deployed, so there is nothing to remove.
        assert!(points[6].events.is_empty(), "{:?}", points[6].events);
        // Later reconfigurations are past the Nth op and still land.
        assert!(points[3].events.contains(&"grow task A memory"));
        // Task A rides the spike exactly as in the fault-free run.
        assert!(
            points[4].flymon_are < 0.6,
            "spike ARE {:.3}",
            points[4].flymon_are
        );
    }

    #[test]
    fn memory_events_fire_in_order() {
        let points = run_accuracy_timeline(&tiny_config());
        assert!(points[3].events.contains(&"grow task A memory"));
        assert!(points[7].events.contains(&"shrink task A memory"));
        assert_eq!(points[3].flymon_buckets, 4096);
        assert_eq!(points[7].flymon_buckets, 1024);
        // Flow counts reflect the spike window.
        assert!(points[4].flows > points[0].flows * 3);
    }
}
