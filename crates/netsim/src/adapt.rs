//! Closed-loop adaptive reconfiguration: the controller that makes
//! FlyMon's *on-the-fly* reconfigurability earn its keep.
//!
//! The paper's central claim (§1, §6) is that tasks can be deployed,
//! resized and split at runtime without touching the pipeline. This
//! module closes the loop around that capability: at every epoch
//! boundary the controller reads the fleet's archived readout
//! ([`FleetEpoch`]), computes per-task health signals, and — through
//! the same transactional, WAL-logged control plane every other
//! reconfiguration uses — grows saturating tasks, shrinks idle ones,
//! and splits a task that is still saturating at its memory ceiling
//! into per-prefix children (§3.1.1 task splitting).
//!
//! # Signals
//!
//! All signals derive from the epoch's merged rows alone (no second
//! readout pass):
//!
//! - **fill** — the max over rows of the nonzero-bucket fraction; low
//!   fill means the allocation is oversized for the epoch's flow count.
//! - **saturation** — the max over rows of the fraction of buckets
//!   pinned at the row's register ceiling ([`TaskEpoch::row_caps`]);
//!   Cond-ADD saturates rather than wraps, so any saturated bucket is
//!   a flow whose count the task can no longer resolve.
//! - **churn** — one minus the Jaccard similarity between this epoch's
//!   and the previous epoch's heavy-bucket sets (the top-K row-0
//!   buckets by value): a proxy for heavy-hitter turnover. High churn
//!   means the traffic mix is moving and shrinking would be premature.
//! - **loss delta** — packets newly lost to failures this epoch; any
//!   loss marks the epoch unstable and vetoes shrinking.
//!
//! # Hysteresis
//!
//! Three mechanisms keep the loop from thrashing:
//!
//! 1. a **deadband** between the grow and shrink fill thresholds — a
//!    task between them is left alone;
//! 2. a per-task **cooldown** of [`ControllerConfig::cooldown_epochs`]
//!    epochs after any action (keyed by task *name*, which survives
//!    index shifts when the task list grows);
//! 3. a per-epoch **budget** of at most
//!    [`ControllerConfig::epoch_budget`] reconfigurations, bounding the
//!    control-plane rate no matter how many tasks want attention.
//!
//! # Audit trail
//!
//! Every action flows through [`SwitchFleet::reallocate_task`] /
//! [`SwitchFleet::split_task`], so each per-switch mutation is WAL-
//! logged before it lands. The controller records a [`Decision`] per
//! action carrying the signals that justified it and the switch-0 WAL
//! sequence number after it committed — a standby promotion replays the
//! same records, so an adapted fleet recovers to its adapted shape (the
//! integration tests assert exactly that).
//!
//! The controller never acts on a degraded fleet: the caller passes
//! `paused = true` (the streaming runtime does so whenever its health
//! machine is off `Healthy`), and the controller itself refuses when
//! any switch is dead — reconfiguring around a corpse would fork the
//! fleet's task list.

use std::collections::HashMap;

use flymon::FlymonError;

use crate::fleet::{FleetEpoch, SwitchFleet, TaskEpoch};

/// Thresholds and hysteresis knobs of the [`AdaptiveController`].
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Grow when a task's fill reaches this fraction (collision
    /// pressure: most buckets already carry a flow).
    pub grow_fill: f64,
    /// Grow when any row has at least this fraction of buckets pinned
    /// at the register ceiling (counts are being clipped).
    pub grow_saturation: f64,
    /// Shrink when fill is at or below this fraction; must sit well
    /// below `grow_fill` — the gap is the deadband.
    pub shrink_fill: f64,
    /// Shrinking also requires churn at or below this (a stable mix).
    pub max_shrink_churn: f64,
    /// Multiplier applied to the requested buckets on grow.
    pub grow_factor: f64,
    /// Multiplier applied on shrink (must be < 1).
    pub shrink_factor: f64,
    /// Floor for requested buckets; shrinks never go below it.
    pub min_buckets: usize,
    /// Ceiling for requested buckets; a task saturating here becomes a
    /// split candidate instead.
    pub max_buckets: usize,
    /// Epochs a task rests after any action taken on it.
    pub cooldown_epochs: u64,
    /// Maximum reconfigurations per epoch across all tasks.
    pub epoch_budget: usize,
    /// Heavy-bucket set size used by the churn signal.
    pub churn_top_k: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            grow_fill: 0.5,
            grow_saturation: 0.005,
            shrink_fill: 0.15,
            max_shrink_churn: 0.5,
            grow_factor: 2.0,
            shrink_factor: 0.5,
            min_buckets: 1_024,
            max_buckets: 1 << 16,
            cooldown_epochs: 2,
            epoch_budget: 1,
            churn_top_k: 64,
        }
    }
}

/// The per-task health signals one epoch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSignals {
    /// Task name at observation time.
    pub name: String,
    /// Max over rows of the nonzero-bucket fraction.
    pub fill: f64,
    /// Max over rows of the at-ceiling bucket fraction.
    pub saturation: f64,
    /// Heavy-bucket turnover vs the previous epoch; `None` on a task's
    /// first observation (nothing to compare against).
    pub churn: Option<f64>,
    /// Packets newly lost to failures fleet-wide this epoch.
    pub loss_delta: u64,
}

/// What the controller did to a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptAction {
    /// Requested buckets raised `from -> to`.
    Grow {
        /// Buckets before.
        from: usize,
        /// Buckets after.
        to: usize,
    },
    /// Requested buckets lowered `from -> to`.
    Shrink {
        /// Buckets before.
        from: usize,
        /// Buckets after.
        to: usize,
    },
    /// The task split into two per-prefix children.
    Split {
        /// Name of the low-half child.
        low: String,
        /// Name of the high-half child.
        high: String,
    },
}

/// One reconfiguration the controller issued, with its justification
/// and WAL anchor — the unit of the audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The controller epoch (1-based) the decision fired in.
    pub epoch: u64,
    /// The task acted on (its name *before* the action; a split's
    /// children are in the action itself).
    pub task: String,
    /// What was done.
    pub action: AdaptAction,
    /// The signals that justified it.
    pub signals: TaskSignals,
    /// Switch 0's WAL sequence number after the action committed: the
    /// log suffix up to here contains every record the action wrote,
    /// so a recovery replaying past this point reproduces the
    /// reconfigured task list.
    pub wal_seq: u64,
}

/// Lifetime counters and the full decision log of a controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerReport {
    /// Epochs observed (including paused ones).
    pub epochs_seen: u64,
    /// Epochs on which adaptation was paused (degraded runtime or a
    /// not-fully-alive fleet).
    pub paused_epochs: u64,
    /// Grow actions issued.
    pub grows: u64,
    /// Shrink actions issued.
    pub shrinks: u64,
    /// Split actions issued.
    pub splits: u64,
    /// Desired actions suppressed by a per-task cooldown.
    pub skipped_cooldown: u64,
    /// Desired actions suppressed by the per-epoch budget.
    pub skipped_budget: u64,
    /// Actions abandoned because the control channel timed out before
    /// the command could be applied everywhere. The channel's
    /// outcome-determinacy contract plus the fleet ops' unwind keep the
    /// task list authoritative, so the action is simply dropped; the
    /// task still enters cooldown, which turns a flapping channel into
    /// a paced retry instead of a hammering loop.
    pub channel_timeouts: u64,
    /// Every action issued, in order.
    pub decisions: Vec<Decision>,
}

impl ControllerReport {
    /// Total actions issued.
    pub fn actions(&self) -> u64 {
        self.grows + self.shrinks + self.splits
    }
}

/// The epoch-driven closed-loop controller. One instance follows one
/// fleet; feed it every [`SwitchFleet::rotate_epoch_all`] readout via
/// [`AdaptiveController::on_epoch`].
#[derive(Debug)]
pub struct AdaptiveController {
    cfg: ControllerConfig,
    epoch: u64,
    /// Task name -> first epoch it may act again.
    cooldown_until: HashMap<String, u64>,
    /// Task name -> previous epoch's heavy row-0 bucket indices.
    prev_heavy: HashMap<String, Vec<usize>>,
    prev_lost: u64,
    report: ControllerReport,
}

impl AdaptiveController {
    /// A controller with the given policy.
    pub fn new(cfg: ControllerConfig) -> Self {
        AdaptiveController {
            cfg,
            epoch: 0,
            cooldown_until: HashMap::new(),
            prev_heavy: HashMap::new(),
            prev_lost: 0,
            report: ControllerReport::default(),
        }
    }

    /// The audit trail so far.
    pub fn report(&self) -> &ControllerReport {
        &self.report
    }

    /// The policy in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Signals for one task epoch, given the fleet-wide loss delta.
    ///
    /// A fleet-rotated epoch carries occupancy counters and the row-0
    /// heavy-candidate set computed during the merge itself
    /// ([`TaskEpoch::occupancy`], [`TaskEpoch::heavy_candidates`]), so
    /// fill/saturation cost nothing here and the churn signal only
    /// ranks the candidates instead of rescanning the row. Hand-built
    /// epochs without fused stats fall back to the full scan; both
    /// paths produce identical signals.
    fn signals(epoch: &TaskEpoch, loss_delta: u64, prev: Option<&Vec<usize>>, top_k: usize) -> (TaskSignals, Vec<usize>) {
        let mut fill = 0.0f64;
        let mut saturation = 0.0f64;
        let fused = epoch.occupancy.len() == epoch.rows.len();
        if fused {
            for (row, occ) in epoch.rows.iter().zip(&epoch.occupancy) {
                if row.is_empty() {
                    continue;
                }
                let n = row.len() as f64;
                fill = fill.max(occ.nonzero as f64 / n);
                saturation = saturation.max(occ.saturated as f64 / n);
            }
        } else {
            for (row, &cap) in epoch.rows.iter().zip(&epoch.row_caps) {
                if row.is_empty() {
                    continue;
                }
                let n = row.len() as f64;
                let nonzero = row.iter().filter(|&&v| v > 0).count() as f64;
                let at_cap = row.iter().filter(|&&v| v >= cap).count() as f64;
                fill = fill.max(nonzero / n);
                saturation = saturation.max(at_cap / n);
            }
        }
        let row0 = epoch.rows.first().map_or(&[][..], |r| r.as_slice());
        let candidates_valid = fused
            && epoch
                .heavy_candidates
                .last()
                .is_none_or(|&i| (i as usize) < row0.len());
        let heavy = if candidates_valid {
            // The candidates are exactly row 0's nonzero indices in
            // ascending order — the same set heavy_buckets filters —
            // so ranking them reproduces heavy_buckets bit for bit.
            let mut idx: Vec<usize> =
                epoch.heavy_candidates.iter().map(|&i| i as usize).collect();
            idx.sort_unstable_by(|&a, &b| row0[b].cmp(&row0[a]).then(a.cmp(&b)));
            idx.truncate(top_k);
            idx
        } else {
            heavy_buckets(row0, top_k)
        };
        let churn = prev.map(|p| 1.0 - jaccard(p, &heavy));
        (
            TaskSignals {
                name: epoch.name.clone(),
                fill,
                saturation,
                churn,
                loss_delta,
            },
            heavy,
        )
    }

    /// Observes one rotated epoch and (unless `paused`) issues at most
    /// [`ControllerConfig::epoch_budget`] reconfigurations through the
    /// fleet's transactional control plane. Returns the decisions
    /// taken this epoch (also appended to the report's audit trail).
    ///
    /// Pass `paused = true` while the surrounding runtime is degraded —
    /// signals are still ingested (so churn stays continuous) but no
    /// action fires. A fleet with any dead switch pauses itself for the
    /// same reason reconfiguration ops refuse it.
    ///
    /// Errors propagate from the underlying fleet ops; the fleet's
    /// per-switch control planes stay audit-clean in that case and the
    /// caller should stop adapting until the fleet heals.
    pub fn on_epoch(
        &mut self,
        fleet: &mut SwitchFleet,
        epoch: &FleetEpoch,
        paused: bool,
    ) -> Result<Vec<Decision>, FlymonError> {
        self.epoch += 1;
        self.report.epochs_seen += 1;
        let lost = fleet.lost_packets();
        let loss_delta = lost.saturating_sub(self.prev_lost);
        self.prev_lost = lost;

        // Ingest signals for every task first (even when paused, so the
        // churn baseline survives degradation windows).
        let mut all_signals = Vec::with_capacity(epoch.tasks.len());
        let mut next_heavy = HashMap::with_capacity(epoch.tasks.len());
        for te in &epoch.tasks {
            let (sig, heavy) = Self::signals(
                te,
                loss_delta,
                self.prev_heavy.get(&te.name),
                self.cfg.churn_top_k,
            );
            next_heavy.insert(te.name.clone(), heavy);
            all_signals.push(sig);
        }
        self.prev_heavy = next_heavy;

        let paused = paused || !fleet.fully_alive();
        if paused {
            self.report.paused_epochs += 1;
            return Ok(Vec::new());
        }

        let mut budget = self.cfg.epoch_budget;
        let mut taken = Vec::new();
        // Index tasks by name once; split replaces the acted slot and
        // appends, reallocation shifts nothing — so the indices of the
        // *other* entries stay valid across applications.
        let infos = fleet.task_infos();
        for sig in all_signals {
            let Some(info) = infos.iter().find(|i| i.name == sig.name) else {
                continue; // renamed/removed out from under us; skip
            };
            let want = self.desired_action(&sig, info.requested_buckets, info.filter.split().is_some());
            let Some(action) = want else { continue };
            // A task rests for `cooldown_epochs` full epochs after an
            // action: acted at epoch e, eligible again at e + cooldown + 1.
            if self
                .cooldown_until
                .get(&sig.name)
                .is_some_and(|&until| self.epoch <= until)
            {
                self.report.skipped_cooldown += 1;
                continue;
            }
            if budget == 0 {
                self.report.skipped_budget += 1;
                continue;
            }
            // Apply through the transactional control plane. A lossy
            // control channel can time a command out; that is a
            // transient, not a controller bug — abandon the action,
            // rest the task, and retry at the adaptation cadence.
            match &action {
                AdaptAction::Grow { to, .. } | AdaptAction::Shrink { to, .. } => {
                    match fleet.reallocate_task(info.index, *to) {
                        Ok(()) => {}
                        Err(FlymonError::ChannelTimeout { .. }) => {
                            self.report.channel_timeouts += 1;
                            self.cooldown_until
                                .insert(sig.name.clone(), self.epoch + self.cfg.cooldown_epochs);
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                    self.cooldown_until
                        .insert(sig.name.clone(), self.epoch + self.cfg.cooldown_epochs);
                }
                AdaptAction::Split { low, high } => {
                    match fleet.split_task(info.index) {
                        Ok(_) => {}
                        Err(FlymonError::ChannelTimeout { .. }) => {
                            self.report.channel_timeouts += 1;
                            self.cooldown_until
                                .insert(sig.name.clone(), self.epoch + self.cfg.cooldown_epochs);
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                    // Both children rest; the parent name retires.
                    self.cooldown_until
                        .insert(low.clone(), self.epoch + self.cfg.cooldown_epochs);
                    self.cooldown_until
                        .insert(high.clone(), self.epoch + self.cfg.cooldown_epochs);
                    self.cooldown_until.remove(&sig.name);
                }
            }
            match &action {
                AdaptAction::Grow { .. } => self.report.grows += 1,
                AdaptAction::Shrink { .. } => self.report.shrinks += 1,
                AdaptAction::Split { .. } => self.report.splits += 1,
            }
            budget -= 1;
            let decision = Decision {
                epoch: self.epoch,
                task: sig.name.clone(),
                action,
                signals: sig,
                wal_seq: wal_anchor(fleet),
            };
            self.report.decisions.push(decision.clone());
            taken.push(decision);
        }
        Ok(taken)
    }

    /// The action the policy wants for `sig`, before hysteresis.
    fn desired_action(
        &self,
        sig: &TaskSignals,
        requested: usize,
        splittable: bool,
    ) -> Option<AdaptAction> {
        let pressured = sig.saturation >= self.cfg.grow_saturation || sig.fill >= self.cfg.grow_fill;
        if pressured {
            if requested >= self.cfg.max_buckets {
                if splittable {
                    return Some(AdaptAction::Split {
                        low: format!("{}/0", sig.name),
                        high: format!("{}/1", sig.name),
                    });
                }
                return None; // at the ceiling, unsplittable: stuck
            }
            let to = ((requested as f64 * self.cfg.grow_factor) as usize)
                .min(self.cfg.max_buckets)
                .max(requested + 1);
            return Some(AdaptAction::Grow { from: requested, to });
        }
        let stable = sig.churn.is_some_and(|c| c <= self.cfg.max_shrink_churn);
        if sig.fill <= self.cfg.shrink_fill
            && stable
            && sig.loss_delta == 0
            && requested > self.cfg.min_buckets
        {
            let to = ((requested as f64 * self.cfg.shrink_factor) as usize)
                .max(self.cfg.min_buckets)
                .min(requested - 1);
            return Some(AdaptAction::Shrink { from: requested, to });
        }
        None
    }
}

/// Switch 0's WAL high-water mark (0 when no WAL is attached). Every
/// fleet switch sees the same logged operations in the same order, so
/// one anchor describes the fleet.
fn wal_anchor(fleet: &SwitchFleet) -> u64 {
    if fleet.is_empty() {
        return 0;
    }
    fleet.switch(0).0.wal().map_or(0, |w| w.last_seq())
}

/// Indices of the top-`k` buckets of `row` by value, zeros excluded.
fn heavy_buckets(row: &[u32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).filter(|&i| row[i] > 0).collect();
    idx.sort_unstable_by(|&a, &b| row[b].cmp(&row[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Jaccard similarity of two index sets (1.0 when both are empty: an
/// idle task has a perfectly stable — empty — heavy set).
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<usize> = a.iter().copied().collect();
    let sb: std::collections::HashSet<usize> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str, fill: f64, saturation: f64, churn: Option<f64>) -> TaskSignals {
        TaskSignals {
            name: name.into(),
            fill,
            saturation,
            churn,
            loss_delta: 0,
        }
    }

    #[test]
    fn deadband_holds_between_thresholds() {
        let c = AdaptiveController::new(ControllerConfig::default());
        // Fill between shrink (0.15) and grow (0.5): no action.
        assert_eq!(c.desired_action(&sig("t", 0.3, 0.0, Some(0.0)), 8192, true), None);
        // Above grow fill: grow.
        assert!(matches!(
            c.desired_action(&sig("t", 0.6, 0.0, Some(0.0)), 8192, true),
            Some(AdaptAction::Grow { from: 8192, to: 16384 })
        ));
        // Below shrink fill with a stable mix: shrink.
        assert!(matches!(
            c.desired_action(&sig("t", 0.05, 0.0, Some(0.1)), 8192, true),
            Some(AdaptAction::Shrink { from: 8192, to: 4096 })
        ));
    }

    #[test]
    fn shrink_vetoed_by_churn_loss_and_floor() {
        let c = AdaptiveController::new(ControllerConfig::default());
        // High churn: the mix is moving, hold.
        assert_eq!(c.desired_action(&sig("t", 0.05, 0.0, Some(0.9)), 8192, true), None);
        // First observation (no churn baseline): hold.
        assert_eq!(c.desired_action(&sig("t", 0.05, 0.0, None), 8192, true), None);
        // Loss this epoch: hold.
        let mut lossy = sig("t", 0.05, 0.0, Some(0.0));
        lossy.loss_delta = 7;
        assert_eq!(c.desired_action(&lossy, 8192, true), None);
        // Already at the floor: hold.
        assert_eq!(
            c.desired_action(&sig("t", 0.05, 0.0, Some(0.0)), c.cfg.min_buckets, true),
            None
        );
    }

    #[test]
    fn saturation_grows_and_ceiling_splits() {
        let c = AdaptiveController::new(ControllerConfig::default());
        // Saturation alone (low fill) still grows: clipped counts are
        // an accuracy emergency regardless of occupancy.
        assert!(matches!(
            c.desired_action(&sig("t", 0.1, 0.02, Some(0.0)), 8192, true),
            Some(AdaptAction::Grow { .. })
        ));
        // At the ceiling and splittable: split.
        let max = c.cfg.max_buckets;
        assert!(matches!(
            c.desired_action(&sig("t", 0.9, 0.02, Some(0.0)), max, true),
            Some(AdaptAction::Split { .. })
        ));
        // At the ceiling, unsplittable: stuck, no action.
        assert_eq!(c.desired_action(&sig("t", 0.9, 0.02, Some(0.0)), max, false), None);
    }

    #[test]
    fn heavy_buckets_and_jaccard_behave() {
        let row = [0u32, 5, 0, 9, 2, 9];
        // Ties broken by lower index; zeros never heavy.
        assert_eq!(heavy_buckets(&row, 3), vec![3, 5, 1]);
        assert_eq!(heavy_buckets(&row, 10), vec![3, 5, 1, 4]);
        assert_eq!(heavy_buckets(&[0, 0], 4), Vec::<usize>::new());
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert!((jaccard(&[], &[]) - 1.0).abs() < 1e-12);
        assert!(jaccard(&[1], &[]).abs() < 1e-12);
    }
}
