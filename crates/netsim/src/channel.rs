//! Simulated lossy control channel between controller and switches.
//!
//! Every controller→switch operation the fleet performs (deploys,
//! removes, reallocations, splits, standby syncs, promotions, epoch
//! resets) can be routed through a [`ControlChannel`]: a deterministic,
//! seeded model of an unreliable southbound path that drops, duplicates,
//! reorders and delays commands, and can partition a switch away
//! entirely. Time is *virtual* — a monotonically advancing modeled
//! clock, never slept — so soaks over thousands of commands run in
//! microseconds and replay bit-identically from a seed.
//!
//! Three mechanisms make an unreliable channel safe to drive a
//! transactional control plane over:
//!
//! 1. **Timeout + backoff retries.** The controller retries each
//!    command up to [`RetryPolicy::max_attempts`] times, waiting
//!    [`ChannelConfig::timeout_ms`] for each lost leg and backing off
//!    between attempts with seeded jitter
//!    ([`RetryPolicy::backoff_before_jittered`]) so synchronized
//!    failures do not produce synchronized retry storms.
//! 2. **Exactly-once application.** Every command carries a
//!    monotonically increasing transaction id. Each switch keeps a
//!    dedup window of recently applied txns (plus a high watermark as
//!    backstop); a retransmitted or duplicated delivery of an applied
//!    command is *suppressed* and answered from the cached outcome,
//!    never re-applied — verifiable in the WAL, which holds exactly one
//!    record per logical command no matter how many copies arrived.
//! 3. **Fencing terms.** [`ControlChannel::mint_term`] (called by
//!    standby promotion) advances a monotonic fencing epoch. Commands
//!    are stamped with the issuing controller's term; a switch that has
//!    accepted term *T* rejects anything stamped with a term < *T* as
//!    [`FlymonError::Fenced`]. Stale rejects are counted
//!    ([`ChannelStats::stale_rejects`]) and event-logged, never
//!    silently dropped — a partitioned old primary's late writes
//!    surface in the audit trail instead of splitting the fleet.
//!
//! **Outcome determinacy.** [`ControlChannel::invoke`] maintains a
//! strict contract: `Err(ChannelTimeout)` means the command was *never*
//! applied (every copy was lost before reaching the switch), and `Ok`
//! (or a logical apply error) means it was applied *exactly once*. The
//! awkward case — applied but every acknowledgment lost — is resolved
//! the way real controllers resolve it, by an out-of-band outcome probe
//! once the retry budget is exhausted: the cached outcome is returned
//! and counted as [`ChannelStats::reconciled`]. A full partition can
//! never reach that case, because a partitioned switch never applies
//! anything in the first place.
//!
//! Everything the channel does is appended to a deterministic event log
//! ([`ControlChannel::event_log`]): same seed, same command sequence ⇒
//! byte-identical log, which CI diffs to guard determinism.

use std::collections::{HashMap, VecDeque};

use flymon::control::TaskHandle;
use flymon::FlymonError;
use flymon_packet::SplitMix64;
use flymon_rmt::fault::RetryPolicy;

/// Switch-side result of an applied control command, cached in the
/// dedup window so duplicate deliveries can be answered without
/// re-applying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnResult {
    /// The command produced no handle (remove, reset, sync, promote).
    Unit,
    /// The command produced a task handle (deploy, reallocate).
    Handle(TaskHandle),
}

impl TxnResult {
    /// Extracts the handle, panicking if the command was handle-less —
    /// a controller-side bug, not a channel fault.
    pub fn handle(self) -> TaskHandle {
        match self {
            TxnResult::Handle(h) => h,
            TxnResult::Unit => panic!("control command returned no handle"),
        }
    }
}

/// Scripted per-attempt fate, for exhaustive interleaving sweeps.
///
/// When a script is pushed ([`ControlChannel::push_script`]), each
/// attempt consumes one step instead of rolling the seeded dice; an
/// exhausted script falls back to `Deliver`. Scripts bypass the random
/// drop/dup rolls but still respect partitions and fencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptStep {
    /// Both legs survive: request delivered, reply delivered.
    Deliver,
    /// The request is lost before reaching the switch (not applied).
    DropRequest,
    /// The request is applied but the reply is lost (controller
    /// retries; dedup must suppress the retransmission).
    DropReply,
    /// The request is applied *and* a duplicate copy is delivered
    /// later, out of order (dedup must suppress the copy); the reply
    /// survives.
    DuplicateDeliver,
}

/// Fault and timing model of the control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Per-leg loss probability in `0.0..=1.0` (request and reply legs
    /// roll independently).
    pub drop_rate: f64,
    /// Probability that a delivered request is also duplicated in
    /// flight, the copy arriving later and out of order.
    pub dup_rate: f64,
    /// Probability that a request is overtaken in flight and arrives
    /// late (extra delay; observable as out-of-order arrival times in
    /// the event log).
    pub reorder_rate: f64,
    /// Base one-way flight time of a command leg, in virtual ms.
    pub base_delay_ms: f64,
    /// Uniform extra flight-time jitter in `[0, delay_jitter_ms)`.
    pub delay_jitter_ms: f64,
    /// How long the controller waits for a reply before declaring the
    /// attempt lost, in virtual ms.
    pub timeout_ms: f64,
    /// Retry budget and backoff schedule per command.
    pub retry: RetryPolicy,
    /// Per-switch dedup window size (applied txns remembered with
    /// their outcomes). The high watermark backstops evictions, so the
    /// window bounds *result caching*, not correctness; see DESIGN.md
    /// for sizing.
    pub dedup_window: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            base_delay_ms: 0.1,
            delay_jitter_ms: 0.05,
            timeout_ms: 2.0,
            retry: RetryPolicy::with_attempts(8).with_jitter(0.5),
            dedup_window: 64,
        }
    }
}

impl ChannelConfig {
    /// Validates the configuration: probabilities in `0.0..=1.0`,
    /// finite non-negative delays, a valid retry policy, and a nonzero
    /// dedup window.
    pub fn validate(&self) -> Result<(), &'static str> {
        for p in [self.drop_rate, self.dup_rate, self.reorder_rate] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err("channel fault rates must be finite fractions in 0.0..=1.0");
            }
        }
        for d in [self.base_delay_ms, self.delay_jitter_ms, self.timeout_ms] {
            if !d.is_finite() || d < 0.0 {
                return Err("channel delays must be finite and non-negative");
            }
        }
        self.retry.validate()?;
        if self.dedup_window == 0 {
            return Err("dedup_window must hold at least the in-flight command");
        }
        Ok(())
    }
}

/// Counters for everything the channel did. All faults and all
/// suppressions are counted — nothing is silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Logical commands submitted via [`ControlChannel::invoke`].
    pub commands: u64,
    /// Attempts across all commands (≥ `commands`).
    pub attempts: u64,
    /// Retries (attempts beyond each command's first).
    pub retries: u64,
    /// Request legs lost (drops and partitions).
    pub request_drops: u64,
    /// Reply legs lost after the command applied.
    pub reply_drops: u64,
    /// Duplicate copies created in flight.
    pub duplicates: u64,
    /// Deliveries suppressed by the dedup window / watermark
    /// (retransmissions of applied commands and late duplicate copies).
    pub dup_suppressed: u64,
    /// Requests that arrived late (overtaken in flight).
    pub reordered: u64,
    /// Late duplicate copies that died with a partition.
    pub late_dropped: u64,
    /// Commands that exhausted every attempt without ever applying.
    pub timeouts: u64,
    /// Commands resolved by the out-of-band outcome probe (applied, but
    /// every reply lost).
    pub reconciled: u64,
    /// Deliveries rejected for carrying a stale fencing term.
    pub stale_rejects: u64,
    /// Total modeled backoff spent between attempts, in virtual ms.
    pub backoff_ms: f64,
}

/// Per-switch receive-side state: partition flag, accepted fencing
/// term, and the exactly-once dedup window.
#[derive(Debug, Clone)]
struct SwitchLink {
    partitioned: bool,
    term: u64,
    window: VecDeque<u64>,
    results: HashMap<u64, Result<TxnResult, FlymonError>>,
    watermark: u64,
}

impl SwitchLink {
    fn new() -> Self {
        SwitchLink {
            partitioned: false,
            term: 0,
            window: VecDeque::new(),
            results: HashMap::new(),
            watermark: 0,
        }
    }

    /// Whether `txn` has already been applied here.
    fn seen(&self, txn: u64) -> bool {
        self.results.contains_key(&txn) || txn <= self.watermark
    }

    fn record(&mut self, txn: u64, result: Result<TxnResult, FlymonError>, window: usize) {
        self.window.push_back(txn);
        self.results.insert(txn, result);
        self.watermark = self.watermark.max(txn);
        while self.window.len() > window {
            if let Some(old) = self.window.pop_front() {
                self.results.remove(&old);
            }
        }
    }
}

/// A duplicated request copy still in flight, due to arrive later.
#[derive(Debug, Clone)]
struct LateCopy {
    due_ms: f64,
    switch: usize,
    txn: u64,
    term: u64,
    op: &'static str,
}

/// The deterministic lossy control channel. See the module docs for
/// the fault model and the exactly-once / fencing contracts.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    cfg: ChannelConfig,
    rng: SplitMix64,
    now_ms: f64,
    term: u64,
    next_txn: u64,
    links: Vec<SwitchLink>,
    pending: Vec<LateCopy>,
    script: VecDeque<ScriptStep>,
    stats: ChannelStats,
    log: Vec<String>,
}

impl ControlChannel {
    /// A channel to `switches` switches, seeded for deterministic fault
    /// rolls. Fails if the configuration does not validate.
    pub fn new(switches: usize, seed: u64, cfg: ChannelConfig) -> Result<Self, FlymonError> {
        cfg.validate().map_err(FlymonError::InvalidPolicy)?;
        Ok(ControlChannel {
            cfg,
            rng: SplitMix64::new(seed),
            now_ms: 0.0,
            term: 0,
            next_txn: 1,
            links: (0..switches).map(|_| SwitchLink::new()).collect(),
            pending: Vec::new(),
            script: VecDeque::new(),
            stats: ChannelStats::default(),
            log: Vec::new(),
        })
    }

    /// The virtual clock, in modeled milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Advances the virtual clock, delivering any duplicate copies that
    /// come due.
    pub fn advance(&mut self, ms: f64) {
        self.now_ms += ms.max(0.0);
        self.flush_late_copies();
    }

    /// Everything counted so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The controller's current fencing term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Mints the next fencing term (monotonic). Called by standby
    /// promotion; every subsequent command carries the new term and
    /// teaches it to each switch it reaches.
    pub fn mint_term(&mut self) -> u64 {
        self.term += 1;
        let t = self.term;
        let now = self.now_ms;
        self.logf(format_args!("t={now:.3} term minted -> {t}"));
        t
    }

    /// Overrides the *controller-side* term — the split-brain
    /// simulation hook, impersonating a partitioned stale primary that
    /// still believes in an old term. Switch-side accepted terms are
    /// never rewound.
    pub fn force_term(&mut self, term: u64) {
        self.term = term;
    }

    /// Partitions or heals the link to `switch`. While partitioned,
    /// nothing is delivered in either direction.
    pub fn set_partitioned(&mut self, switch: usize, partitioned: bool) {
        let verb = if partitioned { "partitioned" } else { "healed" };
        let now = self.now_ms;
        self.logf(format_args!("t={now:.3} sw{switch} {verb}"));
        self.links[switch].partitioned = partitioned;
    }

    /// Whether the link to `switch` is currently partitioned.
    pub fn is_partitioned(&self, switch: usize) -> bool {
        self.links[switch].partitioned
    }

    /// Heals every partition, returning how many links were down.
    pub fn heal_all(&mut self) -> usize {
        let down: Vec<usize> = (0..self.links.len())
            .filter(|&i| self.links[i].partitioned)
            .collect();
        for &i in &down {
            self.set_partitioned(i, false);
        }
        down.len()
    }

    /// Replaces the fault rates (drop, duplicate, reorder) — the
    /// dup-storm / flap scheduling hook. Rates must be valid fractions.
    pub fn set_rates(&mut self, drop: f64, dup: f64, reorder: f64) -> Result<(), FlymonError> {
        let mut cfg = self.cfg;
        cfg.drop_rate = drop;
        cfg.dup_rate = dup;
        cfg.reorder_rate = reorder;
        cfg.validate().map_err(FlymonError::InvalidPolicy)?;
        self.cfg = cfg;
        Ok(())
    }

    /// The active configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Queues scripted attempt fates (see [`ScriptStep`]); subsequent
    /// attempts consume them in order before falling back to the
    /// seeded dice.
    pub fn push_script<I: IntoIterator<Item = ScriptStep>>(&mut self, steps: I) {
        self.script.extend(steps);
    }

    /// The deterministic event log (append-only).
    pub fn event_log(&self) -> &[String] {
        &self.log
    }

    /// Drops accumulated event-log lines (counters are unaffected).
    pub fn clear_event_log(&mut self) {
        self.log.clear();
    }

    fn logf(&mut self, args: std::fmt::Arguments<'_>) {
        self.log.push(args.to_string());
    }

    /// Delivers every pending duplicate copy that has come due. Copies
    /// only exist for *applied* txns, so delivery is always a dedup
    /// suppression (or a fencing reject / partition loss) — never an
    /// application.
    fn flush_late_copies(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let now = self.now_ms;
        let mut due: Vec<LateCopy> = Vec::new();
        self.pending.retain(|c| {
            if c.due_ms <= now {
                due.push(c.clone());
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| {
            a.due_ms
                .partial_cmp(&b.due_ms)
                .expect("virtual times are finite")
                .then(a.txn.cmp(&b.txn))
        });
        for c in due {
            let link = &mut self.links[c.switch];
            if link.partitioned {
                self.stats.late_dropped += 1;
                self.logf(format_args!(
                    "t={:.3} txn={} {}->sw{} late copy lost to partition",
                    c.due_ms, c.txn, c.op, c.switch
                ));
                continue;
            }
            if c.term < link.term {
                self.stats.stale_rejects += 1;
                let cur = link.term;
                self.logf(format_args!(
                    "t={:.3} txn={} {}->sw{} late copy fenced (term {} < {})",
                    c.due_ms, c.txn, c.op, c.switch, c.term, cur
                ));
                continue;
            }
            debug_assert!(link.seen(c.txn), "late copies exist only for applied txns");
            self.stats.dup_suppressed += 1;
            self.logf(format_args!(
                "t={:.3} txn={} {}->sw{} late duplicate suppressed by dedup window",
                c.due_ms, c.txn, c.op, c.switch
            ));
        }
    }

    fn flight_ms(&mut self) -> f64 {
        self.cfg.base_delay_ms
            + if self.cfg.delay_jitter_ms > 0.0 {
                self.rng.next_f64() * self.cfg.delay_jitter_ms
            } else {
                0.0
            }
    }

    /// Routes one controller→switch command through the channel: up to
    /// `retry.max_attempts` attempts with jittered backoff, seeded (or
    /// scripted) drop / duplicate / reorder faults, fencing-term
    /// enforcement and exactly-once application of `apply`.
    ///
    /// `apply` performs the switch-side mutation; it runs **at most
    /// once** regardless of how many copies of the command are
    /// delivered. `Err(ChannelTimeout)` guarantees it never ran; any
    /// other return value (including logical apply errors, which are
    /// cached and replayed to retransmissions like results) is the
    /// outcome of its single run.
    pub fn invoke<F>(
        &mut self,
        switch: usize,
        op: &'static str,
        apply: F,
    ) -> Result<TxnResult, FlymonError>
    where
        F: FnOnce() -> Result<TxnResult, FlymonError>,
    {
        assert!(switch < self.links.len(), "no such switch link");
        let txn = self.next_txn;
        self.next_txn += 1;
        let term = self.term;
        self.stats.commands += 1;
        let max = self.cfg.retry.max_attempts.max(1);
        let mut apply = Some(apply);
        let mut outcome: Option<Result<TxnResult, FlymonError>> = None;
        for attempt in 1..=max {
            if attempt > 1 {
                self.stats.retries += 1;
                let retry = self.cfg.retry;
                let backoff = retry.backoff_before_jittered(attempt, &mut self.rng);
                self.stats.backoff_ms += backoff;
                self.now_ms += backoff;
            }
            self.stats.attempts += 1;
            let step = self.script.pop_front();
            // Request leg.
            let mut flight = self.flight_ms();
            let overtaken = step.is_none() && self.cfg.reorder_rate > 0.0 && self.rng.chance(self.cfg.reorder_rate);
            if overtaken {
                self.stats.reordered += 1;
                flight += 2.0 * self.cfg.base_delay_ms + self.flight_ms();
            }
            self.now_ms += flight;
            self.flush_late_copies();
            let req_lost = self.links[switch].partitioned
                || match step {
                    Some(s) => s == ScriptStep::DropRequest,
                    None => self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate),
                };
            if req_lost {
                self.stats.request_drops += 1;
                self.now_ms += self.cfg.timeout_ms;
                let now = self.now_ms;
                self.logf(format_args!(
                    "t={now:.3} txn={txn} {op}->sw{switch} request lost (attempt {attempt}/{max})"
                ));
                continue;
            }
            // Delivered: fencing first.
            if term < self.links[switch].term {
                self.stats.stale_rejects += 1;
                let current = self.links[switch].term;
                let now = self.now_ms;
                self.logf(format_args!(
                    "t={now:.3} txn={txn} {op}->sw{switch} REJECTED: stale term {term} < {current}"
                ));
                return Err(FlymonError::Fenced {
                    op,
                    stale_term: term,
                    current_term: current,
                });
            }
            self.links[switch].term = term.max(self.links[switch].term);
            // Exactly-once application.
            let result = if self.links[switch].seen(txn) {
                self.stats.dup_suppressed += 1;
                let now = self.now_ms;
                self.logf(format_args!(
                    "t={now:.3} txn={txn} {op}->sw{switch} retransmission suppressed, cached outcome"
                ));
                self.links[switch]
                    .results
                    .get(&txn)
                    .cloned()
                    .expect("in-flight txn cannot be evicted from its own window")
            } else {
                let r = (apply.take().expect("exactly-once violated: apply ran twice"))();
                let window = self.cfg.dedup_window;
                self.links[switch].record(txn, r.clone(), window);
                r
            };
            outcome = Some(result.clone());
            // In-flight duplication of the (delivered) request.
            let duplicated = match step {
                Some(s) => s == ScriptStep::DuplicateDeliver,
                None => self.cfg.dup_rate > 0.0 && self.rng.chance(self.cfg.dup_rate),
            };
            if duplicated {
                self.stats.duplicates += 1;
                let due_ms = self.now_ms + 2.0 * self.cfg.base_delay_ms + self.flight_ms();
                self.pending.push(LateCopy {
                    due_ms,
                    switch,
                    txn,
                    term,
                    op,
                });
                self.logf(format_args!(
                    "t={due_ms:.3} txn={txn} {op}->sw{switch} duplicate copy scheduled"
                ));
            }
            // Reply leg.
            self.now_ms += self.flight_ms();
            let reply_lost = self.links[switch].partitioned
                || match step {
                    Some(s) => s == ScriptStep::DropReply,
                    None => self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate),
                };
            if reply_lost {
                self.stats.reply_drops += 1;
                self.now_ms += self.cfg.timeout_ms;
                let now = self.now_ms;
                self.logf(format_args!(
                    "t={now:.3} txn={txn} {op}->sw{switch} reply lost (attempt {attempt}/{max})"
                ));
                continue;
            }
            let now = self.now_ms;
            let verdict = match &result {
                Ok(_) => "ok",
                Err(_) => "apply-error",
            };
            self.logf(format_args!(
                "t={now:.3} txn={txn} {op}->sw{switch} {verdict} (attempt {attempt}/{max})"
            ));
            return result;
        }
        if let Some(result) = outcome {
            // Applied, but every reply was lost: the controller's
            // out-of-band outcome probe recovers the cached result
            // (see module docs — outcome determinacy).
            self.stats.reconciled += 1;
            let now = self.now_ms;
            self.logf(format_args!(
                "t={now:.3} txn={txn} {op}->sw{switch} reconciled via outcome probe"
            ));
            return result;
        }
        self.stats.timeouts += 1;
        let now = self.now_ms;
        self.logf(format_args!(
            "t={now:.3} txn={txn} {op}->sw{switch} TIMEOUT after {max} attempts (never applied)"
        ));
        Err(FlymonError::ChannelTimeout {
            op,
            switch,
            attempts: max,
        })
    }

    /// Broadcasts the controller's current term to every switch with a
    /// no-op command per link, so fencing takes effect fleet-wide after
    /// a promotion rather than lazily on each link's next real command.
    /// Returns how many links acknowledged; partitioned or fully lossy
    /// links simply miss the update (they learn the term whenever the
    /// next command reaches them).
    pub fn broadcast_term(&mut self) -> usize {
        let mut acked = 0;
        for i in 0..self.links.len() {
            if self.invoke(i, "term-sync", || Ok(TxnResult::Unit)).is_ok() {
                acked += 1;
            }
        }
        acked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> ControlChannel {
        ControlChannel::new(2, 1, ChannelConfig::default()).unwrap()
    }

    #[test]
    fn lossless_channel_applies_exactly_once() {
        let mut ch = lossless();
        let mut applied = 0;
        let r = ch
            .invoke(0, "noop", || {
                applied += 1;
                Ok(TxnResult::Unit)
            })
            .unwrap();
        assert_eq!(r, TxnResult::Unit);
        assert_eq!(applied, 1);
        assert_eq!(ch.stats().commands, 1);
        assert_eq!(ch.stats().attempts, 1);
        assert!(ch.now_ms() > 0.0, "flight time advances the virtual clock");
    }

    #[test]
    fn partition_times_out_without_applying() {
        let mut ch = lossless();
        ch.set_partitioned(0, true);
        let mut applied = 0;
        let err = ch
            .invoke(0, "noop", || {
                applied += 1;
                Ok(TxnResult::Unit)
            })
            .unwrap_err();
        assert!(matches!(err, FlymonError::ChannelTimeout { switch: 0, .. }));
        assert_eq!(applied, 0, "outcome determinacy: timeout => never applied");
        // The other link is unaffected.
        assert!(ch.invoke(1, "noop", || Ok(TxnResult::Unit)).is_ok());
        ch.set_partitioned(0, false);
        assert!(ch.invoke(0, "noop", || Ok(TxnResult::Unit)).is_ok());
    }

    #[test]
    fn dropped_replies_are_absorbed_by_dedup() {
        let mut ch = lossless();
        ch.push_script([ScriptStep::DropReply, ScriptStep::DropReply, ScriptStep::Deliver]);
        let mut applied = 0;
        let r = ch
            .invoke(0, "noop", || {
                applied += 1;
                Ok(TxnResult::Handle(TaskHandle(flymon::task::TaskId(7))))
            })
            .unwrap();
        assert_eq!(applied, 1, "retransmissions must not re-apply");
        assert_eq!(r.handle().0 .0, 7);
        assert_eq!(ch.stats().reply_drops, 2);
        assert_eq!(ch.stats().dup_suppressed, 2);
        assert_eq!(ch.stats().retries, 2);
    }

    #[test]
    fn all_replies_lost_reconciles_instead_of_lying() {
        let cfg = ChannelConfig {
            retry: RetryPolicy::with_attempts(3),
            ..ChannelConfig::default()
        };
        let mut ch = ControlChannel::new(1, 1, cfg).unwrap();
        ch.push_script([ScriptStep::DropReply, ScriptStep::DropReply, ScriptStep::DropReply]);
        let mut applied = 0;
        let r = ch.invoke(0, "noop", || {
            applied += 1;
            Ok(TxnResult::Unit)
        });
        assert_eq!(r, Ok(TxnResult::Unit), "applied => controller learns the outcome");
        assert_eq!(applied, 1);
        assert_eq!(ch.stats().reconciled, 1);
        assert_eq!(ch.stats().timeouts, 0);
    }

    #[test]
    fn stale_term_is_fenced_and_counted() {
        let mut ch = lossless();
        assert!(ch.invoke(0, "noop", || Ok(TxnResult::Unit)).is_ok());
        let new_term = ch.mint_term();
        assert_eq!(ch.broadcast_term(), 2);
        ch.force_term(new_term - 1);
        let mut applied = 0;
        let err = ch
            .invoke(0, "stale-op", || {
                applied += 1;
                Ok(TxnResult::Unit)
            })
            .unwrap_err();
        assert!(
            matches!(err, FlymonError::Fenced { stale_term: 0, current_term: 1, .. }),
            "{err:?}"
        );
        assert_eq!(applied, 0, "fenced commands never touch the switch");
        assert_eq!(ch.stats().stale_rejects, 1);
        assert!(
            ch.event_log().iter().any(|l| l.contains("REJECTED")),
            "stale rejects are audited, never silent"
        );
        // The restored (current) term works again.
        ch.force_term(new_term);
        assert!(ch.invoke(0, "noop", || Ok(TxnResult::Unit)).is_ok());
    }

    #[test]
    fn late_duplicate_copies_are_suppressed_across_commands() {
        let mut ch = lossless();
        ch.push_script([ScriptStep::DuplicateDeliver]);
        assert!(ch.invoke(0, "first", || Ok(TxnResult::Unit)).is_ok());
        assert_eq!(ch.stats().duplicates, 1);
        // The copy is still pending; later traffic (or time) delivers it.
        ch.advance(10.0);
        assert_eq!(ch.stats().dup_suppressed, 1, "late copy deduped, not re-applied");
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let run = |seed: u64| {
            let cfg = ChannelConfig {
                drop_rate: 0.3,
                dup_rate: 0.2,
                reorder_rate: 0.2,
                ..ChannelConfig::default()
            };
            let mut ch = ControlChannel::new(3, seed, cfg).unwrap();
            for i in 0..50usize {
                let _ = ch.invoke(i % 3, "noop", || Ok(TxnResult::Unit));
            }
            (*ch.stats(), ch.event_log().to_vec())
        };
        assert_eq!(run(9), run(9), "same seed, same stats and event log");
        assert_ne!(run(9).1, run(10).1, "different seed, different schedule");
    }

    #[test]
    fn config_validation_rejects_degenerate_channels() {
        assert!(ChannelConfig::default().validate().is_ok());
        assert!(ChannelConfig { drop_rate: 1.5, ..ChannelConfig::default() }.validate().is_err());
        assert!(ChannelConfig { base_delay_ms: f64::NAN, ..ChannelConfig::default() }
            .validate()
            .is_err());
        assert!(ChannelConfig { dedup_window: 0, ..ChannelConfig::default() }.validate().is_err());
        assert!(ChannelConfig {
            retry: RetryPolicy::with_attempts(3).with_jitter(2.0),
            ..ChannelConfig::default()
        }
        .validate()
        .is_err());
        assert!(matches!(
            ControlChannel::new(1, 0, ChannelConfig { dedup_window: 0, ..ChannelConfig::default() }),
            Err(FlymonError::InvalidPolicy(_))
        ));
    }
}
