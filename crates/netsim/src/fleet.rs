//! Network-wide measurement: a fleet of FlyMon switches with merged
//! readouts.
//!
//! §3.4 positions FlyMon as the data plane under software-defined
//! measurement controllers (DREAM/SCREAM) that run *network-wide*
//! measurements. This module provides that control-plane layer for a
//! simulated fleet: the same task deployed on every switch, traffic
//! split across ingresses, and readouts merged according to each
//! sketch's merge law:
//!
//! - frequency sketches (CMS/MRAC) are *linear*: per-bucket sums of the
//!   partial registers equal the register of the union traffic —
//!   exactly, because every switch derives identical hash
//!   configurations for the same deployment;
//! - HLL registers merge by per-bucket max;
//! - Bloom filters merge by per-bucket OR.

use flymon::prelude::*;
use flymon::FlymonError;
use flymon_packet::Packet;
use flymon_sketches::hll::estimate_from_registers;

/// A fleet of identically configured FlyMon switches running one shared
/// measurement task.
#[derive(Debug)]
pub struct SwitchFleet {
    switches: Vec<FlyMon>,
    handles: Vec<TaskHandle>,
    algorithm: Algorithm,
}

impl SwitchFleet {
    /// Builds `n` switches with the given config and deploys `task` on
    /// every one. Deployments are deterministic, so every switch ends up
    /// with identical hash configurations and partition layouts — the
    /// precondition for exact register merging.
    pub fn deploy(n: usize, config: FlyMonConfig, task: &TaskDefinition) -> Result<Self, FlymonError> {
        assert!(n > 0, "a fleet needs at least one switch");
        let mut switches = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut algorithm = None;
        for _ in 0..n {
            let mut fm = FlyMon::new(config);
            let h = fm.deploy(task)?;
            algorithm = Some(fm.task(h)?.algorithm);
            switches.push(fm);
            handles.push(h);
        }
        Ok(SwitchFleet {
            switches,
            handles,
            algorithm: algorithm.expect("n > 0"),
        })
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True when the fleet is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Feeds a packet to the switch at `ingress`.
    ///
    /// # Panics
    /// Panics if `ingress` is out of range.
    pub fn process(&mut self, ingress: usize, pkt: &Packet) {
        self.switches[ingress].process(pkt);
    }

    /// Splits a trace across ingresses by source address (a stand-in
    /// for topology-based ingress assignment).
    pub fn process_trace(&mut self, trace: &[Packet]) {
        let n = self.switches.len();
        for p in trace {
            let ingress = flymon_rmt::hash::murmur3_32(0xf1ee7, &p.src_ip.to_be_bytes()) as usize % n;
            self.switches[ingress].process(p);
        }
    }

    /// Per-bucket merged readout of one row across the fleet.
    fn merged_row(&self, row: usize, merge: impl Fn(u32, u32) -> u32) -> Result<Vec<u32>, FlymonError> {
        let mut acc = self.switches[0].read_row(self.handles[0], row)?;
        for (fm, &h) in self.switches.iter().zip(&self.handles).skip(1) {
            for (a, v) in acc.iter_mut().zip(fm.read_row(h, row)?) {
                *a = merge(*a, v);
            }
        }
        Ok(acc)
    }

    /// Network-wide frequency estimate for a flow: per-bucket sums of
    /// the fleet's registers, then the row-wise minimum (linearity of
    /// counter sketches).
    pub fn merged_frequency(&self, pkt: &Packet) -> Result<u64, FlymonError> {
        let d = match self.algorithm {
            Algorithm::Cms { d } => d,
            Algorithm::Mrac => 1,
            other => {
                return Err(FlymonError::BadTask(format!(
                    "{} readouts do not merge by summation",
                    other.name()
                )))
            }
        };
        let mut best = u64::MAX;
        for row in 0..d {
            let merged = self.merged_row(row, |a, b| a.saturating_add(b))?;
            // Locate the bucket through any switch (identical layouts).
            let idx = self.switches[0].locate(self.handles[0], row, pkt)?;
            best = best.min(u64::from(merged[idx]));
        }
        Ok(best)
    }

    /// Network-wide cardinality estimate: HLL registers merge by max.
    pub fn merged_cardinality(&self) -> Result<f64, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Hll) {
            return Err(FlymonError::BadTask(
                "merged cardinality needs an HLL task".into(),
            ));
        }
        let merged = self.merged_row(0, u32::max)?;
        let regs: Vec<u8> = merged.into_iter().map(|v| v.min(255) as u8).collect();
        Ok(estimate_from_registers(&regs))
    }

    /// Network-wide existence check. A key inserted anywhere was
    /// inserted on exactly one switch (its ingress), which set *all* of
    /// its filter rows — so union membership is the OR of the per-switch
    /// checks: no false negatives, and at most the sum of the per-switch
    /// false-positive rates.
    pub fn merged_exists(&self, pkt: &Packet) -> Result<bool, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Bloom { .. }) {
            return Err(FlymonError::BadTask(
                "merged existence needs a Bloom task".into(),
            ));
        }
        Ok(self
            .switches
            .iter()
            .zip(&self.handles)
            .any(|(fm, &h)| fm.query_exists(h, pkt)))
    }

    /// Access one switch (diagnostics, per-ingress queries).
    pub fn switch(&self, i: usize) -> (&FlyMon, TaskHandle) {
        (&self.switches[i], self.handles[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::KeySpec;
    use flymon_traffic::gen::{TraceConfig, TraceGenerator};

    fn config() -> FlyMonConfig {
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 16384,
            ..FlyMonConfig::default()
        }
    }

    fn trace() -> Vec<Packet> {
        TraceGenerator::new(44).wide_like(&TraceConfig {
            flows: 3_000,
            packets: 60_000,
            zipf_alpha: 1.1,
            duration_ns: 1_000_000_000,
            seed: 44,
        })
    }

    #[test]
    fn merged_frequency_equals_single_switch_exactly() {
        // Linearity: a 4-switch fleet over a split trace must produce
        // byte-identical merged registers to one switch over the whole
        // trace.
        let def = TaskDefinition::builder("freq")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(8192)
            .build();
        let t = trace();

        let mut fleet = SwitchFleet::deploy(4, config(), &def).unwrap();
        fleet.process_trace(&t);

        let mut single = FlyMon::new(config());
        let h = single.deploy(&def).unwrap();
        single.process_trace(&t);

        let mut checked = 0;
        let mut seen = std::collections::HashSet::new();
        for p in &t {
            if !seen.insert(KeySpec::SRC_IP.extract(p)) {
                continue;
            }
            assert_eq!(
                fleet.merged_frequency(p).unwrap(),
                single.query_frequency(h, p),
                "merged and single-switch estimates diverged"
            );
            checked += 1;
            if checked > 500 {
                break;
            }
        }
    }

    #[test]
    fn merged_cardinality_tracks_union() {
        let def = TaskDefinition::builder("card")
            .key(KeySpec::NONE)
            .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
            .algorithm(Algorithm::Hll)
            .memory(2048)
            .build();
        let mut fleet = SwitchFleet::deploy(3, config(), &def).unwrap();
        let n = 20_000u32;
        for i in 0..n {
            fleet.process((i % 3) as usize, &Packet::udp(i, 9, 1, 53));
        }
        let est = fleet.merged_cardinality().unwrap();
        let err = (est - f64::from(n)).abs() / f64::from(n);
        assert!(err < 0.1, "merged estimate {est:.0} (err {err:.3})");
        // Each single switch saw only a third.
        let (fm, h) = fleet.switch(0);
        assert!(fm.cardinality(h) < est * 0.5);
    }

    #[test]
    fn merged_existence_unions_the_fleet() {
        let def = TaskDefinition::builder("bl")
            .key(KeySpec::NONE)
            .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
            .memory(8192)
            .build();
        let mut fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        let on_a = Packet::tcp(1, 2, 3, 4);
        let on_b = Packet::tcp(5, 6, 7, 8);
        fleet.process(0, &on_a);
        fleet.process(1, &on_b);
        assert!(fleet.merged_exists(&on_a).unwrap());
        assert!(fleet.merged_exists(&on_b).unwrap());
        assert!(!fleet.merged_exists(&Packet::tcp(9, 9, 9, 9)).unwrap());
    }

    #[test]
    fn mismatched_queries_are_rejected() {
        let def = TaskDefinition::builder("freq")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 1 })
            .memory(1024)
            .build();
        let fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        assert!(fleet.merged_cardinality().is_err());
        assert!(fleet.merged_exists(&Packet::tcp(1, 2, 3, 4)).is_err());
    }
}
