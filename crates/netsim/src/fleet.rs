//! Network-wide measurement: a fleet of FlyMon switches with merged
//! readouts.
//!
//! §3.4 positions FlyMon as the data plane under software-defined
//! measurement controllers (DREAM/SCREAM) that run *network-wide*
//! measurements. This module provides that control-plane layer for a
//! simulated fleet: the same task deployed on every switch, traffic
//! split across ingresses, and readouts merged according to each
//! sketch's merge law:
//!
//! - frequency sketches (CMS/MRAC) are *linear*: per-bucket sums of the
//!   partial registers equal the register of the union traffic —
//!   exactly, because every switch derives identical hash
//!   configurations for the same deployment;
//! - HLL registers merge by per-bucket max;
//! - Bloom filters merge by per-bucket OR.
//!
//! The fleet degrades gracefully: switches can fail mid-epoch
//! ([`SwitchFleet::fail_switch`]) or refuse a deployment outright
//! (per-switch [`FaultPlan`]s in [`SwitchFleet::deploy_with_faults`],
//! which roll back cleanly). Ingress traffic reroutes to survivors and
//! merged readouts skip the dead — estimates continue from whatever
//! subset is still standing.
//!
//! # Failure & recovery model
//!
//! Every switch carries a control-plane [`WriteAheadLog`] from birth, so
//! each deploy/remove/reallocate/reset is durably intended before it
//! mutates state. A warm standby ([`SwitchFleet::enable_standby`])
//! ingests per-switch checkpoints — full once, then cheap dirty-range
//! deltas on each [`SwitchFleet::sync_standby`]. When a failed switch is
//! promoted ([`SwitchFleet::promote_standby`]), the standby replays the
//! WAL suffix onto the last image, the probe routing retargets the
//! recovered instance, and the packets absorbed *after* the last sync
//! barrier — the bounded loss window — are moved to the explicit
//! [`SwitchFleet::lost_packets`] counter instead of silently vanishing
//! from merged readouts. [`SwitchFleet::revive_switch`] is the cheaper
//! alternative that resets the switch instead of recovering it: its
//! whole absorbed count becomes loss. Either way the packet ledger
//! ([`SwitchFleet::ledger`]) stays conserved: every packet ever fed is
//! represented in some alive register file, explicitly lost, held by a
//! dead switch, or dropped.

use std::time::{Duration, Instant};

use flymon::prelude::*;
use flymon::FlymonError;
use flymon_packet::{Packet, TaskFilter};
use flymon_sketches::hll::estimate_from_registers;

use crate::channel::{ChannelConfig, ControlChannel, TxnResult};
use crate::datapath::{self, scan_row, MergeLaw, WorkerStats};

/// Routes one controller→switch command through the fleet's control
/// channel when one is attached, or applies it directly (the perfect
/// in-process channel) otherwise. The channel is threaded through as a
/// taken-out local so `apply` can borrow fleet fields freely.
fn send(
    chan: &mut Option<ControlChannel>,
    switch: usize,
    op: &'static str,
    apply: impl FnOnce() -> Result<TxnResult, FlymonError>,
) -> Result<TxnResult, FlymonError> {
    match chan.as_mut() {
        Some(c) => c.invoke(switch, op, apply),
        None => apply(),
    }
}

/// A merged estimate paired with an explicit bound on what it can miss.
///
/// For frequency tasks the true network-wide count `t` satisfies
/// `t <= estimate + loss_bound`: counter sketches never undercount the
/// traffic they represent, and every packet *not* represented is in the
/// bound. (The usual CMS overcount from hash collisions still applies
/// on the other side.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedEstimate {
    /// The merged readout over the alive fleet.
    pub estimate: u64,
    /// Packets the readout cannot see: explicitly lost to failures,
    /// held by currently dead switches, or dropped by a dead fabric.
    pub loss_bound: u64,
}

/// Where every packet ever fed to the fleet currently stands.
///
/// Conservation is the fleet's core accounting invariant:
/// `fed == represented + lost + dropped` after every event (note
/// `unavailable` is a subset of `represented`, not a separate term).
/// The chaos harness asserts it after each fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketLedger {
    /// Packets ever fed through [`SwitchFleet::process`] and friends.
    pub fed: u64,
    /// Packets whose register updates live in some switch's registers
    /// (alive or dead), plus packets archived by epoch rotations
    /// ([`SwitchFleet::rotate_epoch`]) — their counts were read out
    /// before the registers were cleared, so they are represented in
    /// the archived readouts rather than vanished.
    pub represented: u64,
    /// The subset of `represented` held by dead switches — invisible to
    /// merged readouts until revival or promotion settles them.
    pub unavailable: u64,
    /// Packets permanently lost to failures: a revived switch's cleared
    /// registers, or a promotion's post-checkpoint loss window.
    pub lost: u64,
    /// Packets dropped because no alive switch could take them.
    pub dropped: u64,
}

impl PacketLedger {
    /// True when every fed packet is accounted for.
    pub fn balanced(&self) -> bool {
        self.fed == self.represented + self.lost + self.dropped
    }
}

/// One measurement task deployed fleet-wide: the shared definition plus
/// each switch's handle for it.
#[derive(Debug)]
struct FleetTask {
    /// The definition every switch deployed (kept current across
    /// reallocation and splits).
    def: TaskDefinition,
    /// The algorithm that runs it (identical on every switch).
    algorithm: Algorithm,
    /// One handle per switch; `None` on switches whose deployment
    /// failed (and was rolled back).
    handles: Vec<Option<TaskHandle>>,
}

/// A read-only description of one fleet task (what the adaptive
/// controller plans against).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTaskInfo {
    /// Position in the fleet's task list (the index reconfiguration ops
    /// take). Indices shift when a task splits.
    pub index: usize,
    /// The task's name.
    pub name: String,
    /// Which packets feed it.
    pub filter: TaskFilter,
    /// The algorithm running it.
    pub algorithm: Algorithm,
    /// Requested buckets per row (the knob
    /// [`SwitchFleet::reallocate_task`] turns).
    pub requested_buckets: usize,
    /// Buckets actually placed across all rows on one switch (requested
    /// buckets are rounded per the allocation mode).
    pub allocated_buckets: usize,
}

/// One task's slice of an epoch rotation: its merged pre-reset rows and
/// enough metadata to interpret them without a fleet in hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEpoch {
    /// The task's name at rotation time.
    pub name: String,
    /// Its traffic filter.
    pub filter: TaskFilter,
    /// Its algorithm.
    pub algorithm: Algorithm,
    /// Per-row merged registers, merged by the algorithm's
    /// [`MergeLaw`].
    pub rows: Vec<Vec<u32>>,
    /// Per-row register cell ceilings (a bucket at its ceiling was
    /// saturated, not exactly counted) — row index parallel to `rows`.
    pub row_caps: Vec<u32>,
    /// Per-row occupancy (nonzero / saturated bucket counts), computed
    /// in the same pass that merged the rows — row index parallel to
    /// `rows`.
    pub occupancy: Vec<datapath::RowOccupancy>,
    /// Ascending nonzero bucket indices of row 0: the heavy-bucket
    /// candidate set, collected during the merge so the controller's
    /// heavy-churn signal never rescans the merged row.
    pub heavy_candidates: Vec<u32>,
}

/// A whole fleet epoch: every task's archived readout plus the packet
/// count the rotation archived ([`SwitchFleet::rotate_epoch_all`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEpoch {
    /// One entry per fleet task, in task-list order.
    pub tasks: Vec<TaskEpoch>,
    /// Packets the alive switches had absorbed this epoch (now
    /// archived).
    pub packets: u64,
}

/// A fleet of identically configured FlyMon switches running a shared
/// set of measurement tasks (one at deployment; reconfiguration ops can
/// grow, shrink and split them).
#[derive(Debug)]
pub struct SwitchFleet {
    switches: Vec<FlyMon>,
    /// The fleet-wide task list; `tasks[0]` is the primary task the
    /// single-task readout API answers for. Empty only on a zero-switch
    /// fleet, which hosts no task at all.
    tasks: Vec<FleetTask>,
    /// Liveness per switch; dead switches receive no traffic and are
    /// skipped by merged readouts.
    alive: Vec<bool>,
    dropped_packets: u64,
    /// Packets whose updates live in each switch's current registers.
    represented: Vec<u64>,
    /// `represented[i]` at switch `i`'s last standby sync barrier —
    /// what a promotion recovers; the difference is the loss window.
    checkpoint_represented: Vec<u64>,
    /// Warm-standby images, one slot per switch; `None` until
    /// [`SwitchFleet::enable_standby`].
    standby: Option<Vec<Option<SwitchCheckpoint>>>,
    /// Packets permanently lost to failures (see [`PacketLedger::lost`]).
    lost_packets: u64,
    /// Packets ever fed to the fleet.
    total_fed: u64,
    /// Packets archived by epoch rotations: read out before their
    /// registers were cleared, so still "represented" in the ledger.
    rotated_packets: u64,
    /// Lossy control channel every controller→switch command routes
    /// through once attached ([`SwitchFleet::attach_channel`]); `None`
    /// means the perfect in-process channel (direct calls).
    channel: Option<ControlChannel>,
    /// Ingestion-stall duration of the most recent epoch rotation (the
    /// bank-swap sweep; merge and retirement run off the stall path).
    last_rotation_stall: Duration,
    /// Cumulative rotation stall across the fleet's lifetime.
    total_rotation_stall: Duration,
    /// Epoch rotations performed (successful or failed mid-sweep).
    rotations: u64,
}

/// One epoch's merged pre-reset readout ([`SwitchFleet::rotate_epoch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReadout {
    /// Per-row merged registers of the alive fleet at the boundary,
    /// merged by the task algorithm's law (sum / max / OR).
    pub rows: Vec<Vec<u32>>,
    /// Packets these rows represent (the alive switches' absorbed
    /// counts, now archived).
    pub packets: u64,
}

impl SwitchFleet {
    /// Builds `n` switches with the given config and deploys `task` on
    /// every one. Deployments are deterministic, so every switch ends up
    /// with identical hash configurations and partition layouts — the
    /// precondition for exact register merging.
    ///
    /// A zero-switch fleet is valid (a region whose last switch was
    /// decommissioned): it hosts no task, drops every packet, and its
    /// merged readouts return errors rather than panicking.
    pub fn deploy(n: usize, config: FlyMonConfig, task: &TaskDefinition) -> Result<Self, FlymonError> {
        Self::deploy_with_faults(n, config, task, &mut [])
    }

    /// Like [`SwitchFleet::deploy`], but switch `i` executes its install
    /// ops through `faults[i]` (when provided). A switch whose
    /// deployment fails is left running with the deployment rolled back
    /// and is marked dead for fleet purposes; the fleet survives as long
    /// as at least one deployment lands. Fails only if every switch's
    /// deployment fails, returning the first error.
    pub fn deploy_with_faults(
        n: usize,
        config: FlyMonConfig,
        task: &TaskDefinition,
        faults: &mut [Option<FaultPlan>],
    ) -> Result<Self, FlymonError> {
        let mut switches = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        let mut algorithm = None;
        let mut first_err = None;
        for i in 0..n {
            let mut fm = FlyMon::new(config);
            // WAL from birth: the initial deployment itself is logged,
            // so a standby image plus the log reconstructs the whole
            // control-plane history.
            fm.attach_wal(WriteAheadLog::new());
            if let Some(plan) = faults.get_mut(i).and_then(Option::take) {
                fm.arm_faults(plan);
            }
            match fm.deploy(task) {
                Ok(h) => {
                    algorithm = Some(fm.task(h)?.algorithm);
                    handles.push(Some(h));
                    alive.push(true);
                }
                Err(e) => {
                    // Rolled back: the switch is pristine but hosts no
                    // task, so it cannot serve this fleet's measurement.
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    handles.push(None);
                    alive.push(false);
                }
            }
            if let (Some(slot), Some(plan)) = (faults.get_mut(i), fm.disarm_faults()) {
                *slot = Some(plan);
            }
            switches.push(fm);
        }
        if algorithm.is_none() && n > 0 {
            return Err(first_err.expect("n > 0 deployments all failed"));
        }
        let tasks = match algorithm {
            Some(algorithm) => vec![FleetTask {
                def: task.clone(),
                algorithm,
                handles,
            }],
            None => Vec::new(),
        };
        Ok(SwitchFleet {
            switches,
            tasks,
            alive,
            dropped_packets: 0,
            represented: vec![0; n],
            checkpoint_represented: vec![0; n],
            standby: None,
            lost_packets: 0,
            total_fed: 0,
            rotated_packets: 0,
            channel: None,
            last_rotation_stall: Duration::ZERO,
            total_rotation_stall: Duration::ZERO,
            rotations: 0,
        })
    }

    /// Attaches a lossy control channel: from here on, every
    /// controller→switch command (deploys, removes, reallocations,
    /// splits, standby syncs, promotions, epoch resets) is routed
    /// through it — subject to its seeded drops, duplicates, reorders,
    /// partitions, retries, exactly-once dedup and fencing terms. Fails
    /// if the configuration does not validate; replaces any previously
    /// attached channel (links, terms and stats start fresh).
    pub fn attach_channel(&mut self, seed: u64, cfg: ChannelConfig) -> Result<(), FlymonError> {
        self.channel = Some(ControlChannel::new(self.switches.len(), seed, cfg)?);
        Ok(())
    }

    /// Detaches the control channel (subsequent commands apply
    /// directly), returning it with its stats and event log intact.
    pub fn detach_channel(&mut self) -> Option<ControlChannel> {
        self.channel.take()
    }

    /// The attached control channel, if any.
    pub fn channel(&self) -> Option<&ControlChannel> {
        self.channel.as_ref()
    }

    /// Mutable access to the attached control channel (partition
    /// scheduling, fault-rate changes, term forcing in split-brain
    /// tests).
    pub fn channel_mut(&mut self) -> Option<&mut ControlChannel> {
        self.channel.as_mut()
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True when the fleet has no switches at all.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Switches currently alive (deployed and not failed).
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether switch `i` is alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Marks switch `i` failed: it stops receiving traffic and merged
    /// readouts skip it. The traffic it already absorbed becomes
    /// *unavailable* (held hostage by the dead registers) until the
    /// switch is revived — which forfeits it — or promoted from the
    /// standby — which recovers everything up to the last sync barrier.
    pub fn fail_switch(&mut self, i: usize) {
        self.alive[i] = false;
    }

    /// Revives a previously failed switch as a *fresh* member: its task
    /// registers are reset (through the logged control plane) before it
    /// rejoins, and every packet it had absorbed moves to
    /// [`SwitchFleet::lost_packets`].
    ///
    /// Clearing is deliberate. The pre-failure registers are stale
    /// relative to the traffic that rerouted around the outage; merging
    /// them back would silently resurrect counts the operator already
    /// accounted as lost, making estimates jump backward in time. A
    /// revival that should *not* forfeit the absorbed traffic is a
    /// promotion — see [`SwitchFleet::promote_standby`].
    ///
    /// Errors if the switch never hosted the task (a rolled-back
    /// deployment cannot serve the fleet). Reviving an alive switch is
    /// a no-op.
    pub fn revive_switch(&mut self, i: usize) -> Result<(), FlymonError> {
        if self.alive[i] {
            return Ok(());
        }
        let handles: Vec<TaskHandle> = self
            .tasks
            .iter()
            .filter_map(|t| t.handles[i])
            .collect();
        if handles.is_empty() {
            return Err(FlymonError::NoSuchTask);
        }
        // Logged resets (every fleet task, not just the primary): a
        // later promotion replays them, so the standby recovers to the
        // same cleared registers this switch rejoins with — which is
        // why the sync barrier drops to zero too. One channel command
        // covers the whole reset sweep: either the switch performed it
        // (exactly once) or the revival never happened.
        let mut chan = self.channel.take();
        let sw = &mut self.switches[i];
        let result = send(&mut chan, i, "revive-reset", || {
            for h in &handles {
                sw.reset_task(*h)?;
            }
            Ok(TxnResult::Unit)
        });
        self.channel = chan;
        result?;
        self.alive[i] = true;
        self.lost_packets += self.represented[i];
        self.represented[i] = 0;
        self.checkpoint_represented[i] = 0;
        Ok(())
    }

    /// Turns on the warm standby and takes the initial full checkpoint
    /// of every alive switch. Subsequent [`SwitchFleet::sync_standby`]
    /// calls ship only dirty-range deltas.
    pub fn enable_standby(&mut self) -> usize {
        if self.standby.is_none() {
            self.standby = Some(vec![None; self.switches.len()]);
        }
        self.sync_standby()
    }

    /// Ships a checkpoint of every alive switch to the standby — full
    /// for switches it has never seen, dirty-range deltas otherwise —
    /// and advances each switch's loss-window barrier. Dead switches
    /// are skipped (they are unreachable); their images simply age,
    /// which is exactly what the loss window measures. Each switch's
    /// WAL is compacted up to its new barrier, so log growth is bounded
    /// by the sync cadence.
    ///
    /// Returns the register buckets shipped (the sync's payload cost);
    /// 0 when the standby is not enabled.
    ///
    /// With a control channel attached, each per-switch sync is one
    /// channel command: a switch whose command times out (drops, a
    /// partition) is simply skipped this round — its image ages like a
    /// dead switch's, which is exactly what the loss window measures —
    /// and the failure is counted in the channel stats and event log.
    pub fn sync_standby(&mut self) -> usize {
        if self.standby.is_none() {
            return 0;
        }
        let mut chan = self.channel.take();
        let mut shipped = 0;
        for i in 0..self.switches.len() {
            if !self.alive[i] {
                continue;
            }
            let slot = &mut self
                .standby
                .as_mut()
                .expect("checked above")[i];
            let sw = &mut self.switches[i];
            let mut payload = 0usize;
            let synced = send(&mut chan, i, "sync-standby", || {
                let barrier = match slot {
                    Some(base) => {
                        let delta = sw.checkpoint(CaptureMode::Delta);
                        payload = delta.payload_buckets();
                        base.overlay(&delta)
                            .expect("a delta always composes onto its own base");
                        base.wal_seq
                    }
                    empty @ None => {
                        let full = sw.checkpoint(CaptureMode::Full);
                        payload = full.payload_buckets();
                        let barrier = full.wal_seq;
                        *empty = Some(full);
                        barrier
                    }
                };
                if let Some(mut wal) = sw.detach_wal() {
                    wal.compact(barrier);
                    sw.attach_wal(wal);
                }
                Ok(TxnResult::Unit)
            });
            if synced.is_ok() {
                shipped += payload;
                self.checkpoint_represented[i] = self.represented[i];
            }
        }
        self.channel = chan;
        shipped
    }

    /// Promotes the standby in place of failed switch `i`: recovers the
    /// last synced image plus the WAL suffix ([`FlyMon::recover`], which
    /// audits the result), swaps the recovered instance in, and retargets
    /// the probe routing back at slot `i` by marking it alive. The task
    /// handle is unchanged — recovery reproduces task ids exactly.
    ///
    /// Packets absorbed after the last sync barrier are gone — that is
    /// the bounded loss window; they move to
    /// [`SwitchFleet::lost_packets`] and the count is returned.
    ///
    /// Errors if the standby is not enabled, holds no image for this
    /// switch, the switch is still alive, or recovery diverges (in
    /// which case the fleet is unchanged and the switch stays dead).
    ///
    /// With a control channel attached, promotion **mints a new fencing
    /// term** before anything else: the promote command and everything
    /// after it carry the new term, and on success the term is
    /// broadcast to every reachable switch, so a partitioned stale
    /// primary's late commands are rejected ([`FlymonError::Fenced`])
    /// rather than applied. If the promote command itself times out
    /// (the target is partitioned), the fleet is unchanged — but the
    /// term stays minted, which is safe: terms only ever rise.
    pub fn promote_standby(&mut self, i: usize) -> Result<u64, FlymonError> {
        let images = self
            .standby
            .as_ref()
            .ok_or(FlymonError::Checkpoint("standby not enabled"))?;
        if self.alive[i] {
            return Err(FlymonError::Checkpoint(
                "only failed switches are promoted",
            ));
        }
        let image = images[i]
            .as_ref()
            .ok_or(FlymonError::Checkpoint("standby holds no image for this switch"))?;
        let mut chan = self.channel.take();
        if let Some(c) = chan.as_mut() {
            c.mint_term();
        }
        let sw = &mut self.switches[i];
        let result = send(&mut chan, i, "promote-standby", || {
            let wal = sw
                .detach_wal()
                .ok_or(FlymonError::Checkpoint("failed switch has no WAL"))?;
            match FlyMon::recover(&wal, image) {
                Ok(fm) => {
                    *sw = fm;
                    sw.attach_wal(wal);
                    Ok(TxnResult::Unit)
                }
                Err(e) => {
                    sw.attach_wal(wal);
                    Err(e)
                }
            }
        });
        if result.is_ok() {
            if let Some(c) = chan.as_mut() {
                c.broadcast_term();
            }
        }
        self.channel = chan;
        result?;
        self.alive[i] = true;
        let loss = self.represented[i] - self.checkpoint_represented[i];
        self.lost_packets += loss;
        self.represented[i] = self.checkpoint_represented[i];
        Ok(loss)
    }

    /// Packets dropped because no alive switch could take them.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Packets permanently lost to failures (cleared by revivals,
    /// forfeited by promotion loss windows).
    pub fn lost_packets(&self) -> u64 {
        self.lost_packets
    }

    /// Packets held in dead switches' registers — invisible to merged
    /// readouts but not (yet) lost.
    pub fn unavailable_packets(&self) -> u64 {
        self.represented
            .iter()
            .zip(&self.alive)
            .filter(|&(_, &alive)| !alive)
            .map(|(&r, _)| r)
            .sum()
    }

    /// The full packet ledger; [`PacketLedger::balanced`] must hold
    /// after every fleet operation.
    pub fn ledger(&self) -> PacketLedger {
        PacketLedger {
            fed: self.total_fed,
            represented: self.represented.iter().sum::<u64>() + self.rotated_packets,
            unavailable: self.unavailable_packets(),
            lost: self.lost_packets,
            dropped: self.dropped_packets,
        }
    }

    /// Packets archived by epoch rotations (a subset of the ledger's
    /// `represented`: read out before their registers were cleared).
    pub fn rotated_packets(&self) -> u64 {
        self.rotated_packets
    }

    /// Epoch-boundary rotation of the **primary** task: merges its rows
    /// across the alive fleet, then clears *every* fleet task on every
    /// alive switch through the logged reset path, returning the
    /// primary task's archived readout. Equivalent to
    /// [`SwitchFleet::rotate_epoch_all`] with the secondary readouts
    /// discarded — single-task callers keep their old contract.
    pub fn rotate_epoch(&mut self) -> Result<EpochReadout, FlymonError> {
        let epoch = self.rotate_epoch_all()?;
        let primary = epoch
            .tasks
            .into_iter()
            .next()
            .expect("rotate_epoch_all errors on a taskless fleet");
        Ok(EpochReadout {
            rows: primary.rows,
            packets: epoch.packets,
        })
    }

    /// Epoch-boundary rotation: merges every row of every fleet task
    /// across the alive fleet — each task by its algorithm's
    /// [`MergeLaw`], the same canonical table the sharded datapath
    /// merges by — then clears all tasks on every alive switch through
    /// the logged reset path, returning the archived readouts.
    ///
    /// (Routing through the shared table is load-bearing: this path
    /// used to pick max/OR only for HLL/Bloom and silently *sum*
    /// everything else, inflating SuMax-Max maxima across the boundary.
    /// Sum-law rows are clamped at their register cell ceiling, exactly
    /// as Cond-ADD saturates them; an algorithm without a single merge
    /// law is an explicit error, never a silent sum.)
    ///
    /// Memory is constant per rotation — one merged copy of each task's
    /// rows — regardless of how much traffic the epoch carried, which
    /// is what lets a streaming runtime measure indefinitely.
    ///
    /// The rotation is double-buffered: the only work ingestion waits
    /// for is an O(rows) logged **bank swap** per alive switch
    /// ([`flymon::FlyMon::rotate_banks`]) — each switch's live
    /// registers trade places with a zeroed shadow bank, archiving the
    /// epoch in place. The merge then reads the immutable archives
    /// *after* ingestion resumes, and the O(memory) re-zeroing of the
    /// archives is deferred to bank retirement, off the stall path.
    /// Untouched registers skip the swap entirely (their rows are
    /// provably zero — the identity of every merge law), so an idle
    /// task's rotation costs a watermark check. Switches hosting tasks
    /// outside the fleet list (where a whole-register swap would clear
    /// state the fleet does not own) fall back to the merge-then-clear
    /// sweep, vectorized and elided but fully inside the stall; both
    /// paths produce bit-identical epochs. The stall is observable via
    /// [`SwitchFleet::last_rotation_stall`].
    ///
    /// Accounting: the alive switches' absorbed counts move to
    /// [`SwitchFleet::rotated_packets`] (still `represented`, now in
    /// the archive), and each rotated switch's standby barrier drops to
    /// zero — the resets are WAL-logged, so a later promotion replays
    /// them and recovers the *cleared* registers; packets absorbed
    /// after the rotation are the new loss window. Dead switches are
    /// skipped (their registers are unreachable); they settle through
    /// revival or promotion as usual.
    ///
    /// Errors if every switch is dead (no rows to read), a task's
    /// algorithm has no merge law, or a logged reset fails mid-sweep —
    /// switches already rotated stay rotated (each per-switch reset is
    /// itself atomic; their archived epochs are discarded, exactly as
    /// the merge-then-clear path discards its merged readout), and the
    /// error surfaces which switch refused.
    pub fn rotate_epoch_all(&mut self) -> Result<FleetEpoch, FlymonError> {
        if self.alive_task_members(0).next().is_none() {
            return Err(FlymonError::NoCapacity(
                "every switch in the fleet has failed".into(),
            ));
        }
        // The bank swap clears whole registers, so it is only sound
        // when the fleet's task list covers every task on every alive
        // switch (always true unless a caller deployed out-of-band).
        let bankable = (0..self.switches.len()).all(|i| {
            !self.alive[i]
                || self.switches[i].task_count()
                    == self.tasks.iter().filter(|t| t.handles[i].is_some()).count()
        });
        if !bankable {
            return self.rotate_epoch_all_merge_then_clear();
        }
        // Phase 1 — the ingestion stall: O(rows) logged bank swaps per
        // alive switch, plus ledger accounting.
        let stall_begun = Instant::now();
        let mut packets = 0;
        let mut chan = self.channel.take();
        for i in 0..self.switches.len() {
            if !self.alive[i] {
                continue;
            }
            let handles: Vec<TaskHandle> = self
                .tasks
                .iter()
                .filter_map(|t| t.handles[i])
                .collect();
            let sw = &mut self.switches[i];
            let reset = send(&mut chan, i, "epoch-reset", || {
                sw.rotate_banks(&handles)?;
                Ok(TxnResult::Unit)
            });
            if let Err(e) = reset {
                self.channel = chan;
                self.note_rotation_stall(stall_begun.elapsed());
                return Err(e);
            }
            packets += self.represented[i];
            self.rotated_packets += self.represented[i];
            self.represented[i] = 0;
            self.checkpoint_represented[i] = 0;
        }
        self.channel = chan;
        self.note_rotation_stall(stall_begun.elapsed());
        // Phase 2 — off the stall path: merge the archived banks (they
        // are immutable; ingestion writes land in the fresh live
        // banks), fusing the occupancy scan into the same pass.
        let tasks = self.merge_epochs(true)?;
        // Phase 3 — retire (re-zero) the archives: the O(memory)
        // memset the swap deferred out of the stall.
        for i in 0..self.switches.len() {
            if self.alive[i] {
                self.switches[i].retire_epoch_banks();
            }
        }
        Ok(FleetEpoch { tasks, packets })
    }

    /// The pre-bank rotation path: merge every task's rows from the
    /// live registers (vectorized, untouched rows elided), then clear
    /// every task through the logged reset sweep. Kept for switches
    /// hosting out-of-band tasks, where a whole-register bank swap
    /// would clear state the fleet does not own. The whole sweep is an
    /// ingestion stall — which is what the bank path exists to avoid.
    fn rotate_epoch_all_merge_then_clear(&mut self) -> Result<FleetEpoch, FlymonError> {
        let stall_begun = Instant::now();
        let task_epochs = self.merge_epochs(false)?;
        let mut packets = 0;
        let mut chan = self.channel.take();
        for i in 0..self.switches.len() {
            if !self.alive[i] {
                continue;
            }
            let handles: Vec<TaskHandle> = self
                .tasks
                .iter()
                .filter_map(|t| t.handles[i])
                .collect();
            let sw = &mut self.switches[i];
            let reset = send(&mut chan, i, "epoch-reset", || {
                for h in &handles {
                    sw.reset_task(*h)?;
                }
                Ok(TxnResult::Unit)
            });
            if let Err(e) = reset {
                self.channel = chan;
                self.note_rotation_stall(stall_begun.elapsed());
                return Err(e);
            }
            packets += self.represented[i];
            self.rotated_packets += self.represented[i];
            self.represented[i] = 0;
            self.checkpoint_represented[i] = 0;
        }
        self.channel = chan;
        self.note_rotation_stall(stall_begun.elapsed());
        Ok(FleetEpoch {
            tasks: task_epochs,
            packets,
        })
    }

    /// Merges every fleet task's rows across the alive fleet — from the
    /// archived epoch banks when `archived` (the double-buffered path;
    /// a register that skipped the swap contributes nothing), or from
    /// the live registers otherwise (rows provably untouched are
    /// elided). Folding every member into a zeroed accumulator is
    /// bit-identical to copying the first member and folding the rest:
    /// 0 is the identity of all three merge laws, and members never
    /// exceed the cap (registers saturate at their cell ceiling). The
    /// occupancy scan and row-0 heavy-candidate collection are fused
    /// into the same pass.
    fn merge_epochs(&self, archived: bool) -> Result<Vec<TaskEpoch>, FlymonError> {
        let mut task_epochs = Vec::with_capacity(self.tasks.len());
        for ti in 0..self.tasks.len() {
            let law = MergeLaw::of(self.tasks[ti].algorithm)?;
            let (fm, h) = self
                .alive_task_members(ti)
                .next()
                .expect("liveness was checked above");
            let placed = &fm.task(h)?.rows;
            let row_caps: Vec<u32> = placed.iter().map(|r| r.bucket_max).collect();
            let sizes: Vec<usize> = placed.iter().map(|r| r.size).collect();
            let mut rows = Vec::with_capacity(sizes.len());
            let mut occupancy = Vec::with_capacity(sizes.len());
            let mut heavy_candidates = Vec::new();
            for (row, (&bucket_max, &size)) in row_caps.iter().zip(&sizes).enumerate() {
                let cap = match law {
                    MergeLaw::Sum => bucket_max,
                    MergeLaw::Max | MergeLaw::Or => u32::MAX,
                };
                let mut acc = vec![0u32; size];
                for (m, mh) in self.alive_task_members(ti) {
                    if archived {
                        if let Some(src) = m.archived_row(mh, row)? {
                            law.combine_rows(&mut acc, src, cap);
                        }
                    } else if !m.row_untouched(mh, row)? {
                        law.combine_rows(&mut acc, m.row_view(mh, row)?, cap);
                    }
                }
                let occ = scan_row(&acc, bucket_max);
                if row == 0 {
                    heavy_candidates.reserve(occ.nonzero);
                    for (i, &v) in acc.iter().enumerate() {
                        if v > 0 {
                            heavy_candidates.push(i as u32);
                        }
                    }
                }
                occupancy.push(occ);
                rows.push(acc);
            }
            task_epochs.push(TaskEpoch {
                name: self.tasks[ti].def.name.clone(),
                filter: self.tasks[ti].def.filter,
                algorithm: self.tasks[ti].algorithm,
                rows,
                row_caps,
                occupancy,
                heavy_candidates,
            });
        }
        Ok(task_epochs)
    }

    /// Records one rotation's ingestion stall.
    fn note_rotation_stall(&mut self, stall: Duration) {
        self.last_rotation_stall = stall;
        self.total_rotation_stall += stall;
        self.rotations += 1;
    }

    /// Ingestion-stall time of the most recent epoch rotation: the
    /// bank-swap sweep only — the merge and archive retirement run
    /// after ingestion resumes. The merge-then-clear fallback counts
    /// its whole sweep (there, everything is inside the stall).
    pub fn last_rotation_stall(&self) -> Duration {
        self.last_rotation_stall
    }

    /// (rotations performed, cumulative ingestion stall across them).
    pub fn rotation_stall_totals(&self) -> (u64, Duration) {
        (self.rotations, self.total_rotation_stall)
    }

    /// Read-only descriptions of the fleet's task list, in the order
    /// reconfiguration ops index it.
    pub fn task_infos(&self) -> Vec<FleetTaskInfo> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(index, t)| {
                let allocated = self
                    .alive_task_members(index)
                    .next()
                    .and_then(|(fm, h)| fm.task(h).ok())
                    .map_or(0, |rec| rec.rows.iter().map(|r| r.size).sum());
                FleetTaskInfo {
                    index,
                    name: t.def.name.clone(),
                    filter: t.def.filter,
                    algorithm: t.algorithm,
                    requested_buckets: t.def.memory,
                    allocated_buckets: allocated,
                }
            })
            .collect()
    }

    /// True when every switch is alive — the precondition for fleet-wide
    /// reconfiguration ([`SwitchFleet::reallocate_task`],
    /// [`SwitchFleet::split_task`]): reconfiguring around a dead switch
    /// would leave its task set diverged from the fleet's.
    pub fn fully_alive(&self) -> bool {
        self.alive.iter().all(|&a| a)
    }

    /// Resizes fleet task `task` to `new_buckets` buckets per row on
    /// every switch, through each switch's logged
    /// [`FlyMon::reallocate_memory`] (§6 freeze-and-divert: a fresh
    /// instance is deployed, traffic diverts, the old one is retired —
    /// counts do not carry over, so callers rotate the epoch first).
    ///
    /// Requires a fully alive fleet. Switches are identical (same
    /// config, same deterministic task set), so per-switch outcomes
    /// agree; if a reallocation nevertheless fails or reverts
    /// mid-sweep, the per-switch control planes stay audit-clean, the
    /// affected handle is refreshed, and the error surfaces — callers
    /// should treat the fleet's task list as authoritative and retry or
    /// stop adapting.
    pub fn reallocate_task(&mut self, task: usize, new_buckets: usize) -> Result<(), FlymonError> {
        if !self.fully_alive() {
            return Err(FlymonError::NoCapacity(
                "fleet reconfiguration needs every switch alive".into(),
            ));
        }
        if task >= self.tasks.len() {
            return Err(FlymonError::NoSuchTask);
        }
        let mut chan = self.channel.take();
        let mut outcome = Ok(());
        for i in 0..self.switches.len() {
            let Some(h) = self.tasks[task].handles[i] else {
                outcome = Err(FlymonError::NoSuchTask);
                break;
            };
            let sw = &mut self.switches[i];
            match send(&mut chan, i, "reallocate", || {
                sw.reallocate_memory(h, new_buckets).map(TxnResult::Handle)
            }) {
                Ok(r) => self.tasks[task].handles[i] = Some(r.handle()),
                Err(FlymonError::ReallocationReverted { restored }) => {
                    self.tasks[task].handles[i] = Some(restored);
                    outcome = Err(FlymonError::ReallocationReverted { restored });
                    break;
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.channel = chan;
        outcome?;
        self.tasks[task].def.memory = new_buckets;
        Ok(())
    }

    /// Splits fleet task `task` into two children along its filter
    /// (§3.1.1 task splitting: the src prefix halves, dst at /32), named
    /// `<parent>/0` and `<parent>/1`, each inheriting the parent's
    /// geometry. On every switch the parent is removed and both children
    /// deployed — all through the logged control plane, so recovery
    /// replays the split. The parent's registers are retired with it
    /// (callers rotate the epoch first, as with reallocation).
    ///
    /// Requires a fully alive fleet. On a per-switch failure the whole
    /// sweep unwinds: the parent is redeployed on the failing switch
    /// and every switch that already split rolls its children back to
    /// the parent (definitions are deterministic, so it lands back in
    /// an equivalent placement), with the recorded handles refreshed —
    /// so after a [`FlymonError::ChannelTimeout`] the task list is
    /// still authoritative and the split can simply be retried.
    /// Rollback is itself channel-routed and best-effort; a switch
    /// whose rollback fails is left with a `None` handle (diverged
    /// until revived). Returns the two child task indices: the first
    /// child takes the parent's slot, the second is appended.
    pub fn split_task(&mut self, task: usize) -> Result<(usize, usize), FlymonError> {
        if !self.fully_alive() {
            return Err(FlymonError::NoCapacity(
                "fleet reconfiguration needs every switch alive".into(),
            ));
        }
        if task >= self.tasks.len() {
            return Err(FlymonError::NoSuchTask);
        }
        let parent_def = self.tasks[task].def.clone();
        let (lo, hi) = parent_def.filter.split().ok_or_else(|| {
            FlymonError::BadTask(format!(
                "task '{}' filter {} cannot split further",
                parent_def.name,
                parent_def.filter.describe()
            ))
        })?;
        let mut lo_def = parent_def.clone();
        lo_def.name = format!("{}/0", parent_def.name);
        lo_def.filter = lo;
        let mut hi_def = parent_def.clone();
        hi_def.name = format!("{}/1", parent_def.name);
        hi_def.filter = hi;
        let n = self.switches.len();
        let mut chan = self.channel.take();
        let swept = (|| {
            let mut lo_handles: Vec<TaskHandle> = Vec::with_capacity(n);
            let mut hi_handles: Vec<TaskHandle> = Vec::with_capacity(n);
            let mut failure: Option<FlymonError> = None;
            'sweep: for i in 0..n {
                let h = match self.tasks[task].handles[i].ok_or(FlymonError::NoSuchTask) {
                    Ok(h) => h,
                    Err(e) => {
                        failure = Some(e);
                        break 'sweep;
                    }
                };
                let sw = &mut self.switches[i];
                if let Err(e) = send(&mut chan, i, "split-remove", || {
                    sw.remove(h).map(|_| TxnResult::Unit)
                }) {
                    // Nothing changed on this switch; its recorded
                    // parent handle is still valid.
                    failure = Some(e);
                    break 'sweep;
                }
                let sw = &mut self.switches[i];
                let lo_h = match send(&mut chan, i, "split-deploy", || {
                    sw.deploy(&lo_def).map(TxnResult::Handle)
                }) {
                    Ok(r) => r.handle(),
                    Err(e) => {
                        let sw = &mut self.switches[i];
                        let restored = send(&mut chan, i, "split-rollback", || {
                            sw.deploy(&parent_def).map(TxnResult::Handle)
                        });
                        self.tasks[task].handles[i] = restored.ok().map(|r| r.handle());
                        failure = Some(e);
                        break 'sweep;
                    }
                };
                let sw = &mut self.switches[i];
                let hi_h = match send(&mut chan, i, "split-deploy", || {
                    sw.deploy(&hi_def).map(TxnResult::Handle)
                }) {
                    Ok(r) => r.handle(),
                    Err(e) => {
                        let sw = &mut self.switches[i];
                        let restored = send(&mut chan, i, "split-rollback", || {
                            sw.remove(lo_h)
                                .and_then(|_| sw.deploy(&parent_def))
                                .map(TxnResult::Handle)
                        });
                        self.tasks[task].handles[i] = restored.ok().map(|r| r.handle());
                        failure = Some(e);
                        break 'sweep;
                    }
                };
                lo_handles.push(lo_h);
                hi_handles.push(hi_h);
            }
            if let Some(e) = failure {
                // Unwind switches that already split so the fleet stays
                // uniform: remove both children, restore the parent, and
                // refresh the recorded handle (a redeploy mints a new
                // one). Best-effort: a switch whose rollback itself
                // fails is marked `None` — diverged until revived.
                for j in (0..lo_handles.len()).rev() {
                    let (lo_j, hi_j) = (lo_handles[j], hi_handles[j]);
                    let sw = &mut self.switches[j];
                    let restored = send(&mut chan, j, "split-rollback", || {
                        sw.remove(lo_j)?;
                        sw.remove(hi_j)?;
                        sw.deploy(&parent_def).map(TxnResult::Handle)
                    });
                    self.tasks[task].handles[j] = restored.ok().map(|r| r.handle());
                }
                return Err(e);
            }
            Ok((lo_handles, hi_handles))
        })();
        self.channel = chan;
        let (lo_handles, hi_handles) = swept?;
        let lo_handles: Vec<Option<TaskHandle>> = lo_handles.into_iter().map(Some).collect();
        let hi_handles: Vec<Option<TaskHandle>> = hi_handles.into_iter().map(Some).collect();
        let algorithm = self.tasks[task].algorithm;
        self.tasks[task] = FleetTask {
            def: lo_def,
            algorithm,
            handles: lo_handles,
        };
        self.tasks.push(FleetTask {
            def: hi_def,
            algorithm,
            handles: hi_handles,
        });
        Ok((task, self.tasks.len() - 1))
    }

    /// Deploys a new task on every switch through the logged control
    /// plane (and the control channel, when one is attached), appending
    /// it to the fleet's task list. Requires a fully alive fleet —
    /// deploying around a dead switch would diverge its task set.
    ///
    /// On a per-switch failure the already-deployed switches are rolled
    /// back (best-effort removes, themselves channel-routed) and the
    /// error surfaces; the fleet's task list is unchanged. Returns the
    /// new task's index.
    pub fn deploy_task(&mut self, def: &TaskDefinition) -> Result<usize, FlymonError> {
        if self.switches.is_empty() {
            return Err(FlymonError::NoCapacity("fleet has no switches".into()));
        }
        if !self.fully_alive() {
            return Err(FlymonError::NoCapacity(
                "fleet reconfiguration needs every switch alive".into(),
            ));
        }
        let n = self.switches.len();
        let mut chan = self.channel.take();
        let swept = (|| {
            let mut handles: Vec<Option<TaskHandle>> = Vec::with_capacity(n);
            for i in 0..n {
                let sw = &mut self.switches[i];
                match send(&mut chan, i, "deploy", || {
                    sw.deploy(def).map(TxnResult::Handle)
                }) {
                    Ok(r) => handles.push(Some(r.handle())),
                    Err(e) => {
                        for (j, h) in handles.iter().enumerate() {
                            let Some(h) = *h else { continue };
                            let sw = &mut self.switches[j];
                            let _ = send(&mut chan, j, "deploy-rollback", || {
                                sw.remove(h).map(|_| TxnResult::Unit)
                            });
                        }
                        return Err(e);
                    }
                }
            }
            Ok(handles)
        })();
        self.channel = chan;
        let handles = swept?;
        let h = handles[0].expect("every deploy succeeded above");
        let algorithm = self.switches[0].task(h)?.algorithm;
        self.tasks.push(FleetTask {
            def: def.clone(),
            algorithm,
            handles,
        });
        Ok(self.tasks.len() - 1)
    }

    /// Removes fleet task `task` from every switch through the logged
    /// control plane (and the control channel, when one is attached).
    /// Requires a fully alive fleet; task 0 anchors the fleet's readout
    /// API and cannot be removed. Like [`SwitchFleet::split_task`],
    /// removal shifts the indices of later tasks.
    ///
    /// A per-switch failure surfaces mid-sweep: switches already swept
    /// stay cleared (their handle slots are `None`), so a later retry
    /// skips them — retrying after a [`FlymonError::ChannelTimeout`] is
    /// idempotent.
    pub fn remove_task(&mut self, task: usize) -> Result<(), FlymonError> {
        if task == 0 {
            return Err(FlymonError::BadTask(
                "task 0 anchors the fleet readout API and cannot be removed".into(),
            ));
        }
        if task >= self.tasks.len() {
            return Err(FlymonError::NoSuchTask);
        }
        if !self.fully_alive() {
            return Err(FlymonError::NoCapacity(
                "fleet reconfiguration needs every switch alive".into(),
            ));
        }
        let mut chan = self.channel.take();
        let mut outcome = Ok(());
        for i in 0..self.switches.len() {
            let Some(h) = self.tasks[task].handles[i] else {
                continue; // cleared by a previous, partially failed sweep
            };
            let sw = &mut self.switches[i];
            match send(&mut chan, i, "remove", || {
                sw.remove(h).map(|_| TxnResult::Unit)
            }) {
                Ok(_) => self.tasks[task].handles[i] = None,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.channel = chan;
        outcome?;
        self.tasks.remove(task);
        Ok(())
    }

    /// Bounds control-plane WAL growth outside the standby-sync cadence:
    /// every alive switch whose log holds more than `threshold` records
    /// first drops its aborted records (safe at any time — they never
    /// replay), and if any log is still oversized a standby sync runs,
    /// compacting at fresh barriers. Returns the records removed by
    /// pruning alone.
    ///
    /// Without a standby there is no checkpoint to anchor compaction of
    /// *committed* records, so pruning aborted ones is all that can be
    /// done safely; an operator who never syncs accepts that growth.
    pub fn maintain_wals(&mut self, threshold: usize) -> usize {
        let mut pruned = 0;
        let mut oversized = false;
        for i in 0..self.switches.len() {
            if !self.alive[i] {
                continue;
            }
            let Some(mut wal) = self.switches[i].detach_wal() else {
                continue;
            };
            if wal.len() > threshold {
                pruned += wal.prune_aborted();
            }
            oversized |= wal.len() > threshold;
            self.switches[i].attach_wal(wal);
        }
        if oversized && self.standby.is_some() {
            self.sync_standby();
        }
        pruned
    }

    /// Feeds a packet to the switch at `ingress`, rerouting to the next
    /// alive switch if that one is dead (deterministic linear probe, a
    /// stand-in for the fabric's failover). Drops the packet if the
    /// whole fleet is dead — or empty.
    ///
    /// # Panics
    /// Panics if `ingress` is out of range on a non-empty fleet.
    pub fn process(&mut self, ingress: usize, pkt: &Packet) {
        let n = self.switches.len();
        self.total_fed += 1;
        if n == 0 {
            // Regression guard: a zero-switch fleet drops, it does not
            // panic on the `ingress < n` bound.
            self.dropped_packets += 1;
            return;
        }
        assert!(ingress < n, "ingress {ingress} out of range ({n} switches)");
        match self.route(ingress) {
            Some(i) => {
                self.switches[i].process(pkt);
                self.represented[i] += 1;
            }
            None => self.dropped_packets += 1,
        }
    }

    /// The switch that actually takes traffic entering at `ingress`:
    /// `ingress` itself if alive, else the next alive switch in the
    /// deterministic linear probe. `None` when the whole fleet is dead.
    fn route(&self, ingress: usize) -> Option<usize> {
        let n = self.switches.len();
        (0..n)
            .map(|probe| (ingress + probe) % n)
            .find(|&i| self.alive[i])
    }

    /// Splits a trace across ingresses by source address (a stand-in
    /// for topology-based ingress assignment). An empty fleet records
    /// every packet as dropped instead of panicking on the ingress
    /// modulus.
    pub fn process_trace(&mut self, trace: &[Packet]) {
        let n = self.switches.len();
        if n == 0 {
            self.total_fed += trace.len() as u64;
            self.dropped_packets += trace.len() as u64;
            return;
        }
        for p in trace {
            self.process(datapath::shard_of(p, n), p);
        }
    }

    /// Parallel [`SwitchFleet::process_trace`]: routes every packet to
    /// the switch the serial path would pick (ingress hash + failover
    /// probe, with liveness frozen for the replay) through the shared
    /// ingress/worker pipeline. Switches are disjoint state, so the
    /// resulting registers — and therefore every merged readout — are
    /// bit-identical to the serial replay.
    ///
    /// Routing must be honored exactly (failover targets, drop
    /// attribution on dead switches), so the replay never stripes:
    /// `can_stripe` is false and the frozen-liveness closure runs once
    /// per packet on the ingress thread.
    ///
    /// Returns per-worker throughput stats; fleet-level
    /// [`SwitchFleet::dropped_packets`] accounting is updated as usual,
    /// with each drop attributed to the dead ingress switch's stats row.
    pub fn process_trace_parallel(&mut self, trace: &[Packet]) -> Vec<WorkerStats> {
        let n = self.switches.len();
        self.total_fed += trace.len() as u64;
        if n == 0 {
            self.dropped_packets += trace.len() as u64;
            return Vec::new();
        }
        // Freeze liveness for the replay: routing decisions must reflect
        // a single snapshot of `alive` for the whole trace — the same
        // semantics the old serial prologue had, without the prologue.
        let alive = self.alive.clone();
        let mut stats = Vec::new();
        let total = datapath::replay_pipeline(
            &mut self.switches,
            trace,
            |p| {
                let ingress = datapath::shard_of(p, n);
                let to = (0..n)
                    .map(|probe| (ingress + probe) % n)
                    .find(|&i| alive[i]);
                datapath::Assignment { ingress, to }
            },
            false,
            None,
            &mut stats,
        );
        debug_assert_eq!(stats.len(), n, "one stats row per switch");
        for s in &stats {
            self.represented[s.worker] += s.packets;
        }
        self.dropped_packets += total.dropped;
        stats
    }

    /// Alive switches paired with their handles for the primary task.
    fn alive_members(&self) -> impl Iterator<Item = (&FlyMon, TaskHandle)> {
        self.alive_task_members(0)
    }

    /// Alive switches paired with their handles for fleet task `ti`
    /// (empty when the task does not exist).
    fn alive_task_members(&self, ti: usize) -> impl Iterator<Item = (&FlyMon, TaskHandle)> {
        let handles: &[Option<TaskHandle>] = self
            .tasks
            .get(ti)
            .map_or(&[], |t| t.handles.as_slice());
        self.switches
            .iter()
            .zip(handles)
            .zip(&self.alive)
            .filter(|&(_, &alive)| alive)
            .filter_map(|((fm, h), _)| h.map(|h| (fm, h)))
    }

    /// Per-bucket merged readout of one row of fleet task `ti` across
    /// the alive fleet, through the law's vectorized kernel; members
    /// whose row is provably untouched are elided (their rows are all
    /// zero — the identity of every merge law).
    fn merged_task_row(
        &self,
        ti: usize,
        row: usize,
        law: MergeLaw,
        cap: u32,
    ) -> Result<Vec<u32>, FlymonError> {
        let mut members = self.alive_task_members(ti);
        let (first, first_h) = members.next().ok_or_else(|| {
            FlymonError::NoCapacity("every switch in the fleet has failed".into())
        })?;
        let mut acc = first.read_row(first_h, row)?;
        for (fm, h) in members {
            if fm.row_untouched(h, row)? {
                continue;
            }
            law.combine_rows(&mut acc, fm.row_view(h, row)?, cap);
        }
        Ok(acc)
    }

    /// [`SwitchFleet::merged_task_row`] into a caller-provided scratch:
    /// merges one row of fleet task `ti` into `scratch`'s accumulator
    /// (readable as `scratch.acc` afterwards) and returns the fused
    /// occupancy scan. A steady-state readout loop reusing one scratch
    /// allocates nothing once the scratch has grown to the row size.
    pub fn merged_task_row_into(
        &self,
        ti: usize,
        row: usize,
        scratch: &mut ReadoutScratch,
    ) -> Result<datapath::RowOccupancy, FlymonError> {
        let law = MergeLaw::of(
            self.tasks
                .get(ti)
                .ok_or_else(|| {
                    FlymonError::BadTask(format!("fleet task {ti} does not exist"))
                })?
                .algorithm,
        )?;
        let mut members = self.alive_task_members(ti);
        let (first, first_h) = members.next().ok_or_else(|| {
            FlymonError::NoCapacity("every switch in the fleet has failed".into())
        })?;
        let bucket_max = first
            .task(first_h)?
            .rows
            .get(row)
            .map(|r| r.bucket_max)
            .ok_or_else(|| FlymonError::BadTask(format!("task has no row {row}")))?;
        let cap = match law {
            MergeLaw::Sum => bucket_max,
            MergeLaw::Max | MergeLaw::Or => u32::MAX,
        };
        let acc = scratch.begin_row(0);
        first.read_row_into(first_h, row, acc)?;
        for (fm, h) in members {
            if fm.row_untouched(h, row)? {
                continue;
            }
            law.combine_rows(acc, fm.row_view(h, row)?, cap);
        }
        Ok(scan_row(acc, bucket_max))
    }

    /// Network-wide frequency estimate for a flow: per-bucket sums of
    /// the fleet's registers, then the row-wise minimum (linearity of
    /// counter sketches). Dead switches are skipped — the estimate
    /// covers the surviving traffic.
    ///
    /// The query routes to the first fleet task whose filter matches
    /// `pkt` — after a split, each child answers for its own prefix, so
    /// callers keep querying the fleet without tracking the task list.
    pub fn merged_frequency(&self, pkt: &Packet) -> Result<u64, FlymonError> {
        if self.tasks.is_empty() {
            return Err(FlymonError::NoCapacity(
                "the fleet has no switches".into(),
            ));
        }
        let ti = self
            .tasks
            .iter()
            .position(|t| t.def.filter.matches(pkt))
            .ok_or_else(|| {
                FlymonError::BadTask("no fleet task's filter admits this packet".into())
            })?;
        let d = match self.tasks[ti].algorithm {
            Algorithm::Cms { d } => d,
            Algorithm::Mrac => 1,
            other => {
                return Err(FlymonError::BadTask(format!(
                    "{} readouts do not merge by summation",
                    other.name()
                )))
            }
        };
        let (locator, locator_h) = self.alive_task_members(ti).next().ok_or_else(|| {
            FlymonError::NoCapacity("every switch in the fleet has failed".into())
        })?;
        let mut best = u64::MAX;
        let mut scratch = flymon_rmt::hash::HashScratch::default();
        for row in 0..d {
            // Cond-ADD saturates each bucket at the register ceiling, so
            // the summed merge clamps there too (see ShardedDatapath).
            let cap = locator
                .task(locator_h)?
                .rows
                .get(row)
                .map_or(u32::MAX, |r| r.bucket_max);
            let merged = self.merged_task_row(ti, row, MergeLaw::Sum, cap)?;
            // Locate the bucket through any alive switch (identical
            // layouts across the fleet), reusing one hash scratch for
            // the whole sweep.
            let idx = locator.locate_with(locator_h, row, pkt, &mut scratch)?;
            best = best.min(u64::from(merged[idx]));
        }
        Ok(best)
    }

    /// [`SwitchFleet::merged_frequency`] plus the explicit loss window:
    /// the bound collects everything the alive registers cannot see —
    /// permanently lost packets, dead switches' unavailable counts, and
    /// fabric drops. The true network-wide count never exceeds
    /// `estimate + loss_bound`.
    pub fn merged_frequency_bounded(&self, pkt: &Packet) -> Result<BoundedEstimate, FlymonError> {
        let estimate = self.merged_frequency(pkt)?;
        Ok(BoundedEstimate {
            estimate,
            loss_bound: self.lost_packets + self.unavailable_packets() + self.dropped_packets,
        })
    }

    /// Network-wide cardinality estimate: HLL registers merge by max.
    /// Answers for the primary task.
    pub fn merged_cardinality(&self) -> Result<f64, FlymonError> {
        if !matches!(
            self.tasks.first().map(|t| t.algorithm),
            Some(Algorithm::Hll)
        ) {
            return Err(FlymonError::BadTask(
                "merged cardinality needs an HLL task".into(),
            ));
        }
        let merged = self.merged_task_row(0, 0, MergeLaw::Max, u32::MAX)?;
        let regs: Vec<u8> = merged.into_iter().map(|v| v.min(255) as u8).collect();
        Ok(estimate_from_registers(&regs))
    }

    /// Network-wide existence check. A key inserted anywhere was
    /// inserted on exactly one switch (its ingress), which set *all* of
    /// its filter rows — so union membership is the OR of the per-switch
    /// checks: no false negatives, and at most the sum of the per-switch
    /// false-positive rates.
    pub fn merged_exists(&self, pkt: &Packet) -> Result<bool, FlymonError> {
        if !matches!(
            self.tasks.first().map(|t| t.algorithm),
            Some(Algorithm::Bloom { .. })
        ) {
            return Err(FlymonError::BadTask(
                "merged existence needs a Bloom task".into(),
            ));
        }
        Ok(self
            .alive_members()
            .any(|(fm, h)| fm.query_exists(h, pkt)))
    }

    /// Access one switch (diagnostics, per-ingress queries, audits),
    /// paired with its handle for the *primary* task. Returns `None`
    /// for the handle on switches whose deployment was rolled back.
    pub fn switch(&self, i: usize) -> (&FlyMon, Option<TaskHandle>) {
        let h = self.tasks.first().and_then(|t| t.handles[i]);
        (&self.switches[i], h)
    }

    /// Mutable access to one switch's control plane (secondary
    /// deployments, chaos reconfiguration). The escape hatch is for
    /// *control-plane* operations: feeding packets or resetting the
    /// fleet task through it bypasses the packet ledger.
    pub fn switch_mut(&mut self, i: usize) -> &mut FlyMon {
        &mut self.switches[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::KeySpec;
    use flymon_traffic::gen::{TraceConfig, TraceGenerator};

    fn config() -> FlyMonConfig {
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 16384,
            ..FlyMonConfig::default()
        }
    }

    fn trace() -> Vec<Packet> {
        TraceGenerator::new(44).wide_like(&TraceConfig {
            flows: 3_000,
            packets: 60_000,
            zipf_alpha: 1.1,
            duration_ns: 1_000_000_000,
            seed: 44,
        })
    }

    fn cms_def(d: usize) -> TaskDefinition {
        TaskDefinition::builder("freq")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d })
            .memory(8192)
            .build()
    }

    #[test]
    fn merged_frequency_equals_single_switch_exactly() {
        // Linearity: a 4-switch fleet over a split trace must produce
        // byte-identical merged registers to one switch over the whole
        // trace.
        let def = cms_def(3);
        let t = trace();

        let mut fleet = SwitchFleet::deploy(4, config(), &def).unwrap();
        fleet.process_trace(&t);

        let mut single = FlyMon::new(config());
        let h = single.deploy(&def).unwrap();
        single.process_trace(&t);

        let mut checked = 0;
        let mut seen = std::collections::HashSet::new();
        for p in &t {
            if !seen.insert(KeySpec::SRC_IP.extract(p)) {
                continue;
            }
            assert_eq!(
                fleet.merged_frequency(p).unwrap(),
                single.query_frequency(h, p),
                "merged and single-switch estimates diverged"
            );
            checked += 1;
            if checked > 500 {
                break;
            }
        }
    }

    #[test]
    fn empty_fleet_drops_instead_of_panicking() {
        // Regression: `process_trace` computed `hash % 0` and `process`
        // asserted `ingress < 0` — both panicked on a zero-switch fleet.
        let def = cms_def(1);
        let mut fleet = SwitchFleet::deploy(0, config(), &def).unwrap();
        assert!(fleet.is_empty());
        assert_eq!(fleet.alive_count(), 0);
        let flow = Packet::tcp(1, 2, 3, 4);
        let t = vec![flow; 5];
        fleet.process_trace(&t);
        fleet.process(0, &flow);
        assert_eq!(fleet.dropped_packets(), 6);
        assert!(fleet.process_trace_parallel(&t).is_empty());
        assert_eq!(fleet.dropped_packets(), 11);
        // Readouts fail cleanly rather than returning garbage.
        assert!(fleet.merged_frequency(&flow).is_err());
        assert!(fleet.merged_cardinality().is_err());
        assert!(fleet.merged_exists(&flow).is_err());
    }

    #[test]
    fn parallel_replay_matches_serial_through_failover() {
        // One dead switch forces the failover probe; the parallel path
        // must route identically and count the same drops.
        let def = cms_def(2);
        let t = trace();

        let mut serial = SwitchFleet::deploy(3, config(), &def).unwrap();
        serial.fail_switch(1);
        serial.process_trace(&t);

        let mut parallel = SwitchFleet::deploy(3, config(), &def).unwrap();
        parallel.fail_switch(1);
        let stats = parallel.process_trace_parallel(&t);
        assert_eq!(stats.iter().map(|s| s.packets).sum::<u64>(), t.len() as u64);
        assert_eq!(stats[1].packets, 0, "dead switch takes no traffic");
        assert_eq!(parallel.dropped_packets(), serial.dropped_packets());

        for row in 0..2 {
            assert_eq!(
                serial.merged_task_row(0, row, MergeLaw::Sum, u32::MAX).unwrap(),
                parallel.merged_task_row(0, row, MergeLaw::Sum, u32::MAX).unwrap(),
                "row {row} diverged between serial and parallel replay"
            );
        }
    }

    #[test]
    fn merged_cardinality_tracks_union() {
        let def = TaskDefinition::builder("card")
            .key(KeySpec::NONE)
            .attribute(Attribute::Distinct(KeySpec::FIVE_TUPLE))
            .algorithm(Algorithm::Hll)
            .memory(2048)
            .build();
        let mut fleet = SwitchFleet::deploy(3, config(), &def).unwrap();
        let n = 20_000u32;
        for i in 0..n {
            fleet.process((i % 3) as usize, &Packet::udp(i, 9, 1, 53));
        }
        let est = fleet.merged_cardinality().unwrap();
        let err = (est - f64::from(n)).abs() / f64::from(n);
        assert!(err < 0.1, "merged estimate {est:.0} (err {err:.3})");
        // Each single switch saw only a third.
        let (fm, h) = fleet.switch(0);
        assert!(fm.cardinality(h.unwrap()) < est * 0.5);
    }

    #[test]
    fn merged_existence_unions_the_fleet() {
        let def = TaskDefinition::builder("bl")
            .key(KeySpec::NONE)
            .attribute(Attribute::Existence(KeySpec::FIVE_TUPLE))
            .memory(8192)
            .build();
        let mut fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        let on_a = Packet::tcp(1, 2, 3, 4);
        let on_b = Packet::tcp(5, 6, 7, 8);
        fleet.process(0, &on_a);
        fleet.process(1, &on_b);
        assert!(fleet.merged_exists(&on_a).unwrap());
        assert!(fleet.merged_exists(&on_b).unwrap());
        assert!(!fleet.merged_exists(&Packet::tcp(9, 9, 9, 9)).unwrap());
    }

    #[test]
    fn mismatched_queries_are_rejected() {
        let def = cms_def(1);
        let fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        assert!(fleet.merged_cardinality().is_err());
        assert!(fleet.merged_exists(&Packet::tcp(1, 2, 3, 4)).is_err());
    }

    #[test]
    fn failed_switch_reroutes_and_survivors_keep_estimating() {
        let def = cms_def(2);
        let mut fleet = SwitchFleet::deploy(3, config(), &def).unwrap();
        let flow = Packet::tcp(0x0a000001, 5, 80, 80);
        for _ in 0..10 {
            fleet.process(0, &flow);
        }
        fleet.fail_switch(0);
        assert_eq!(fleet.alive_count(), 2);
        // Ingress 0 now reroutes to switch 1; nothing is dropped.
        for _ in 0..4 {
            fleet.process(0, &flow);
        }
        assert_eq!(fleet.dropped_packets(), 0);
        // Switch 0's ten packets died with it; the rerouted four live on,
        // and the dead counts are explicitly unavailable, not hidden.
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 4);
        assert_eq!(fleet.unavailable_packets(), 10);
        let bounded = fleet.merged_frequency_bounded(&flow).unwrap();
        assert!(bounded.estimate + bounded.loss_bound >= 14);

        // Regression: revival must NOT merge the stale pre-failure
        // registers back in — the ten packets were already accounted as
        // gone, and resurrecting them would make the estimate jump.
        fleet.revive_switch(0).unwrap();
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 4);
        assert_eq!(fleet.lost_packets(), 10);
        assert_eq!(fleet.unavailable_packets(), 0);
        assert!(fleet.ledger().balanced(), "{:?}", fleet.ledger());
        // The revived switch rejoins routing and is audit-clean.
        fleet.process(0, &flow);
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 5);
        assert!(fleet.switch(0).0.audit().is_empty());

        // A fully dead fleet reports failure, not garbage.
        for i in 0..3 {
            fleet.fail_switch(i);
        }
        assert!(fleet.merged_frequency(&flow).is_err());
        fleet.process(0, &flow);
        assert_eq!(fleet.dropped_packets(), 1);
        assert!(fleet.ledger().balanced(), "{:?}", fleet.ledger());
    }

    #[test]
    fn promotion_recovers_checkpoint_state_and_bounds_the_loss_window() {
        let def = cms_def(2);
        let mut fleet = SwitchFleet::deploy(3, config(), &def).unwrap();
        let flow = Packet::tcp(0x0a000001, 5, 80, 80);
        // 10 packets land on switch 0, then the standby syncs.
        for _ in 0..10 {
            fleet.process(0, &flow);
        }
        assert!(fleet.enable_standby() > 0, "initial sync ships a full image");
        // 6 more packets arrive after the barrier — the loss window.
        for _ in 0..6 {
            fleet.process(0, &flow);
        }
        fleet.fail_switch(0);

        let loss = fleet.promote_standby(0).unwrap();
        assert_eq!(loss, 6, "exactly the post-barrier packets are lost");
        assert_eq!(fleet.lost_packets(), 6);
        assert_eq!(fleet.alive_count(), 3, "routing retargets the standby");
        // The promoted instance carries the checkpoint-era counts and a
        // clean control plane.
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 10);
        assert!(fleet.switch(0).0.audit().is_empty());
        assert!(fleet.ledger().balanced(), "{:?}", fleet.ledger());
        let bounded = fleet.merged_frequency_bounded(&flow).unwrap();
        assert!(
            bounded.estimate + bounded.loss_bound >= 16,
            "true count 16 must stay within the documented bound {bounded:?}"
        );
        // The promoted switch keeps measuring under the same handle.
        fleet.process(0, &flow);
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 11);
    }

    #[test]
    fn delta_syncs_compose_and_compact_the_wal() {
        let def = cms_def(1);
        let mut fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        let flow = Packet::tcp(7, 7, 7, 7);
        fleet.enable_standby();
        for _ in 0..5 {
            fleet.process(datapath::shard_of(&flow, 2), &flow);
        }
        // A delta sync ships only the touched buckets, far fewer than
        // the full register file.
        let full = fleet.switch(0).0.task(fleet.switch(0).1.unwrap()).unwrap().rows[0].size;
        let shipped = fleet.sync_standby();
        assert!(
            shipped < full,
            "delta shipped {shipped} buckets, full image is {full}+"
        );
        // The WAL is compacted at the sync barrier: the initial deploy
        // record (seq 1) is gone once the image covers it.
        let wal = fleet.switch(0).0.wal().unwrap();
        assert!(wal.records().is_empty(), "{:?}", wal.records());

        // Promotion from a delta-composed image still recovers exactly.
        for _ in 0..3 {
            fleet.process(datapath::shard_of(&flow, 2), &flow);
        }
        let target = datapath::shard_of(&flow, 2);
        fleet.fail_switch(target);
        assert_eq!(fleet.promote_standby(target).unwrap(), 3);
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 5);
    }

    #[test]
    fn promotion_error_paths_leave_the_fleet_unchanged() {
        let def = cms_def(1);
        let mut fleet = SwitchFleet::deploy(2, config(), &def).unwrap();
        // No standby yet.
        fleet.fail_switch(0);
        assert!(matches!(
            fleet.promote_standby(0),
            Err(FlymonError::Checkpoint("standby not enabled"))
        ));
        fleet.revive_switch(0).unwrap();
        fleet.enable_standby();
        // Alive switches are not promoted.
        assert!(fleet.promote_standby(0).is_err());
        // A switch that never deployed has no image and cannot revive.
        let mut faults = vec![Some(FaultPlan::new(3).fail_nth(1)), None];
        let mut degraded =
            SwitchFleet::deploy_with_faults(2, config(), &def, &mut faults).unwrap();
        degraded.enable_standby();
        assert!(matches!(
            degraded.promote_standby(0),
            Err(FlymonError::Checkpoint("standby holds no image for this switch"))
        ));
        assert!(degraded.revive_switch(0).is_err());
        assert!(!degraded.is_alive(0));
    }

    #[test]
    fn ledger_conserves_packets_across_paths_and_failures() {
        let def = cms_def(2);
        let t = trace();
        let mut fleet = SwitchFleet::deploy(4, config(), &def).unwrap();
        fleet.enable_standby();
        fleet.process_trace(&t[..20_000]);
        fleet.fail_switch(2);
        fleet.process_trace_parallel(&t[20_000..40_000]);
        fleet.sync_standby();
        fleet.promote_standby(2).unwrap();
        fleet.fail_switch(0);
        fleet.process_trace(&t[40_000..]);
        fleet.revive_switch(0).unwrap();
        let ledger = fleet.ledger();
        assert_eq!(ledger.fed, t.len() as u64);
        assert!(ledger.balanced(), "{ledger:?}");
        assert_eq!(ledger.dropped, 0, "survivors absorbed every reroute");
        assert!(ledger.lost > 0, "switch 0 forfeited its packets on revival");
    }

    #[test]
    fn failed_deployment_rolls_back_and_fleet_degrades() {
        let def = cms_def(2);
        // Switch 1's very first install op fails; its deployment must
        // roll back cleanly while switches 0 and 2 carry the task.
        let mut faults = vec![None, Some(FaultPlan::new(9).fail_nth(1)), None];
        let mut fleet = SwitchFleet::deploy_with_faults(3, config(), &def, &mut faults).unwrap();
        assert_eq!(fleet.alive_count(), 2);
        assert!(!fleet.is_alive(1));

        // The failed switch is bit-for-bit pristine: zero divergences,
        // no leaked partitions or refcounts, no task record.
        let (dead, handle) = fleet.switch(1);
        assert!(handle.is_none());
        assert!(dead.audit().is_empty(), "{:?}", dead.audit());
        assert_eq!(dead.task_count(), 0);

        // Survivors still measure; traffic for ingress 1 reroutes.
        let flow = Packet::tcp(0x0a000001, 5, 80, 80);
        for ingress in [0, 1, 2] {
            fleet.process(ingress, &flow);
        }
        assert_eq!(fleet.merged_frequency(&flow).unwrap(), 3);
        assert_eq!(fleet.dropped_packets(), 0);

        // A fleet whose every deployment fails refuses construction.
        let mut all_bad = vec![
            Some(FaultPlan::new(1).fail_nth(1)),
            Some(FaultPlan::new(2).fail_nth(1)),
        ];
        assert!(matches!(
            SwitchFleet::deploy_with_faults(2, config(), &def, &mut all_bad),
            Err(FlymonError::Install(_))
        ));
    }
}
