//! Supervised streaming ingestion: bounded queues, backpressure, load
//! shedding, epoch rotation and worker supervision over a
//! [`SwitchFleet`].
//!
//! The rest of the crate replays whole traces out of RAM; this module is
//! the runtime that lets the fleet measure an *unbounded* stream in
//! bounded memory, and keep measuring while the stream misbehaves.
//! A [`ChunkSource`] (a chunked trace reader, or the constant-memory
//! [`PhasedSource`] generator) feeds a bounded SPSC queue; an admission
//! controller walks a three-rung degradation ladder as the queue fills;
//! an epoch rotator archives and clears the fleet's registers under
//! continuous traffic; and a supervisor isolates worker panics with
//! `catch_unwind`, quarantines the poisoned replica, and respawns it
//! from the warm-standby checkpoint + WAL path.
//!
//! # The degradation ladder
//!
//! 1. **Block** — below the high watermark everything is admitted; when
//!    the queue is full the producer blocks: the unadmitted remainder
//!    waits in a bounded backlog and no new chunk is pulled (explicit
//!    backpressure, observable as [`RuntimeStats::blocked_steps`]).
//! 2. **Probabilistic shed** — at or above the high watermark each
//!    arriving packet is shed with a seeded coin
//!    ([`AdmissionConfig::shed_probability`]).
//! 3. **Priority shed** — at or above the critical watermark only
//!    packets matching the high-priority task filter are admitted;
//!    everything else is shed.
//!
//! Every shed packet is accounted: the streaming ledger
//! ([`StreamingRuntime::ledger`]) extends the fleet's conservation
//! invariant to `fed == represented + shed + lost + dropped +
//! in_flight`, which collapses to the quiescent form
//! `fed == represented + shed + lost + dropped` once the queues drain.
//!
//! # Health
//!
//! The runtime surfaces a [`RuntimeHealth`] state machine:
//! `Healthy` (ladder rung 0, nothing pending), `Degraded` (backpressure
//! is blocking the producer), `Shedding` (rungs 2–3 active), and
//! `Recovering` (a worker panicked; the replica is quarantined until a
//! standby respawn and a fresh sync barrier land). All counters feeding
//! the state machine are exported through [`RuntimeStats`] for the
//! streaming bench.
//!
//! # Determinism
//!
//! Like the chaos harness, everything here is modeled, single-threaded
//! and seed-deterministic — queue stalls, slow consumers, bursts and
//! worker panics are injected at chunk boundaries ([`IngestFault`]), so
//! any soak failure replays exactly from its seed. A panic is injected
//! *before* the batch mutates fleet state (the poison scribbles
//! registers through the diagnostic escape hatch instead), which is
//! what makes checkpoint respawn bit-exact: the interrupted batch is
//! still in the queue and is simply retried after recovery.
//!
//! [`PhasedSource`]: flymon_traffic::gen::PhasedSource

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use flymon::FlymonError;
use flymon_packet::{Packet, SplitMix64, TaskFilter};
use flymon_traffic::gen::{PhasedSource, ShiftingSource};

use crate::adapt::{AdaptiveController, ControllerReport};
use crate::fleet::{EpochReadout, SwitchFleet};

/// A producer of packet chunks: the streaming runtime pulls one chunk
/// per step (when its backlog is clear) instead of loading a trace.
pub trait ChunkSource {
    /// The next chunk, or `None` when the stream is exhausted.
    fn next_chunk(&mut self) -> Option<Vec<Packet>>;
}

impl ChunkSource for PhasedSource {
    fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        PhasedSource::next_chunk(self)
    }
}

impl ChunkSource for ShiftingSource {
    fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        ShiftingSource::next_chunk(self)
    }
}

/// A chunked reader over an in-memory trace — the adapter that lets
/// recorded traces flow through the same bounded-queue path as live
/// generators.
#[derive(Debug)]
pub struct TraceChunks {
    trace: Vec<Packet>,
    pos: usize,
    chunk: usize,
}

impl TraceChunks {
    /// Reads `trace` in chunks of `chunk` packets.
    pub fn new(trace: Vec<Packet>, chunk: usize) -> Self {
        TraceChunks {
            trace,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl ChunkSource for TraceChunks {
    fn next_chunk(&mut self) -> Option<Vec<Packet>> {
        if self.pos >= self.trace.len() {
            return None;
        }
        let end = (self.pos + self.chunk).min(self.trace.len());
        let out = self.trace[self.pos..end].to_vec();
        self.pos = end;
        Some(out)
    }
}

/// Occupancy statistics of a [`BoundedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Packets ever enqueued.
    pub enqueued: u64,
    /// Packets ever dequeued.
    pub dequeued: u64,
    /// Push attempts rejected because the queue was full.
    pub rejected: u64,
    /// The deepest the queue has ever been.
    pub high_watermark: usize,
}

/// The bounded SPSC ring between admission and the datapath worker.
///
/// Modeled as a `VecDeque` under the crate's `forbid(unsafe_code)` —
/// the ring semantics (fixed capacity, reject-on-full, FIFO) are what
/// the backpressure model needs, not lock-free memory orderings.
#[derive(Debug)]
pub struct BoundedQueue {
    buf: VecDeque<Packet>,
    capacity: usize,
    stats: QueueStats,
}

impl BoundedQueue {
    /// An empty queue holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
        }
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when another push would be rejected.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Fill fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.buf.len() as f64 / self.capacity as f64
    }

    /// Enqueues `pkt`; `false` (and a rejection tick) when full.
    pub fn push(&mut self, pkt: Packet) -> bool {
        if self.is_full() {
            self.stats.rejected += 1;
            return false;
        }
        self.buf.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.buf.len());
        true
    }

    /// Dequeues up to `n` packets in FIFO order.
    pub fn pop_n(&mut self, n: usize) -> Vec<Packet> {
        let take = n.min(self.buf.len());
        let out: Vec<Packet> = self.buf.drain(..take).collect();
        self.stats.dequeued += out.len() as u64;
        out
    }

    /// Pushes a batch back to the *front*, preserving its order — the
    /// supervisor's retry path for a batch whose worker panicked before
    /// touching fleet state.
    pub fn unpop(&mut self, batch: Vec<Packet>) {
        for pkt in batch.into_iter().rev() {
            self.buf.push_front(pkt);
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Watermarks and coins of the admission controller's degradation
/// ladder.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queue occupancy at which probabilistic shedding starts.
    pub high_watermark: f64,
    /// Queue occupancy at which only priority traffic is admitted.
    pub critical_watermark: f64,
    /// Per-packet shed probability between the watermarks.
    pub shed_probability: f64,
    /// The high-priority task's traffic filter; packets matching it are
    /// never priority-shed. `None` sheds indiscriminately at the
    /// critical rung.
    pub priority: Option<TaskFilter>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            high_watermark: 0.75,
            critical_watermark: 0.90,
            shed_probability: 0.5,
            priority: None,
        }
    }
}

/// The runtime's supervised health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeHealth {
    /// Ladder rung 0: everything offered is admitted promptly.
    #[default]
    Healthy,
    /// Backpressure is blocking the producer, but nothing is shed.
    Degraded,
    /// The admission ladder is shedding (probabilistic or priority).
    Shedding,
    /// A worker panicked; its replica is quarantined until the standby
    /// respawn and a fresh sync barrier complete.
    Recovering,
}

/// A deterministic ingestion fault, injected at chunk boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestFault {
    /// The consumer drains nothing for `steps` steps starting at
    /// `from_step` (1-based, inclusive).
    QueueStall {
        /// First affected step.
        from_step: u64,
        /// How many steps the stall lasts.
        steps: u64,
    },
    /// The consumer's drain budget is divided by `factor` for `steps`
    /// steps starting at `from_step`.
    SlowConsumer {
        /// First affected step.
        from_step: u64,
        /// How many steps the slowdown lasts.
        steps: u64,
        /// Budget divisor (>= 1).
        factor: usize,
    },
    /// At step `at_step` the worker scribbles switch `switch`'s
    /// registers (an un-admitted packet, via the diagnostic escape
    /// hatch) and panics before processing its batch.
    WorkerPanic {
        /// The step at which the panic fires.
        at_step: u64,
        /// The replica left poisoned.
        switch: usize,
    },
}

/// Errors surfaced by the streaming runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The pipeline made no progress for longer than
    /// [`IngestConfig::max_idle_steps`] with packets still queued — a
    /// stalled consumer that would otherwise hang the caller forever.
    Stalled {
        /// The step at which the stall was declared.
        step: u64,
        /// Packets stranded in the queue and backlog.
        queued: usize,
    },
    /// A control-plane operation (rotation, respawn) failed.
    Control(FlymonError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Stalled { step, queued } => write!(
                f,
                "ingestion stalled at step {step}: {queued} packets queued with no progress"
            ),
            IngestError::Control(e) => write!(f, "streaming control-plane failure: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<FlymonError> for IngestError {
    fn from(e: FlymonError) -> Self {
        IngestError::Control(e)
    }
}

/// Shape of a [`StreamingRuntime`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Capacity of the bounded ingress queue, in packets.
    pub queue_capacity: usize,
    /// Packets the datapath worker drains per step at full speed.
    pub drain_chunk: usize,
    /// Bound on the producer-side backlog (the "blocked" remainder);
    /// overflow beyond it is tail-shed.
    pub backlog_limit: usize,
    /// The admission controller's ladder.
    pub admission: AdmissionConfig,
    /// Rotate the epoch after this many *processed* packets; 0 never
    /// rotates.
    pub epoch_packets: u64,
    /// Standby sync cadence in steps (1 = a barrier before every
    /// batch, which makes worker-panic respawn loss-free).
    pub sync_every_steps: u64,
    /// Steps with zero progress (packets queued, nothing drained or
    /// rotated) tolerated before [`IngestError::Stalled`].
    pub max_idle_steps: usize,
    /// Extra zero-progress steps granted while recovery is blocked
    /// *only* by an in-flight control-channel retry (a respawn command
    /// that timed out on a lossy or partitioned channel and is being
    /// retried each step). A fleet waiting on the channel is not
    /// stalled — it is waiting; once the grace is spent the ordinary
    /// `max_idle_steps` budget takes over.
    pub channel_grace_steps: usize,
    /// WAL records per switch above which off-barrier compaction runs
    /// (aborted-record pruning plus a standby sync).
    pub wal_threshold: usize,
    /// Seed of the admission controller's shed coin.
    pub seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 8_192,
            drain_chunk: 2_048,
            backlog_limit: 16_384,
            admission: AdmissionConfig::default(),
            epoch_packets: 0,
            sync_every_steps: 1,
            max_idle_steps: 64,
            channel_grace_steps: 8,
            wal_threshold: 256,
            seed: 0x57_12EA,
        }
    }
}

/// Counters exported by the runtime (the streaming bench reads these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Steps executed.
    pub steps: u64,
    /// Packets pulled from the source.
    pub offered: u64,
    /// Packets admitted into the queue.
    pub admitted: u64,
    /// Packets drained through the fleet.
    pub processed: u64,
    /// Packets shed by the probabilistic rung.
    pub shed_random: u64,
    /// Packets shed by the priority rung.
    pub shed_priority: u64,
    /// Packets tail-shed from an overflowing backlog.
    pub shed_overflow: u64,
    /// Steps on which backpressure blocked the producer.
    pub blocked_steps: u64,
    /// Standby syncs performed.
    pub syncs: u64,
    /// Epoch rotations performed.
    pub epochs_rotated: u64,
    /// Worker panics caught and supervised.
    pub panics_recovered: u64,
    /// Quarantined replicas respawned from the standby checkpoint.
    pub promotions: u64,
    /// Quarantined replicas revived fresh (no usable standby image).
    pub revives: u64,
    /// Steps on which a respawn stayed deferred because its control-
    /// channel command timed out (retried every step until it lands).
    pub respawns_deferred: u64,
    /// Health-state transitions.
    pub health_transitions: u64,
}

impl RuntimeStats {
    /// Total packets shed across all ladder rungs.
    pub fn shed(&self) -> u64 {
        self.shed_random + self.shed_priority + self.shed_overflow
    }
}

/// Where every packet the source ever offered currently stands.
///
/// The streaming extension of the fleet's [`crate::fleet::PacketLedger`]:
/// admission shedding adds the `shed` term, and packets sitting in the
/// queue/backlog are `in_flight`. Conservation —
/// `fed == represented + shed + lost + dropped + in_flight` — must hold
/// after every step; at quiescence `in_flight` is zero and the invariant
/// collapses to `fed == represented + shed + lost + dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamLedger {
    /// Packets ever pulled from the source.
    pub fed: u64,
    /// Packets waiting in the bounded queue or the blocked backlog.
    pub in_flight: u64,
    /// Packets represented in fleet registers or archived epoch
    /// readouts.
    pub represented: u64,
    /// Packets shed by the admission ladder.
    pub shed: u64,
    /// Packets lost to failures (revivals, promotion loss windows).
    pub lost: u64,
    /// Packets dropped by a fully dead fleet.
    pub dropped: u64,
}

impl StreamLedger {
    /// True when every offered packet is accounted for.
    pub fn conserved(&self) -> bool {
        self.fed == self.represented + self.shed + self.lost + self.dropped + self.in_flight
    }
}

/// What one [`StreamingRuntime::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// Packets pulled from the source this step.
    pub pulled: usize,
    /// Packets admitted to the queue this step.
    pub admitted: usize,
    /// Packets shed this step.
    pub shed: usize,
    /// Packets drained through the fleet this step.
    pub drained: usize,
    /// Whether an epoch rotation happened.
    pub rotated: bool,
    /// Whether a worker panic was caught and supervised.
    pub recovered: bool,
    /// Whether the source reported exhaustion this step.
    pub source_dry: bool,
    /// Health after the step.
    pub health: RuntimeHealth,
}

/// Final report of a [`StreamingRuntime::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Counter snapshot.
    pub stats: RuntimeStats,
    /// The quiescent ledger (`in_flight` is zero after a full run).
    pub ledger: StreamLedger,
    /// Final health.
    pub health: RuntimeHealth,
    /// Queue statistics.
    pub queue: QueueStats,
}

/// A flow the runtime tracks across epoch rotations (readout
/// continuity: archived estimates accumulate as registers clear).
#[derive(Debug, Clone, Copy)]
struct WatchFlow {
    pkt: Packet,
    processed: u64,
    archived: u64,
}

fn same_flow(a: &Packet, b: &Packet) -> bool {
    a.src_ip == b.src_ip
        && a.dst_ip == b.dst_ip
        && a.src_port == b.src_port
        && a.dst_port == b.dst_port
        && a.protocol == b.protocol
}

/// The supervised streaming runtime: source → admission → bounded queue
/// → datapath worker → epoch rotator, under a health state machine.
#[derive(Debug)]
pub struct StreamingRuntime {
    fleet: SwitchFleet,
    cfg: IngestConfig,
    queue: BoundedQueue,
    backlog: VecDeque<Packet>,
    rng: SplitMix64,
    health: RuntimeHealth,
    stats: RuntimeStats,
    faults: Vec<IngestFault>,
    step: u64,
    processed_since_rotate: u64,
    idle_steps: usize,
    /// Set while a respawned replica awaits its first post-recovery
    /// sync barrier; holds the health machine in `Recovering`.
    resync_pending: bool,
    /// A quarantined replica whose respawn command timed out on the
    /// control channel; retried at the top of every step until it
    /// lands. Holds the health machine in `Recovering`.
    respawn_pending: Option<usize>,
    /// Consecutive steps the pending respawn has waited on the channel
    /// (compared against [`IngestConfig::channel_grace_steps`]).
    channel_wait_steps: usize,
    watch: Option<WatchFlow>,
    last_epoch: Option<EpochReadout>,
    /// The closed-loop adaptive controller, when attached; it observes
    /// every epoch rotation and reconfigures the fleet through the
    /// logged control plane — paused whenever health is off `Healthy`.
    controller: Option<AdaptiveController>,
}

impl StreamingRuntime {
    /// Wraps `fleet` (enabling its warm standby — supervision needs a
    /// checkpoint to respawn from) in a streaming runtime.
    pub fn new(mut fleet: SwitchFleet, cfg: IngestConfig) -> Self {
        fleet.enable_standby();
        let rng = SplitMix64::new(cfg.seed);
        let queue = BoundedQueue::new(cfg.queue_capacity);
        StreamingRuntime {
            fleet,
            cfg,
            queue,
            backlog: VecDeque::new(),
            rng,
            health: RuntimeHealth::Healthy,
            stats: RuntimeStats::default(),
            faults: Vec::new(),
            step: 0,
            processed_since_rotate: 0,
            idle_steps: 0,
            resync_pending: false,
            respawn_pending: None,
            channel_wait_steps: 0,
            watch: None,
            last_epoch: None,
            controller: None,
        }
    }

    /// Attaches a closed-loop adaptive controller: from now on every
    /// epoch rotation feeds it the full fleet readout, and — while the
    /// runtime is `Healthy` — it may grow, shrink or split fleet tasks
    /// through the logged control plane. On any other health state the
    /// epoch is observed but adaptation is paused (degraded readouts
    /// make lousy control signals, and a mid-recovery fleet must not be
    /// reconfigured).
    pub fn attach_controller(&mut self, controller: AdaptiveController) {
        self.controller = Some(controller);
    }

    /// The attached controller's audit trail, if one is attached.
    pub fn controller_report(&self) -> Option<&ControllerReport> {
        self.controller.as_ref().map(|c| c.report())
    }

    /// Schedules a deterministic ingestion fault.
    pub fn inject(&mut self, fault: IngestFault) {
        self.faults.push(fault);
    }

    /// Tracks a flow across epoch rotations; see
    /// [`StreamingRuntime::watch_bound`].
    pub fn watch(&mut self, pkt: Packet) {
        self.watch = Some(WatchFlow {
            pkt,
            processed: 0,
            archived: 0,
        });
    }

    /// `(estimate, loss_bound, processed)` for the watched flow: the
    /// archived epoch estimates plus the live merged estimate, the
    /// fleet's explicit loss bound, and how many copies the worker has
    /// drained into the fleet. The streaming loss-window guarantee —
    /// which holds after *every* step, not just at quiescence — is
    /// `estimate + loss_bound >= processed`. (Admitted-but-queued
    /// copies are deliberately excluded: they are `in_flight` in the
    /// ledger and have not reached any register yet.)
    pub fn watch_bound(&self) -> Option<(u64, u64, u64)> {
        let w = self.watch.as_ref()?;
        let live = self
            .fleet
            .merged_frequency_bounded(&w.pkt)
            .map(|b| (b.estimate, b.loss_bound))
            .unwrap_or((0, u64::MAX));
        Some((w.archived + live.0, live.1, w.processed))
    }

    /// Current health.
    pub fn health(&self) -> RuntimeHealth {
        self.health
    }

    /// Exported counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The ingress queue's statistics.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// The supervised fleet (readouts, diagnostics).
    pub fn fleet(&self) -> &SwitchFleet {
        &self.fleet
    }

    /// Mutable fleet access — the chaos harness's hook for attaching a
    /// control channel, partitioning and healing it, or forcing terms
    /// mid-stream. Not part of the steady-state datapath.
    pub fn fleet_mut(&mut self) -> &mut SwitchFleet {
        &mut self.fleet
    }

    /// The most recent epoch rotation's archived readout — one readout
    /// is retained, not the whole history (constant memory).
    pub fn last_epoch(&self) -> Option<&EpochReadout> {
        self.last_epoch.as_ref()
    }

    /// The streaming conservation ledger; see [`StreamLedger`].
    pub fn ledger(&self) -> StreamLedger {
        let fl = self.fleet.ledger();
        StreamLedger {
            fed: self.stats.offered,
            in_flight: (self.queue.len() + self.backlog.len()) as u64,
            represented: fl.represented,
            shed: self.stats.shed(),
            lost: fl.lost,
            dropped: fl.dropped,
        }
    }

    /// The consumer's drain budget at `step` under the scheduled
    /// faults.
    fn drain_budget(&self, step: u64) -> usize {
        let mut budget = self.cfg.drain_chunk;
        for f in &self.faults {
            match *f {
                IngestFault::QueueStall { from_step, steps } => {
                    if step >= from_step && step < from_step.saturating_add(steps) {
                        return 0;
                    }
                }
                IngestFault::SlowConsumer {
                    from_step,
                    steps,
                    factor,
                } => {
                    if step >= from_step && step < from_step.saturating_add(steps) {
                        budget /= factor.max(1);
                    }
                }
                IngestFault::WorkerPanic { .. } => {}
            }
        }
        budget
    }

    fn set_health(&mut self, next: RuntimeHealth) {
        if self.health != next {
            self.health = next;
            self.stats.health_transitions += 1;
        }
    }

    /// One respawn attempt for a quarantined replica: standby promotion
    /// first, fresh revival as the fallback. Returns `Ok(true)` when
    /// the replica is back, `Ok(false)` when the respawn command timed
    /// out on the control channel (never applied — safe to retry next
    /// step), and `Err` on any genuine failure.
    fn try_respawn(&mut self, victim: usize) -> Result<bool, IngestError> {
        match self.fleet.promote_standby(victim) {
            Ok(_) => {
                self.stats.promotions += 1;
                Ok(true)
            }
            Err(FlymonError::ChannelTimeout { .. }) => Ok(false),
            Err(_) => match self.fleet.revive_switch(victim) {
                Ok(()) => {
                    self.stats.revives += 1;
                    Ok(true)
                }
                Err(FlymonError::ChannelTimeout { .. }) => Ok(false),
                Err(e) => Err(e.into()),
            },
        }
    }

    /// Executes one supervised step: sync barrier, producer pull,
    /// admission ladder, panic supervision, worker drain, epoch
    /// rotation, health update, stall detection.
    pub fn step(&mut self, source: &mut dyn ChunkSource) -> Result<StepOutcome, IngestError> {
        self.step += 1;
        self.stats.steps += 1;
        let step = self.step;
        let mut out = StepOutcome::default();

        // 0. A respawn deferred by a control-channel timeout is retried
        // before anything else: if the channel has healed, the replica
        // comes back this step and the barrier below re-images it.
        if let Some(victim) = self.respawn_pending {
            if self.try_respawn(victim)? {
                self.respawn_pending = None;
                self.channel_wait_steps = 0;
            } else {
                self.stats.respawns_deferred += 1;
                self.channel_wait_steps += 1;
            }
        }

        // 1. Sync barrier first, so a panic later in the step finds a
        // checkpoint that already covers every processed packet (the
        // zero-loss respawn window). Off-cadence WAL maintenance rides
        // the same cadence.
        if self.cfg.sync_every_steps > 0 && (step - 1).is_multiple_of(self.cfg.sync_every_steps) {
            self.fleet.maintain_wals(self.cfg.wal_threshold);
            self.fleet.sync_standby();
            self.stats.syncs += 1;
            if self.resync_pending && self.respawn_pending.is_none() {
                // The respawned replica is re-imaged; recovery is done.
                self.resync_pending = false;
            }
        }

        // 2. Producer: pull a chunk only when the backlog is clear —
        // a non-empty backlog IS the blocked producer.
        if self.backlog.is_empty() {
            match source.next_chunk() {
                Some(chunk) => {
                    out.pulled = chunk.len();
                    self.stats.offered += chunk.len() as u64;
                    self.backlog.extend(chunk);
                }
                None => out.source_dry = true,
            }
        } else {
            self.stats.blocked_steps += 1;
        }

        // 3. Admission ladder.
        let mut shed_this_step = 0usize;
        while let Some(pkt) = self.backlog.pop_front() {
            if self.queue.is_full() {
                // Rung 1: block. The packet (and everything behind it)
                // waits in the backlog.
                self.backlog.push_front(pkt);
                break;
            }
            let occ = self.queue.occupancy();
            if occ >= self.cfg.admission.critical_watermark {
                let keep = self
                    .cfg
                    .admission
                    .priority
                    .map(|f| f.matches(&pkt))
                    .unwrap_or(false);
                if !keep {
                    self.stats.shed_priority += 1;
                    shed_this_step += 1;
                    continue;
                }
            } else if occ >= self.cfg.admission.high_watermark
                && self.rng.chance(self.cfg.admission.shed_probability)
            {
                self.stats.shed_random += 1;
                shed_this_step += 1;
                continue;
            }
            let pushed = self.queue.push(pkt);
            debug_assert!(pushed, "fullness was checked above");
            self.stats.admitted += 1;
            out.admitted += 1;
        }
        // Backlog overflow: the producer cannot be blocked forever on a
        // bounded buffer; the newest excess is tail-shed.
        while self.backlog.len() > self.cfg.backlog_limit {
            self.backlog.pop_back();
            self.stats.shed_overflow += 1;
            shed_this_step += 1;
        }
        out.shed = shed_this_step;

        // 4. Supervision point: scheduled worker panics fire at the
        // chunk boundary, before the batch touches fleet state.
        let panic_victim = self.faults.iter().find_map(|f| match *f {
            IngestFault::WorkerPanic { at_step, switch } if at_step == step => Some(switch),
            _ => None,
        });
        if let Some(victim) = panic_victim {
            let poison = Packet::udp(0xdead_0000 | step as u32, 0x0a00_00ff, 6666, 6666);
            let fleet = &mut self.fleet;
            // The supervisor owns this unwind: silence the global panic
            // hook for its duration so an *expected* worker death does
            // not spray backtraces over daemon logs and CI output.
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let caught = catch_unwind(AssertUnwindSafe(|| {
                // The dying worker scribbles a register update for a
                // packet that was never admitted (the escape hatch
                // bypasses the ledger), then unwinds mid-batch.
                fleet.switch_mut(victim).process(&poison);
                panic!("injected worker panic at step {step}");
            }));
            std::panic::set_hook(prev_hook);
            debug_assert!(caught.is_err());
            self.stats.panics_recovered += 1;
            out.recovered = true;
            // Quarantine: the replica's registers cannot be trusted.
            self.fleet.fail_switch(victim);
            // Respawn from the PR-4 restore path: last standby image +
            // WAL suffix. With a per-step sync barrier the loss window
            // is empty and the respawned registers are bit-identical to
            // an unfailed replica's. Fall back to a fresh revival when
            // no image exists.
            if !self.try_respawn(victim)? {
                // The respawn command timed out on the control channel
                // (partition or loss burst): the replica stays
                // quarantined and the respawn is retried every step.
                // Not an error — the channel may heal.
                self.respawn_pending = Some(victim);
                self.stats.respawns_deferred += 1;
                self.channel_wait_steps = 1;
            }
            self.resync_pending = true;
            self.set_health(RuntimeHealth::Recovering);
        }

        // 5. Worker drain — paused for the rest of a recovery step; the
        // batch stays queued and is retried next step.
        if self.health != RuntimeHealth::Recovering {
            let budget = self.drain_budget(step);
            if budget > 0 && !self.queue.is_empty() {
                let batch = self.queue.pop_n(budget);
                self.fleet.process_trace(&batch);
                if let Some(w) = self.watch.as_mut() {
                    w.processed += batch.iter().filter(|p| same_flow(p, &w.pkt)).count() as u64;
                }
                self.stats.processed += batch.len() as u64;
                self.processed_since_rotate += batch.len() as u64;
                out.drained = batch.len();
            }
        }

        // 6. Epoch rotation: readout + logged reset under continuous
        // traffic, never during recovery.
        if self.cfg.epoch_packets > 0
            && self.processed_since_rotate >= self.cfg.epoch_packets
            && self.health != RuntimeHealth::Recovering
            && self.fleet.alive_count() > 0
        {
            if let Some(w) = self.watch.as_mut() {
                w.archived += self.fleet.merged_frequency(&w.pkt).unwrap_or(0);
            }
            let epoch = self.fleet.rotate_epoch_all()?;
            let primary = epoch.tasks.first().expect("a rotating fleet has a task");
            self.last_epoch = Some(EpochReadout {
                rows: primary.rows.clone(),
                packets: epoch.packets,
            });
            // Close the loop: the controller sees every rotation but
            // only acts while the runtime is healthy — backpressure,
            // shedding and recovery all pause adaptation.
            if let Some(ctl) = self.controller.as_mut() {
                let paused = self.health != RuntimeHealth::Healthy;
                ctl.on_epoch(&mut self.fleet, &epoch, paused)?;
            }
            self.stats.epochs_rotated += 1;
            self.processed_since_rotate = 0;
            out.rotated = true;
        }

        // 7. Health: Recovering holds until the post-respawn barrier
        // (and until any channel-deferred respawn lands); otherwise the
        // ladder's observable state decides.
        if self.health == RuntimeHealth::Recovering {
            if !self.resync_pending && self.respawn_pending.is_none() {
                self.set_health(RuntimeHealth::Healthy);
            }
        } else {
            let occ = self.queue.occupancy();
            let next = if shed_this_step > 0 || occ >= self.cfg.admission.high_watermark {
                RuntimeHealth::Shedding
            } else if !self.backlog.is_empty() {
                RuntimeHealth::Degraded
            } else {
                RuntimeHealth::Healthy
            };
            self.set_health(next);
        }
        out.health = self.health;

        // 8. Stall detection: packets queued, nothing moving. A fleet
        // whose only blocker is an in-flight control-channel retry is
        // *waiting*, not stalled — it gets `channel_grace_steps` of
        // grace before the ordinary idle budget starts counting.
        let progress = out.drained > 0 || out.rotated || out.recovered;
        let channel_waiting = self.health == RuntimeHealth::Recovering
            && self.respawn_pending.is_some()
            && self.channel_wait_steps <= self.cfg.channel_grace_steps;
        if !progress && !self.queue.is_empty() && !channel_waiting {
            self.idle_steps += 1;
            if self.idle_steps > self.cfg.max_idle_steps {
                return Err(IngestError::Stalled {
                    step,
                    queued: self.queue.len() + self.backlog.len(),
                });
            }
        } else if progress || self.queue.is_empty() {
            self.idle_steps = 0;
        }

        debug_assert!(self.ledger().conserved(), "{:?}", self.ledger());
        Ok(out)
    }

    /// Runs the stream to quiescence: steps until the source is dry and
    /// both buffers have drained, then takes a final sync barrier.
    pub fn run(&mut self, source: &mut dyn ChunkSource) -> Result<RuntimeReport, IngestError> {
        loop {
            let out = self.step(source)?;
            if out.source_dry && self.queue.is_empty() && self.backlog.is_empty() {
                break;
            }
        }
        self.fleet.sync_standby();
        self.stats.syncs += 1;
        if self.resync_pending && self.respawn_pending.is_none() {
            self.resync_pending = false;
            if self.health == RuntimeHealth::Recovering {
                self.set_health(RuntimeHealth::Healthy);
            }
        }
        Ok(self.report())
    }

    /// The current report (final when called after
    /// [`StreamingRuntime::run`]).
    pub fn report(&self) -> RuntimeReport {
        RuntimeReport {
            stats: self.stats,
            ledger: self.ledger(),
            health: self.health,
            queue: self.queue.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon::prelude::*;
    use flymon_packet::KeySpec;

    fn config() -> FlyMonConfig {
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 16384,
            ..FlyMonConfig::default()
        }
    }

    fn cms_def() -> TaskDefinition {
        TaskDefinition::builder("stream-freq")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 2 })
            .memory(8192)
            .build()
    }

    fn fleet(n: usize) -> SwitchFleet {
        SwitchFleet::deploy(n, config(), &cms_def()).unwrap()
    }

    #[test]
    fn bounded_queue_rejects_overflow_and_tracks_watermark() {
        let mut q = BoundedQueue::new(3);
        let p = Packet::tcp(1, 2, 3, 4);
        assert!(q.push(p));
        assert!(q.push(p));
        assert!(q.push(p));
        assert!(q.is_full());
        assert!(!q.push(p), "capacity 3 rejects the 4th");
        assert_eq!(q.stats().rejected, 1);
        assert_eq!(q.stats().high_watermark, 3);
        assert_eq!(q.pop_n(10).len(), 3);
        assert!(q.is_empty());
        assert_eq!(q.stats().dequeued, 3);
    }

    #[test]
    fn unpop_preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..4u32 {
            q.push(Packet::tcp(i, 0, 0, 0));
        }
        let batch = q.pop_n(3);
        assert_eq!(batch.len(), 3);
        q.unpop(batch);
        let replay = q.pop_n(4);
        let srcs: Vec<u32> = replay.iter().map(|p| p.src_ip).collect();
        assert_eq!(srcs, vec![0, 1, 2, 3], "retried batch keeps stream order");
    }

    #[test]
    fn steady_stream_admits_everything_and_stays_healthy() {
        let mut rt = StreamingRuntime::new(
            fleet(3),
            IngestConfig {
                queue_capacity: 8_192,
                drain_chunk: 4_096,
                ..IngestConfig::default()
            },
        );
        let mut src = TraceChunks::new(
            flymon_traffic::gen::TraceGenerator::new(11).wide_like(
                &flymon_traffic::gen::TraceConfig {
                    flows: 2_000,
                    packets: 40_000,
                    zipf_alpha: 1.1,
                    duration_ns: 1_000_000_000,
                    seed: 11,
                },
            ),
            2_048,
        );
        let report = rt.run(&mut src).unwrap();
        assert_eq!(report.health, RuntimeHealth::Healthy);
        assert_eq!(report.stats.shed(), 0, "capacity exceeds offered load");
        assert_eq!(report.ledger.in_flight, 0);
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
        assert_eq!(report.stats.processed, report.stats.offered);
    }

    #[test]
    fn burst_overload_walks_the_ladder_and_conserves_the_ledger() {
        let mut rt = StreamingRuntime::new(
            fleet(3),
            IngestConfig {
                queue_capacity: 1_024,
                drain_chunk: 512,
                backlog_limit: 2_048,
                epoch_packets: 0,
                ..IngestConfig::default()
            },
        );
        let mut src = flymon_traffic::gen::PhasedSource::new(flymon_traffic::gen::PhasedConfig {
            flows: 1_000,
            base_chunk: 512,
            phases: vec![
                flymon_traffic::gen::Phase { chunks: 4, rate: 1.0 },
                flymon_traffic::gen::Phase { chunks: 4, rate: 10.0 },
                flymon_traffic::gen::Phase { chunks: 4, rate: 1.0 },
            ],
            ..flymon_traffic::gen::PhasedConfig::default()
        });
        let mut saw_shedding = false;
        let mut ledgers_ok = true;
        loop {
            let out = rt.step(&mut src).unwrap();
            saw_shedding |= out.health == RuntimeHealth::Shedding;
            ledgers_ok &= rt.ledger().conserved();
            if out.source_dry && rt.ledger().in_flight == 0 {
                break;
            }
        }
        assert!(saw_shedding, "a 10x burst over a small queue must shed");
        assert!(ledgers_ok, "ledger must be conserved after every step");
        let report = rt.report();
        assert!(report.stats.shed() > 0);
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
        assert_eq!(
            report.stats.offered,
            report.stats.processed + report.stats.shed(),
            "every offered packet was processed or shed"
        );
    }

    #[test]
    fn priority_traffic_survives_the_critical_rung() {
        let priority = TaskFilter::src(10 << 24, 8);
        let mut rt = StreamingRuntime::new(
            fleet(2),
            IngestConfig {
                queue_capacity: 512,
                drain_chunk: 64,
                backlog_limit: 1_024,
                admission: AdmissionConfig {
                    priority: Some(priority),
                    ..AdmissionConfig::default()
                },
                ..IngestConfig::default()
            },
        );
        let mut src = flymon_traffic::gen::PhasedSource::new(flymon_traffic::gen::PhasedConfig {
            flows: 1_000,
            base_chunk: 512,
            phases: vec![flymon_traffic::gen::Phase { chunks: 10, rate: 8.0 }],
            ..flymon_traffic::gen::PhasedConfig::default()
        });
        let report = rt.run(&mut src).unwrap();
        assert!(report.stats.shed_priority > 0, "critical rung engaged");
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
        // Everything the fleet processed under priority shedding skews
        // toward the priority tenant; spot-check that priority packets
        // dominated admissions once rung 3 was active.
        assert!(
            report.stats.admitted > 0,
            "priority packets still got through"
        );
    }

    #[test]
    fn epoch_rotation_archives_counts_under_continuous_traffic() {
        let mut rt = StreamingRuntime::new(
            fleet(3),
            IngestConfig {
                queue_capacity: 8_192,
                drain_chunk: 2_048,
                epoch_packets: 5_000,
                ..IngestConfig::default()
            },
        );
        let watch = Packet::tcp(0x0a00_0042, 0x0a00_0001, 443, 50_000);
        rt.watch(watch);
        // A stream with a steady share of the watched flow.
        let mut trace = Vec::new();
        let mut rng = SplitMix64::new(99);
        for _ in 0..30_000 {
            if rng.chance(0.2) {
                trace.push(watch);
            } else {
                trace.push(Packet::udp(
                    0xc0a8_0000 | (rng.next_u32() & 0xfff),
                    0x0a00_0001,
                    rng.next_u16(),
                    53,
                ));
            }
        }
        let mut src = TraceChunks::new(trace, 2_048);
        let report = rt.run(&mut src).unwrap();
        assert!(
            report.stats.epochs_rotated >= 4,
            "30k packets / 5k epoch => several rotations, got {}",
            report.stats.epochs_rotated
        );
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
        assert_eq!(report.stats.shed(), 0);
        // Readout continuity: archived + live estimate covers every
        // processed copy of the watched flow (CMS never undercounts).
        let (estimate, loss_bound, processed) = rt.watch_bound().unwrap();
        assert!(processed > 4_000, "watch flow fed: {processed}");
        assert!(
            estimate + loss_bound >= processed,
            "epoch continuity broken: {estimate} + {loss_bound} < {processed}"
        );
        // The archive did the heavy lifting — the live registers alone
        // hold only the tail epoch.
        let live = rt.fleet().merged_frequency(&watch).unwrap();
        assert!(
            live < processed / 2,
            "rotation should have cleared most counts (live {live} of {processed})"
        );
        assert!(rt.last_epoch().is_some());
    }

    #[test]
    fn queue_stall_trips_the_detector_instead_of_hanging() {
        let mut rt = StreamingRuntime::new(
            fleet(2),
            IngestConfig {
                queue_capacity: 1_024,
                drain_chunk: 256,
                max_idle_steps: 8,
                ..IngestConfig::default()
            },
        );
        rt.inject(IngestFault::QueueStall {
            from_step: 1,
            steps: u64::MAX,
        });
        let mut src = TraceChunks::new(vec![Packet::tcp(1, 2, 3, 4); 4_096], 512);
        let err = rt.run(&mut src).unwrap_err();
        assert!(
            matches!(err, IngestError::Stalled { .. }),
            "a dead consumer must surface, got {err:?}"
        );
    }

    #[test]
    fn transient_stall_and_slow_consumer_recover_cleanly() {
        let mut rt = StreamingRuntime::new(
            fleet(2),
            IngestConfig {
                queue_capacity: 2_048,
                drain_chunk: 512,
                max_idle_steps: 16,
                ..IngestConfig::default()
            },
        );
        rt.inject(IngestFault::QueueStall {
            from_step: 3,
            steps: 4,
        });
        rt.inject(IngestFault::SlowConsumer {
            from_step: 10,
            steps: 5,
            factor: 8,
        });
        let mut src = TraceChunks::new(vec![Packet::tcp(9, 9, 9, 9); 10_000], 500);
        let report = rt.run(&mut src).unwrap();
        assert_eq!(report.health, RuntimeHealth::Healthy);
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
        assert_eq!(
            report.stats.processed + report.stats.shed(),
            report.stats.offered
        );
    }

    #[test]
    fn worker_panic_respawns_bit_identically_for_the_admitted_stream() {
        // Two identical runtimes over the identical stream; one suffers
        // a worker panic mid-stream. With per-step sync barriers the
        // respawn must be loss-free, so the final merged readouts are
        // bit-identical and health returns to Healthy.
        let cfg = IngestConfig {
            queue_capacity: 65_536, // nothing shed in either run
            drain_chunk: 1_024,
            epoch_packets: 6_000,
            sync_every_steps: 1,
            ..IngestConfig::default()
        };
        let stream = || {
            TraceChunks::new(
                flymon_traffic::gen::TraceGenerator::new(77).wide_like(
                    &flymon_traffic::gen::TraceConfig {
                        flows: 3_000,
                        packets: 25_000,
                        zipf_alpha: 1.1,
                        duration_ns: 1_000_000_000,
                        seed: 77,
                    },
                ),
                1_024,
            )
        };

        let mut healthy = StreamingRuntime::new(fleet(3), cfg.clone());
        let healthy_report = healthy.run(&mut stream()).unwrap();

        let mut failed = StreamingRuntime::new(fleet(3), cfg);
        failed.inject(IngestFault::WorkerPanic {
            at_step: 7,
            switch: 1,
        });
        let failed_report = failed.run(&mut stream()).unwrap();

        assert_eq!(failed_report.stats.panics_recovered, 1);
        assert_eq!(failed_report.stats.promotions, 1, "respawn used the checkpoint path");
        assert_eq!(failed_report.health, RuntimeHealth::Healthy);
        assert!(failed_report.ledger.conserved(), "{:?}", failed_report.ledger);
        assert_eq!(failed_report.ledger.lost, 0, "per-step barriers => empty loss window");
        assert_eq!(healthy_report.stats.shed(), 0);
        assert_eq!(failed_report.stats.shed(), 0);
        assert_eq!(
            failed_report.stats.processed,
            healthy_report.stats.processed
        );

        // Bit-identity of the non-shed packet set: every register row of
        // every switch must match the unfailed replica fleet.
        for i in 0..3 {
            let (a, ha) = healthy.fleet().switch(i);
            let (b, hb) = failed.fleet().switch(i);
            let (ha, hb) = (ha.unwrap(), hb.unwrap());
            for row in 0..2 {
                assert_eq!(
                    a.read_row(ha, row).unwrap(),
                    b.read_row(hb, row).unwrap(),
                    "switch {i} row {row} diverged after supervised respawn"
                );
            }
            assert!(b.audit().is_empty(), "respawned switch {i} fails audit");
        }
        // And the archived epochs match too.
        assert_eq!(
            healthy.last_epoch(),
            failed.last_epoch(),
            "archived epoch readouts diverged"
        );
    }

    #[test]
    fn runtime_is_deterministic_given_seed() {
        let run = || {
            let mut rt = StreamingRuntime::new(
                fleet(2),
                IngestConfig {
                    queue_capacity: 512,
                    drain_chunk: 256,
                    epoch_packets: 2_000,
                    ..IngestConfig::default()
                },
            );
            rt.inject(IngestFault::SlowConsumer {
                from_step: 4,
                steps: 3,
                factor: 4,
            });
            let mut src =
                flymon_traffic::gen::PhasedSource::new(flymon_traffic::gen::PhasedConfig {
                    flows: 500,
                    base_chunk: 256,
                    phases: vec![
                        flymon_traffic::gen::Phase { chunks: 3, rate: 1.0 },
                        flymon_traffic::gen::Phase { chunks: 2, rate: 10.0 },
                    ],
                    ..flymon_traffic::gen::PhasedConfig::default()
                });
            rt.run(&mut src).unwrap()
        };
        assert_eq!(run(), run(), "same seeds, same report");
    }

    /// A respawn blocked only by a partitioned control channel is
    /// *waiting*, not stalled: the grace window holds the stall
    /// detector off, the respawn retries every step, and once the
    /// partition heals the replica comes back and the stream finishes
    /// healthy.
    #[test]
    fn channel_blocked_respawn_waits_out_grace_then_recovers() {
        let mut fl = fleet(2);
        fl.attach_channel(0xC4A5, crate::channel::ChannelConfig::default())
            .unwrap();
        let mut rt = StreamingRuntime::new(
            fl,
            IngestConfig {
                queue_capacity: 4_096,
                drain_chunk: 256,
                max_idle_steps: 2,
                channel_grace_steps: 32,
                ..IngestConfig::default()
            },
        );
        rt.inject(IngestFault::WorkerPanic {
            at_step: 3,
            switch: 1,
        });
        let mut src = TraceChunks::new(vec![Packet::tcp(8, 8, 8, 8); 8_192], 512);
        // Partition the victim's control link before the panic fires:
        // the promote command cannot reach it.
        rt.fleet_mut()
            .channel_mut()
            .unwrap()
            .set_partitioned(1, true);
        for _ in 0..8 {
            rt.step(&mut src)
                .expect("channel grace must hold the stall detector off");
        }
        assert_eq!(rt.health(), RuntimeHealth::Recovering);
        assert!(
            rt.stats().respawns_deferred >= 3,
            "deferred respawn retried every step: {:?}",
            rt.stats()
        );
        // Heal the partition: the next step's retry lands.
        rt.fleet_mut()
            .channel_mut()
            .unwrap()
            .set_partitioned(1, false);
        let report = rt.run(&mut src).unwrap();
        assert_eq!(report.health, RuntimeHealth::Healthy);
        assert_eq!(report.stats.promotions, 1, "respawn used the checkpoint path");
        assert_eq!(report.stats.panics_recovered, 1);
        assert!(report.ledger.conserved(), "{:?}", report.ledger);
    }

    /// With zero grace the old strict behavior is preserved: a respawn
    /// stuck behind a never-healing partition trips the stall detector
    /// instead of hanging (regression guard in both directions).
    #[test]
    fn zero_channel_grace_keeps_the_strict_stall_detector() {
        let mut fl = fleet(2);
        fl.attach_channel(0xC4A6, crate::channel::ChannelConfig::default())
            .unwrap();
        let mut rt = StreamingRuntime::new(
            fl,
            IngestConfig {
                queue_capacity: 4_096,
                drain_chunk: 256,
                max_idle_steps: 4,
                channel_grace_steps: 0,
                ..IngestConfig::default()
            },
        );
        rt.inject(IngestFault::WorkerPanic {
            at_step: 3,
            switch: 1,
        });
        let mut src = TraceChunks::new(vec![Packet::tcp(8, 8, 8, 8); 8_192], 512);
        rt.fleet_mut()
            .channel_mut()
            .unwrap()
            .set_partitioned(1, true);
        let err = rt.run(&mut src).unwrap_err();
        assert!(
            matches!(err, IngestError::Stalled { .. }),
            "an unreachable replica must surface without grace, got {err:?}"
        );
    }
}
