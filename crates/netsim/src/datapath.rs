//! Sharded parallel datapath: multi-core trace replay for one switch.
//!
//! The software pipeline is single-threaded per [`FlyMon`] instance —
//! faithful to the hardware, where one pipeline processes one packet per
//! clock, but far too slow to replay the multi-million-packet traces the
//! experiments in `results/` feed it. This module recovers multi-core
//! throughput without giving up single-switch semantics:
//!
//! 1. a dedicated **ingress** (the calling thread) walks the trace once,
//!    computes an RSS-style flow hash per packet ([`slot_of`]: murmur3
//!    over the source address, finalized with `fmix32`, folded into
//!    [`FANOUT_SLOTS`] slots) and routes each packet through a
//!    slot→worker **fanout table** into that worker's bounded ring;
//! 2. each **worker** thread owns a private [`FlyMon`] *replica* of the
//!    switch (deployments are deterministic, so every replica derives
//!    identical hash configurations, partition layouts and bindings),
//!    drains its ring in [`PIPELINE_BATCH`]-packet batches through the
//!    stage-major [`FlyMon::process_batch`] path, and recycles drained
//!    buffers back to the ingress;
//! 3. readouts are merged per the deployed sketch's merge law, exactly as
//!    fleet readouts are: per-bucket **sum** for linear frequency rows
//!    (CMS/MRAC), per-bucket **max** for HLL cardinality registers,
//!    per-bucket **OR** / any-replica for Bloom existence rows.
//!
//! For those laws the merged registers are *bit-identical* to a serial
//! replay of the whole trace on one switch for **any** disjoint packet
//! partition (each packet updates exactly one replica, and the per-bucket
//! operation is associative and commutative across packets) — which is
//! what lets the fanout table be *rebalanced*: slots are weighed by a
//! profiling pass over the trace and assigned to workers longest-
//! processing-time-first, keeping per-worker packet counts within ~1.2×
//! of each other even on heavily skewed traffic. Non-linear recipes —
//! max-inter-arrival, which differences consecutive timestamps *of the
//! same flow* inside one register — additionally need **flow affinity**:
//! for those the table degrades to the static `slot % workers` map (a
//! flow's packets always share a slot, hence a worker, across calls).
//!
//! The rings are plain `std::sync::mpsc::sync_channel`s of recycled
//! `Vec<Packet>` batches, depth [`RING_DEPTH`]: a full ring blocks the
//! ingress (backpressure, the same discipline as `ingest::BoundedQueue`)
//! instead of ballooning memory. No external thread-pool or channel
//! dependency is used; workers are best-effort pinned to distinct cores
//! ([`flymon_rmt::affinity`]) when the host has enough of them.
//!
//! On a single-CPU host (or with one worker) the replay degrades to an
//! inline sweep on the calling thread ([`ReplayMode::Serial`]) instead of
//! time-slicing threads that cannot run concurrently: mergeable
//! deployments *stripe* the trace over the replicas in
//! [`STRIPE_CHUNK`]-packet chunks (no per-packet hashing at all), while
//! affinity-bound deployments and fleet replays stage per-worker batches
//! through the same fanout table the pipelined path would use. See
//! `DESIGN.md` § "SIMD & ingress/worker datapath" for why this replaced
//! the claim-chunk scan model.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use flymon::prelude::*;
use flymon::FlymonError;
use flymon_packet::Packet;
use flymon_rmt::hash::{fmix32, murmur3_32};
use flymon_sketches::hll::estimate_from_registers;

/// Seed of the ingress/shard hash. Shared with
/// [`SwitchFleet::process_trace`](crate::SwitchFleet::process_trace) so a
/// fleet replay and a sharded replay split a trace identically.
pub const INGRESS_HASH_SEED: u32 = 0xf1ee7;

/// The per-bucket law by which two partial registers of the same
/// deployment combine into the register of the union traffic.
///
/// This is *the* canonical table: the sharded datapath's merged readouts
/// and the fleet's epoch rotation both route through [`MergeLaw::of`],
/// so a sketch can never be merged under one law in one path and a
/// different law in another. (That divergence was a real bug: epoch
/// rotation used to fall through to a blanket sum, silently adding
/// SuMax-Max rows' maxima across the fleet.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeLaw {
    /// Linear counter rows: per-bucket sum, clamped at the hosting
    /// register's cell ceiling (Cond-ADD saturates there, so the merge
    /// must too).
    Sum,
    /// MAX-op rows (HLL ρ registers, SuMax-Max maxima): per-bucket max.
    Max,
    /// Bitmap rows (Bloom, Linear Counting, BeauCoup coupons):
    /// per-bucket OR.
    Or,
}

impl MergeLaw {
    /// The merge law of `algorithm`'s register rows.
    ///
    /// Exhaustive over the algorithm table on purpose — adding an
    /// algorithm without deciding its merge law is a compile error, not
    /// a silent sum. Errors for [`Algorithm::OddSketch`], whose two rows
    /// obey *different* laws (a Bloom gate plus an XOR parity bitmap):
    /// no single per-bucket law merges it, and pretending one does is
    /// exactly the bug this table exists to prevent.
    pub fn of(algorithm: Algorithm) -> Result<MergeLaw, FlymonError> {
        Ok(match algorithm {
            Algorithm::Cms { .. }
            | Algorithm::SuMaxSum { .. }
            | Algorithm::Mrac
            | Algorithm::Tower { .. }
            | Algorithm::CounterBraids => MergeLaw::Sum,
            Algorithm::Hll | Algorithm::SuMaxMax { .. } | Algorithm::MaxInterval { .. } => {
                MergeLaw::Max
            }
            Algorithm::Bloom { .. } | Algorithm::LinearCounting | Algorithm::BeauCoup { .. } => {
                MergeLaw::Or
            }
            Algorithm::OddSketch => {
                return Err(FlymonError::BadTask(
                    "OddSketch rows have no single per-bucket merge law \
                     (Bloom gate merges by OR, the parity bitmap by XOR)"
                        .into(),
                ))
            }
        })
    }

    /// Combines two partial buckets. `cap` is the hosting register's
    /// cell ceiling, honored by [`MergeLaw::Sum`] only (pass `u32::MAX`
    /// when the row has no ceiling).
    #[inline]
    pub fn combine(self, a: u32, b: u32, cap: u32) -> u32 {
        match self {
            MergeLaw::Sum => (u64::from(a) + u64::from(b)).min(u64::from(cap)) as u32,
            MergeLaw::Max => a.max(b),
            MergeLaw::Or => a | b,
        }
    }

    /// Bulk form of [`MergeLaw::combine`]: folds `src` into `acc`
    /// bucket-by-bucket (`acc[i] = combine(acc[i], src[i], cap)`) in
    /// [`MERGE_LANES`]-wide chunks with a scalar tail — the `crc32_lanes`
    /// idiom, shaped so the per-law inner loops have no branch and
    /// autovectorize. Bit-identical to the per-element path for every
    /// law, cap and length (pinned by `tests/readout.rs`).
    ///
    /// # Panics
    /// Panics if the rows differ in length — partial registers of one
    /// deployment always share a geometry, so a mismatch is a caller
    /// bug, not a data condition.
    pub fn combine_rows(self, acc: &mut [u32], src: &[u32], cap: u32) {
        assert_eq!(
            acc.len(),
            src.len(),
            "merged rows must share a geometry"
        );
        let mut acc_chunks = acc.chunks_exact_mut(MERGE_LANES);
        let mut src_chunks = src.chunks_exact(MERGE_LANES);
        match self {
            MergeLaw::Sum => {
                let cap = u64::from(cap);
                for (a, s) in acc_chunks.by_ref().zip(src_chunks.by_ref()) {
                    for lane in 0..MERGE_LANES {
                        a[lane] = (u64::from(a[lane]) + u64::from(s[lane])).min(cap) as u32;
                    }
                }
                for (a, s) in acc_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(src_chunks.remainder())
                {
                    *a = (u64::from(*a) + u64::from(*s)).min(cap) as u32;
                }
            }
            MergeLaw::Max => {
                for (a, s) in acc_chunks.by_ref().zip(src_chunks.by_ref()) {
                    for lane in 0..MERGE_LANES {
                        a[lane] = a[lane].max(s[lane]);
                    }
                }
                for (a, s) in acc_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(src_chunks.remainder())
                {
                    *a = (*a).max(*s);
                }
            }
            MergeLaw::Or => {
                for (a, s) in acc_chunks.by_ref().zip(src_chunks.by_ref()) {
                    for lane in 0..MERGE_LANES {
                        a[lane] |= s[lane];
                    }
                }
                for (a, s) in acc_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(src_chunks.remainder())
                {
                    *a |= *s;
                }
            }
        }
    }

    /// [`MergeLaw::combine_rows`] fused with the occupancy scan: merges
    /// `src` into `acc` and counts the *merged* row's nonzero and
    /// at-ceiling buckets in the same sweep, so the adaptive
    /// controller's fill/saturation signals cost no second pass over
    /// the epoch's rows. Use for the final member of a merge fold;
    /// `saturation_cap` is the row's cell ceiling (what Cond-ADD
    /// saturates at), which for Sum rows coincides with the clamp cap.
    pub fn combine_rows_scan(
        self,
        acc: &mut [u32],
        src: &[u32],
        cap: u32,
        saturation_cap: u32,
    ) -> RowOccupancy {
        self.combine_rows(acc, src, cap);
        scan_row(acc, saturation_cap)
    }
}

/// Lane width of the bulk merge kernels — mirrors
/// [`flymon_rmt::hash::CRC_LANES`]: eight u32 lanes fill a 256-bit
/// vector register, and the measured sweet spot is flat from 4 to 16.
pub const MERGE_LANES: usize = 8;

/// Occupancy of one merged row, computed in the same sweep that merged
/// it ([`MergeLaw::combine_rows_scan`] / [`scan_row`]): the raw counts
/// behind the adaptive controller's fill and saturation ratios.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowOccupancy {
    /// Buckets holding a nonzero value.
    pub nonzero: usize,
    /// Buckets at the row's cell ceiling (saturated by Cond-ADD, not
    /// exactly counted).
    pub saturated: usize,
}

/// Counts a row's nonzero and at-ceiling buckets in one lane-chunked
/// sweep — the single-member / already-merged half of the fused
/// merge+stats pass.
pub fn scan_row(row: &[u32], cap: u32) -> RowOccupancy {
    let mut nonzero = 0usize;
    let mut saturated = 0usize;
    let mut chunks = row.chunks_exact(MERGE_LANES);
    for c in chunks.by_ref() {
        for lane in 0..MERGE_LANES {
            nonzero += usize::from(c[lane] > 0);
            saturated += usize::from(c[lane] >= cap);
        }
    }
    for &v in chunks.remainder() {
        nonzero += usize::from(v > 0);
        saturated += usize::from(v >= cap);
    }
    RowOccupancy { nonzero, saturated }
}

/// The shard (or fleet ingress) among `n` that `pkt` belongs to.
///
/// The raw murmur3 digest is finalized through [`fmix32`] before the
/// modulus: on real traces source addresses are far from uniform, and
/// folding the unmixed digest `% n` measured up to 2.7× worst/best
/// shard imbalance at 4 shards. The extra avalanche pass costs four
/// shifts and two multiplies per packet and brings the split to within
/// a few percent of uniform.
///
/// # Panics
/// Panics if `n` is zero — an empty datapath has no shards.
pub fn shard_of(pkt: &Packet, n: usize) -> usize {
    assert!(n > 0, "cannot shard across zero workers");
    fmix32(murmur3_32(INGRESS_HASH_SEED, &pkt.src_ip.to_be_bytes())) as usize % n
}

/// Partitions `trace` into `n` shards by [`shard_of`], preserving the
/// original packet order within each shard.
///
/// This is the *reference* partitioner: the replay path never
/// materializes shards (the ingress routes packets straight into worker
/// rings — see [`ShardedDatapath::process_trace`]), but fleet tests pin
/// drop attribution against this function, and offline tooling that
/// genuinely wants per-shard vectors can still build them.
pub fn shard_trace(trace: &[Packet], n: usize) -> Vec<Vec<Packet>> {
    let mut shards: Vec<Vec<Packet>> = vec![Vec::new(); n];
    for p in trace {
        shards[shard_of(p, n)].push(*p);
    }
    shards
}

/// Slots in the ingress fanout table. A power of two (the slot index is
/// a mask of the mixed flow hash) well above any realistic worker count,
/// so the rebalancer has fine-grained units to pack: with 256 slots the
/// largest slot holds ~the heaviest single flow, which bounds how far
/// from perfect the longest-processing-time-first assignment can land.
pub const FANOUT_SLOTS: usize = 256;

/// The fanout slot of `pkt`: mixed flow hash, masked to
/// [`FANOUT_SLOTS`]. Depends only on the source address, so a flow's
/// packets always share a slot — the property that makes the static
/// slot map flow-affine.
#[inline]
pub fn slot_of(pkt: &Packet) -> usize {
    fmix32(murmur3_32(INGRESS_HASH_SEED, &pkt.src_ip.to_be_bytes())) as usize & (FANOUT_SLOTS - 1)
}

/// Packets per batch handed from the ingress to a worker ring (and per
/// inline staged flush). Large enough to amortize the channel round-trip
/// and let the stage-major batch path stretch its legs; small enough
/// that `RING_DEPTH` in-flight batches per worker stay cache-friendly.
pub(crate) const PIPELINE_BATCH: usize = 1024;

/// Bounded depth of each worker's ring, in batches. A full ring blocks
/// the ingress on `send` — backpressure, not growth: at most
/// `RING_DEPTH × PIPELINE_BATCH` packets (~224 KiB at 28-byte packets)
/// are in flight per worker, and a slow worker throttles the ingress
/// instead of queueing unboundedly.
pub(crate) const RING_DEPTH: usize = 8;

/// Packets per chunk in the inline striped fallback (single-CPU hosts,
/// mergeable deployments): chunk `c` goes to replica `c % workers`
/// whole, with no per-packet hashing. Any chunking yields register state
/// a merge reconstructs exactly; the size only balances dispatch
/// amortization against how evenly short traces spread over replicas.
pub(crate) const STRIPE_CHUNK: usize = 4096;

/// Where one packet goes in a replay.
pub(crate) struct Assignment {
    /// The ingress the shard hash picked (drop accounting lands here).
    pub ingress: usize,
    /// The worker that must process the packet, or `None` to drop it
    /// (fleet replays with dead switches).
    pub to: Option<usize>,
}

/// Per-worker accounting of one parallel replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index (= replica index).
    pub worker: usize,
    /// Packets this worker processed.
    pub packets: u64,
    /// Packets this worker mirrored to the recirculation port.
    pub recirculated: u64,
    /// Packets routed to this worker's ingress that no one could take
    /// (always 0 for a [`ShardedDatapath`]; nonzero on an all-dead fleet).
    pub dropped: u64,
    /// Time this worker spent *inside* [`FlyMon::process_batch`] — pure
    /// pipeline work, excluding ring waits and ingress stalls. Per-worker
    /// [`WorkerStats::packets_per_sec`] is therefore the replica's
    /// processing rate (the per-core efficiency number the bench
    /// tabulates), while [`ReplayStats::elapsed`] brackets the whole
    /// replay including fanout planning and scheduling gaps.
    pub busy: Duration,
}

impl WorkerStats {
    /// This worker's processing throughput in packets per second.
    pub fn packets_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }

    /// Worst/best packet-count ratio across `stats` — the fanout
    /// balance figure of merit (1.0 is perfect). `1.0` when every
    /// worker is idle (nothing to imbalance); `f64::INFINITY` when some
    /// worker got packets and another got none.
    pub fn imbalance_ratio(stats: &[WorkerStats]) -> f64 {
        let max = stats.iter().map(|s| s.packets).max().unwrap_or(0);
        let min = stats.iter().map(|s| s.packets).min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// How a replay drove its workers.
///
/// A worker is a (replica, ring) pair; a *thread* is an OS thread. With
/// more than one usable CPU the replay spawns one OS thread per worker
/// plus the ingress on the calling thread ([`ReplayMode::Pipelined`]);
/// on a 1-CPU host — or with a single worker — it runs the replicas
/// inline on the calling thread ([`ReplayMode::Serial`]) instead of
/// paying spawn, channel and context-switch overhead for parallelism
/// the machine cannot deliver (the 0.69×-at-4-workers regression in
/// `results/BENCH_datapath.json` history).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplayMode {
    /// All workers ran inline on the calling thread (the host has one
    /// usable CPU, or there is one worker): striped chunks for
    /// mergeable deployments, staged fanout batches otherwise.
    #[default]
    Serial,
    /// A dedicated ingress (the calling thread) fanned packets out to
    /// `workers` spawned worker threads over bounded rings.
    Pipelined {
        /// Worker OS threads spawned (= replica count).
        workers: usize,
    },
}

/// Aggregates per-worker stats into whole-replay numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// Packets processed across all workers.
    pub packets: u64,
    /// Recirculated packets across all workers.
    pub recirculated: u64,
    /// Dropped packets across all workers.
    pub dropped: u64,
    /// Wall-clock time of the replay (fanout planning to last join).
    pub elapsed: Duration,
    /// How the workers were scheduled onto OS threads.
    pub mode: ReplayMode,
    /// [`WorkerStats::imbalance_ratio`] of *this* replay's per-worker
    /// packet counts (not the cumulative counters). `0.0` before any
    /// replay ran.
    pub imbalance: f64,
}

impl ReplayStats {
    /// Whole-replay throughput in packets per second.
    pub fn packets_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }

    /// Folds a worker report into the aggregate.
    pub fn absorb(&mut self, w: &WorkerStats) {
        self.packets += w.packets;
        self.recirculated += w.recirculated;
        self.dropped += w.dropped;
    }
}

/// Usable CPUs on this host (≥ 1).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs one batch through `fm`, folding the report into `report` and
/// clearing `buf` for reuse. The timer brackets only the pipeline work —
/// see [`WorkerStats::busy`].
fn flush_batch(fm: &mut FlyMon, report: &mut WorkerStats, buf: &mut Vec<Packet>) {
    if buf.is_empty() {
        return;
    }
    let begun = Instant::now();
    let b = fm.process_batch(buf);
    report.busy += begun.elapsed();
    report.packets += b.packets;
    report.recirculated += b.recirculated;
    buf.clear();
}

/// Inline fallback for mergeable deployments: stripe the trace over the
/// replicas in [`STRIPE_CHUNK`]-packet chunks, round-robin. No per-packet
/// hashing, no copies — chunk `c` is sliced straight out of the shared
/// trace into replica `c % n`'s batch path. Merge laws reconstruct the
/// serial registers from *any* disjoint partition, so the chunk→replica
/// map is free to ignore flows entirely.
fn replay_inline_striped(replicas: &mut [FlyMon], trace: &[Packet]) -> Vec<WorkerStats> {
    let n = replicas.len();
    let mut reports: Vec<WorkerStats> = (0..n)
        .map(|worker| WorkerStats {
            worker,
            ..WorkerStats::default()
        })
        .collect();
    for (c, chunk) in trace.chunks(STRIPE_CHUNK).enumerate() {
        let w = c % n;
        let begun = Instant::now();
        let b = replicas[w].process_batch(chunk);
        reports[w].busy += begun.elapsed();
        reports[w].packets += b.packets;
        reports[w].recirculated += b.recirculated;
    }
    reports
}

/// Inline fallback for routed replays (flow-affine deployments, fleets
/// with failover/drops): one pass over the trace on the calling thread,
/// staging each packet into its worker's buffer and flushing full
/// buffers through that replica's batch path. A single trace walk —
/// unlike the retired claim-chunk model, which scanned the whole trace
/// once *per worker* and hashed every packet `workers` times.
fn replay_inline_staged<A>(
    replicas: &mut [FlyMon],
    trace: &[Packet],
    assign: &mut A,
) -> Vec<WorkerStats>
where
    A: FnMut(&Packet) -> Assignment,
{
    let n = replicas.len();
    let mut reports: Vec<WorkerStats> = (0..n)
        .map(|worker| WorkerStats {
            worker,
            ..WorkerStats::default()
        })
        .collect();
    let mut bufs: Vec<Vec<Packet>> = (0..n).map(|_| Vec::with_capacity(PIPELINE_BATCH)).collect();
    for p in trace {
        let a = assign(p);
        match a.to {
            None => reports[a.ingress].dropped += 1,
            Some(w) => {
                bufs[w].push(*p);
                if bufs[w].len() == PIPELINE_BATCH {
                    flush_batch(&mut replicas[w], &mut reports[w], &mut bufs[w]);
                }
            }
        }
    }
    for w in 0..n {
        flush_batch(&mut replicas[w], &mut reports[w], &mut bufs[w]);
    }
    reports
}

/// The real parallel path: the calling thread becomes the ingress,
/// walking the trace once and fanning batches out into per-worker
/// bounded rings; each spawned worker owns one replica, drains its ring
/// through the stage-major batch path, and sends cleared buffers back
/// on an unbounded recycle channel so steady state allocates nothing.
///
/// Backpressure is the ring bound itself: `sync_channel(RING_DEPTH)`
/// blocks the ingress when a worker falls behind. Drops are decided and
/// counted at the ingress (`to: None` → the ingress worker's `dropped`),
/// so workers never see a packet they don't process.
///
/// Workers are pinned to distinct cores only when the host has enough
/// for all of them *plus* the ingress; the ingress itself is never
/// pinned — it runs on the caller's thread, and narrowing its affinity
/// would leak past the replay.
fn replay_pipelined<A>(replicas: &mut [FlyMon], trace: &[Packet], assign: &mut A) -> Vec<WorkerStats>
where
    A: FnMut(&Packet) -> Assignment,
{
    let n = replicas.len();
    let cores = host_parallelism();
    let pin = cores > n;
    std::thread::scope(|scope| {
        let mut rings = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (w, fm) in replicas.iter_mut().enumerate() {
            let (data_tx, data_rx) = mpsc::sync_channel::<Vec<Packet>>(RING_DEPTH);
            let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<Packet>>();
            rings.push((data_tx, recycle_rx));
            handles.push(scope.spawn(move || {
                if pin {
                    // Core 0 is left to the ingress; worker w takes w+1.
                    let _ = flymon_rmt::affinity::pin_current_thread((w + 1) % cores);
                }
                let mut report = WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                };
                while let Ok(mut batch) = data_rx.recv() {
                    let begun = Instant::now();
                    let b = fm.process_batch(&batch);
                    report.busy += begun.elapsed();
                    report.packets += b.packets;
                    report.recirculated += b.recirculated;
                    batch.clear();
                    // The ingress may already be gone (tail flush); a
                    // dead recycle channel just means fresh allocations.
                    let _ = recycle_tx.send(batch);
                }
                report
            }));
        }

        // Ingress: one walk over the shared trace on the calling thread.
        let mut bufs: Vec<Vec<Packet>> =
            (0..n).map(|_| Vec::with_capacity(PIPELINE_BATCH)).collect();
        let mut dropped = vec![0u64; n];
        for p in trace {
            let a = assign(p);
            match a.to {
                None => dropped[a.ingress] += 1,
                Some(w) => {
                    bufs[w].push(*p);
                    if bufs[w].len() == PIPELINE_BATCH {
                        let fresh = rings[w]
                            .1
                            .try_recv()
                            .unwrap_or_else(|_| Vec::with_capacity(PIPELINE_BATCH));
                        let full = std::mem::replace(&mut bufs[w], fresh);
                        // Blocking send on a full ring = backpressure.
                        rings[w].0.send(full).expect("datapath worker hung up");
                    }
                }
            }
        }
        for (w, buf) in bufs.into_iter().enumerate() {
            if !buf.is_empty() {
                rings[w].0.send(buf).expect("datapath worker hung up");
            }
        }
        // Closing the data channels is the workers' shutdown signal.
        drop(rings);

        let mut reports: Vec<WorkerStats> = handles
            .into_iter()
            .map(|h| h.join().expect("datapath worker panicked"))
            .collect();
        for (w, d) in dropped.into_iter().enumerate() {
            reports[w].dropped = d;
        }
        reports
    })
}

/// Parallel replay entry point shared by
/// [`ShardedDatapath::process_trace`] and
/// [`SwitchFleet::process_trace_parallel`](crate::SwitchFleet::process_trace_parallel):
/// both reduce parallel replay to "disjoint packet sets on disjoint
/// [`FlyMon`] instances", which needs no locking at all.
///
/// `assign` routes a packet (run only on the ingress/calling thread, so
/// `FnMut` with captured state is fine); a `to: None` assignment drops
/// the packet, attributed to its `ingress` worker. `can_stripe` declares
/// that *any* disjoint partition reconstructs under the deployment's
/// merge law (no flow affinity, no routing side effects) — it unlocks
/// the zero-hash striped fallback on hosts without real parallelism and
/// is ignored otherwise. `parallelism` overrides the detected CPU count
/// (`None` = ask the host): `Some(1)` forces the inline path, `Some(≥2)`
/// forces the pipelined path even on a 1-CPU host (CI exercises the
/// threaded machinery this way).
///
/// One [`WorkerStats`] report is produced per worker — including idle
/// ones — and merged into the cumulative `stats` rows; the returned
/// aggregate carries this replay's own mode, wall-clock and
/// [`ReplayStats::imbalance`].
pub(crate) fn replay_pipeline<A>(
    replicas: &mut [FlyMon],
    trace: &[Packet],
    mut assign: A,
    can_stripe: bool,
    parallelism: Option<usize>,
    stats: &mut Vec<WorkerStats>,
) -> ReplayStats
where
    A: FnMut(&Packet) -> Assignment,
{
    let n = replicas.len();
    let cpus = parallelism.unwrap_or_else(host_parallelism);
    let started = Instant::now();
    let (mode, reports) = if n == 1 || cpus <= 1 {
        let reports = if can_stripe {
            replay_inline_striped(replicas, trace)
        } else {
            replay_inline_staged(replicas, trace, &mut assign)
        };
        (ReplayMode::Serial, reports)
    } else {
        let reports = replay_pipelined(replicas, trace, &mut assign);
        (ReplayMode::Pipelined { workers: n }, reports)
    };
    let mut total = ReplayStats {
        elapsed: started.elapsed(),
        mode,
        imbalance: WorkerStats::imbalance_ratio(&reports),
        ..ReplayStats::default()
    };
    for report in reports {
        total.absorb(&report);
        match stats.iter_mut().find(|s| s.worker == report.worker) {
            Some(s) => {
                s.packets += report.packets;
                s.recirculated += report.recirculated;
                s.dropped += report.dropped;
                s.busy += report.busy;
            }
            None => stats.push(report),
        }
    }
    stats.sort_by_key(|s| s.worker);
    total
}

/// A sharded, multi-threaded datapath for **one logical switch**: a set
/// of per-worker [`FlyMon`] replicas that together replay a trace and
/// answer queries as if a single switch had processed it serially.
#[derive(Debug)]
pub struct ShardedDatapath {
    replicas: Vec<FlyMon>,
    handles: Vec<TaskHandle>,
    algorithm: Algorithm,
    stats: Vec<WorkerStats>,
    last_replay: ReplayStats,
    parallelism: Option<usize>,
}

impl ShardedDatapath {
    /// Builds `workers` replicas of a switch with `config` and deploys
    /// `task` on each. Deployment is deterministic, so the replicas end
    /// up with identical layouts — the precondition for exact merging.
    pub fn deploy(
        workers: usize,
        config: FlyMonConfig,
        task: &TaskDefinition,
    ) -> Result<Self, FlymonError> {
        if workers == 0 {
            return Err(FlymonError::BadTask(
                "a sharded datapath needs at least one worker".into(),
            ));
        }
        let mut replicas = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut algorithm = None;
        for _ in 0..workers {
            let mut fm = FlyMon::new(config);
            let h = fm.deploy(task)?;
            algorithm = Some(fm.task(h)?.algorithm);
            replicas.push(fm);
            handles.push(h);
        }
        Ok(ShardedDatapath {
            replicas,
            handles,
            algorithm: algorithm.expect("workers > 0"),
            stats: Vec::new(),
            last_replay: ReplayStats::default(),
            parallelism: None,
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Overrides the CPU count the replay scheduler sees (`None` = ask
    /// the host, the default). `Some(1)` forces the inline serial path;
    /// `Some(≥2)` forces the pipelined ingress/worker path even on a
    /// single-CPU host — how CI exercises the threaded machinery on
    /// 1-CPU runners. Purely a scheduling knob: claims, merge laws and
    /// per-replica state are identical either way.
    pub fn set_parallelism_hint(&mut self, cpus: Option<usize>) {
        self.parallelism = cpus;
    }

    /// Cumulative per-worker throughput counters.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    /// Stats of the most recent [`ShardedDatapath::process_trace`] call.
    pub fn last_replay(&self) -> ReplayStats {
        self.last_replay
    }

    /// One replica and its task handle (diagnostics, per-shard queries).
    pub fn replica(&self, worker: usize) -> (&FlyMon, TaskHandle) {
        (&self.replicas[worker], self.handles[worker])
    }

    /// Whether the deployed algorithm's register semantics require all
    /// packets of a flow to visit the same replica. Max-inter-arrival
    /// differences consecutive timestamps of a flow inside one register;
    /// splitting a flow across replicas would fabricate intervals no
    /// serial switch ever saw. Every other deployed algorithm
    /// reconstructs under its merge law from any disjoint partition.
    fn affinity_required(&self) -> bool {
        matches!(self.algorithm, Algorithm::MaxInterval { .. })
    }

    /// Builds the slot→worker fanout table for `trace`.
    ///
    /// Flow-affine deployments get the static `slot % workers` map —
    /// stable across calls, so a flow observed in two replays still
    /// lands on the same replica. Mergeable deployments get a
    /// *rebalanced* table: one profiling pass weighs each slot by its
    /// packet count, then slots are assigned longest-processing-time
    /// first, each to the least-loaded worker. With [`FANOUT_SLOTS`]
    /// fine-grained units the worst worker exceeds the ideal share by
    /// at most one mid-sized slot, which holds the packet imbalance
    /// under ~1.2× even on zipf-skewed traffic (the naive `hash % n`
    /// split measured 2.7× — see DESIGN.md).
    fn fanout_table(&self, trace: &[Packet]) -> Vec<usize> {
        let n = self.replicas.len();
        if self.affinity_required() {
            return (0..FANOUT_SLOTS).map(|s| s % n).collect();
        }
        let mut weight = [0u64; FANOUT_SLOTS];
        for p in trace {
            weight[slot_of(p)] += 1;
        }
        let mut order: Vec<usize> = (0..FANOUT_SLOTS).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(weight[s]), s));
        let mut load = vec![0u64; n];
        let mut table = vec![0usize; FANOUT_SLOTS];
        for s in order {
            // Deterministic tie-break on the worker index keeps the
            // table — and therefore every replay — reproducible.
            let w = (0..n).min_by_key(|&w| (load[w], w)).expect("workers > 0");
            table[s] = w;
            load[w] += weight[s];
        }
        table
    }

    /// Replays `trace` through the ingress/worker pipeline (or its
    /// inline fallback on hosts without real parallelism — see
    /// [`ReplayMode`]). Returns the aggregate stats; per-worker counters
    /// accumulate in [`ShardedDatapath::worker_stats`].
    pub fn process_trace(&mut self, trace: &[Packet]) -> ReplayStats {
        let n = self.replicas.len();
        let can_stripe = !self.affinity_required();
        let cpus = self.parallelism.unwrap_or_else(host_parallelism);
        let begun = Instant::now();
        // The striped inline path never consults the assignment, so
        // skip the fanout profiling pass (and its table) entirely when
        // replay_pipeline will take it — same predicate as there.
        let table = if can_stripe && (n == 1 || cpus <= 1) {
            Vec::new()
        } else {
            self.fanout_table(trace)
        };
        let mut total = replay_pipeline(
            &mut self.replicas,
            trace,
            |p| {
                let w = table[slot_of(p)];
                Assignment {
                    ingress: w,
                    to: Some(w),
                }
            },
            can_stripe,
            self.parallelism,
            &mut self.stats,
        );
        // Charge the fanout profiling pass to the replay it served.
        total.elapsed = begun.elapsed();
        self.last_replay = total;
        total
    }

    /// Per-bucket merged readout of one row across the replicas: the
    /// first replica's row is copied once, then every further replica's
    /// *borrowed* row folds in through the lane-vectorized
    /// [`MergeLaw::combine_rows`] kernel — no per-replica row copies,
    /// no per-element closure dispatch.
    fn merged_row_with(&self, row: usize, law: MergeLaw, cap: u32) -> Result<Vec<u32>, FlymonError> {
        let mut acc = self.replicas[0].read_row(self.handles[0], row)?;
        for (fm, h) in self.replicas.iter().zip(&self.handles).skip(1) {
            law.combine_rows(&mut acc, fm.row_view(*h, row)?, cap);
        }
        Ok(acc)
    }

    /// The hosting register's cell ceiling for `row`. Cond-ADD saturates
    /// there (its `p2` threshold, the Appendix D overflow guard), so a
    /// summed merge must clamp to it too — otherwise a bucket that
    /// saturated in the serial replay reads higher in the merged one.
    fn row_cap(&self, row: usize) -> u32 {
        self.replicas[0]
            .task(self.handles[0])
            .ok()
            .and_then(|t| t.rows.get(row))
            .map_or(u32::MAX, |r| r.bucket_max)
    }

    /// One row's merged register, per the deployed algorithm's merge law
    /// (cap-clamped sum for counter rows, max for MAX-op rows, OR for
    /// bitmap rows). For sum/max/OR-law algorithms this is bit-identical
    /// to the row a serial replay of the same trace would have produced;
    /// for [`Algorithm::MaxInterval`] it is only an approximation (the
    /// arrival-time state is not mergeable — see DESIGN.md).
    pub fn merged_row(&self, row: usize) -> Result<Vec<u32>, FlymonError> {
        let law = MergeLaw::of(self.algorithm)?;
        let cap = match law {
            MergeLaw::Sum => self.row_cap(row),
            MergeLaw::Max | MergeLaw::Or => u32::MAX,
        };
        self.merged_row_with(row, law, cap)
    }

    /// Merged frequency estimate: per-bucket sums, then the row-wise
    /// minimum — identical to the serial estimate by linearity.
    pub fn merged_frequency(&self, pkt: &Packet) -> Result<u64, FlymonError> {
        let d = match self.algorithm {
            Algorithm::Cms { d } => d,
            Algorithm::Mrac => 1,
            other => {
                return Err(FlymonError::BadTask(format!(
                    "{} readouts do not merge by summation",
                    other.name()
                )))
            }
        };
        let mut best = u64::MAX;
        let mut scratch = flymon_rmt::hash::HashScratch::default();
        for row in 0..d {
            let merged = self.merged_row(row)?;
            // Replica layouts are identical; locate through any one,
            // reusing one hash scratch across the rows.
            let idx = self.replicas[0].locate_with(self.handles[0], row, pkt, &mut scratch)?;
            best = best.min(u64::from(merged[idx]));
        }
        Ok(best)
    }

    /// Merged cardinality estimate: HLL registers merge by max.
    pub fn merged_cardinality(&self) -> Result<f64, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Hll) {
            return Err(FlymonError::BadTask(
                "merged cardinality needs an HLL task".into(),
            ));
        }
        let merged = self.merged_row_with(0, MergeLaw::Max, u32::MAX)?;
        let regs: Vec<u8> = merged.into_iter().map(|v| v.min(255) as u8).collect();
        Ok(estimate_from_registers(&regs))
    }

    /// Merged existence check: a key inserted anywhere was inserted on
    /// exactly one replica, so union membership is the OR of the
    /// per-replica checks.
    pub fn merged_exists(&self, pkt: &Packet) -> Result<bool, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Bloom { .. }) {
            return Err(FlymonError::BadTask(
                "merged existence needs a Bloom task".into(),
            ));
        }
        Ok(self
            .replicas
            .iter()
            .zip(&self.handles)
            .any(|(fm, h)| fm.query_exists(*h, pkt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::KeySpec;

    fn config() -> FlyMonConfig {
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 4096,
            ..FlyMonConfig::default()
        }
    }

    fn cms_def(d: usize) -> TaskDefinition {
        TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d })
            .memory(1024)
            .build()
    }

    #[test]
    fn sharding_covers_and_preserves_order() {
        let trace: Vec<Packet> = (0..1000u32).map(|i| Packet::tcp(i % 37, i, 1, 2)).collect();
        let shards = shard_trace(&trace, 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), trace.len());
        for (s, shard) in shards.iter().enumerate() {
            // Every packet landed on its hash shard…
            assert!(shard.iter().all(|p| shard_of(p, 4) == s));
            // …and same-source packets keep their relative order.
            let mut per_src: std::collections::HashMap<u32, Vec<u64>> = Default::default();
            for p in shard {
                per_src.entry(p.src_ip).or_default().push(p.ts_ns);
            }
            for seq in per_src.values() {
                assert!(seq.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn zero_worker_datapath_is_refused() {
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .memory(256)
            .build();
        assert!(ShardedDatapath::deploy(0, config(), &def).is_err());
    }

    #[test]
    fn lpt_fanout_balances_skewed_slots() {
        // A deliberately skewed trace: source i contributes i+1 packets,
        // so slot weights span two orders of magnitude. The rebalanced
        // table must still split packets within 1.2× worst/best, where
        // the naive `hash % n` split has no such guarantee.
        let mut trace = Vec::new();
        for i in 0..256u32 {
            for _ in 0..=i {
                trace.push(Packet::tcp(i, 1, 2, 3));
            }
        }
        let dp = ShardedDatapath::deploy(3, config(), &cms_def(2)).unwrap();
        let table = dp.fanout_table(&trace);
        assert_eq!(table.len(), FANOUT_SLOTS);
        let mut load = [0u64; 3];
        for p in &trace {
            load[table[slot_of(p)]] += 1;
        }
        let max = *load.iter().max().unwrap() as f64;
        let min = *load.iter().min().unwrap() as f64;
        assert!(min > 0.0, "a worker was starved: {load:?}");
        assert!(
            max / min < 1.2,
            "rebalanced fanout too skewed: {load:?} ({:.3}×)",
            max / min
        );
    }

    #[test]
    fn affine_fanout_is_static_and_flow_stable() {
        // Max-inter-arrival must keep each flow on one replica across
        // calls, so its table ignores traffic entirely: slot % workers.
        let def = TaskDefinition::builder("gap")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::Max(MaxParam::PacketIntervalUs))
            .memory(1024)
            .build();
        let cfg = FlyMonConfig {
            groups: 3,
            buckets_per_cmu: 1024,
            bucket_bits: 32,
            ..FlyMonConfig::default()
        };
        let dp = ShardedDatapath::deploy(2, cfg, &def).unwrap();
        assert!(dp.affinity_required());
        let trace: Vec<Packet> = (0..100u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let table = dp.fanout_table(&trace);
        for (s, &w) in table.iter().enumerate() {
            assert_eq!(w, s % 2);
        }
    }

    #[test]
    fn pipelined_replay_matches_inline_and_balances() {
        // Force the threaded ingress/worker path (even on a 1-CPU CI
        // host) and pin it against the inline path and a solo serial
        // switch: identical merged rows, full coverage, bounded
        // imbalance.
        let d = 2;
        let def = cms_def(d);
        let trace: Vec<Packet> = (0..50_000u32)
            .map(|i| Packet::tcp(i.wrapping_mul(0x9e37_79b9) % 1000, i, 1, 2))
            .collect();

        let mut solo = FlyMon::new(config());
        let h = solo.deploy(&def).unwrap();
        solo.process_trace(&trace);

        let mut inline = ShardedDatapath::deploy(3, config(), &def).unwrap();
        inline.set_parallelism_hint(Some(1));
        let it = inline.process_trace(&trace);
        assert_eq!(it.mode, ReplayMode::Serial);
        assert_eq!(it.packets as usize, trace.len());

        let mut piped = ShardedDatapath::deploy(3, config(), &def).unwrap();
        piped.set_parallelism_hint(Some(4));
        let pt = piped.process_trace(&trace);
        assert_eq!(pt.mode, ReplayMode::Pipelined { workers: 3 });
        assert_eq!(pt.packets as usize, trace.len(), "every packet delivered");
        assert_eq!(pt.dropped, 0);
        assert!(
            pt.imbalance < 1.2,
            "rebalanced fanout exceeded 1.2× ({:.3}×)",
            pt.imbalance
        );
        for row in 0..d {
            let want = solo.read_row(h, row).unwrap();
            assert_eq!(inline.merged_row(row).unwrap(), want, "inline row {row}");
            assert_eq!(piped.merged_row(row).unwrap(), want, "pipelined row {row}");
        }
    }

    #[test]
    fn pipelined_drops_are_attributed_at_the_ingress() {
        // The `to: None` path (dead fleet switches) through the
        // threaded pipeline: drops land on the assignment's ingress row
        // and the dropped packets reach no worker.
        let def = cms_def(1);
        let mut replicas: Vec<FlyMon> = (0..2)
            .map(|_| {
                let mut fm = FlyMon::new(config());
                fm.deploy(&def).unwrap();
                fm
            })
            .collect();
        let trace: Vec<Packet> = (0..3000u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let mut stats = Vec::new();
        let total = replay_pipeline(
            &mut replicas,
            &trace,
            |p| {
                let w = shard_of(p, 2);
                Assignment {
                    ingress: w,
                    // Worker 1's traffic is all dropped at the ingress.
                    to: (w == 0).then_some(0),
                }
            },
            false,
            Some(2),
            &mut stats,
        );
        assert_eq!(total.mode, ReplayMode::Pipelined { workers: 2 });
        let shards = shard_trace(&trace, 2);
        assert_eq!(total.packets as usize, shards[0].len());
        assert_eq!(total.dropped as usize, shards[1].len());
        assert_eq!(stats.len(), 2, "idle workers still report");
        assert_eq!(stats[0].packets as usize, shards[0].len());
        assert_eq!(stats[0].dropped, 0);
        assert_eq!(stats[1].packets, 0);
        assert_eq!(stats[1].dropped as usize, shards[1].len());
    }

    #[test]
    fn affine_replay_keeps_flows_on_one_replica_across_calls() {
        // Strongest witness for flow affinity: replica w's registers
        // must be bit-identical to a solo switch fed exactly the flows
        // the static table maps to w — across *two* replays, which a
        // traffic-rebalanced table would shuffle.
        let def = TaskDefinition::builder("gap")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::Max(MaxParam::PacketIntervalUs))
            .memory(1024)
            .build();
        let cfg = FlyMonConfig {
            groups: 3,
            buckets_per_cmu: 1024,
            bucket_bits: 32,
            ..FlyMonConfig::default()
        };
        let mut trace = Vec::new();
        for round in 0..40u64 {
            for i in 0..200u32 {
                let mut p = Packet::tcp(i, 1, 2, 3);
                p.ts_ns = round * 1_000_000 + u64::from(i) * 900;
                trace.push(p);
            }
        }
        let n = 2;
        for hint in [Some(1), Some(4)] {
            let mut dp = ShardedDatapath::deploy(n, cfg, &def).unwrap();
            dp.set_parallelism_hint(hint);
            dp.process_trace(&trace);
            dp.process_trace(&trace);
            for w in 0..n {
                let sub: Vec<Packet> = trace
                    .iter()
                    .filter(|p| slot_of(p) % n == w)
                    .copied()
                    .collect();
                let mut solo = FlyMon::new(cfg);
                let h = solo.deploy(&def).unwrap();
                solo.process_trace(&sub);
                solo.process_trace(&sub);
                let (replica, rh) = dp.replica(w);
                for row in 0..3 {
                    assert_eq!(
                        replica.read_row(rh, row).unwrap(),
                        solo.read_row(h, row).unwrap(),
                        "worker {w} row {row} diverged (hint {hint:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_mode_matches_available_parallelism() {
        let def = cms_def(1);
        let trace: Vec<Packet> = (0..200u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let cpus = host_parallelism();

        // One worker never spawns, whatever the host offers.
        let mut dp = ShardedDatapath::deploy(1, config(), &def).unwrap();
        assert_eq!(dp.process_trace(&trace).mode, ReplayMode::Serial);

        // Four workers: inline on a 1-CPU host, else the full pipeline.
        let mut dp = ShardedDatapath::deploy(4, config(), &def).unwrap();
        let total = dp.process_trace(&trace);
        assert_eq!(total.packets, 200, "scheduling must not change claims");
        match total.mode {
            ReplayMode::Serial => assert_eq!(cpus, 1),
            ReplayMode::Pipelined { workers } => {
                assert!(cpus > 1);
                assert_eq!(workers, 4);
            }
        }
        assert_eq!(dp.last_replay().mode, total.mode);

        // The hint overrides the host in both directions.
        dp.set_parallelism_hint(Some(1));
        assert_eq!(dp.process_trace(&trace).mode, ReplayMode::Serial);
        dp.set_parallelism_hint(Some(2));
        assert_eq!(
            dp.process_trace(&trace).mode,
            ReplayMode::Pipelined { workers: 4 }
        );
    }

    #[test]
    fn worker_stats_accumulate() {
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .memory(256)
            .build();
        let mut dp = ShardedDatapath::deploy(2, config(), &def).unwrap();
        let trace: Vec<Packet> = (0..500u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let total = dp.process_trace(&trace);
        assert_eq!(total.packets, 500);
        assert_eq!(total.dropped, 0);
        let per_worker: u64 = dp.worker_stats().iter().map(|s| s.packets).sum();
        assert_eq!(per_worker, 500);
        // A second replay accumulates rather than resets.
        dp.process_trace(&trace);
        let per_worker: u64 = dp.worker_stats().iter().map(|s| s.packets).sum();
        assert_eq!(per_worker, 1000);
    }

    #[test]
    fn imbalance_ratio_edge_cases() {
        let w = |worker, packets| WorkerStats {
            worker,
            packets,
            ..WorkerStats::default()
        };
        assert_eq!(WorkerStats::imbalance_ratio(&[]), 1.0);
        assert_eq!(WorkerStats::imbalance_ratio(&[w(0, 0), w(1, 0)]), 1.0);
        assert_eq!(
            WorkerStats::imbalance_ratio(&[w(0, 5), w(1, 0)]),
            f64::INFINITY
        );
        assert_eq!(WorkerStats::imbalance_ratio(&[w(0, 10), w(1, 8)]), 1.25);
    }
}
