//! Sharded parallel datapath: multi-core trace replay for one switch.
//!
//! The software pipeline is single-threaded per [`FlyMon`] instance —
//! faithful to the hardware, where one pipeline processes one packet per
//! clock, but far too slow to replay the multi-million-packet traces the
//! experiments in `results/` feed it. This module recovers multi-core
//! throughput without giving up single-switch semantics:
//!
//! 1. every worker thread scans the **shared** `&[Packet]` trace slice
//!    directly and *claims* the packets whose ingress hash ([`shard_of`]:
//!    `murmur3` over the source address, the same hash
//!    [`SwitchFleet`](crate::SwitchFleet) routes by) lands on it — no
//!    serial partitioning prologue, no per-shard `Vec<Packet>` copies,
//!    and per-shard packet order is trace order by construction;
//! 2. each worker's claims run against a private [`FlyMon`] *replica* of
//!    the switch — deployments are deterministic, so every replica
//!    derives identical hash configurations, partition layouts and
//!    bindings;
//! 3. readouts are merged per the deployed sketch's merge law, exactly as
//!    fleet readouts are: per-bucket **sum** for linear frequency rows
//!    (CMS/MRAC), per-bucket **max** for HLL cardinality registers,
//!    per-bucket **OR** / any-replica for Bloom existence rows.
//!
//! For those laws the merged registers are *bit-identical* to a serial
//! replay of the whole trace on one switch (each packet updates exactly
//! one replica, and the per-bucket operation is associative and
//! commutative across packets). Non-linear recipes — max-inter-arrival,
//! which differences consecutive timestamps *of the same flow* inside one
//! register — are only shard-equivalent because the shard hash keys on the
//! source address, so a flow's packets never split across replicas; see
//! `DESIGN.md` § "Sharded datapath" (including "Why PR 2 didn't scale"
//! for what the claim-scan model replaced and its memory-bandwidth
//! tradeoff).
//!
//! No external thread-pool or channel dependency is used:
//! `std::thread::scope` spawns and joins the workers over the borrowed
//! trace — at most `std::thread::available_parallelism()` of them. On a
//! single-CPU host the replay degrades gracefully to an inline serial
//! sweep of the replicas ([`ReplayMode::Serial`]) instead of
//! time-slicing threads that cannot run concurrently.

use std::time::{Duration, Instant};

use flymon::prelude::*;
use flymon::FlymonError;
use flymon_packet::Packet;
use flymon_sketches::hll::estimate_from_registers;

/// Seed of the ingress/shard hash. Shared with
/// [`SwitchFleet::process_trace`](crate::SwitchFleet::process_trace) so a
/// fleet replay and a sharded replay split a trace identically.
pub const INGRESS_HASH_SEED: u32 = 0xf1ee7;

/// The per-bucket law by which two partial registers of the same
/// deployment combine into the register of the union traffic.
///
/// This is *the* canonical table: the sharded datapath's merged readouts
/// and the fleet's epoch rotation both route through [`MergeLaw::of`],
/// so a sketch can never be merged under one law in one path and a
/// different law in another. (That divergence was a real bug: epoch
/// rotation used to fall through to a blanket sum, silently adding
/// SuMax-Max rows' maxima across the fleet.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeLaw {
    /// Linear counter rows: per-bucket sum, clamped at the hosting
    /// register's cell ceiling (Cond-ADD saturates there, so the merge
    /// must too).
    Sum,
    /// MAX-op rows (HLL ρ registers, SuMax-Max maxima): per-bucket max.
    Max,
    /// Bitmap rows (Bloom, Linear Counting, BeauCoup coupons):
    /// per-bucket OR.
    Or,
}

impl MergeLaw {
    /// The merge law of `algorithm`'s register rows.
    ///
    /// Exhaustive over the algorithm table on purpose — adding an
    /// algorithm without deciding its merge law is a compile error, not
    /// a silent sum. Errors for [`Algorithm::OddSketch`], whose two rows
    /// obey *different* laws (a Bloom gate plus an XOR parity bitmap):
    /// no single per-bucket law merges it, and pretending one does is
    /// exactly the bug this table exists to prevent.
    pub fn of(algorithm: Algorithm) -> Result<MergeLaw, FlymonError> {
        Ok(match algorithm {
            Algorithm::Cms { .. }
            | Algorithm::SuMaxSum { .. }
            | Algorithm::Mrac
            | Algorithm::Tower { .. }
            | Algorithm::CounterBraids => MergeLaw::Sum,
            Algorithm::Hll | Algorithm::SuMaxMax { .. } | Algorithm::MaxInterval { .. } => {
                MergeLaw::Max
            }
            Algorithm::Bloom { .. } | Algorithm::LinearCounting | Algorithm::BeauCoup { .. } => {
                MergeLaw::Or
            }
            Algorithm::OddSketch => {
                return Err(FlymonError::BadTask(
                    "OddSketch rows have no single per-bucket merge law \
                     (Bloom gate merges by OR, the parity bitmap by XOR)"
                        .into(),
                ))
            }
        })
    }

    /// Combines two partial buckets. `cap` is the hosting register's
    /// cell ceiling, honored by [`MergeLaw::Sum`] only (pass `u32::MAX`
    /// when the row has no ceiling).
    #[inline]
    pub fn combine(self, a: u32, b: u32, cap: u32) -> u32 {
        match self {
            MergeLaw::Sum => (u64::from(a) + u64::from(b)).min(u64::from(cap)) as u32,
            MergeLaw::Max => a.max(b),
            MergeLaw::Or => a | b,
        }
    }
}

/// The shard (or fleet ingress) among `n` that `pkt` belongs to.
///
/// # Panics
/// Panics if `n` is zero — an empty datapath has no shards.
pub fn shard_of(pkt: &Packet, n: usize) -> usize {
    assert!(n > 0, "cannot shard across zero workers");
    flymon_rmt::hash::murmur3_32(INGRESS_HASH_SEED, &pkt.src_ip.to_be_bytes()) as usize % n
}

/// Partitions `trace` into `n` shards by [`shard_of`], preserving the
/// original packet order within each shard.
///
/// This is the *reference* partitioner: the replay path no longer
/// materializes shards (workers claim packets straight off the shared
/// trace — see [`ShardedDatapath::process_trace`]), but tests pin the
/// claim sets against this function, and offline tooling that genuinely
/// wants per-shard vectors can still build them.
pub fn shard_trace(trace: &[Packet], n: usize) -> Vec<Vec<Packet>> {
    let mut shards: Vec<Vec<Packet>> = vec![Vec::new(); n];
    for p in trace {
        shards[shard_of(p, n)].push(*p);
    }
    shards
}

/// Packets a worker pulls off the shared trace per
/// [`FlyMon::process_batch_if`] call. Chunking amortizes per-batch
/// dispatch and recirculation bookkeeping while keeping the scanned
/// window cache-resident; the value is not semantically meaningful (any
/// chunking yields identical state — claims are per-packet).
pub const CLAIM_CHUNK: usize = 4096;

/// Where one packet goes in a zero-copy replay.
pub(crate) struct Assignment {
    /// The ingress the shard hash picked (drop accounting lands here).
    pub ingress: usize,
    /// The worker that must process the packet, or `None` to drop it
    /// (fleet replays with dead switches).
    pub to: Option<usize>,
}

/// Per-worker accounting of one parallel replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index (= shard index = replica index).
    pub worker: usize,
    /// Packets this worker processed.
    pub packets: u64,
    /// Packets this worker mirrored to the recirculation port.
    pub recirculated: u64,
    /// Packets routed to this worker's ingress that no one could take
    /// (always 0 for a [`ShardedDatapath`]; nonzero on an all-dead fleet).
    pub dropped: u64,
    /// Wall-clock time of the worker's whole scan-and-claim loop — the
    /// same span [`ReplayStats::elapsed`] measures (minus spawn/join), so
    /// [`WorkerStats::packets_per_sec`] is comparable to the aggregate
    /// number. (PR 2 measured only shard processing here, while `elapsed`
    /// also covered the serial shard materialization; per-worker pkt/s
    /// overstated the replay.)
    pub busy: Duration,
}

impl WorkerStats {
    /// This worker's throughput in packets per second.
    pub fn packets_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }
}

/// How a replay drove its workers.
///
/// A worker is a (replica, shard) pair; a *thread* is an OS thread. The
/// replay clamps the thread count to
/// `std::thread::available_parallelism()`, so on a 1-CPU host a
/// 4-worker datapath runs all four replicas inline on the calling
/// thread ([`ReplayMode::Serial`]) instead of paying spawn/join and
/// context-switch overhead for parallelism the machine cannot deliver
/// (the 0.69×-at-4-workers regression in `results/BENCH_datapath.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplayMode {
    /// All workers ran sequentially on the calling thread (the host has
    /// one usable CPU, or there is one worker).
    #[default]
    Serial,
    /// Workers were spread over `threads` spawned OS threads.
    Threaded {
        /// OS threads spawned (≤ workers, ≤ available parallelism).
        threads: usize,
    },
}

/// Aggregates per-worker stats into whole-replay numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// Packets processed across all workers.
    pub packets: u64,
    /// Recirculated packets across all workers.
    pub recirculated: u64,
    /// Dropped packets across all workers.
    pub dropped: u64,
    /// Wall-clock time of the replay (spawn to last join).
    pub elapsed: Duration,
    /// How the workers were scheduled onto OS threads.
    pub mode: ReplayMode,
}

impl ReplayStats {
    /// Whole-replay throughput in packets per second.
    pub fn packets_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.packets as f64 / secs
        } else {
            0.0
        }
    }

    /// Folds a worker report into the aggregate.
    pub fn absorb(&mut self, w: &WorkerStats) {
        self.packets += w.packets;
        self.recirculated += w.recirculated;
        self.dropped += w.dropped;
    }
}

/// One worker's scan-and-claim loop over the shared trace: claim the
/// packets `assign` routes to `worker`, count drops whose ingress is
/// `worker`, time the whole loop. Identical work whether it runs on a
/// spawned thread or inline on the calling one.
fn scan_worker<A>(worker: usize, fm: &mut FlyMon, trace: &[Packet], assign: &A) -> WorkerStats
where
    A: Fn(&Packet) -> Assignment + Sync,
{
    let begun = Instant::now();
    let mut report = WorkerStats {
        worker,
        ..WorkerStats::default()
    };
    for chunk in trace.chunks(CLAIM_CHUNK) {
        let batch = fm.process_batch_if(chunk, |p| {
            let a = assign(p);
            match a.to {
                Some(w) => w == worker,
                None => {
                    if a.ingress == worker {
                        report.dropped += 1;
                    }
                    false
                }
            }
        });
        report.packets += batch.packets;
        report.recirculated += batch.recirculated;
    }
    report.busy = begun.elapsed();
    report
}

/// Zero-copy parallel replay: every worker thread scans the whole shared
/// `trace` slice in [`CLAIM_CHUNK`]-sized windows and claims the packets
/// `assign` routes to it — no serial partitioning prologue, no per-shard
/// packet copies. A packet whose assignment is `to: None` is counted as
/// dropped by the worker matching its `ingress` (and processed by no
/// one).
///
/// Shared by [`ShardedDatapath::process_trace`] and
/// [`SwitchFleet::process_trace_parallel`](crate::SwitchFleet::process_trace_parallel):
/// both reduce parallel replay to "disjoint packet sets on disjoint
/// `FlyMon` instances", which needs no locking at all. The redundant
/// work is the claim scan itself — every worker hashes every packet's
/// 4-byte source address — which is cheap next to pipeline processing
/// and, unlike the old materialization, embarrassingly parallel.
///
/// Per-worker `busy` spans the worker's whole scan-and-process loop, the
/// same work [`ReplayStats::elapsed`] brackets (modulo spawn/join), so
/// per-worker and aggregate packets/sec are finally comparable.
///
/// OS threads are clamped to `std::thread::available_parallelism()`:
/// with one usable CPU every worker runs inline on the calling thread
/// ([`ReplayMode::Serial`]); otherwise contiguous runs of workers share
/// up to that many spawned threads ([`ReplayMode::Threaded`]). Worker
/// indices, claim sets and per-replica state are identical either way —
/// only the scheduling (and therefore wall-clock) changes. The chosen
/// mode is recorded in [`ReplayStats::mode`].
pub(crate) fn replay_zero_copy<A>(
    replicas: &mut [FlyMon],
    trace: &[Packet],
    assign: A,
    stats: &mut Vec<WorkerStats>,
) -> ReplayStats
where
    A: Fn(&Packet) -> Assignment + Sync,
{
    let assign = &assign;
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(replicas.len());
    let started = Instant::now();
    let (mode, reports): (ReplayMode, Vec<WorkerStats>) = if threads <= 1 {
        // One usable CPU (or one worker): run every replica's scan
        // inline — same claims, same per-replica state, no spawn/join.
        let reports = replicas
            .iter_mut()
            .enumerate()
            .map(|(worker, fm)| scan_worker(worker, fm, trace, assign))
            .collect();
        (ReplayMode::Serial, reports)
    } else {
        // Workers keep their global index (= replica index = shard
        // index) while contiguous runs of them share an OS thread.
        let mut indexed: Vec<(usize, &mut FlyMon)> = replicas.iter_mut().enumerate().collect();
        let per_thread = indexed.len().div_ceil(threads);
        let spawned = indexed.len().div_ceil(per_thread);
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = indexed
                .chunks_mut(per_thread)
                .map(|run| {
                    scope.spawn(move || {
                        run.iter_mut()
                            .map(|(worker, fm)| scan_worker(*worker, fm, trace, assign))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("datapath worker panicked"))
                .collect()
        });
        (ReplayMode::Threaded { threads: spawned }, reports)
    };
    let mut total = ReplayStats {
        elapsed: started.elapsed(),
        mode,
        ..ReplayStats::default()
    };
    for report in reports {
        total.absorb(&report);
        match stats.iter_mut().find(|s| s.worker == report.worker) {
            Some(s) => {
                s.packets += report.packets;
                s.recirculated += report.recirculated;
                s.dropped += report.dropped;
                s.busy += report.busy;
            }
            None => stats.push(report),
        }
    }
    stats.sort_by_key(|s| s.worker);
    total
}

/// A sharded, multi-threaded datapath for **one logical switch**: a set
/// of per-worker [`FlyMon`] replicas that together replay a trace and
/// answer queries as if a single switch had processed it serially.
#[derive(Debug)]
pub struct ShardedDatapath {
    replicas: Vec<FlyMon>,
    handles: Vec<TaskHandle>,
    algorithm: Algorithm,
    stats: Vec<WorkerStats>,
    last_replay: ReplayStats,
}

impl ShardedDatapath {
    /// Builds `workers` replicas of a switch with `config` and deploys
    /// `task` on each. Deployment is deterministic, so the replicas end
    /// up with identical layouts — the precondition for exact merging.
    pub fn deploy(
        workers: usize,
        config: FlyMonConfig,
        task: &TaskDefinition,
    ) -> Result<Self, FlymonError> {
        if workers == 0 {
            return Err(FlymonError::BadTask(
                "a sharded datapath needs at least one worker".into(),
            ));
        }
        let mut replicas = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut algorithm = None;
        for _ in 0..workers {
            let mut fm = FlyMon::new(config);
            let h = fm.deploy(task)?;
            algorithm = Some(fm.task(h)?.algorithm);
            replicas.push(fm);
            handles.push(h);
        }
        Ok(ShardedDatapath {
            replicas,
            handles,
            algorithm: algorithm.expect("workers > 0"),
            stats: Vec::new(),
            last_replay: ReplayStats::default(),
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Cumulative per-worker throughput counters.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    /// Stats of the most recent [`ShardedDatapath::process_trace`] call.
    pub fn last_replay(&self) -> ReplayStats {
        self.last_replay
    }

    /// One replica and its task handle (diagnostics, per-shard queries).
    pub fn replica(&self, worker: usize) -> (&FlyMon, TaskHandle) {
        (&self.replicas[worker], self.handles[worker])
    }

    /// Replays `trace`: every worker scans the shared slice and claims
    /// the packets whose ingress hash lands on it (zero-copy — the trace
    /// is never partitioned or duplicated). Returns the aggregate stats;
    /// per-worker counters accumulate in
    /// [`ShardedDatapath::worker_stats`].
    pub fn process_trace(&mut self, trace: &[Packet]) -> ReplayStats {
        let n = self.replicas.len();
        let total = replay_zero_copy(
            &mut self.replicas,
            trace,
            |p| {
                let ingress = shard_of(p, n);
                Assignment {
                    ingress,
                    to: Some(ingress),
                }
            },
            &mut self.stats,
        );
        self.last_replay = total;
        total
    }

    /// Per-bucket merged readout of one row across the replicas.
    fn merged_row_with(
        &self,
        row: usize,
        merge: impl Fn(u32, u32) -> u32,
    ) -> Result<Vec<u32>, FlymonError> {
        let mut acc = self.replicas[0].read_row(self.handles[0], row)?;
        for (fm, h) in self.replicas.iter().zip(&self.handles).skip(1) {
            for (a, v) in acc.iter_mut().zip(fm.read_row(*h, row)?) {
                *a = merge(*a, v);
            }
        }
        Ok(acc)
    }

    /// The hosting register's cell ceiling for `row`. Cond-ADD saturates
    /// there (its `p2` threshold, the Appendix D overflow guard), so a
    /// summed merge must clamp to it too — otherwise a bucket that
    /// saturated in the serial replay reads higher in the merged one.
    fn row_cap(&self, row: usize) -> u32 {
        self.replicas[0]
            .task(self.handles[0])
            .ok()
            .and_then(|t| t.rows.get(row))
            .map_or(u32::MAX, |r| r.bucket_max)
    }

    /// One row's merged register, per the deployed algorithm's merge law
    /// (cap-clamped sum for counter rows, max for MAX-op rows, OR for
    /// bitmap rows). For sum/max/OR-law algorithms this is bit-identical
    /// to the row a serial replay of the same trace would have produced;
    /// for [`Algorithm::MaxInterval`] it is only an approximation (the
    /// arrival-time state is not mergeable — see DESIGN.md).
    pub fn merged_row(&self, row: usize) -> Result<Vec<u32>, FlymonError> {
        let law = MergeLaw::of(self.algorithm)?;
        let cap = match law {
            MergeLaw::Sum => self.row_cap(row),
            MergeLaw::Max | MergeLaw::Or => u32::MAX,
        };
        self.merged_row_with(row, move |a, b| law.combine(a, b, cap))
    }

    /// Merged frequency estimate: per-bucket sums, then the row-wise
    /// minimum — identical to the serial estimate by linearity.
    pub fn merged_frequency(&self, pkt: &Packet) -> Result<u64, FlymonError> {
        let d = match self.algorithm {
            Algorithm::Cms { d } => d,
            Algorithm::Mrac => 1,
            other => {
                return Err(FlymonError::BadTask(format!(
                    "{} readouts do not merge by summation",
                    other.name()
                )))
            }
        };
        let mut best = u64::MAX;
        for row in 0..d {
            let merged = self.merged_row(row)?;
            // Replica layouts are identical; locate through any one.
            let idx = self.replicas[0].locate(self.handles[0], row, pkt)?;
            best = best.min(u64::from(merged[idx]));
        }
        Ok(best)
    }

    /// Merged cardinality estimate: HLL registers merge by max.
    pub fn merged_cardinality(&self) -> Result<f64, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Hll) {
            return Err(FlymonError::BadTask(
                "merged cardinality needs an HLL task".into(),
            ));
        }
        let merged = self.merged_row_with(0, u32::max)?;
        let regs: Vec<u8> = merged.into_iter().map(|v| v.min(255) as u8).collect();
        Ok(estimate_from_registers(&regs))
    }

    /// Merged existence check: a key inserted anywhere was inserted on
    /// exactly one replica (its shard), so union membership is the OR of
    /// the per-replica checks.
    pub fn merged_exists(&self, pkt: &Packet) -> Result<bool, FlymonError> {
        if !matches!(self.algorithm, Algorithm::Bloom { .. }) {
            return Err(FlymonError::BadTask(
                "merged existence needs a Bloom task".into(),
            ));
        }
        Ok(self
            .replicas
            .iter()
            .zip(&self.handles)
            .any(|(fm, h)| fm.query_exists(*h, pkt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::KeySpec;

    fn config() -> FlyMonConfig {
        FlyMonConfig {
            groups: 2,
            buckets_per_cmu: 4096,
            ..FlyMonConfig::default()
        }
    }

    #[test]
    fn sharding_covers_and_preserves_order() {
        let trace: Vec<Packet> = (0..1000u32).map(|i| Packet::tcp(i % 37, i, 1, 2)).collect();
        let shards = shard_trace(&trace, 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), trace.len());
        for (s, shard) in shards.iter().enumerate() {
            // Every packet landed on its hash shard…
            assert!(shard.iter().all(|p| shard_of(p, 4) == s));
            // …and same-source packets keep their relative order.
            let mut per_src: std::collections::HashMap<u32, Vec<u64>> = Default::default();
            for p in shard {
                per_src.entry(p.src_ip).or_default().push(p.ts_ns);
            }
            for seq in per_src.values() {
                assert!(seq.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn zero_worker_datapath_is_refused() {
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .memory(256)
            .build();
        assert!(ShardedDatapath::deploy(0, config(), &def).is_err());
    }

    #[test]
    fn zero_copy_claims_match_shard_trace() {
        // Satellite regression: the claim scan must assign every packet
        // to exactly the shard the old serial partitioner chose (same
        // INGRESS_HASH_SEED, same `% n`). Per-replica register state is
        // the strongest witness: replica w must equal a solo switch fed
        // precisely shard_trace(trace, n)[w], in order.
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .algorithm(Algorithm::Cms { d: 3 })
            .memory(1024)
            .build();
        let trace: Vec<Packet> = (0..5000u32)
            .map(|i| Packet::tcp(i.wrapping_mul(0x9e37_79b9) % 1000, i, 1, 2))
            .collect();
        let workers = 3;
        let shards = shard_trace(&trace, workers);
        let mut dp = ShardedDatapath::deploy(workers, config(), &def).unwrap();
        let total = dp.process_trace(&trace);
        assert_eq!(total.packets as usize, trace.len(), "every packet claimed");
        for (w, shard) in shards.iter().enumerate() {
            assert_eq!(
                dp.worker_stats()[w].packets as usize,
                shard.len(),
                "worker {w} claimed a different shard than shard_trace"
            );
            let mut solo = FlyMon::new(config());
            let h = solo.deploy(&def).unwrap();
            solo.process_trace(shard);
            let (replica, rh) = dp.replica(w);
            for row in 0..3 {
                assert_eq!(
                    replica.read_row(rh, row).unwrap(),
                    solo.read_row(h, row).unwrap(),
                    "worker {w} row {row} diverged from its reference shard"
                );
            }
        }
    }

    #[test]
    fn replay_mode_matches_available_parallelism() {
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .memory(256)
            .build();
        let trace: Vec<Packet> = (0..200u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);

        // One worker never spawns, whatever the host offers.
        let mut dp = ShardedDatapath::deploy(1, config(), &def).unwrap();
        assert_eq!(dp.process_trace(&trace).mode, ReplayMode::Serial);

        // Four workers: serial on a 1-CPU host, else clamped threads.
        let mut dp = ShardedDatapath::deploy(4, config(), &def).unwrap();
        let total = dp.process_trace(&trace);
        assert_eq!(total.packets, 200, "clamping must not change claims");
        match total.mode {
            ReplayMode::Serial => assert_eq!(cpus, 1),
            ReplayMode::Threaded { threads } => {
                assert!(cpus > 1);
                assert!(threads >= 2 && threads <= cpus.min(4));
            }
        }
        assert_eq!(dp.last_replay().mode, total.mode);
    }

    #[test]
    fn worker_stats_accumulate() {
        let def = TaskDefinition::builder("f")
            .key(KeySpec::SRC_IP)
            .attribute(Attribute::frequency_packets())
            .memory(256)
            .build();
        let mut dp = ShardedDatapath::deploy(2, config(), &def).unwrap();
        let trace: Vec<Packet> = (0..500u32).map(|i| Packet::tcp(i, 1, 2, 3)).collect();
        let total = dp.process_trace(&trace);
        assert_eq!(total.packets, 500);
        assert_eq!(total.dropped, 0);
        let per_worker: u64 = dp.worker_stats().iter().map(|s| s.packets).sum();
        assert_eq!(per_worker, 500);
        // A second replay accumulates rather than resets.
        dp.process_trace(&trace);
        let per_worker: u64 = dp.worker_stats().iter().map(|s| s.packets).sum();
        assert_eq!(per_worker, 1000);
    }
}
