//! Epoch-driven measurement: the standard read-out-and-reset loop.
//!
//! Sketch systems measure in epochs (§5.1): the control plane reads the
//! data plane at each boundary and clears it for the next window. This
//! module packages that loop so experiments and applications don't
//! re-implement it: feed a time-sorted trace, get a callback per epoch
//! *before* the tasks are reset.

use flymon::prelude::*;
use flymon::FlymonError;
use flymon_packet::Packet;
use flymon_traffic::split_epochs;

/// Runs `trace` through `switch` in epochs of `epoch_ns`, invoking
/// `on_epoch(index, epoch_packets, switch)` after each epoch's traffic
/// and resetting every handle in `tasks` afterwards.
///
/// Returns the number of epochs processed.
///
/// # Errors
/// Propagates readout/reset errors (e.g. a stale handle).
pub fn run_epochs<F>(
    switch: &mut FlyMon,
    trace: &[Packet],
    epoch_ns: u64,
    tasks: &[TaskHandle],
    mut on_epoch: F,
) -> Result<usize, FlymonError>
where
    F: FnMut(usize, &[Packet], &FlyMon),
{
    let epochs = split_epochs(trace, epoch_ns);
    for (i, epoch) in epochs.iter().enumerate() {
        for pkt in *epoch {
            switch.process(pkt);
        }
        on_epoch(i, epoch, switch);
        for &h in tasks {
            switch.reset_task(h)?;
        }
    }
    Ok(epochs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::{KeySpec, PacketBuilder};

    #[test]
    fn per_epoch_readouts_are_isolated() {
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1024,
            ..FlyMonConfig::default()
        });
        let h = fm
            .deploy(
                &TaskDefinition::builder("t")
                    .key(KeySpec::SRC_IP)
                    .attribute(Attribute::frequency_packets())
                    .algorithm(Algorithm::Cms { d: 1 })
                    .memory(256)
                    .build(),
            )
            .unwrap();

        // Epoch i (10 µs each) carries i+1 packets of one flow.
        let mut trace = Vec::new();
        for e in 0u64..5 {
            for k in 0..=e {
                trace.push(
                    PacketBuilder::new()
                        .src_ip(7)
                        .ts_ns(e * 10_000 + k)
                        .build(),
                );
            }
        }
        let probe = flymon_packet::Packet::tcp(7, 0, 0, 0);
        let mut seen = Vec::new();
        let n = run_epochs(&mut fm, &trace, 10_000, &[h], |i, epoch, fm| {
            assert_eq!(epoch.len(), i + 1);
            seen.push(fm.query_frequency(h, &probe));
        })
        .unwrap();
        assert_eq!(n, 5);
        // Each epoch's readout reflects only that epoch (reset works).
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        // After the loop the task is clean for the next period.
        assert_eq!(fm.query_frequency(h, &probe), 0);
    }

    #[test]
    fn empty_trace_runs_zero_epochs() {
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1024,
            ..FlyMonConfig::default()
        });
        let n = run_epochs(&mut fm, &[], 1_000, &[], |_, _, _| panic!("no epochs"))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn stale_handles_surface_errors() {
        let mut fm = FlyMon::new(FlyMonConfig {
            groups: 1,
            buckets_per_cmu: 1024,
            ..FlyMonConfig::default()
        });
        let h = fm
            .deploy(
                &TaskDefinition::builder("t")
                    .key(KeySpec::SRC_IP)
                    .attribute(Attribute::frequency_packets())
                    .algorithm(Algorithm::Cms { d: 1 })
                    .memory(256)
                    .build(),
            )
            .unwrap();
        fm.remove(h).unwrap();
        let trace = vec![PacketBuilder::new().src_ip(1).build()];
        assert!(run_epochs(&mut fm, &trace, 1_000, &[h], |_, _, _| {}).is_err());
    }
}
