//! The interactive FlyMon control plane.
//!
//! The paper's artifact ships "an interactive control plane framework";
//! this crate is its equivalent for the simulated switch: a small
//! command language to deploy, feed, query, reconfigure and retire
//! measurement tasks. The REPL in `main.rs` is a thin loop over
//! [`Session::execute`], which makes every command unit-testable.
//!
//! ```text
//! flymon> deploy hh key=SrcIP attr=frequency mem=16384 alg=cms d=3
//! deployed 'hh' as CMS (d=3) (task #1, 21.3 ms modeled install)
//! flymon> gen flows=10000 packets=200000 seed=7
//! flymon> run
//! flymon> query hh 10.1.2.3
//! flymon> remove hh
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;

use flymon::prelude::*;
use flymon_packet::{parse_ipv4, KeySpec, Packet, TaskFilter};
use flymon_traffic::gen::{TraceConfig, TraceGenerator};
use flymon_traffic::ground_truth::GroundTruth;

/// An interactive session: one switch, named tasks, a loaded trace.
pub struct Session {
    switch: FlyMon,
    tasks: HashMap<String, TaskHandle>,
    trace: Vec<Packet>,
}

/// Outcome of one command.
pub enum Outcome {
    /// Text to print.
    Text(String),
    /// Terminate the session.
    Quit,
}

impl Default for Session {
    fn default() -> Self {
        Self::new(FlyMonConfig {
            groups: 4,
            buckets_per_cmu: 65536,
            ..FlyMonConfig::default()
        })
    }
}

impl Session {
    /// Creates a session over a switch with the given geometry.
    pub fn new(config: FlyMonConfig) -> Self {
        Session {
            switch: FlyMon::new(config),
            tasks: HashMap::new(),
            trace: Vec::new(),
        }
    }

    /// Direct access to the underlying switch (embedding, tests).
    pub fn switch_mut(&mut self) -> &mut FlyMon {
        &mut self.switch
    }

    /// Executes one command line; returns printable output or `Quit`.
    pub fn execute(&mut self, line: &str) -> Outcome {
        match self.dispatch(line) {
            Ok(Some(text)) => Outcome::Text(text),
            Ok(None) => Outcome::Quit,
            Err(msg) => Outcome::Text(format!("error: {msg}")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<Option<String>, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(Some(String::new()));
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => Ok(Some(HELP.to_string())),
            "quit" | "exit" => Ok(None),
            "deploy" => self.cmd_deploy(&args).map(Some),
            "remove" => self.cmd_remove(&args).map(Some),
            "realloc" => self.cmd_realloc(&args).map(Some),
            "list" => Ok(Some(self.cmd_list())),
            "stats" => Ok(Some(self.cmd_stats())),
            "map" => Ok(Some(self.cmd_map())),
            "gen" => self.cmd_gen(&args).map(Some),
            "load" => self.cmd_load(&args).map(Some),
            "run" => self.cmd_run().map(Some),
            "reset" => self.cmd_reset(&args).map(Some),
            "query" => self.cmd_query(&args).map(Some),
            "topk" => self.cmd_topk(&args).map(Some),
            "cardinality" => self.cmd_cardinality(&args).map(Some),
            "entropy" => self.cmd_entropy(&args).map(Some),
            "similarity" => self.cmd_similarity(&args).map(Some),
            "save" => self.cmd_save(&args).map(Some),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }

    fn handle(&self, name: &str) -> Result<TaskHandle, String> {
        self.tasks
            .get(name)
            .copied()
            .ok_or_else(|| format!("no task named '{name}'"))
    }

    fn cmd_deploy(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args
            .first()
            .ok_or("usage: deploy <name> key=... attr=... [mem=N] [alg=...] [d=N] [filter=CIDR] [param=...] [threshold=N] [prob=1/2^k]")?
            .to_string();
        if self.tasks.contains_key(&name) {
            return Err(format!("task '{name}' already exists"));
        }
        let kv = parse_kv(&args[1..])?;
        let key = parse_keyspec(kv.get("key").copied().unwrap_or("5tuple"))?;
        let param = kv.get("param").map(|p| parse_keyspec(p)).transpose()?;
        let attribute = match kv.get("attr").copied().unwrap_or("frequency") {
            "frequency" | "freq" => Attribute::frequency_packets(),
            "bytes" => Attribute::frequency_bytes(),
            "distinct" => Attribute::Distinct(param.unwrap_or(KeySpec::SRC_IP)),
            "existence" | "exists" => Attribute::Existence(param.unwrap_or(KeySpec::FIVE_TUPLE)),
            "maxqueue" => Attribute::Max(MaxParam::QueueLen),
            "maxdelay" => Attribute::Max(MaxParam::QueueDelayUs),
            "maxinterval" => Attribute::Max(MaxParam::PacketIntervalUs),
            other => return Err(format!("unknown attr '{other}'")),
        };
        let d: usize = kv
            .get("d")
            .map(|v| v.parse().map_err(|_| "bad d"))
            .transpose()?
            .unwrap_or(3);
        let algorithm = match kv.get("alg").copied() {
            None => None,
            Some("cms") => Some(Algorithm::Cms { d }),
            Some("sumax") => Some(Algorithm::SuMaxSum { d }),
            Some("mrac") => Some(Algorithm::Mrac),
            Some("tower") => Some(Algorithm::Tower { d }),
            Some("braids") => Some(Algorithm::CounterBraids),
            Some("hll") => Some(Algorithm::Hll),
            Some("lc") => Some(Algorithm::LinearCounting),
            Some("beaucoup") => Some(Algorithm::BeauCoup { d }),
            Some("bloom") => Some(Algorithm::Bloom {
                d,
                bit_optimized: true,
            }),
            Some("sumaxmax") => Some(Algorithm::SuMaxMax { d }),
            Some("oddsketch") => Some(Algorithm::OddSketch),
            Some("maxinterval") => Some(Algorithm::MaxInterval { d }),
            Some(other) => return Err(format!("unknown alg '{other}'")),
        };
        let mut builder = TaskDefinition::builder(&name)
            .key(key)
            .attribute(attribute)
            .memory(
                kv.get("mem")
                    .map(|v| v.parse().map_err(|_| "bad mem"))
                    .transpose()?
                    .unwrap_or(4096),
            );
        if let Some(alg) = algorithm {
            builder = builder.algorithm(alg);
        }
        if let Some(f) = kv.get("filter") {
            builder = builder.filter(parse_filter(f)?);
        }
        if let Some(t) = kv.get("threshold") {
            builder = builder.distinct_threshold(t.parse().map_err(|_| "bad threshold")?);
        }
        if let Some(p) = kv.get("prob") {
            let log2 = p
                .strip_prefix("1/2^")
                .and_then(|v| v.parse().ok())
                .ok_or("prob must look like 1/2^k")?;
            builder = builder.probability_log2(log2);
        }
        let def = builder.build();
        let h = self.switch.deploy(&def).map_err(|e| e.to_string())?;
        let task = self.switch.task(h).map_err(|e| e.to_string())?;
        let out = format!(
            "deployed '{name}' as {} (task #{}, {:.1} ms modeled install, {} buckets/row x {} rows)",
            task.algorithm.name(),
            h.0 .0,
            task.install.latency_ms(),
            task.rows[0].size,
            task.rows.len(),
        );
        self.tasks.insert(name, h);
        Ok(out)
    }

    fn cmd_remove(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: remove <name>")?;
        let h = self.handle(name)?;
        self.switch.remove(h).map_err(|e| e.to_string())?;
        self.tasks.remove(*name);
        Ok(format!("removed '{name}'"))
    }

    fn cmd_realloc(&mut self, args: &[&str]) -> Result<String, String> {
        let (name, mem) = match args {
            [n, m] => (*n, m.parse::<usize>().map_err(|_| "bad bucket count")?),
            _ => return Err("usage: realloc <name> <buckets>".into()),
        };
        let h = self.handle(name)?;
        let new_h = self
            .switch
            .reallocate_memory(h, mem)
            .map_err(|e| e.to_string())?;
        self.tasks.insert(name.to_string(), new_h);
        let size = self.switch.task(new_h).map_err(|e| e.to_string())?.rows[0].size;
        Ok(format!("'{name}' reallocated to {size} buckets/row (fresh instance)"))
    }

    fn cmd_list(&self) -> String {
        if self.tasks.is_empty() {
            return "no tasks deployed".to_string();
        }
        let mut names: Vec<&String> = self.tasks.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            let h = self.tasks[name];
            if let Ok(t) = self.switch.task(h) {
                let _ = writeln!(
                    out,
                    "{name}: {} key={} attr={} filter={} mem={}x{}",
                    t.algorithm.name(),
                    t.def.key.describe(),
                    t.def.attribute.name(),
                    t.def.filter.describe(),
                    t.rows[0].size,
                    t.rows.len(),
                );
            }
        }
        out.trim_end().to_string()
    }

    fn cmd_stats(&self) -> String {
        let mut out = format!(
            "switch: {} groups, {} free CMUs, {} free buckets; {} tasks; \
             {} packets processed; {:.1} ms cumulative install latency\n\
             hardware footprint (Tofino model):",
            self.switch.config().groups,
            self.switch.free_cmus(),
            self.switch.free_buckets(),
            self.tasks.len(),
            self.switch.packets_processed(),
            self.switch.total_install_ms(),
        );
        let model = flymon_rmt::resources::TofinoModel::default();
        for (kind, frac) in self.switch.resource_utilization(&model) {
            let _ = write!(out, " {}={:.1}%", kind.name(), frac * 100.0);
        }
        out
    }

    /// Renders the data-plane occupancy map: per group, the hash-unit
    /// masks and each CMU's partitions.
    fn cmd_map(&self) -> String {
        // Reverse map: (group, cmu) -> [(name, offset, size)].
        type PartitionMap = HashMap<(usize, usize), Vec<(String, usize, usize)>>;
        let mut partitions: PartitionMap = HashMap::new();
        for (name, &h) in &self.tasks {
            if let Ok(t) = self.switch.task(h) {
                for row in &t.rows {
                    partitions
                        .entry((row.group, row.cmu))
                        .or_default()
                        .push((name.clone(), row.offset, row.size));
                }
            }
        }
        let mut out = String::new();
        for (g, group) in self.switch.groups().iter().enumerate() {
            let units: Vec<String> = group
                .units()
                .iter()
                .map(|u| u.mask().map_or("-".to_string(), |m| m.describe()))
                .collect();
            let _ = writeln!(out, "group {g}: hash units [{}]", units.join(", "));
            for c in 0..group.cmus().len() {
                let mut spans = partitions.remove(&(g, c)).unwrap_or_default();
                spans.sort_by_key(|&(_, off, _)| off);
                let rendered: Vec<String> = spans
                    .iter()
                    .map(|(n, off, size)| format!("{n}@{off}+{size}"))
                    .collect();
                let used: usize = spans.iter().map(|&(_, _, s)| s).sum();
                let _ = writeln!(
                    out,
                    "  cmu {c}: [{}] free {}",
                    rendered.join(" "),
                    self.switch.config().buckets_per_cmu - used
                );
            }
        }
        out.trim_end().to_string()
    }

    fn cmd_gen(&mut self, args: &[&str]) -> Result<String, String> {
        let kv = parse_kv(args)?;
        let get = |k: &str, default: u64| -> Result<u64, String> {
            kv.get(k)
                .map(|v| v.parse().map_err(|_| format!("bad {k}")))
                .transpose()
                .map(|o| o.unwrap_or(default))
        };
        let cfg = TraceConfig {
            flows: get("flows", 10_000)? as usize,
            packets: get("packets", 200_000)?,
            zipf_alpha: 1.1,
            duration_ns: get("duration_ms", 1_000)? * 1_000_000,
            seed: get("seed", 1)?,
        };
        self.trace = TraceGenerator::new(cfg.seed).wide_like(&cfg);
        Ok(format!(
            "generated {} packets over {} flows",
            self.trace.len(),
            cfg.flows
        ))
    }

    fn cmd_load(&mut self, args: &[&str]) -> Result<String, String> {
        let path = args.first().ok_or("usage: load <trace.csv>")?;
        let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
        self.trace = flymon_traffic::io::read_trace(std::io::BufReader::new(file))
            .map_err(|e| e.to_string())?;
        Ok(format!("loaded {} packets from {path}", self.trace.len()))
    }

    fn cmd_run(&mut self) -> Result<String, String> {
        if self.trace.is_empty() {
            return Err("no trace loaded (use 'gen' or 'load')".into());
        }
        self.switch.process_trace(&self.trace);
        Ok(format!("processed {} packets", self.trace.len()))
    }

    fn cmd_reset(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: reset <name>")?;
        let h = self.handle(name)?;
        self.switch.reset_task(h).map_err(|e| e.to_string())?;
        Ok(format!("'{name}' buckets cleared"))
    }

    /// Builds a probe packet from `src [dst [sport dport]]` arguments.
    fn probe(args: &[&str]) -> Result<Packet, String> {
        let src = args
            .first()
            .and_then(|s| parse_ipv4(s))
            .ok_or("need a source IP")?;
        let dst = args.get(1).and_then(|s| parse_ipv4(s)).unwrap_or(0);
        let sport = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
        let dport = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);
        Ok(Packet::tcp(src, dst, sport, dport))
    }

    fn cmd_query(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: query <name> <src> [dst sport dport]")?;
        let h = self.handle(name)?;
        let pkt = Self::probe(&args[1..])?;
        let task = self.switch.task(h).map_err(|e| e.to_string())?;
        let answer = match task.def.attribute {
            Attribute::Frequency(_) => format!("frequency ~ {}", self.switch.query_frequency(h, &pkt)),
            Attribute::Distinct(_) => match task.algorithm {
                Algorithm::Hll | Algorithm::LinearCounting => {
                    format!("cardinality ~ {:.0}", self.switch.cardinality(h))
                }
                _ => format!(
                    "distinct ~ {:.0} (reports: {})",
                    self.switch.query_distinct(h, &pkt),
                    self.switch.beaucoup_reports(h, &pkt)
                ),
            },
            Attribute::Existence(_) => format!("exists: {}", self.switch.query_exists(h, &pkt)),
            Attribute::Max(_) => format!("max ~ {}", self.switch.query_max(h, &pkt)),
        };
        Ok(answer)
    }

    fn cmd_topk(&mut self, args: &[&str]) -> Result<String, String> {
        let (name, threshold) = match args {
            [n, t] => (*n, t.parse::<u64>().map_err(|_| "bad threshold")?),
            _ => return Err("usage: topk <name> <threshold>".into()),
        };
        let h = self.handle(name)?;
        let key = self.switch.task(h).map_err(|e| e.to_string())?.def.key;
        if self.trace.is_empty() {
            return Err("no trace loaded to enumerate candidates".into());
        }
        // Candidate keys come from the loaded trace (sketches are not
        // invertible; the paper's control plane does the same).
        let truth = GroundTruth::packet_counts(&self.trace, key);
        let mut reps = HashMap::new();
        for p in &self.trace {
            reps.entry(key.extract(p)).or_insert(*p);
        }
        let mut heavy: Vec<(String, u64)> = truth
            .frequency
            .keys()
            .filter_map(|k| {
                let est = self.switch.query_frequency(h, &reps[k]);
                (est >= threshold).then(|| (key.render(&reps[k]), est))
            })
            .collect();
        heavy.sort_by_key(|&(_, est)| std::cmp::Reverse(est));
        let mut out = format!("{} flows over {threshold}:\n", heavy.len());
        for (flow, est) in heavy.iter().take(20) {
            let _ = writeln!(out, "  {flow}  ~{est}");
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_cardinality(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: cardinality <name>")?;
        let h = self.handle(name)?;
        Ok(format!("cardinality ~ {:.0}", self.switch.cardinality(h)))
    }

    fn cmd_entropy(&mut self, args: &[&str]) -> Result<String, String> {
        let name = args.first().ok_or("usage: entropy <name>")?;
        let h = self.handle(name)?;
        Ok(format!("flow entropy ~ {:.4} nats", self.switch.entropy(h, 10)))
    }

    fn cmd_similarity(&mut self, args: &[&str]) -> Result<String, String> {
        let (a, b) = match args {
            [a, b] => (*a, *b),
            _ => return Err("usage: similarity <task-a> <task-b> (two oddsketch tasks)".into()),
        };
        let (ha, hb) = (self.handle(a)?, self.handle(b)?);
        let j = self
            .switch
            .jaccard_similarity(ha, hb)
            .map_err(|e| e.to_string())?;
        Ok(format!("Jaccard('{a}', '{b}') ~ {j:.3}"))
    }

    fn cmd_save(&mut self, args: &[&str]) -> Result<String, String> {
        let path = args.first().ok_or("usage: save <trace.csv>")?;
        if self.trace.is_empty() {
            return Err("no trace to save".into());
        }
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        flymon_traffic::io::write_trace(std::io::BufWriter::new(file), &self.trace)
            .map_err(|e| e.to_string())?;
        Ok(format!("saved {} packets to {path}", self.trace.len()))
    }
}

fn parse_kv<'a>(args: &[&'a str]) -> Result<HashMap<&'a str, &'a str>, String> {
    let mut out = HashMap::new();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{a}'"))?;
        out.insert(k, v);
    }
    Ok(out)
}

fn parse_keyspec(s: &str) -> Result<KeySpec, String> {
    match s.to_ascii_lowercase().as_str() {
        "none" | "n/a" => Ok(KeySpec::NONE),
        "srcip" => Ok(KeySpec::SRC_IP),
        "dstip" => Ok(KeySpec::DST_IP),
        "ippair" => Ok(KeySpec::IP_PAIR),
        "5tuple" | "flowid" => Ok(KeySpec::FIVE_TUPLE),
        other => {
            // SrcIP/24, DstIP/16 forms.
            if let Some(bits) = other.strip_prefix("srcip/") {
                let b: u8 = bits.parse().map_err(|_| "bad prefix length")?;
                if b > 32 {
                    return Err("prefix length > 32".into());
                }
                return Ok(KeySpec::src_ip_slash(b));
            }
            if let Some(bits) = other.strip_prefix("dstip/") {
                let b: u8 = bits.parse().map_err(|_| "bad prefix length")?;
                if b > 32 {
                    return Err("prefix length > 32".into());
                }
                return Ok(KeySpec::dst_ip_slash(b));
            }
            Err(format!("unknown key '{other}'"))
        }
    }
}

fn parse_filter(s: &str) -> Result<TaskFilter, String> {
    // src CIDR, optionally "->" dst CIDR, e.g. 10.0.0.0/8->192.168.0.0/16
    let parse_cidr = |c: &str| -> Result<(u32, u8), String> {
        let (ip, bits) = c.split_once('/').ok_or("filter needs CIDR notation")?;
        let net = parse_ipv4(ip).ok_or("bad filter address")?;
        let b: u8 = bits.parse().map_err(|_| "bad filter prefix")?;
        if b > 32 {
            return Err("filter prefix > 32".into());
        }
        Ok((net, b))
    };
    if let Some((src, dst)) = s.split_once("->") {
        let (sn, sb) = parse_cidr(src)?;
        let (dn, db) = parse_cidr(dst)?;
        Ok(TaskFilter {
            src: flymon_packet::PrefixFilter::new(sn, sb),
            dst: flymon_packet::PrefixFilter::new(dn, db),
        })
    } else {
        let (net, bits) = parse_cidr(s)?;
        Ok(TaskFilter::src(net, bits))
    }
}

const HELP: &str = "\
commands:
  deploy <name> key=<SrcIP|DstIP|IPpair|5tuple|SrcIP/N|none> attr=<frequency|bytes|distinct|existence|maxqueue|maxdelay|maxinterval>
         [mem=N] [alg=<cms|sumax|mrac|tower|braids|hll|lc|beaucoup|bloom|sumaxmax|oddsketch|maxinterval>]
         [d=N] [param=<key>] [filter=CIDR[->CIDR]] [threshold=N] [prob=1/2^k]
  remove <name>              retire a task (runtime rules only)
  realloc <name> <buckets>   move a task to a new memory partition
  reset <name>               clear a task's buckets (epoch boundary)
  list | stats | map         deployed tasks / resources / occupancy map
  gen flows=N packets=N seed=N [duration_ms=N]
  load <trace.csv>           load a CSV trace (flymon-traffic format)
  run                        feed the loaded trace to the switch
  query <name> <src> [dst sport dport]
  topk <name> <threshold>    heavy flows from the loaded trace's keys
  cardinality <name>         HLL / Linear Counting readout
  entropy <name>             MRAC readout
  similarity <a> <b>         Jaccard of two oddsketch tasks' traffic sets
  save <trace.csv>           persist the loaded/generated trace
  help | quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(o: Outcome) -> String {
        match o {
            Outcome::Text(t) => t,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn deploy_run_query_lifecycle() {
        let mut s = Session::default();
        let out = text(s.execute("deploy hh key=SrcIP attr=frequency mem=8192 alg=cms d=3"));
        assert!(out.contains("deployed 'hh'"), "{out}");
        assert!(out.contains("CMS (d=3)"), "{out}");

        let out = text(s.execute("gen flows=500 packets=20000 seed=3"));
        assert!(out.contains("generated"), "{out}");
        let out = text(s.execute("run"));
        assert!(out.contains("processed"), "{out}");

        // The top flows exist; topk prints something plausible.
        let out = text(s.execute("topk hh 64"));
        assert!(out.contains("flows over 64"), "{out}");

        let out = text(s.execute("list"));
        assert!(out.contains("hh:"), "{out}");
        let out = text(s.execute("remove hh"));
        assert!(out.contains("removed"), "{out}");
        let out = text(s.execute("list"));
        assert!(out.contains("no tasks"), "{out}");
    }

    #[test]
    fn cardinality_and_entropy_paths() {
        let mut s = Session::default();
        text(s.execute("deploy card key=none attr=distinct param=5tuple alg=hll mem=4096"));
        text(s.execute("deploy ent key=5tuple attr=frequency alg=mrac mem=16384"));
        text(s.execute("gen flows=2000 packets=40000 seed=9"));
        text(s.execute("run"));
        let card = text(s.execute("cardinality card"));
        let n: f64 = card
            .trim_start_matches("cardinality ~ ")
            .parse()
            .expect("numeric cardinality");
        assert!((n - 2_000.0).abs() / 2_000.0 < 0.2, "{card}");
        let ent = text(s.execute("entropy ent"));
        assert!(ent.contains("nats"), "{ent}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = Session::default();
        for bad in [
            "bogus",
            "deploy",
            "deploy t key=wat",
            "deploy t alg=wat",
            "query nothere 1.2.3.4",
            "remove nothere",
            "run",
            "realloc nothere 128",
            "deploy t key=SrcIP prob=0.5",
        ] {
            let out = text(s.execute(bad));
            assert!(out.starts_with("error:"), "'{bad}' gave: {out}");
        }
        // Duplicate names rejected.
        text(s.execute("deploy t key=SrcIP attr=frequency"));
        let out = text(s.execute("deploy t key=SrcIP attr=frequency"));
        assert!(out.contains("already exists"), "{out}");
    }

    #[test]
    fn filters_thresholds_and_probability_parse() {
        let mut s = Session::default();
        let out = text(s.execute(
            "deploy ddos key=DstIP attr=distinct param=SrcIP alg=beaucoup d=3 \
             threshold=512 mem=8192 filter=10.0.0.0/8->192.168.0.0/16",
        ));
        assert!(out.contains("BeauCoup"), "{out}");
        let out = text(s.execute(
            "deploy sampled key=SrcIP/24 attr=frequency alg=cms d=1 prob=1/2^2 filter=20.0.0.0/8",
        ));
        assert!(out.contains("deployed 'sampled'"), "{out}");
        let listed = text(s.execute("list"));
        assert!(listed.contains("SrcIP/24"), "{listed}");
        assert!(listed.contains("10.0.0.0/8->192.168.0.0/16"), "{listed}");
    }

    #[test]
    fn load_reads_csv_traces() {
        let mut s = Session::default();
        let dir = std::env::temp_dir().join("flymon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, "1.2.3.4,5.6.7.8,1,2,6,64,100\n").unwrap();
        let out = text(s.execute(&format!("load {}", path.display())));
        assert!(out.contains("loaded 1 packets"), "{out}");
        text(s.execute("deploy t key=SrcIP attr=frequency alg=cms d=1"));
        let out = text(s.execute("run"));
        assert!(out.contains("processed 1"), "{out}");
        let out = text(s.execute("query t 1.2.3.4"));
        assert!(out.contains("frequency ~ 1"), "{out}");
    }

    #[test]
    fn similarity_between_oddsketch_tasks() {
        let mut s = Session::default();
        text(s.execute(
            "deploy a key=none attr=distinct param=SrcIP alg=oddsketch mem=4096 filter=10.0.0.0/8",
        ));
        text(s.execute(
            "deploy b key=none attr=distinct param=SrcIP alg=oddsketch mem=4096 filter=20.0.0.0/8",
        ));
        // Identical source sets on both links.
        for i in 0..500u32 {
            s.switch_mut().process(&Packet::tcp(i, 0x0a000001, 1, 1));
            s.switch_mut().process(&Packet::tcp(i, 0x14000001, 1, 1));
        }
        let out = text(s.execute("similarity a b"));
        assert!(out.contains("Jaccard"), "{out}");
        let j: f64 = out
            .rsplit('~')
            .next()
            .unwrap()
            .trim()
            .parse()
            .expect("numeric jaccard");
        assert!(j > 0.85, "identical sets scored {j}");
        // Mismatched usage errors cleanly.
        text(s.execute("deploy freq key=SrcIP attr=frequency"));
        let out = text(s.execute("similarity a freq"));
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn save_round_trips_through_load() {
        let mut s = Session::default();
        text(s.execute("gen flows=50 packets=500 seed=2"));
        let dir = std::env::temp_dir().join("flymon_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved.csv");
        let out = text(s.execute(&format!("save {}", path.display())));
        assert!(out.contains("saved"), "{out}");
        let before = s.trace.len();
        let out = text(s.execute(&format!("load {}", path.display())));
        assert!(out.contains(&format!("loaded {before} packets")), "{out}");
    }

    #[test]
    fn quit_quits() {
        let mut s = Session::default();
        assert!(matches!(s.execute("quit"), Outcome::Quit));
        assert!(matches!(s.execute("exit"), Outcome::Quit));
    }

    #[test]
    fn map_shows_partitions_and_masks() {
        let mut s = Session::default();
        text(s.execute("deploy a key=SrcIP attr=frequency alg=cms d=1 mem=8192 filter=10.0.0.0/8"));
        text(s.execute("deploy b key=SrcIP attr=frequency alg=cms d=1 mem=8192 filter=20.0.0.0/8"));
        let map = text(s.execute("map"));
        assert!(map.contains("group 0"), "{map}");
        assert!(map.contains("SrcIP"), "{map}");
        assert!(map.contains("a@"), "{map}");
        assert!(map.contains("b@"), "{map}");
        // Both partitions on the same CMU, disjoint offsets.
        assert!(map.contains("a@0+8192") || map.contains("a@8192+8192"), "{map}");
    }

    #[test]
    fn stats_reflect_activity() {
        let mut s = Session::default();
        let before = text(s.execute("stats"));
        assert!(before.contains("0 tasks"), "{before}");
        text(s.execute("deploy t key=SrcIP attr=frequency"));
        let after = text(s.execute("stats"));
        assert!(after.contains("1 tasks"), "{after}");
    }
}
