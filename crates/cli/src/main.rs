//! The FlyMon REPL: `cargo run --release -p flymon-cli`.

use std::io::{BufRead, Write};

use flymon_cli::{Outcome, Session};

fn main() {
    println!("FlyMon interactive control plane — 'help' for commands");
    let mut session = Session::default();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("flymon> ");
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match session.execute(&line) {
                Outcome::Text(t) if t.is_empty() => {}
                Outcome::Text(t) => println!("{t}"),
                Outcome::Quit => break,
            },
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
    }
}
