//! Property tests for the sketch invariants the paper's algorithms rely
//! on.

use flymon_sketches::{BloomFilter, CountMinSketch, SuMax, SuMaxMode, TowerSketch};
use proptest::prelude::*;
use std::collections::HashMap;

fn count_truth(keys: &[u16]) -> HashMap<u16, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

proptest! {
    /// CMS one-sided error: point queries never underestimate, for any
    /// workload and any geometry.
    #[test]
    fn cms_never_underestimates(
        keys in prop::collection::vec(any::<u16>(), 1..500),
        rows in 1usize..5,
        width in 4usize..64,
    ) {
        let mut cms = CountMinSketch::new(rows, width);
        for &k in &keys {
            cms.update(&k.to_be_bytes(), 1);
        }
        for (k, &c) in count_truth(&keys).iter() {
            prop_assert!(cms.query(&k.to_be_bytes()) >= c);
        }
    }

    /// Bloom filters have no false negatives, ever.
    #[test]
    fn bloom_no_false_negatives(
        keys in prop::collection::vec(any::<u32>(), 1..300),
        m_sel in 6u32..14,
        k in 1usize..5,
    ) {
        let mut bf = BloomFilter::new(1 << m_sel, k);
        for key in &keys {
            bf.insert(&key.to_be_bytes());
        }
        for key in &keys {
            prop_assert!(bf.contains(&key.to_be_bytes()));
        }
    }

    /// SuMax(Max) never under-reports a key's true maximum.
    #[test]
    fn sumax_max_upper_bounds(
        pairs in prop::collection::vec((any::<u8>(), any::<u16>()), 1..400),
    ) {
        let mut s = SuMax::new(SuMaxMode::Max, 3, 32);
        let mut truth: HashMap<u8, u64> = HashMap::new();
        for &(k, v) in &pairs {
            s.update(&[k], u64::from(v));
            truth.entry(k).and_modify(|m| *m = (*m).max(u64::from(v))).or_insert(u64::from(v));
        }
        for (k, &m) in &truth {
            prop_assert!(s.query(&[*k]) >= m);
        }
    }

    /// SuMax(Sum) keeps the one-sided error guarantee: every arrival of
    /// a key raises the key's *minimum* counter by the increment, so the
    /// min-query never underestimates — conservative update only shaves
    /// overestimation.
    #[test]
    fn sumax_sum_never_underestimates(
        keys in prop::collection::vec(any::<u8>(), 1..400),
        width in 4usize..32,
    ) {
        let mut su = SuMax::new(SuMaxMode::Sum, 3, width);
        for &k in &keys {
            su.update(&[k], 1);
        }
        for (k, &c) in count_truth(&keys.iter().map(|&k| u16::from(k)).collect::<Vec<_>>()).iter() {
            let kb = [(*k & 0xff) as u8];
            prop_assert!(su.query(&kb) >= c, "underestimated key {k}: {} < {c}", su.query(&kb));
        }
    }

    /// TowerSketch never underestimates below its top-level cap.
    #[test]
    fn tower_lower_bounded(keys in prop::collection::vec(any::<u8>(), 1..400)) {
        let mut t = TowerSketch::new(1 << 10);
        for &k in &keys {
            t.update(&[k]);
        }
        for (k, &c) in count_truth(&keys.iter().map(|&k| u16::from(k)).collect::<Vec<_>>()).iter() {
            let kb = [(*k & 0xff) as u8];
            prop_assert!(t.query(&kb) >= c.min(65_535));
        }
    }

    /// HyperLogLog is insensitive to duplicates: inserting the same keys
    /// again never changes the estimate.
    #[test]
    fn hll_duplicate_insensitive(keys in prop::collection::vec(any::<u32>(), 1..300)) {
        use flymon_sketches::HyperLogLog;
        let mut h = HyperLogLog::new(8);
        for k in &keys {
            h.insert(&k.to_be_bytes());
        }
        let first = h.estimate();
        for k in &keys {
            h.insert(&k.to_be_bytes());
        }
        prop_assert_eq!(h.estimate(), first);
    }
}
