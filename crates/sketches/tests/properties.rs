//! Property tests for the sketch invariants the paper's algorithms rely
//! on.
//!
//! Randomized with the in-repo [`SplitMix64`] generator (fixed seeds ⇒
//! identical case set every run) — no external property-testing framework,
//! so the workspace builds fully offline.

use flymon_packet::SplitMix64;
use flymon_sketches::{BloomFilter, CountMinSketch, SuMax, SuMaxMode, TowerSketch};
use std::collections::HashMap;

fn count_truth(keys: &[u16]) -> HashMap<u16, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

/// CMS one-sided error: point queries never underestimate, for any
/// workload and any geometry.
#[test]
fn cms_never_underestimates() {
    let mut r = SplitMix64::new(0xC1);
    for _ in 0..48 {
        let keys: Vec<u16> = (0..r.range_usize(1, 500)).map(|_| r.next_u16()).collect();
        let rows = r.range_usize(1, 5);
        let width = r.range_usize(4, 64);
        let mut cms = CountMinSketch::new(rows, width);
        for &k in &keys {
            cms.update(&k.to_be_bytes(), 1);
        }
        for (k, &c) in count_truth(&keys).iter() {
            assert!(cms.query(&k.to_be_bytes()) >= c);
        }
    }
}

/// Bloom filters have no false negatives, ever.
#[test]
fn bloom_no_false_negatives() {
    let mut r = SplitMix64::new(0xC2);
    for _ in 0..48 {
        let keys: Vec<u32> = (0..r.range_usize(1, 300)).map(|_| r.next_u32()).collect();
        let m_sel = r.range_u64(6, 14) as u32;
        let k = r.range_usize(1, 5);
        let mut bf = BloomFilter::new(1 << m_sel, k);
        for key in &keys {
            bf.insert(&key.to_be_bytes());
        }
        for key in &keys {
            assert!(bf.contains(&key.to_be_bytes()));
        }
    }
}

/// SuMax(Max) never under-reports a key's true maximum.
#[test]
fn sumax_max_upper_bounds() {
    let mut r = SplitMix64::new(0xC3);
    for _ in 0..48 {
        let pairs: Vec<(u8, u16)> = (0..r.range_usize(1, 400))
            .map(|_| (r.next_u64() as u8, r.next_u16()))
            .collect();
        let mut s = SuMax::new(SuMaxMode::Max, 3, 32);
        let mut truth: HashMap<u8, u64> = HashMap::new();
        for &(k, v) in &pairs {
            s.update(&[k], u64::from(v));
            truth
                .entry(k)
                .and_modify(|m| *m = (*m).max(u64::from(v)))
                .or_insert(u64::from(v));
        }
        for (k, &m) in &truth {
            assert!(s.query(&[*k]) >= m);
        }
    }
}

/// SuMax(Sum) keeps the one-sided error guarantee: every arrival of a
/// key raises the key's *minimum* counter by the increment, so the
/// min-query never underestimates — conservative update only shaves
/// overestimation.
#[test]
fn sumax_sum_never_underestimates() {
    let mut r = SplitMix64::new(0xC4);
    for _ in 0..48 {
        let keys: Vec<u8> = (0..r.range_usize(1, 400))
            .map(|_| r.next_u64() as u8)
            .collect();
        let width = r.range_usize(4, 32);
        let mut su = SuMax::new(SuMaxMode::Sum, 3, width);
        for &k in &keys {
            su.update(&[k], 1);
        }
        let wide: Vec<u16> = keys.iter().map(|&k| u16::from(k)).collect();
        for (k, &c) in count_truth(&wide).iter() {
            let kb = [(*k & 0xff) as u8];
            assert!(
                su.query(&kb) >= c,
                "underestimated key {k}: {} < {c}",
                su.query(&kb)
            );
        }
    }
}

/// TowerSketch never underestimates below its top-level cap.
#[test]
fn tower_lower_bounded() {
    let mut r = SplitMix64::new(0xC5);
    for _ in 0..48 {
        let keys: Vec<u8> = (0..r.range_usize(1, 400))
            .map(|_| r.next_u64() as u8)
            .collect();
        let mut t = TowerSketch::new(1 << 10);
        for &k in &keys {
            t.update(&[k]);
        }
        let wide: Vec<u16> = keys.iter().map(|&k| u16::from(k)).collect();
        for (k, &c) in count_truth(&wide).iter() {
            let kb = [(*k & 0xff) as u8];
            assert!(t.query(&kb) >= c.min(65_535));
        }
    }
}

/// HyperLogLog is insensitive to duplicates: inserting the same keys
/// again never changes the estimate.
#[test]
fn hll_duplicate_insensitive() {
    use flymon_sketches::HyperLogLog;
    let mut r = SplitMix64::new(0xC6);
    for _ in 0..48 {
        let keys: Vec<u32> = (0..r.range_usize(1, 300)).map(|_| r.next_u32()).collect();
        let mut h = HyperLogLog::new(8);
        for k in &keys {
            h.insert(&k.to_be_bytes());
        }
        let first = h.estimate();
        for k in &keys {
            h.insert(&k.to_be_bytes());
        }
        assert_eq!(h.estimate(), first);
    }
}
