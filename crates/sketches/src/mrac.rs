//! MRAC (Kumar, Sung, Xu, Wang, SIGMETRICS 2004): flow-size distribution
//! estimation from a plain counter array, via expectation maximization.
//!
//! The data plane is a single hashed counter array — identical to a 1-row
//! CMS (which is why FlyMon hosts MRAC and CMS with the same CMU rules,
//! Appendix D). All the intelligence is the control-plane EM that
//! de-convolves hash collisions out of the observed counter histogram.

use flymon_rmt::hash::murmur3_32;

/// Cap on the counter values handled by the EM convolution; larger
/// counters are almost surely single heavy flows (collisions of two heavy
/// flows are vanishingly rare) and are passed through exactly.
const EM_VALUE_CAP: usize = 1024;

/// An MRAC sketch: one hashed counter array + EM estimator.
#[derive(Debug, Clone)]
pub struct Mrac {
    counters: Vec<u32>,
}

impl Mrac {
    /// Creates an array of `m` counters.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "MRAC needs at least one counter");
        Mrac {
            counters: vec![0; m],
        }
    }

    /// Creates an array within `bytes` (32-bit counters).
    pub fn with_memory(bytes: usize) -> Self {
        Self::new((bytes / 4).max(1))
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * 4
    }

    /// Counts one packet of `key`.
    pub fn update(&mut self, key: &[u8]) {
        let i = murmur3_32(0x313a_c000, key) as usize % self.counters.len();
        self.counters[i] = self.counters[i].saturating_add(1);
    }

    /// Total packets observed (the column sums are exact).
    pub fn total_packets(&self) -> u64 {
        self.counters.iter().map(|&c| u64::from(c)).sum()
    }

    /// Linear-counting estimate of the number of distinct flows.
    pub fn flow_count_estimate(&self) -> f64 {
        let m = self.counters.len() as f64;
        let zeros = self.counters.iter().filter(|&&c| c == 0).count() as f64;
        if zeros == 0.0 {
            m * m.ln()
        } else {
            m * (m / zeros).ln()
        }
    }

    /// EM estimate of the flow-size distribution: `dist[s]` = estimated
    /// number of flows with exactly `s` packets. Index 0 is unused.
    pub fn estimate_distribution(&self, iterations: usize) -> Vec<f64> {
        estimate_distribution_from_counters(&self.counters, iterations)
    }

    /// Entropy estimate from the EM distribution:
    /// `H = ln T − (1/T)·Σ_s n_s·s·ln s` with `T` the exact packet total.
    pub fn entropy_estimate(&self, iterations: usize) -> f64 {
        entropy_from_counters(&self.counters, iterations)
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Read-only counter view (differential tests against the CMU host).
    pub fn counters(&self) -> &[u32] {
        &self.counters
    }
}

/// Linear-counting flow estimate from a raw counter array.
pub fn flow_count_from_counters(counters: &[u32]) -> f64 {
    let m = counters.len() as f64;
    let zeros = counters.iter().filter(|&&c| c == 0).count() as f64;
    if zeros == 0.0 {
        m * m.ln()
    } else {
        m * (m / zeros).ln()
    }
}

/// The MRAC EM estimator over a raw counter array — shared between the
/// software baseline and FlyMon's control-plane analysis, which reads the
/// same shape of counters out of a CMU register (§4, Appendix D).
///
/// The E-step models each occupied counter as holding 1 or 2 flows
/// (Poisson-weighted); 3-way collisions are negligible at the load
/// factors MRAC is provisioned for, and counters above the EM value cap
/// are taken as single heavy flows verbatim.
pub fn estimate_distribution_from_counters(counters: &[u32], iterations: usize) -> Vec<f64> {
    let m = counters.len() as f64;
    let n_hat = flow_count_from_counters(counters);
    let lambda = (n_hat / m).min(4.0);
    // Poisson weights for 1 vs 2 flows in an occupied counter.
    let p1_raw = lambda * (-lambda).exp();
    let p2_raw = lambda * lambda / 2.0 * (-lambda).exp();
    let (p1, p2) = if p1_raw + p2_raw == 0.0 {
        (1.0, 0.0)
    } else {
        (p1_raw / (p1_raw + p2_raw), p2_raw / (p1_raw + p2_raw))
    };

    // Histogram of counter values, split at the EM cap.
    let mut hist = vec![0u64; EM_VALUE_CAP + 1];
    let mut max_value = 0usize;
    let mut passthrough: Vec<u32> = Vec::new();
    for &c in counters {
        let v = c as usize;
        if v == 0 {
            continue;
        }
        if v <= EM_VALUE_CAP {
            hist[v] += 1;
            max_value = max_value.max(v);
        } else {
            passthrough.push(c);
            max_value = max_value.max(v);
        }
    }

    // φ over sizes 1..=EM_VALUE_CAP, initialized from the histogram.
    let cap = EM_VALUE_CAP.min(max_value.max(1));
    let mut phi = vec![0.0f64; cap + 1];
    let total_occ: u64 = hist.iter().sum();
    if total_occ > 0 {
        for v in 1..=cap {
            phi[v] = hist[v] as f64 / total_occ as f64;
        }
    }

    let mut counts = vec![0.0f64; cap + 1];
    for _ in 0..iterations.max(1) {
        counts.fill(0.0);
        for v in 1..=cap {
            if hist[v] == 0 {
                continue;
            }
            let hv = hist[v] as f64;
            let w1 = p1 * phi[v];
            // conv[v] = Σ_s φ(s)·φ(v-s) over ordered compositions.
            let mut conv = 0.0;
            if v >= 2 {
                for s in 1..v {
                    conv += phi[s] * phi[v - s];
                }
            }
            let w2 = p2 * conv;
            if w1 + w2 <= 0.0 {
                counts[v] += hv; // no explanation: keep verbatim
                continue;
            }
            let single = hv * w1 / (w1 + w2);
            counts[v] += single;
            let pairs = hv * w2 / (w1 + w2);
            if conv > 0.0 {
                for s in 1..v {
                    // Each pair-counter holds two flows; ordered
                    // composition symmetry distributes both.
                    counts[s] += 2.0 * pairs * phi[s] * phi[v - s] / conv;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for v in 1..=cap {
                phi[v] = counts[v] / total;
            }
        }
    }

    // Assemble the final distribution including heavy passthroughs.
    let mut dist = vec![0.0f64; max_value + 1];
    dist[..=cap].copy_from_slice(&counts[..=cap]);
    for c in passthrough {
        dist[c as usize] += 1.0;
    }
    dist
}

/// Entropy estimate from a raw counter array:
/// `H = ln T − (1/T)·Σ_s n_s·s·ln s` with `T` the exact packet total
/// (the column sum of the counters, which is exact).
pub fn entropy_from_counters(counters: &[u32], iterations: usize) -> f64 {
    let t: f64 = counters.iter().map(|&c| f64::from(c)).sum();
    if t == 0.0 {
        return 0.0;
    }
    let dist = estimate_distribution_from_counters(counters, iterations);
    let weighted: f64 = dist
        .iter()
        .enumerate()
        .skip(1)
        .map(|(s, &n)| n * s as f64 * (s as f64).ln())
        .sum();
    (t.ln() - weighted / t).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_flows(mrac: &mut Mrac, flows: &[(u32, u32)]) {
        for &(id, size) in flows {
            for _ in 0..size {
                mrac.update(&id.to_be_bytes());
            }
        }
    }

    #[test]
    fn totals_are_exact() {
        let mut m = Mrac::new(1024);
        feed_flows(&mut m, &[(1, 10), (2, 20), (3, 5)]);
        assert_eq!(m.total_packets(), 35);
    }

    #[test]
    fn flow_count_estimate_tracks_truth() {
        let mut m = Mrac::new(1 << 14);
        let flows: Vec<(u32, u32)> = (0..3_000).map(|i| (i, 1)).collect();
        feed_flows(&mut m, &flows);
        let est = m.flow_count_estimate();
        assert!((est - 3_000.0).abs() / 3_000.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn distribution_recovers_two_sizes() {
        // 1000 flows of size 1, 100 flows of size 10, enough memory that
        // collisions are the exception EM must explain away.
        let mut m = Mrac::new(1 << 13);
        let mut flows = Vec::new();
        for i in 0..1_000 {
            flows.push((i, 1u32));
        }
        for i in 1_000..1_100 {
            flows.push((i, 10u32));
        }
        feed_flows(&mut m, &flows);
        let dist = m.estimate_distribution(10);
        assert!(
            (dist[1] - 1_000.0).abs() < 120.0,
            "size-1 estimate {}",
            dist[1]
        );
        assert!(
            (dist[10] - 100.0).abs() < 25.0,
            "size-10 estimate {}",
            dist[10]
        );
    }

    #[test]
    fn entropy_estimate_close_to_truth() {
        use flymon_traffic::ground_truth::entropy_of_counts;
        let mut m = Mrac::new(1 << 14);
        let flows: Vec<(u32, u32)> = (0..2_000).map(|i| (i, i % 20 + 1)).collect();
        feed_flows(&mut m, &flows);
        let truth = entropy_of_counts(flows.iter().map(|&(_, s)| u64::from(s)));
        let est = m.entropy_estimate(10);
        let re = (truth - est).abs() / truth;
        assert!(
            re < 0.1,
            "entropy RE {re:.4} (est {est:.3}, truth {truth:.3})"
        );
    }

    #[test]
    fn heavy_flows_pass_through_exactly() {
        let mut m = Mrac::new(1 << 12);
        feed_flows(&mut m, &[(1, 5_000)]);
        let dist = m.estimate_distribution(5);
        assert_eq!(dist[5_000], 1.0);
    }

    #[test]
    fn empty_sketch_is_clean() {
        let m = Mrac::new(64);
        assert_eq!(m.total_packets(), 0);
        assert_eq!(m.entropy_estimate(3), 0.0);
    }
}
