//! SuMax (Zhao et al., LightGuardian, NSDI 2021).
//!
//! A `d × w` sketch with two modes:
//! - **Sum**: an *approximate conservative update* — only counters equal
//!   to the current row-wise minimum are incremented, so overestimation
//!   error grows much slower than CMS under the same memory.
//! - **Max**: each row tracks a maximum; queries return the row-wise
//!   minimum of the maxima, shaving hash-collision overestimates.

use flymon_rmt::hash::murmur3_32;

/// Which aggregate a [`SuMax`] instance maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuMaxMode {
    /// Conservative-update sum (frequency attribute).
    Sum,
    /// Per-row maxima (max attribute).
    Max,
}

/// A `d × w` SuMax sketch.
#[derive(Debug, Clone)]
pub struct SuMax {
    mode: SuMaxMode,
    rows: usize,
    width: usize,
    counters: Vec<u64>,
}

impl SuMax {
    /// Creates a sketch with `rows` rows of `width` counters.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(mode: SuMaxMode, rows: usize, width: usize) -> Self {
        assert!(rows > 0 && width > 0, "SuMax dimensions must be positive");
        SuMax {
            mode,
            rows,
            width,
            counters: vec![0; rows * width],
        }
    }

    /// Creates a sketch of `rows` rows within `bytes` (32-bit counters).
    ///
    /// # Panics
    /// Panics if `rows` is zero (the width division and the row-wise
    /// minimum are both undefined without at least one row).
    pub fn with_memory(mode: SuMaxMode, rows: usize, bytes: usize) -> Self {
        assert!(rows > 0, "SuMax needs at least one row");
        Self::new(mode, rows, (bytes / 4 / rows).max(1))
    }

    /// Memory footprint in bytes (32-bit counters).
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.width * 4
    }

    fn index(&self, row: usize, key: &[u8]) -> usize {
        row * self.width + murmur3_32(0x50a0_0000 ^ row as u32, key) as usize % self.width
    }

    /// Rows a single stack buffer can index in [`SuMax::update`];
    /// beyond it the update falls back to recomputing the row hashes
    /// (still allocation-free). Every deployment in the repo uses d <= 4.
    const STACK_ROWS: usize = 16;

    /// Feeds one observation of `value` for `key`.
    pub fn update(&mut self, key: &[u8], value: u64) {
        match self.mode {
            SuMaxMode::Sum => {
                // Approximate conservative update on the hot path: no
                // per-packet heap allocation. `rows >= 1` is validated at
                // construction, so the running minimum below is over a
                // nonempty set.
                if self.rows <= Self::STACK_ROWS {
                    let mut idx = [0usize; Self::STACK_ROWS];
                    let mut min = u64::MAX;
                    for (r, slot) in idx.iter_mut().enumerate().take(self.rows) {
                        *slot = self.index(r, key);
                        min = min.min(self.counters[*slot]);
                    }
                    for &i in &idx[..self.rows] {
                        if self.counters[i] == min {
                            self.counters[i] += value;
                        }
                    }
                } else {
                    let mut min = u64::MAX;
                    for r in 0..self.rows {
                        min = min.min(self.counters[self.index(r, key)]);
                    }
                    for r in 0..self.rows {
                        let i = self.index(r, key);
                        if self.counters[i] == min {
                            self.counters[i] += value;
                        }
                    }
                }
            }
            SuMaxMode::Max => {
                for row in 0..self.rows {
                    let i = self.index(row, key);
                    if self.counters[i] < value {
                        self.counters[i] = value;
                    }
                }
            }
        }
    }

    /// Point query: row-wise minimum (for both modes).
    pub fn query(&self, key: &[u8]) -> u64 {
        (0..self.rows)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// The configured mode.
    pub fn mode(&self) -> SuMaxMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_never_underestimates() {
        let mut s = SuMax::new(SuMaxMode::Sum, 3, 128);
        for i in 0..1_000u32 {
            s.update(&i.to_be_bytes(), 1);
        }
        for i in 0..1_000u32 {
            assert!(s.query(&i.to_be_bytes()) >= 1);
        }
    }

    #[test]
    fn sum_beats_cms_overestimate() {
        use crate::cms::CountMinSketch;
        let mut sumax = SuMax::new(SuMaxMode::Sum, 3, 128);
        let mut cms = CountMinSketch::new(3, 128);
        for i in 0..5_000u32 {
            sumax.update(&i.to_be_bytes(), 1);
            cms.update(&i.to_be_bytes(), 1);
        }
        let err = |q: &dyn Fn(&[u8]) -> u64| -> u64 {
            (0..5_000u32).map(|i| q(&i.to_be_bytes()) - 1).sum()
        };
        let su_err = err(&|k| sumax.query(k));
        let cms_err = err(&|k| cms.query(k));
        assert!(
            su_err < cms_err,
            "conservative update should help: sumax {su_err}, cms {cms_err}"
        );
    }

    #[test]
    fn sum_exact_when_sparse() {
        let mut s = SuMax::new(SuMaxMode::Sum, 3, 4096);
        for _ in 0..7 {
            s.update(b"k", 2);
        }
        assert_eq!(s.query(b"k"), 14);
    }

    #[test]
    fn max_tracks_maximum() {
        let mut s = SuMax::new(SuMaxMode::Max, 3, 1024);
        s.update(b"q", 5);
        s.update(b"q", 17);
        s.update(b"q", 3);
        assert_eq!(s.query(b"q"), 17);
        assert_eq!(s.query(b"other"), 0);
    }

    #[test]
    fn max_never_underestimates_true_max() {
        let mut s = SuMax::new(SuMaxMode::Max, 2, 64);
        for i in 0..500u32 {
            s.update(&i.to_be_bytes(), u64::from(i % 50));
        }
        for i in 0..500u32 {
            assert!(s.query(&i.to_be_bytes()) >= u64::from(i % 50));
        }
    }

    #[test]
    fn with_memory_budget() {
        let s = SuMax::with_memory(SuMaxMode::Sum, 3, 120_000);
        assert!(s.memory_bytes() <= 120_000);
        assert_eq!(s.width, 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn with_memory_rejects_zero_rows() {
        let _ = SuMax::with_memory(SuMaxMode::Sum, 0, 4096);
    }

    #[test]
    fn sum_update_identical_across_stack_and_fallback_paths() {
        // rows > STACK_ROWS exercises the hash-recompute fallback; both
        // paths must implement the same conservative update.
        let mut wide = SuMax::new(SuMaxMode::Sum, SuMax::STACK_ROWS + 4, 64);
        for i in 0..2_000u32 {
            wide.update(&i.to_be_bytes(), 1);
        }
        for i in 0..2_000u32 {
            assert!(wide.query(&i.to_be_bytes()) >= 1);
        }
        // Sparse exactness holds on the fallback path too.
        let mut sparse = SuMax::new(SuMaxMode::Sum, SuMax::STACK_ROWS + 1, 4096);
        for _ in 0..9 {
            sparse.update(b"k", 3);
        }
        assert_eq!(sparse.query(b"k"), 27);
    }
}
