//! SuMax (Zhao et al., LightGuardian, NSDI 2021).
//!
//! A `d × w` sketch with two modes:
//! - **Sum**: an *approximate conservative update* — only counters equal
//!   to the current row-wise minimum are incremented, so overestimation
//!   error grows much slower than CMS under the same memory.
//! - **Max**: each row tracks a maximum; queries return the row-wise
//!   minimum of the maxima, shaving hash-collision overestimates.

use flymon_rmt::hash::murmur3_32;

/// Which aggregate a [`SuMax`] instance maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuMaxMode {
    /// Conservative-update sum (frequency attribute).
    Sum,
    /// Per-row maxima (max attribute).
    Max,
}

/// A `d × w` SuMax sketch.
#[derive(Debug, Clone)]
pub struct SuMax {
    mode: SuMaxMode,
    rows: usize,
    width: usize,
    counters: Vec<u64>,
}

impl SuMax {
    /// Creates a sketch with `rows` rows of `width` counters.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(mode: SuMaxMode, rows: usize, width: usize) -> Self {
        assert!(rows > 0 && width > 0, "SuMax dimensions must be positive");
        SuMax {
            mode,
            rows,
            width,
            counters: vec![0; rows * width],
        }
    }

    /// Creates a sketch of `rows` rows within `bytes` (32-bit counters).
    pub fn with_memory(mode: SuMaxMode, rows: usize, bytes: usize) -> Self {
        Self::new(mode, rows, (bytes / 4 / rows).max(1))
    }

    /// Memory footprint in bytes (32-bit counters).
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.width * 4
    }

    fn index(&self, row: usize, key: &[u8]) -> usize {
        row * self.width + murmur3_32(0x50a0_0000 ^ row as u32, key) as usize % self.width
    }

    /// Feeds one observation of `value` for `key`.
    pub fn update(&mut self, key: &[u8], value: u64) {
        match self.mode {
            SuMaxMode::Sum => {
                let indices: Vec<usize> = (0..self.rows).map(|r| self.index(r, key)).collect();
                let min = indices.iter().map(|&i| self.counters[i]).min().unwrap();
                for &i in &indices {
                    if self.counters[i] == min {
                        self.counters[i] += value;
                    }
                }
            }
            SuMaxMode::Max => {
                for row in 0..self.rows {
                    let i = self.index(row, key);
                    if self.counters[i] < value {
                        self.counters[i] = value;
                    }
                }
            }
        }
    }

    /// Point query: row-wise minimum (for both modes).
    pub fn query(&self, key: &[u8]) -> u64 {
        (0..self.rows)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// The configured mode.
    pub fn mode(&self) -> SuMaxMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_never_underestimates() {
        let mut s = SuMax::new(SuMaxMode::Sum, 3, 128);
        for i in 0..1_000u32 {
            s.update(&i.to_be_bytes(), 1);
        }
        for i in 0..1_000u32 {
            assert!(s.query(&i.to_be_bytes()) >= 1);
        }
    }

    #[test]
    fn sum_beats_cms_overestimate() {
        use crate::cms::CountMinSketch;
        let mut sumax = SuMax::new(SuMaxMode::Sum, 3, 128);
        let mut cms = CountMinSketch::new(3, 128);
        for i in 0..5_000u32 {
            sumax.update(&i.to_be_bytes(), 1);
            cms.update(&i.to_be_bytes(), 1);
        }
        let err = |q: &dyn Fn(&[u8]) -> u64| -> u64 {
            (0..5_000u32).map(|i| q(&i.to_be_bytes()) - 1).sum()
        };
        let su_err = err(&|k| sumax.query(k));
        let cms_err = err(&|k| cms.query(k));
        assert!(
            su_err < cms_err,
            "conservative update should help: sumax {su_err}, cms {cms_err}"
        );
    }

    #[test]
    fn sum_exact_when_sparse() {
        let mut s = SuMax::new(SuMaxMode::Sum, 3, 4096);
        for _ in 0..7 {
            s.update(b"k", 2);
        }
        assert_eq!(s.query(b"k"), 14);
    }

    #[test]
    fn max_tracks_maximum() {
        let mut s = SuMax::new(SuMaxMode::Max, 3, 1024);
        s.update(b"q", 5);
        s.update(b"q", 17);
        s.update(b"q", 3);
        assert_eq!(s.query(b"q"), 17);
        assert_eq!(s.query(b"other"), 0);
    }

    #[test]
    fn max_never_underestimates_true_max() {
        let mut s = SuMax::new(SuMaxMode::Max, 2, 64);
        for i in 0..500u32 {
            s.update(&i.to_be_bytes(), u64::from(i % 50));
        }
        for i in 0..500u32 {
            assert!(s.query(&i.to_be_bytes()) >= u64::from(i % 50));
        }
    }

    #[test]
    fn with_memory_budget() {
        let s = SuMax::with_memory(SuMaxMode::Sum, 3, 120_000);
        assert!(s.memory_bytes() <= 120_000);
        assert_eq!(s.width, 10_000);
    }
}
