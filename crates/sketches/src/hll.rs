//! HyperLogLog (Flajolet, Fusy, Gandouet, Meunier, 2007).

use flymon_rmt::hash::murmur3_32;

/// HyperLogLog cardinality estimator with `2^b` registers.
///
/// Each inserted key is hashed; the top `b` bits select a register
/// (stochastic averaging) and the register tracks the maximum
/// `ρ` = position of the leftmost 1-bit of the remaining bits. The
/// estimate is the bias-corrected harmonic mean, with the standard small-
/// range (linear counting) correction.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    b: u32,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an estimator with `2^b` registers (`4 <= b <= 16`).
    ///
    /// # Panics
    /// Panics if `b` is outside `4..=16`.
    pub fn new(b: u32) -> Self {
        assert!((4..=16).contains(&b), "b must be in 4..=16, got {b}");
        HyperLogLog {
            b,
            registers: vec![0; 1 << b],
        }
    }

    /// Creates an estimator using roughly `bytes` of register memory
    /// (one byte per register in this software model).
    pub fn with_memory(bytes: usize) -> Self {
        let b = (bytes.max(16).ilog2()).clamp(4, 16);
        Self::new(b)
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let h = murmur3_32(0x4177_0000, key);
        let idx = (h >> (32 - self.b)) as usize;
        let rest = h << self.b;
        // ρ = leading zeros of the remaining (32-b) bits, plus one.
        let rho = (rest.leading_zeros().min(32 - self.b) + 1) as u8;
        if self.registers[idx] < rho {
            self.registers[idx] = rho;
        }
    }

    /// Merges register `idx` with an externally tracked maximum — used by
    /// differential tests against the CMU-hosted HLL, which stores ρ
    /// values in CMU buckets.
    pub fn raw_register(&self, idx: usize) -> u8 {
        self.registers[idx]
    }

    /// The cardinality estimate.
    pub fn estimate(&self) -> f64 {
        estimate_from_registers(&self.registers)
    }

    /// Resets all registers.
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }
}

/// Computes the HLL estimate from a register array (shared with the
/// CMU-hosted implementation, whose control plane reads CMU buckets and
/// applies the same mathematics, §4 "Flow Cardinality").
pub fn estimate_from_registers(registers: &[u8]) -> f64 {
    let m = registers.len() as f64;
    let alpha = match registers.len() {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m),
    };
    let sum: f64 = registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
    let raw = alpha * m * m / sum;
    if raw <= 2.5 * m {
        // Small-range correction: linear counting on empty registers.
        let zeros = registers.iter().filter(|&&r| r == 0).count();
        if zeros > 0 {
            return m * (m / zeros as f64).ln();
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_within_expected_error() {
        // Standard error is ~1.04/sqrt(m); with b=12 (m=4096) that is
        // ~1.6%. Allow 5% slack for a single trial.
        let mut hll = HyperLogLog::new(12);
        let n = 100_000u32;
        for i in 0..n {
            hll.insert(&i.to_be_bytes());
        }
        let est = hll.estimate();
        let err = (est - f64::from(n)).abs() / f64::from(n);
        assert!(err < 0.05, "estimate {est}, true {n}, err {err:.4}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(10);
        for _ in 0..100 {
            for i in 0..500u32 {
                hll.insert(&i.to_be_bytes());
            }
        }
        let est = hll.estimate();
        let err = (est - 500.0).abs() / 500.0;
        assert!(err < 0.15, "estimate {est} for 500 distinct");
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut hll = HyperLogLog::new(12);
        for i in 0..50u32 {
            hll.insert(&i.to_be_bytes());
        }
        let est = hll.estimate();
        assert!((est - 50.0).abs() < 5.0, "small-range estimate {est}");
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(8);
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn with_memory_picks_reasonable_b() {
        assert_eq!(HyperLogLog::with_memory(4096).memory_bytes(), 4096);
        assert_eq!(HyperLogLog::with_memory(10).memory_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "b must be")]
    fn rejects_silly_precision() {
        let _ = HyperLogLog::new(2);
    }
}
