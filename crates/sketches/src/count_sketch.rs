//! Count Sketch (Charikar, Chen, Farach-Colton, 2002) — the building
//! block of UnivMon.

use flymon_rmt::hash::murmur3_32;

/// A `d × w` Count Sketch: signed counters with ±1 sign hashes; point
/// queries return the median row estimate (unbiased, two-sided error).
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    width: usize,
    counters: Vec<i64>,
}

impl CountSketch {
    /// Creates a sketch with `rows` rows of `width` counters.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, width: usize) -> Self {
        assert!(
            rows > 0 && width > 0,
            "CountSketch dimensions must be positive"
        );
        CountSketch {
            rows,
            width,
            counters: vec![0; rows * width],
        }
    }

    /// Memory footprint in bytes (32-bit counters in hardware; we store
    /// i64 for headroom but account 4 bytes, matching the paper's
    /// memory-sweep convention).
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.width * 4
    }

    fn slot_and_sign(&self, row: usize, key: &[u8]) -> (usize, i64) {
        let h = murmur3_32(0xc500_0000 ^ row as u32, key);
        let idx = (h >> 1) as usize % self.width;
        let sign = if h & 1 == 1 { 1 } else { -1 };
        (row * self.width + idx, sign)
    }

    /// Adds `delta` (signed by the row's sign hash).
    pub fn update(&mut self, key: &[u8], delta: i64) {
        for row in 0..self.rows {
            let (slot, sign) = self.slot_and_sign(row, key);
            self.counters[slot] += sign * delta;
        }
    }

    /// Point query: median of the per-row signed estimates.
    pub fn query(&self, key: &[u8]) -> i64 {
        let mut ests: Vec<i64> = (0..self.rows)
            .map(|row| {
                let (slot, sign) = self.slot_and_sign(row, key);
                sign * self.counters[slot]
            })
            .collect();
        ests.sort_unstable();
        let n = ests.len();
        if n % 2 == 1 {
            ests[n / 2]
        } else {
            (ests[n / 2 - 1] + ests[n / 2]) / 2
        }
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_sparse() {
        let mut cs = CountSketch::new(5, 1024);
        cs.update(b"a", 10);
        cs.update(b"b", 3);
        assert_eq!(cs.query(b"a"), 10);
        assert_eq!(cs.query(b"b"), 3);
    }

    #[test]
    fn unbiased_under_load() {
        let mut cs = CountSketch::new(5, 256);
        for i in 0..5_000u32 {
            cs.update(&i.to_be_bytes(), 1);
        }
        // The mean signed error over many keys should be near zero
        // (Count Sketch is unbiased, unlike CMS).
        let total_err: i64 = (0..5_000u32).map(|i| cs.query(&i.to_be_bytes()) - 1).sum();
        let mean = total_err as f64 / 5_000.0;
        assert!(mean.abs() < 2.0, "mean error {mean}");
    }

    #[test]
    fn heavy_flow_recovered() {
        let mut cs = CountSketch::new(5, 512);
        for i in 0..3_000u32 {
            cs.update(&i.to_be_bytes(), 1);
        }
        cs.update(b"elephant", 10_000);
        let est = cs.query(b"elephant");
        assert!((est - 10_000).abs() < 500, "estimate {est}");
    }

    #[test]
    fn clear_resets() {
        let mut cs = CountSketch::new(3, 32);
        cs.update(b"x", 42);
        cs.clear();
        assert_eq!(cs.query(b"x"), 0);
    }
}
