//! UnivMon (Liu et al., SIGCOMM 2016): universal sketching.
//!
//! `L` substream levels, each holding a Count Sketch and a top-k heavy
//! tracker; level `i` sees the keys that survive `i` independent coin
//! flips (hash bits). Any G-sum statistic `Σ g(f_i)` is estimated by the
//! recursive universal estimator, which gives heavy hitters, entropy and
//! cardinality from one data structure — the multi-attribute baseline of
//! the paper's related work and Figures 14a/14e.

use std::collections::HashMap;

use flymon_rmt::hash::murmur3_32;

use crate::count_sketch::CountSketch;

/// Top-k tracker: keeps the k keys with the largest running estimates.
#[derive(Debug, Clone)]
struct TopK {
    k: usize,
    entries: HashMap<Vec<u8>, i64>,
    cached_min: i64,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            entries: HashMap::new(),
            cached_min: i64::MIN,
        }
    }

    fn offer(&mut self, key: &[u8], estimate: i64) {
        if let Some(v) = self.entries.get_mut(key) {
            *v = estimate;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.insert(key.to_vec(), estimate);
            if self.entries.len() == self.k {
                self.cached_min = self.entries.values().min().copied().unwrap_or(i64::MIN);
            }
            return;
        }
        if estimate <= self.cached_min {
            return;
        }
        // Evict the current minimum (full scan, amortized by the guard).
        if let Some(min_key) = self
            .entries
            .iter()
            .min_by_key(|&(_, &v)| v)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&min_key);
        }
        self.entries.insert(key.to_vec(), estimate);
        self.cached_min = self.entries.values().min().copied().unwrap_or(i64::MIN);
    }

    fn keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.entries.keys()
    }
}

/// One substream level.
#[derive(Debug, Clone)]
struct Level {
    sketch: CountSketch,
    heavy: TopK,
}

/// The UnivMon universal sketch.
#[derive(Debug, Clone)]
pub struct UnivMon {
    levels: Vec<Level>,
    total_packets: u64,
}

impl UnivMon {
    /// Creates a UnivMon with `levels` levels, each a `rows × width`
    /// Count Sketch and a top-`k` tracker.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(levels: usize, rows: usize, width: usize, k: usize) -> Self {
        assert!(levels > 0 && k > 0, "UnivMon needs levels and a top-k");
        UnivMon {
            levels: (0..levels)
                .map(|_| Level {
                    sketch: CountSketch::new(rows, width),
                    heavy: TopK::new(k),
                })
                .collect(),
            total_packets: 0,
        }
    }

    /// Creates a UnivMon within `bytes`: 14 levels × 4 rows, top-64 per
    /// level (~85% of memory to sketches, the rest to trackers).
    pub fn with_memory(bytes: usize) -> Self {
        let levels = 14;
        let rows = 4;
        let k = 64;
        let sketch_bytes = bytes * 85 / 100;
        let width = (sketch_bytes / levels / rows / 4).max(8);
        Self::new(levels, rows, width, k)
    }

    /// Memory footprint in bytes (sketches + tracker entries at ~24 bytes
    /// per tracked key).
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.sketch.memory_bytes() + l.heavy.k * 24)
            .sum()
    }

    /// True when `key` survives the sampling into `level` (level 0 takes
    /// everything; level i requires i consecutive hash-bit successes).
    fn survives(key: &[u8], level: usize) -> bool {
        (1..=level).all(|j| murmur3_32(0x0111_0000 ^ j as u32, key) & 1 == 1)
    }

    /// Feeds one packet of `key`.
    pub fn update(&mut self, key: &[u8]) {
        self.total_packets += 1;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if i > 0 && !Self::survives(key, i) {
                break; // sampling is nested: failing level i fails i+1
            }
            level.sketch.update(key, 1);
            let est = level.sketch.query(key);
            level.heavy.offer(key, est);
        }
    }

    /// Total packets observed.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Heavy hitters: level-0 tracked keys whose estimate meets
    /// `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(Vec<u8>, u64)> {
        self.levels[0]
            .heavy
            .keys()
            .filter_map(|k| {
                let est = self.levels[0].sketch.query(k);
                (est >= threshold as i64).then(|| (k.clone(), est as u64))
            })
            .collect()
    }

    /// The universal G-sum estimator: `Σ_flows g(f)` for any function `g`
    /// with `g(0) = 0`.
    pub fn g_sum(&self, g: impl Fn(f64) -> f64) -> f64 {
        let last = self.levels.len() - 1;
        let level_est = |i: usize, key: &[u8]| -> f64 {
            let e = self.levels[i].sketch.query(key);
            (e.max(1)) as f64
        };
        let mut y: f64 = self.levels[last]
            .heavy
            .keys()
            .map(|k| g(level_est(last, k)))
            .sum();
        for i in (0..last).rev() {
            let correction: f64 = self.levels[i]
                .heavy
                .keys()
                .map(|k| {
                    let sampled_next = if Self::survives(k, i + 1) { 1.0 } else { 0.0 };
                    (1.0 - 2.0 * sampled_next) * g(level_est(i, k))
                })
                .sum();
            y = 2.0 * y + correction;
        }
        y.max(0.0)
    }

    /// Flow entropy estimate: `H = ln T − (Σ f ln f)/T`.
    pub fn entropy(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        let t = self.total_packets as f64;
        let y = self.g_sum(|x| x * x.ln());
        (t.ln() - y / t).max(0.0)
    }

    /// Cardinality estimate: G-sum with `g ≡ 1`.
    pub fn cardinality(&self) -> f64 {
        self.g_sum(|_| 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(um: &mut UnivMon, flows: &[(u32, u32)]) {
        for &(id, size) in flows {
            for _ in 0..size {
                um.update(&id.to_be_bytes());
            }
        }
    }

    #[test]
    fn heavy_hitters_found() {
        let mut um = UnivMon::new(10, 4, 1024, 64);
        let mut flows: Vec<(u32, u32)> = (0..2_000).map(|i| (i, 2)).collect();
        flows.push((100_000, 5_000));
        flows.push((100_001, 3_000));
        feed(&mut um, &flows);
        let hh = um.heavy_hitters(1_024);
        let ids: Vec<u32> = hh
            .iter()
            .map(|(k, _)| u32::from_be_bytes([k[0], k[1], k[2], k[3]]))
            .collect();
        assert!(ids.contains(&100_000), "missing top flow: {ids:?}");
        assert!(ids.contains(&100_001), "missing second flow: {ids:?}");
        assert!(hh.len() <= 5, "too many false heavies: {}", hh.len());
    }

    #[test]
    fn entropy_tracks_truth_roughly() {
        use flymon_traffic::ground_truth::entropy_of_counts;
        let mut um = UnivMon::with_memory(256 * 1024);
        let flows: Vec<(u32, u32)> = (0..3_000).map(|i| (i, i % 30 + 1)).collect();
        feed(&mut um, &flows);
        let truth = entropy_of_counts(flows.iter().map(|&(_, s)| u64::from(s)));
        let est = um.entropy();
        let re = (truth - est).abs() / truth;
        assert!(
            re < 0.35,
            "entropy RE {re:.3} (est {est:.3}, truth {truth:.3})"
        );
    }

    #[test]
    fn cardinality_order_of_magnitude() {
        let mut um = UnivMon::with_memory(256 * 1024);
        let flows: Vec<(u32, u32)> = (0..4_000).map(|i| (i, 1)).collect();
        feed(&mut um, &flows);
        let est = um.cardinality();
        assert!(
            est > 1_000.0 && est < 16_000.0,
            "cardinality estimate {est} for 4000 flows"
        );
    }

    #[test]
    fn sampling_is_nested() {
        // A key surviving to level i must survive all j < i.
        for key in 0..200u32 {
            let k = key.to_be_bytes();
            let mut reached_end = false;
            for level in (0..12).rev() {
                if UnivMon::survives(&k, level) {
                    reached_end = true;
                } else {
                    assert!(
                        !reached_end,
                        "key {key} survives a deeper level but not level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_keeps_the_largest() {
        let mut t = TopK::new(3);
        t.offer(b"a", 10);
        t.offer(b"b", 20);
        t.offer(b"c", 5);
        t.offer(b"d", 30); // evicts c
        let keys: Vec<&[u8]> = t.keys().map(|k| k.as_slice()).collect();
        assert_eq!(keys.len(), 3);
        assert!(!keys.contains(&b"c".as_slice()));
        assert!(keys.contains(&b"d".as_slice()));
        // Updating an existing key does not evict anyone.
        t.offer(b"a", 100);
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn memory_accounting_scales_with_budget() {
        let small = UnivMon::with_memory(64 * 1024);
        let large = UnivMon::with_memory(1024 * 1024);
        assert!(large.memory_bytes() > small.memory_bytes() * 4);
    }
}
