//! Bloom filter (Bloom, 1970).

use flymon_rmt::hash::murmur3_32;

/// A Bloom filter with `m` bits and `k` hash functions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: usize,
}

impl BloomFilter {
    /// Creates a filter with `m` bits and `k` hash functions.
    ///
    /// # Panics
    /// Panics if `m` or `k` is zero.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m > 0 && k > 0, "Bloom filter needs bits and hashes");
        BloomFilter {
            bits: vec![0; m.div_ceil(64)],
            m,
            k,
        }
    }

    /// Creates a filter fitting in `bytes` of memory with `k` hashes.
    pub fn with_memory(bytes: usize, k: usize) -> Self {
        Self::new((bytes * 8).max(1), k)
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.m.div_ceil(8)
    }

    fn positions<'a>(&'a self, key: &'a [u8]) -> impl Iterator<Item = usize> + 'a {
        (0..self.k as u32).map(move |i| murmur3_32(0xb100_0000 ^ i, key) as usize % self.m)
    }

    /// Inserts the key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1 << (p % 64);
        }
    }

    /// Membership query: false negatives never occur; false positives do.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }

    /// Number of set bits (used by Linear Counting and diagnostics).
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total bit count `m`.
    pub fn len_bits(&self) -> usize {
        self.m
    }

    /// Resets the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 14, 3);
        for i in 0..2_000u32 {
            bf.insert(&i.to_be_bytes());
        }
        for i in 0..2_000u32 {
            assert!(bf.contains(&i.to_be_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let m = 1 << 14;
        let k = 3;
        let n = 2_000u32;
        let mut bf = BloomFilter::new(m, k);
        for i in 0..n {
            bf.insert(&i.to_be_bytes());
        }
        // Theoretical FP ≈ (1 - e^{-kn/m})^k.
        let p = (1.0 - (-(k as f64) * f64::from(n) / m as f64).exp()).powi(k as i32);
        let mut fp = 0;
        let probes = 20_000u32;
        for i in n..n + probes {
            if bf.contains(&i.to_be_bytes()) {
                fp += 1;
            }
        }
        let observed = f64::from(fp) / f64::from(probes);
        assert!(
            (observed - p).abs() < 0.02,
            "observed {observed:.4} vs theory {p:.4}"
        );
    }

    #[test]
    fn ones_counts_set_bits() {
        let mut bf = BloomFilter::new(1 << 10, 2);
        assert_eq!(bf.ones(), 0);
        bf.insert(b"x");
        assert!(bf.ones() >= 1 && bf.ones() <= 2);
        bf.clear();
        assert_eq!(bf.ones(), 0);
    }

    #[test]
    fn with_memory_sizes_in_bits() {
        let bf = BloomFilter::with_memory(1024, 3);
        assert_eq!(bf.len_bits(), 8192);
        assert_eq!(bf.memory_bytes(), 1024);
    }
}
