//! BeauCoup (Chen, Landau-Feibish, Braverman, Rexford, SIGCOMM 2020):
//! multi-key distinct counting with one memory update per packet.
//!
//! Coupon-collector framing: each attribute value draws at most one of
//! `c` coupons (each with probability `p`); a key that has collected
//! `threshold_coupons` coupons has, with high probability, seen roughly
//! the configured number of distinct attribute values.

use flymon_rmt::hash::murmur3_32;

/// Tuning of a BeauCoup query.
#[derive(Debug, Clone, Copy)]
pub struct BeauCoupConfig {
    /// Number of coupons `c` (≤ 32; the bitmap lives in a u32).
    pub coupons: u32,
    /// Probability `p` that an attribute value draws one *specific*
    /// coupon (total draw probability is `c·p`, which must be ≤ 1).
    pub coupon_prob: f64,
    /// Coupons required to report the key.
    pub threshold_coupons: u32,
    /// Number of coupon tables `d` (the paper evaluates d=1 and d=3).
    pub tables: usize,
    /// Buckets per table.
    pub buckets_per_table: usize,
}

impl BeauCoupConfig {
    /// Derives `(c, p, m_t)` for a target distinct-count threshold using
    /// the coupon-collector expectation: collecting `m_t` of `c` coupons
    /// takes `(H_c − H_{c−m_t})/p` distinct draws on average.
    pub fn for_threshold(distinct_threshold: u64, tables: usize, buckets_per_table: usize) -> Self {
        let c = 32u32;
        let m_t = 24u32;
        let harmonic = |n: u32| (1..=n).map(|i| 1.0 / f64::from(i)).sum::<f64>();
        let draws_needed = harmonic(c) - harmonic(c - m_t);
        let p = (draws_needed / distinct_threshold as f64).min(1.0 / f64::from(c));
        BeauCoupConfig {
            coupons: c,
            coupon_prob: p,
            threshold_coupons: m_t,
            tables,
            buckets_per_table,
        }
    }

    /// Expected number of distinct attribute values needed to collect
    /// `j` coupons.
    pub fn expected_draws(&self, j: u32) -> f64 {
        let j = j.min(self.coupons);
        (0..j)
            .map(|i| 1.0 / (f64::from(self.coupons - i) * self.coupon_prob))
            .sum()
    }

    /// Inverts the coupon expectation: given `collected` coupons, the
    /// maximum-likelihood-ish distinct-count estimate from
    /// `E[collected] = c·(1 − (1 − p)^n)`.
    pub fn estimate_distinct(&self, collected: u32) -> f64 {
        let c = f64::from(self.coupons);
        if collected == 0 {
            return 0.0;
        }
        if collected >= self.coupons {
            // Saturated: at least the expectation to collect all coupons.
            return self.expected_draws(self.coupons);
        }
        let frac = f64::from(collected) / c;
        (1.0 - frac).ln() / (1.0 - self.coupon_prob).ln()
    }
}

/// One bucket: the owning key's signature plus the coupon bitmap.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    signature: u16,
    coupons: u32,
}

/// The original BeauCoup algorithm (software reference).
///
/// Per packet exactly one table is updated (the defining property of
/// BeauCoup: "one memory update at a time"); with `d` tables the
/// attribute space is partitioned across tables by hash, and a key's
/// collected coupons are summed over its `d` buckets. Buckets carry a
/// 16-bit key signature; updates whose signature mismatches the bucket
/// owner are dropped (the original's collision defense).
#[derive(Debug, Clone)]
pub struct BeauCoup {
    config: BeauCoupConfig,
    tables: Vec<Vec<Bucket>>,
}

impl BeauCoup {
    /// Creates the coupon tables.
    ///
    /// # Panics
    /// Panics on zero dimensions, more than 32 coupons, or a total draw
    /// probability above 1.
    pub fn new(config: BeauCoupConfig) -> Self {
        assert!(config.tables > 0 && config.buckets_per_table > 0);
        assert!(config.coupons >= 1 && config.coupons <= 32);
        assert!(f64::from(config.coupons) * config.coupon_prob <= 1.0 + 1e-9);
        BeauCoup {
            config,
            tables: vec![vec![Bucket::default(); config.buckets_per_table]; config.tables],
        }
    }

    /// Memory footprint in bytes: each bucket is a 16-bit signature plus
    /// a 32-bit coupon bitmap.
    pub fn memory_bytes(&self) -> usize {
        self.config.tables * self.config.buckets_per_table * 6
    }

    /// The configuration.
    pub fn config(&self) -> &BeauCoupConfig {
        &self.config
    }

    /// Draws a coupon for an attribute value: `Some(coupon)` with
    /// probability `c·p`, uniform over coupons.
    fn draw_coupon(&self, attr: &[u8]) -> Option<u32> {
        let h = murmur3_32(0xbc00_0001, attr);
        let per_coupon = (self.config.coupon_prob * 2f64.powi(32)) as u64;
        let space = per_coupon * u64::from(self.config.coupons);
        let h64 = u64::from(h);
        if per_coupon == 0 || h64 >= space {
            None
        } else {
            Some((h64 / per_coupon) as u32)
        }
    }

    fn bucket_of(&self, table: usize, key: &[u8]) -> usize {
        murmur3_32(0xbc10_0000 ^ table as u32, key) as usize % self.config.buckets_per_table
    }

    fn signature(key: &[u8]) -> u16 {
        (murmur3_32(0xbc20_0000, key) & 0xffff) as u16
    }

    /// Processes one packet: at most one coupon draw, one table touched.
    pub fn update(&mut self, key: &[u8], attr: &[u8]) {
        let Some(coupon) = self.draw_coupon(attr) else {
            return;
        };
        // The drawing attribute also selects the table, partitioning the
        // attribute space across tables.
        let t = murmur3_32(0xbc30_0000, attr) as usize % self.config.tables;
        let b = self.bucket_of(t, key);
        let sig = Self::signature(key);
        let bucket = &mut self.tables[t][b];
        if bucket.coupons == 0 {
            bucket.signature = sig;
        }
        if bucket.signature == sig {
            bucket.coupons |= 1 << (coupon % self.config.coupons);
        }
    }

    /// Total coupons a key has collected across its `d` buckets.
    pub fn coupons_of(&self, key: &[u8]) -> u32 {
        let sig = Self::signature(key);
        (0..self.config.tables)
            .map(|t| {
                let b = self.bucket_of(t, key);
                let bucket = &self.tables[t][b];
                if bucket.signature == sig {
                    bucket.coupons.count_ones()
                } else {
                    0
                }
            })
            .sum()
    }

    /// Whether the key crossed the report threshold.
    pub fn reports(&self, key: &[u8]) -> bool {
        self.coupons_of(key) >= self.config.threshold_coupons
    }

    /// Distinct-count estimate for a key (coupon-expectation inversion).
    pub fn estimate(&self, key: &[u8]) -> f64 {
        self.config.estimate_distinct(self.coupons_of(key))
    }

    /// Resets all buckets.
    pub fn clear(&mut self) {
        for t in &mut self.tables {
            t.fill(Bucket::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(threshold: u64) -> BeauCoupConfig {
        BeauCoupConfig::for_threshold(threshold, 1, 4096)
    }

    #[test]
    fn threshold_calibration_expected_draws() {
        let cfg = config(512);
        // Collecting the threshold should take ~512 distinct draws.
        let draws = cfg.expected_draws(cfg.threshold_coupons);
        assert!(
            (draws - 512.0).abs() / 512.0 < 0.02,
            "calibrated draws {draws}"
        );
    }

    #[test]
    fn keys_over_threshold_report() {
        let cfg = config(500);
        let mut bc = BeauCoup::new(cfg);
        // 4000 distinct attribute values, far beyond the 500 threshold.
        for i in 0..4_000u32 {
            bc.update(b"victim", &i.to_be_bytes());
        }
        assert!(bc.reports(b"victim"));
        // A key with 20 distinct values must not report.
        for i in 0..20u32 {
            bc.update(b"benign", &i.to_be_bytes());
        }
        assert!(!bc.reports(b"benign"));
    }

    #[test]
    fn duplicates_do_not_collect_new_coupons() {
        let cfg = config(100);
        let mut bc = BeauCoup::new(cfg);
        for _ in 0..10_000 {
            bc.update(b"k", b"same-value");
        }
        assert!(bc.coupons_of(b"k") <= 1);
    }

    #[test]
    fn estimate_tracks_distinct_count() {
        let cfg = BeauCoupConfig::for_threshold(10_000, 1, 64);
        let mut bc = BeauCoup::new(cfg);
        for i in 0..5_000u32 {
            bc.update(b"", &i.to_be_bytes());
        }
        let est = bc.estimate(b"");
        let re = (est - 5_000.0).abs() / 5_000.0;
        assert!(re < 0.4, "estimate {est}, RE {re:.3}");
    }

    #[test]
    fn signature_guards_bucket_collisions() {
        let cfg = BeauCoupConfig {
            coupons: 32,
            coupon_prob: 1.0 / 32.0,
            threshold_coupons: 8,
            tables: 1,
            buckets_per_table: 1, // force every key into one bucket
        };
        let mut bc = BeauCoup::new(cfg);
        for i in 0..1_000u32 {
            bc.update(b"owner", &i.to_be_bytes());
        }
        let before = bc.coupons_of(b"owner");
        assert!(before > 0);
        // A colliding key cannot pollute or read the owner's coupons.
        for i in 0..1_000u32 {
            bc.update(b"intruder", &(0x8000_0000 | i).to_be_bytes());
        }
        assert_eq!(bc.coupons_of(b"owner"), before);
        assert_eq!(bc.coupons_of(b"intruder"), 0);
    }

    #[test]
    fn multi_table_partitions_attribute_space() {
        let cfg = BeauCoupConfig::for_threshold(500, 3, 1024);
        let mut bc = BeauCoup::new(cfg);
        for i in 0..4_000u32 {
            bc.update(b"victim", &i.to_be_bytes());
        }
        assert!(bc.reports(b"victim"));
        assert_eq!(bc.memory_bytes(), 3 * 1024 * 6);
    }

    #[test]
    fn zero_estimate_for_unseen_key() {
        let bc = BeauCoup::new(config(100));
        assert_eq!(bc.estimate(b"ghost"), 0.0);
        assert!(!bc.reports(b"ghost"));
    }
}
