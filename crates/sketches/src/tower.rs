//! TowerSketch (Yang et al., SketchINT, ICNP 2021).
//!
//! A stack of counter arrays with *equal memory per level* but different
//! counter widths: level 0 has many tiny counters (2-bit), the top level
//! has few wide counters. Small (mouse) flows are answered by the tiny
//! counters; a saturated tiny counter is a sticky overflow marker and the
//! query falls through to wider levels. This adapts to skewed traffic.

use flymon_rmt::hash::murmur3_32;

/// One level of the tower.
#[derive(Debug, Clone)]
struct Level {
    bits: u8,
    counters: Vec<u32>,
}

impl Level {
    fn cap(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

/// A TowerSketch with the canonical 2/4/8/16-bit level ladder.
#[derive(Debug, Clone)]
pub struct TowerSketch {
    levels: Vec<Level>,
}

impl TowerSketch {
    /// Counter widths of the canonical ladder, bottom-up.
    pub const LADDER_BITS: [u8; 4] = [2, 4, 8, 16];

    /// Creates a tower where each level gets `bits_per_level` bits of
    /// memory, so level widths are `bits_per_level / counter_bits`.
    ///
    /// # Panics
    /// Panics if `bits_per_level` cannot hold at least one 16-bit counter.
    pub fn new(bits_per_level: usize) -> Self {
        assert!(bits_per_level >= 16, "need at least one 16-bit counter");
        Self::with_ladder(&Self::LADDER_BITS, bits_per_level)
            .expect("canonical ladder is valid")
    }

    /// Creates a tower with a custom level ladder (counter widths,
    /// bottom-up). Rejects ladders a query could not answer: an empty
    /// ladder (the all-saturated fallback would have no top level to
    /// bound from), a counter width outside `1..=16` bits (`Level::cap`
    /// is computed in 32-bit arithmetic), or a level budget too small
    /// for even one counter of the widest level.
    pub fn with_ladder(ladder_bits: &[u8], bits_per_level: usize) -> Result<Self, String> {
        if ladder_bits.is_empty() {
            return Err("tower ladder must have at least one level".into());
        }
        let mut levels = Vec::with_capacity(ladder_bits.len());
        for &bits in ladder_bits {
            if bits == 0 || bits > 16 {
                return Err(format!("tower counter width {bits} not in 1..=16 bits"));
            }
            let width = bits_per_level / bits as usize;
            if width == 0 {
                return Err(format!(
                    "level budget of {bits_per_level} bits cannot hold one {bits}-bit counter"
                ));
            }
            levels.push(Level {
                bits,
                counters: vec![0; width],
            });
        }
        Ok(TowerSketch { levels })
    }

    /// Creates a tower within `bytes` total (split evenly across levels).
    pub fn with_memory(bytes: usize) -> Self {
        Self::new((bytes * 8 / Self::LADDER_BITS.len()).max(16))
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.counters.len() * l.bits as usize)
            .sum::<usize>()
            / 8
    }

    fn index(level: usize, width: usize, key: &[u8]) -> usize {
        murmur3_32(0x7011_0000 ^ level as u32, key) as usize % width
    }

    /// Counts one packet of `key`. Each level increments its counter
    /// unless saturated; a saturated counter is sticky (the overflow
    /// marker).
    pub fn update(&mut self, key: &[u8]) {
        for (li, level) in self.levels.iter_mut().enumerate() {
            let cap = level.cap();
            let i = Self::index(li, level.counters.len(), key);
            if level.counters[i] < cap {
                level.counters[i] += 1;
            }
        }
    }

    /// Point query: minimum over non-saturated levels; if every level is
    /// saturated, the top level's cap (the best available lower bound).
    pub fn query(&self, key: &[u8]) -> u64 {
        let mut best: Option<u64> = None;
        for (li, level) in self.levels.iter().enumerate() {
            let i = Self::index(li, level.counters.len(), key);
            let v = level.counters[i];
            if v < level.cap() {
                best = Some(best.map_or(u64::from(v), |b| b.min(u64::from(v))));
            }
        }
        // Empty-level sketches cannot be constructed (with_ladder rejects
        // them), but map_or keeps this total rather than panicking.
        best.unwrap_or_else(|| self.levels.last().map_or(0, |l| u64::from(l.cap())))
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.counters.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_flows_when_sparse() {
        let mut t = TowerSketch::new(1 << 16);
        for _ in 0..2 {
            t.update(b"mouse");
        }
        assert_eq!(t.query(b"mouse"), 2);
        assert_eq!(t.query(b"unseen"), 0);
    }

    #[test]
    fn large_flows_fall_through_to_wide_levels() {
        let mut t = TowerSketch::new(1 << 16);
        for _ in 0..1_000 {
            t.update(b"elephant");
        }
        // 2-bit and 4-bit and 8-bit levels saturate; the 16-bit level
        // answers exactly (sparse tower).
        assert_eq!(t.query(b"elephant"), 1_000);
    }

    #[test]
    fn never_underestimates_when_sparse_at_top() {
        let mut t = TowerSketch::with_memory(64 * 1024);
        for i in 0..2_000u32 {
            for _ in 0..(i % 5 + 1) {
                t.update(&i.to_be_bytes());
            }
        }
        for i in 0..2_000u32 {
            let truth = u64::from(i % 5 + 1);
            assert!(
                t.query(&i.to_be_bytes()) >= truth,
                "tower under-estimated flow {i}"
            );
        }
    }

    #[test]
    fn skewed_memory_efficiency_beats_cms_on_mice() {
        use crate::cms::CountMinSketch;
        // Same memory: tower spends most counters on 2/4-bit cells, so a
        // mouse-heavy workload sees fewer collisions than 32-bit CMS.
        let bytes = 2048;
        let mut tower = TowerSketch::with_memory(bytes);
        let mut cms = CountMinSketch::new(1, bytes / 4);
        for i in 0..4_000u32 {
            tower.update(&i.to_be_bytes());
            cms.update(&i.to_be_bytes(), 1);
        }
        let tower_err: u64 = (0..4_000u32)
            .map(|i| tower.query(&i.to_be_bytes()).saturating_sub(1))
            .sum();
        let cms_err: u64 = (0..4_000u32).map(|i| cms.query(&i.to_be_bytes()) - 1).sum();
        assert!(
            tower_err < cms_err,
            "tower {tower_err} should beat cms {cms_err} on mice"
        );
    }

    #[test]
    fn empty_and_degenerate_ladders_are_rejected() {
        assert!(TowerSketch::with_ladder(&[], 1024).is_err());
        assert!(TowerSketch::with_ladder(&[0], 1024).is_err());
        assert!(TowerSketch::with_ladder(&[17], 1024).is_err());
        // Budget too small for one counter of the widest level.
        assert!(TowerSketch::with_ladder(&[2, 16], 8).is_err());
        assert!(TowerSketch::with_ladder(&[2, 4, 8, 16], 16).is_ok());
    }

    #[test]
    fn saturated_all_levels_returns_top_cap_without_panicking() {
        // One counter per... well, as few as possible: a 2-bit-only
        // ladder with a single counter saturates after 3 updates of any
        // key, after which every query key aliases onto the saturated
        // counter and the old `levels.last().unwrap()` path is the only
        // answer left. It must return the top cap, not panic.
        let mut t = TowerSketch::with_ladder(&[2], 2).expect("valid ladder");
        for _ in 0..10 {
            t.update(b"flood");
        }
        assert_eq!(t.query(b"flood"), 3);
        assert_eq!(t.query(b"innocent-bystander"), 3);

        // Same property on the canonical ladder: saturate every level.
        let mut canon = TowerSketch::new(16);
        for _ in 0..100_000 {
            canon.update(b"flood");
        }
        assert_eq!(canon.query(b"flood"), u64::from(u16::MAX));
    }

    #[test]
    fn ladder_memory_split_is_even() {
        let t = TowerSketch::new(1 << 10);
        // 2-bit level: 512 counters; 16-bit level: 64 counters.
        assert_eq!(t.levels[0].counters.len(), 512);
        assert_eq!(t.levels[3].counters.len(), 64);
        assert_eq!(t.memory_bytes(), 4 * 128);
    }
}
