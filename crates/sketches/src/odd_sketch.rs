//! Odd Sketch (Mitzenmacher, Pagh, Pham, WWW 2014) — set-similarity
//! estimation from bit parities.
//!
//! Each *distinct* element toggles one bit; the XOR of two sketches is
//! the sketch of the symmetric difference, whose size is estimated from
//! the number of odd (set) bits: `d̂ = -(n/2)·ln(1 - 2k/n)`. This is the
//! §6 expansion example for FlyMon's reserved XOR operation.

use flymon_rmt::hash::murmur3_32;

/// An `n`-bit odd sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OddSketch {
    bits: Vec<u64>,
    n: usize,
}

impl OddSketch {
    /// Creates an `n`-bit sketch.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "odd sketch needs bits");
        OddSketch {
            bits: vec![0; n.div_ceil(64)],
            n,
        }
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.n.div_ceil(8)
    }

    /// Toggles the element's bit. Call once per *distinct* element —
    /// an even number of insertions cancels out (that is the point of
    /// the parity encoding, and why the CMU recipe gates the XOR behind
    /// a first-occurrence Bloom filter).
    pub fn toggle(&mut self, element: &[u8]) {
        let i = murmur3_32(0x0dd5_0000, element) as usize % self.n;
        self.bits[i / 64] ^= 1 << (i % 64);
    }

    /// Number of set (odd) bits.
    pub fn odd_bits(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Estimated size of the symmetric difference between the two sets
    /// underlying `self` and `other`: XOR the sketches and invert the
    /// expected odd-bit count. Saturates at `n·ln(n)/2`-ish when the
    /// sketch is too small for the difference.
    ///
    /// # Panics
    /// Panics if the sketches have different sizes.
    pub fn symmetric_difference(&self, other: &OddSketch) -> f64 {
        assert_eq!(self.n, other.n, "sketch sizes must match");
        let k: usize = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        let n = self.n as f64;
        let frac = 2.0 * k as f64 / n;
        if frac >= 1.0 {
            // Saturated: more than half the bits are odd.
            n / 2.0 * n.ln()
        } else {
            -(n / 2.0) * (1.0 - frac).ln()
        }
    }

    /// Jaccard similarity of two sets given their (estimated) sizes:
    /// `J = (|A| + |B| - d) / (|A| + |B| + d)` with `d` the estimated
    /// symmetric difference, clamped to `[0, 1]`.
    pub fn jaccard(&self, other: &OddSketch, size_a: f64, size_b: f64) -> f64 {
        let d = self.symmetric_difference(other);
        let num = size_a + size_b - d;
        let den = size_a + size_b + d;
        if den <= 0.0 {
            return 1.0; // two empty sets
        }
        (num / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(ids: impl Iterator<Item = u32>, n: usize) -> OddSketch {
        let mut s = OddSketch::new(n);
        for i in ids {
            s.toggle(&i.to_be_bytes());
        }
        s
    }

    #[test]
    fn double_toggle_cancels() {
        let mut s = OddSketch::new(256);
        s.toggle(b"x");
        assert_eq!(s.odd_bits(), 1);
        s.toggle(b"x");
        assert_eq!(s.odd_bits(), 0);
    }

    #[test]
    fn identical_sets_have_zero_difference() {
        let a = sketch_of(0..1_000, 1 << 12);
        let b = sketch_of(0..1_000, 1 << 12);
        assert_eq!(a.symmetric_difference(&b), 0.0);
        assert_eq!(a.jaccard(&b, 1_000.0, 1_000.0), 1.0);
    }

    #[test]
    fn difference_estimate_tracks_truth() {
        // |A Δ B| = 400 (200 exclusive to each side).
        let a = sketch_of(0..1_200, 1 << 12);
        let b = sketch_of(200..1_400, 1 << 12);
        let d = a.symmetric_difference(&b);
        assert!(
            (d - 400.0).abs() < 60.0,
            "symmetric difference estimate {d} for truth 400"
        );
        // Jaccard truth: 1000 / 1400 ≈ 0.714.
        let j = a.jaccard(&b, 1_200.0, 1_200.0);
        assert!((j - 1_000.0 / 1_400.0).abs() < 0.05, "jaccard {j}");
    }

    #[test]
    fn disjoint_sets_have_low_similarity() {
        let a = sketch_of(0..500, 1 << 12);
        let b = sketch_of(10_000..10_500, 1 << 12);
        assert!(a.jaccard(&b, 500.0, 500.0) < 0.1);
    }

    #[test]
    fn saturation_is_finite() {
        // Difference far beyond sketch capacity must not return NaN/inf.
        let a = sketch_of(0..100_000, 64);
        let b = OddSketch::new(64);
        let d = a.symmetric_difference(&b);
        assert!(d.is_finite());
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(OddSketch::new(1 << 13).memory_bytes(), 1024);
    }
}
