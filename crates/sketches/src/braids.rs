//! Counter Braids (Lu et al., SIGMETRICS 2008) — two-layer variant.
//!
//! Layer 1 holds many shallow counters; each flow increments `d1` of
//! them. When a layer-1 counter overflows it wraps and carries into `d2`
//! layer-2 counters addressed by the *layer-1 counter index* (the
//! "braiding"). The full Counter Braids decoder runs message passing over
//! the complete flow list; this implementation provides the data-plane
//! structure plus a min-style upper-bound decode, which is exact in the
//! sparse regime and is what the CMU-hosted version (Appendix D) is
//! differentially tested against.

use flymon_rmt::hash::murmur3_32;

/// Two-layer Counter Braids.
#[derive(Debug, Clone)]
pub struct CounterBraids {
    l1_bits: u8,
    l1: Vec<u32>,
    l2: Vec<u64>,
    d1: usize,
    d2: usize,
}

impl CounterBraids {
    /// Creates braids with `w1` layer-1 counters of `l1_bits` bits
    /// (`d1` hashes per flow) and `w2` layer-2 counters (`d2` hashes per
    /// overflowing layer-1 counter).
    ///
    /// # Panics
    /// Panics on zero dimensions or `l1_bits` outside `1..=16`.
    pub fn new(w1: usize, l1_bits: u8, d1: usize, w2: usize, d2: usize) -> Self {
        assert!(
            w1 > 0 && w2 > 0 && d1 > 0 && d2 > 0,
            "dimensions must be positive"
        );
        assert!((1..=16).contains(&l1_bits), "layer-1 width 1..=16 bits");
        CounterBraids {
            l1_bits,
            l1: vec![0; w1],
            l2: vec![0; w2],
            d1,
            d2,
        }
    }

    /// Canonical geometry from the paper's Appendix D example: 8-bit
    /// layer-1 counters, 3 hashes, a quarter as many layer-2 counters.
    pub fn with_memory(bytes: usize) -> Self {
        // Split: 2/3 of memory to layer 1 (1 byte each), 1/3 to layer 2
        // (4 bytes each).
        let w1 = (bytes * 2 / 3).max(1);
        let w2 = (bytes / 3 / 4).max(1);
        Self::new(w1, 8, 3, w2, 2)
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.l1.len() * self.l1_bits as usize / 8 + self.l2.len() * 4
    }

    fn l1_cap(&self) -> u32 {
        (1u32 << self.l1_bits) - 1
    }

    fn l1_indices(&self, key: &[u8]) -> Vec<usize> {
        (0..self.d1)
            .map(|r| murmur3_32(0xb2a1_0000 ^ r as u32, key) as usize % self.l1.len())
            .collect()
    }

    fn l2_indices(&self, l1_index: usize) -> Vec<usize> {
        (0..self.d2)
            .map(|r| {
                murmur3_32(0xb2a2_0000 ^ r as u32, &(l1_index as u64).to_be_bytes()) as usize
                    % self.l2.len()
            })
            .collect()
    }

    /// Counts one packet of `key`: increments the flow's layer-1
    /// counters; overflows wrap and carry into layer 2.
    pub fn update(&mut self, key: &[u8]) {
        let cap = self.l1_cap();
        for i in self.l1_indices(key) {
            if self.l1[i] == cap {
                // Wrap and carry one unit of 2^l1_bits into layer 2.
                self.l1[i] = 0;
                for j in self.l2_indices(i) {
                    self.l2[j] += 1;
                }
            } else {
                self.l1[i] += 1;
            }
        }
    }

    /// Upper-bound decode: for each of the flow's layer-1 counters,
    /// reconstruct `value + carries·2^bits` where carries is the minimum
    /// of the counter's layer-2 cells; answer the minimum across the
    /// flow's `d1` counters. Exact when neither layer has collisions.
    pub fn query(&self, key: &[u8]) -> u64 {
        self.l1_indices(key)
            .into_iter()
            .map(|i| {
                let carries = self
                    .l2_indices(i)
                    .into_iter()
                    .map(|j| self.l2[j])
                    .min()
                    .unwrap_or(0);
                u64::from(self.l1[i]) + carries * (u64::from(self.l1_cap()) + 1)
            })
            .min()
            .unwrap_or(0)
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.l1.fill(0);
        self.l2.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_without_overflow_when_sparse() {
        let mut cb = CounterBraids::new(4096, 8, 3, 1024, 2);
        for _ in 0..200 {
            cb.update(b"flow");
        }
        assert_eq!(cb.query(b"flow"), 200);
        assert_eq!(cb.query(b"other"), 0);
    }

    #[test]
    fn overflow_carries_into_layer_two() {
        let mut cb = CounterBraids::new(4096, 4, 2, 1024, 2);
        // 4-bit counters overflow at 15 -> carries needed for 100.
        for _ in 0..100 {
            cb.update(b"big");
        }
        assert_eq!(cb.query(b"big"), 100);
    }

    #[test]
    fn never_underestimates_in_light_load() {
        let mut cb = CounterBraids::new(8192, 8, 3, 2048, 2);
        for i in 0..1_000u32 {
            for _ in 0..(i % 7 + 1) {
                cb.update(&i.to_be_bytes());
            }
        }
        for i in 0..1_000u32 {
            let truth = u64::from(i % 7 + 1);
            assert!(cb.query(&i.to_be_bytes()) >= truth);
        }
    }

    #[test]
    fn memory_accounting() {
        let cb = CounterBraids::with_memory(12_000);
        assert!(cb.memory_bytes() <= 12_100);
        assert!(cb.memory_bytes() >= 10_000);
    }
}
