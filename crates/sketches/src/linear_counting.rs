//! Linear Counting (Whang, Vander-Zanden, Taylor, 1990).

use crate::bloom::BloomFilter;

/// Linear (probabilistic) counting: a bitmap of `m` bits; each key sets
/// one bit; the cardinality estimate is `m · ln(m / z)` where `z` is the
/// number of zero bits.
///
/// The paper notes (Appendix D) that Linear Counting and the Bloom filter
/// are "identical in the data plane and only differentiated in the
/// control-plane analysis" — we make that literal by building LC on top of
/// a 1-hash Bloom filter.
#[derive(Debug, Clone)]
pub struct LinearCounting {
    bitmap: BloomFilter,
}

impl LinearCounting {
    /// Creates a counter with an `m`-bit bitmap.
    pub fn new(m: usize) -> Self {
        LinearCounting {
            bitmap: BloomFilter::new(m, 1),
        }
    }

    /// Creates a counter using `bytes` of memory.
    pub fn with_memory(bytes: usize) -> Self {
        Self::new((bytes * 8).max(1))
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bitmap.memory_bytes()
    }

    /// Registers a key.
    pub fn insert(&mut self, key: &[u8]) {
        self.bitmap.insert(key);
    }

    /// The cardinality estimate `m · ln(m / z)`. Returns `m · ln(m)`
    /// (the saturation point) when every bit is set.
    pub fn estimate(&self) -> f64 {
        let m = self.bitmap.len_bits() as f64;
        let zeros = (self.bitmap.len_bits() - self.bitmap.ones()) as f64;
        if zeros == 0.0 {
            m * m.ln()
        } else {
            m * (m / zeros).ln()
        }
    }

    /// Resets the bitmap.
    pub fn clear(&mut self) {
        self.bitmap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_cardinality() {
        let mut lc = LinearCounting::new(1 << 14);
        let n = 3_000u32;
        for i in 0..n {
            lc.insert(&i.to_be_bytes());
        }
        let est = lc.estimate();
        let err = (est - f64::from(n)).abs() / f64::from(n);
        assert!(err < 0.05, "estimate {est}, err {err:.4}");
    }

    #[test]
    fn duplicates_ignored() {
        let mut lc = LinearCounting::new(1 << 12);
        for _ in 0..10 {
            for i in 0..200u32 {
                lc.insert(&i.to_be_bytes());
            }
        }
        let est = lc.estimate();
        assert!(
            (est - 200.0).abs() < 30.0,
            "estimate {est} for 200 distinct"
        );
    }

    #[test]
    fn empty_estimates_zero() {
        let lc = LinearCounting::new(1024);
        assert_eq!(lc.estimate(), 0.0);
    }

    #[test]
    fn saturation_does_not_divide_by_zero() {
        let mut lc = LinearCounting::new(8);
        for i in 0..1_000u32 {
            lc.insert(&i.to_be_bytes());
        }
        assert!(lc.estimate().is_finite());
    }
}
