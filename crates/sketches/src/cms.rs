//! Count-Min Sketch (Cormode & Muthukrishnan, 2005).

use flymon_rmt::hash::murmur3_32;

/// A `d × w` Count-Min Sketch over byte-slice keys.
///
/// Update adds the parameter to one counter per row; query returns the
/// row-wise minimum, an overestimate with error ≤ `2T/w` with probability
/// `1 − (1/2)^d` for total volume `T`.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    width: usize,
    counters: Vec<u64>,
    seeds: Vec<u32>,
}

impl CountMinSketch {
    /// Creates a sketch with `rows` rows of `width` counters.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, width: usize) -> Self {
        assert!(rows > 0 && width > 0, "CMS dimensions must be positive");
        CountMinSketch {
            rows,
            width,
            counters: vec![0; rows * width],
            seeds: (0..rows as u32).map(|r| 0x5151_0000 ^ r).collect(),
        }
    }

    /// Creates a sketch of `rows` rows fitting within `bytes` of memory,
    /// assuming 32-bit counters (the paper's memory sweeps are quoted in
    /// KB of counter memory).
    pub fn with_memory(rows: usize, bytes: usize) -> Self {
        let width = (bytes / 4 / rows).max(1);
        Self::new(rows, width)
    }

    /// Memory footprint in bytes (32-bit counters).
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.width * 4
    }

    fn index(&self, row: usize, key: &[u8]) -> usize {
        row * self.width + murmur3_32(self.seeds[row], key) as usize % self.width
    }

    /// Adds `delta` to the key's counters.
    pub fn update(&mut self, key: &[u8], delta: u64) {
        for row in 0..self.rows {
            let i = self.index(row, key);
            self.counters[i] = self.counters[i].saturating_add(delta);
        }
    }

    /// Point query: the row-wise minimum.
    pub fn query(&self, key: &[u8]) -> u64 {
        (0..self.rows)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Resets every counter.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_never_underestimates() {
        let mut cms = CountMinSketch::new(3, 64);
        for i in 0..200u32 {
            cms.update(&i.to_be_bytes(), u64::from(i % 7 + 1));
        }
        for i in 0..200u32 {
            let truth = u64::from(i % 7 + 1);
            assert!(cms.query(&i.to_be_bytes()) >= truth);
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut cms = CountMinSketch::new(3, 4096);
        cms.update(b"alpha", 5);
        cms.update(b"beta", 7);
        cms.update(b"alpha", 1);
        assert_eq!(cms.query(b"alpha"), 6);
        assert_eq!(cms.query(b"beta"), 7);
        assert_eq!(cms.query(b"gamma"), 0);
    }

    #[test]
    fn more_width_means_less_error() {
        let mut narrow = CountMinSketch::new(3, 32);
        let mut wide = CountMinSketch::new(3, 4096);
        for i in 0..5_000u32 {
            narrow.update(&i.to_be_bytes(), 1);
            wide.update(&i.to_be_bytes(), 1);
        }
        let narrow_err: u64 = (0..5_000u32)
            .map(|i| narrow.query(&i.to_be_bytes()) - 1)
            .sum();
        let wide_err: u64 = (0..5_000u32)
            .map(|i| wide.query(&i.to_be_bytes()) - 1)
            .sum();
        assert!(
            wide_err * 10 < narrow_err,
            "wide {wide_err} narrow {narrow_err}"
        );
    }

    #[test]
    fn with_memory_respects_budget() {
        let cms = CountMinSketch::with_memory(3, 12_000);
        assert!(cms.memory_bytes() <= 12_000);
        assert_eq!(cms.rows(), 3);
        assert_eq!(cms.width(), 1000);
    }

    #[test]
    fn clear_resets() {
        let mut cms = CountMinSketch::new(2, 16);
        cms.update(b"x", 9);
        cms.clear();
        assert_eq!(cms.query(b"x"), 0);
    }
}
