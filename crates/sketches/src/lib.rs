//! Reference software implementations of the baseline sketch algorithms.
//!
//! These are the *comparators* of the paper's evaluation (UnivMon,
//! original BeauCoup) and the *oracles* our CMU-hosted implementations are
//! differentially tested against (CMS, Bloom filter, HyperLogLog, Linear
//! Counting, MRAC, SuMax, TowerSketch, Counter Braids).
//!
//! Everything here is plain software — no RMT constraints — implemented
//! from the original papers. Keys are byte slices (use
//! [`flymon_packet::KeySpec::extract`] to produce them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beaucoup;
pub mod bloom;
pub mod braids;
pub mod cms;
pub mod count_sketch;
pub mod hll;
pub mod linear_counting;
pub mod mrac;
pub mod odd_sketch;
pub mod spread_sketch;
pub mod sumax;
pub mod tower;
pub mod univmon;

pub use beaucoup::{BeauCoup, BeauCoupConfig};
pub use bloom::BloomFilter;
pub use braids::CounterBraids;
pub use cms::CountMinSketch;
pub use count_sketch::CountSketch;
pub use hll::HyperLogLog;
pub use linear_counting::LinearCounting;
pub use mrac::Mrac;
pub use odd_sketch::OddSketch;
pub use spread_sketch::SpreadSketch;
pub use sumax::{SuMax, SuMaxMode};
pub use tower::TowerSketch;
pub use univmon::UnivMon;
