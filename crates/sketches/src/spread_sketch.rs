//! SpreadSketch (Tang, Huang, Lee, INFOCOM 2020): invertible,
//! network-wide superspreader detection.
//!
//! Each bucket pairs a Flajolet–Martin multiresolution bitmap (the
//! spread estimator) with a *candidate key* replaced whenever an update
//! arrives at a higher FM level — so the heaviest spreaders' keys can be
//! recovered from the sketch alone, without enumerating a key universe
//! (the invertibility BeauCoup lacks; cited as \[54\] in the paper).

use std::collections::HashMap;

use flymon_rmt::hash::murmur3_32;

const FM_BITS: u32 = 32;
/// Flajolet–Martin bias correction constant.
const FM_PHI: f64 = 0.77351;

#[derive(Debug, Clone, Default)]
struct Bucket {
    bitmap: u32,
    candidate: Option<Vec<u8>>,
    level: u32,
}

impl Bucket {
    /// FM estimate: `2^R / φ` with `R` the lowest unset bit.
    fn estimate(&self) -> f64 {
        let r = (!self.bitmap).trailing_zeros().min(FM_BITS);
        2f64.powi(r as i32) / FM_PHI
    }
}

/// A `d × w` SpreadSketch.
#[derive(Debug, Clone)]
pub struct SpreadSketch {
    rows: usize,
    width: usize,
    buckets: Vec<Bucket>,
}

impl SpreadSketch {
    /// Creates a sketch with `rows` rows of `width` buckets.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, width: usize) -> Self {
        assert!(rows > 0 && width > 0, "SpreadSketch dimensions must be positive");
        SpreadSketch {
            rows,
            width,
            buckets: vec![Bucket::default(); rows * width],
        }
    }

    /// Creates a sketch of `rows` rows within `bytes`: each bucket costs
    /// ~12 bytes (32-bit bitmap + key digest + level) in the paper's
    /// layout.
    pub fn with_memory(rows: usize, bytes: usize) -> Self {
        Self::new(rows, (bytes / 12 / rows).max(1))
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.width * 12
    }

    /// Feeds one `(key, attribute)` observation — e.g. key = SrcIP,
    /// attribute = DstIP for superspreader (worm) detection.
    pub fn update(&mut self, key: &[u8], attr: &[u8]) {
        // FM level of this attribute value: geometric with p = 1/2.
        let mut mixed = Vec::with_capacity(key.len() + attr.len());
        mixed.extend_from_slice(key);
        mixed.extend_from_slice(attr);
        let level = murmur3_32(0x5bed_0001, &mixed)
            .trailing_zeros()
            .min(FM_BITS - 1);
        for row in 0..self.rows {
            let idx =
                row * self.width + murmur3_32(0x5bed_1000 ^ row as u32, key) as usize % self.width;
            let bucket = &mut self.buckets[idx];
            bucket.bitmap |= 1 << level;
            if level >= bucket.level || bucket.candidate.is_none() {
                bucket.level = level;
                bucket.candidate = Some(key.to_vec());
            }
        }
    }

    /// Spread (distinct-attribute) estimate for a key: the minimum FM
    /// estimate over its `d` buckets.
    pub fn estimate(&self, key: &[u8]) -> f64 {
        (0..self.rows)
            .map(|row| {
                let idx = row * self.width
                    + murmur3_32(0x5bed_1000 ^ row as u32, key) as usize % self.width;
                self.buckets[idx].estimate()
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Recovers the superspreaders above `threshold` *from the sketch
    /// alone*: every bucket candidate whose (min-estimated) spread
    /// crosses the threshold. This inversion step is the point of the
    /// design.
    pub fn superspreaders(&self, threshold: f64) -> Vec<(Vec<u8>, f64)> {
        let mut out: HashMap<Vec<u8>, f64> = HashMap::new();
        for bucket in &self.buckets {
            if let Some(candidate) = &bucket.candidate {
                let est = self.estimate(candidate);
                if est >= threshold {
                    out.entry(candidate.clone()).or_insert(est);
                }
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Resets the sketch.
    pub fn clear(&mut self) {
        self.buckets.fill(Bucket::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn feed_spreader(s: &mut SpreadSketch, key: u32, fanout: u32) {
        for d in 0..fanout {
            s.update(&key.to_be_bytes(), &d.to_be_bytes());
        }
    }

    #[test]
    fn spread_estimate_is_order_of_magnitude_correct() {
        let mut s = SpreadSketch::new(3, 4096);
        feed_spreader(&mut s, 1, 4_000);
        feed_spreader(&mut s, 2, 10);
        let big = s.estimate(&1u32.to_be_bytes());
        let small = s.estimate(&2u32.to_be_bytes());
        // FM estimates are coarse (powers of two) but must separate a
        // 4000-fanout spreader from a 10-fanout one.
        assert!(big > 1_000.0, "big spreader estimated {big}");
        assert!(small < 200.0, "small key estimated {small}");
    }

    #[test]
    fn superspreaders_are_recovered_without_a_key_universe() {
        let mut s = SpreadSketch::new(3, 8192);
        // 5 true spreaders among 2000 small keys.
        for k in 0..5u32 {
            feed_spreader(&mut s, 0xAAAA_0000 | k, 3_000);
        }
        for k in 0..2_000u32 {
            feed_spreader(&mut s, k, 5);
        }
        let reported = s.superspreaders(500.0);
        let keys: HashSet<Vec<u8>> = reported.into_iter().map(|(k, _)| k).collect();
        for k in 0..5u32 {
            assert!(
                keys.contains((0xAAAA_0000u32 | k).to_be_bytes().as_slice()),
                "missed spreader {k}"
            );
        }
        // Precision: not drowning in small keys.
        assert!(keys.len() <= 25, "too many false spreaders: {}", keys.len());
    }

    #[test]
    fn duplicates_do_not_inflate_spread() {
        let mut s = SpreadSketch::new(3, 1024);
        for _ in 0..10_000 {
            s.update(b"key", b"same-destination");
        }
        assert!(s.estimate(b"key") < 16.0);
    }

    #[test]
    fn memory_accounting() {
        let s = SpreadSketch::with_memory(3, 120_000);
        assert!(s.memory_bytes() <= 120_000);
        assert_eq!(s.width, 3_333);
    }

    #[test]
    fn clear_resets_candidates() {
        let mut s = SpreadSketch::new(2, 64);
        feed_spreader(&mut s, 9, 1_000);
        s.clear();
        assert!(s.superspreaders(1.0).is_empty());
        assert!(s.estimate(&9u32.to_be_bytes()) < 2.0);
    }
}
