//! Packet Header Vector budget accounting.
//!
//! PHV bits are "a precious resource in RMT switches" (§3.1.1): every
//! dynamically-selected key needs PHV-resident fields, and the naive
//! strategy copies the *whole candidate key set* per SALU. FlyMon's
//! less-copy strategy instead materializes a few 32-bit compressed keys
//! per CMU Group. This module provides the allocator that both strategies
//! are costed against (Figure 13c).

use crate::RmtError;

/// A simple bump allocator over the pipeline's PHV bit budget.
///
/// PHV allocation is static per P4 program; we model it as alloc/free of
/// bit counts (container packing effects are folded into the budget
/// constant). Frees are tracked as aggregate bits, which is sufficient
/// because FlyMon only ever releases whole field groups.
#[derive(Debug, Clone)]
pub struct PhvBudget {
    capacity_bits: u64,
    used_bits: u64,
}

impl PhvBudget {
    /// Creates a budget of `capacity_bits`.
    pub fn new(capacity_bits: u64) -> Self {
        PhvBudget {
            capacity_bits,
            used_bits: 0,
        }
    }

    /// Reserves `bits` PHV bits.
    pub fn alloc(&mut self, bits: u64) -> Result<(), RmtError> {
        if self.used_bits + bits > self.capacity_bits {
            return Err(RmtError::CapacityExceeded {
                resource: "PHV bits",
                requested: bits,
                available: self.capacity_bits - self.used_bits,
            });
        }
        self.used_bits += bits;
        Ok(())
    }

    /// Releases `bits` PHV bits.
    ///
    /// # Panics
    /// Panics if more bits are freed than were allocated — that is always
    /// a bookkeeping bug in the caller.
    pub fn free(&mut self, bits: u64) {
        assert!(
            bits <= self.used_bits,
            "freeing {bits} PHV bits but only {} allocated",
            self.used_bits
        );
        self.used_bits -= bits;
    }

    /// Bits currently allocated.
    pub fn used_bits(&self) -> u64 {
        self.used_bits
    }

    /// Bits still available.
    pub fn available_bits(&self) -> u64 {
        self.capacity_bits - self.used_bits
    }

    /// Total capacity.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Fraction of the budget in use.
    pub fn utilization(&self) -> f64 {
        if self.capacity_bits == 0 {
            0.0
        } else {
            self.used_bits as f64 / self.capacity_bits as f64
        }
    }
}

/// Containers consumed by one PHV field allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldAlloc {
    /// 8-bit containers taken.
    pub c8: usize,
    /// 16-bit containers taken.
    pub c16: usize,
    /// 32-bit containers taken.
    pub c32: usize,
}

impl FieldAlloc {
    /// Total container bits consumed (including fragmentation).
    pub fn bits(&self) -> u64 {
        (self.c8 * 8 + self.c16 * 16 + self.c32 * 32) as u64
    }
}

/// A container-granular PHV allocator.
///
/// Where [`PhvBudget`] counts raw bits, `ContainerPool` models the real
/// constraint: PHV is made of fixed-width *containers* (Tofino 1: 64×8b,
/// 96×16b, 64×32b per pipeline = the 4096-bit budget), and a field
/// occupies whole containers — a 4-bit field still burns an 8-bit
/// container. This is why the naive per-SALU key copy of §3.1.1 is even
/// worse than its bit count suggests.
#[derive(Debug, Clone)]
pub struct ContainerPool {
    free8: usize,
    free16: usize,
    free32: usize,
}

impl ContainerPool {
    /// The Tofino 1 container mix (sums to 4096 bits).
    pub fn tofino1() -> Self {
        ContainerPool {
            free8: 64,
            free16: 96,
            free32: 64,
        }
    }

    /// Creates a pool with an explicit container mix.
    pub fn new(c8: usize, c16: usize, c32: usize) -> Self {
        ContainerPool {
            free8: c8,
            free16: c16,
            free32: c32,
        }
    }

    /// Bits still free (container-granular).
    pub fn free_bits(&self) -> u64 {
        (self.free8 * 8 + self.free16 * 16 + self.free32 * 32) as u64
    }

    /// Allocates containers for a `bits`-wide field. Wide fields take
    /// 32-bit containers first; the remainder takes the smallest class
    /// that fits, widening (or combining two smaller containers) when a
    /// class is exhausted.
    pub fn alloc_field(&mut self, bits: u32) -> Result<FieldAlloc, RmtError> {
        let mut plan = FieldAlloc::default();
        let mut remaining = bits;
        let mut scratch = self.clone();

        while remaining > 32 && scratch.free32 > 0 {
            scratch.free32 -= 1;
            plan.c32 += 1;
            remaining -= 32;
        }
        while remaining > 0 {
            let took = if remaining <= 8 && scratch.free8 > 0 {
                scratch.free8 -= 1;
                plan.c8 += 1;
                remaining.min(8)
            } else if remaining <= 16 && scratch.free16 > 0 {
                scratch.free16 -= 1;
                plan.c16 += 1;
                remaining.min(16)
            } else if scratch.free32 > 0 {
                scratch.free32 -= 1;
                plan.c32 += 1;
                remaining.min(32)
            } else if scratch.free16 > 0 {
                scratch.free16 -= 1;
                plan.c16 += 1;
                remaining.min(16)
            } else if scratch.free8 > 0 {
                scratch.free8 -= 1;
                plan.c8 += 1;
                remaining.min(8)
            } else {
                return Err(RmtError::CapacityExceeded {
                    resource: "PHV containers",
                    requested: u64::from(bits),
                    available: self.free_bits(),
                });
            };
            remaining -= took;
        }
        *self = scratch;
        Ok(plan)
    }

    /// Returns a field's containers to the pool.
    pub fn free_field(&mut self, alloc: &FieldAlloc) {
        self.free8 += alloc.c8;
        self.free16 += alloc.c16;
        self.free32 += alloc.c32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut b = PhvBudget::new(256);
        b.alloc(96).unwrap();
        assert_eq!(b.used_bits(), 96);
        assert_eq!(b.available_bits(), 160);
        b.free(32);
        assert_eq!(b.used_bits(), 64);
        assert!((b.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn alloc_beyond_capacity_fails_cleanly() {
        let mut b = PhvBudget::new(100);
        b.alloc(60).unwrap();
        let err = b.alloc(41).unwrap_err();
        assert!(matches!(
            err,
            RmtError::CapacityExceeded {
                requested: 41,
                available: 40,
                ..
            }
        ));
        // Failed alloc must not leak.
        assert_eq!(b.used_bits(), 60);
        b.alloc(40).unwrap();
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut b = PhvBudget::new(10);
        b.free(1);
    }

    #[test]
    fn tofino1_container_mix_sums_to_4096_bits() {
        assert_eq!(ContainerPool::tofino1().free_bits(), 4096);
    }

    #[test]
    fn five_tuple_field_takes_three_32s_and_an_8() {
        let mut pool = ContainerPool::tofino1();
        let alloc = pool.alloc_field(104).unwrap();
        assert_eq!(alloc, FieldAlloc { c8: 1, c16: 0, c32: 3 });
        assert_eq!(alloc.bits(), 104);
        assert_eq!(pool.free_bits(), 4096 - 104);
        pool.free_field(&alloc);
        assert_eq!(pool.free_bits(), 4096);
    }

    #[test]
    fn small_fields_fragment_whole_containers() {
        // A 4-bit field still burns an 8-bit container.
        let mut pool = ContainerPool::new(1, 0, 0);
        let alloc = pool.alloc_field(4).unwrap();
        assert_eq!(alloc.bits(), 8);
        assert_eq!(pool.free_bits(), 0);
    }

    #[test]
    fn class_exhaustion_widens_or_combines() {
        // No 16-bit containers: a 16-bit field falls back to a 32.
        let mut pool = ContainerPool::new(0, 0, 1);
        let alloc = pool.alloc_field(16).unwrap();
        assert_eq!(alloc, FieldAlloc { c8: 0, c16: 0, c32: 1 });
        // No 32s left: a 32-bit field combines two 16s.
        let mut pool = ContainerPool::new(0, 2, 0);
        let alloc = pool.alloc_field(32).unwrap();
        assert_eq!(alloc, FieldAlloc { c8: 0, c16: 2, c32: 0 });
    }

    #[test]
    fn exhaustion_is_atomic() {
        let mut pool = ContainerPool::new(1, 0, 0);
        // 40 bits cannot fit; the failed alloc must not leak containers.
        assert!(pool.alloc_field(40).is_err());
        assert_eq!(pool.free_bits(), 8);
        assert!(pool.alloc_field(8).is_ok());
    }

    #[test]
    fn only_224_eight_bit_fields_fit_despite_4096_bits() {
        // The fragmentation story: 4096 nominal bits host at most
        // 64+96+64 = 224 single-byte fields.
        let mut pool = ContainerPool::tofino1();
        let mut n = 0;
        while pool.alloc_field(8).is_ok() {
            n += 1;
        }
        assert_eq!(n, 224);
    }
}
