//! Stateful memory: fixed-geometry register (bucket) arrays in SRAM.

use crate::RmtError;

/// A register: an array of fixed-width buckets bound to one SALU.
///
/// Geometry (bucket count and bit width) is frozen at construction,
/// mirroring the hardware constraint of §3.3: "The configuration of the
/// stateful memory (i.e., size and bit-width) cannot be changed at
/// runtime". FlyMon's dynamic memory management never resizes a register;
/// it re-maps address ranges instead.
///
/// Values are stored as `u32` and masked to the configured width on write,
/// so a 16-bit register wraps at 65535 exactly like hardware.
#[derive(Debug, Clone)]
pub struct Register {
    width_bits: u8,
    buckets: Vec<u32>,
    /// Half-open bucket range written since the last
    /// [`Register::clear_dirty`] (`None` = untouched). Checkpoint delta
    /// capture reads this so periodic snapshots copy only the SRAM that
    /// actually changed.
    dirty: Option<(usize, usize)>,
}

impl Register {
    /// Creates a register with `buckets` buckets of `width_bits` bits.
    ///
    /// # Panics
    /// Panics if `width_bits` is 0 or exceeds 32, or if `buckets` is not a
    /// power of two (FlyMon's address translation assumes 2^n geometry).
    pub fn new(buckets: usize, width_bits: u8) -> Self {
        assert!((1..=32).contains(&width_bits), "width must be 1..=32 bits");
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a power of two (got {buckets})"
        );
        Register {
            width_bits,
            buckets: vec![0; buckets],
            dirty: None,
        }
    }

    /// Extends the dirty watermark to cover `[start, end)`.
    ///
    /// `pub(crate)` so [`crate::salu::Salu::execute_batch`] can fold a
    /// whole batch's writes into one running `(min, max)` mark instead
    /// of one call per write. The watermark is a *union* of marks
    /// (`mark(a) ∪ mark(b) == mark(a ∪ b)`), so batching the marks is
    /// observationally identical to per-write marking — delta
    /// checkpoints see the same range.
    pub(crate) fn mark_dirty(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        self.dirty = Some(match self.dirty {
            Some((lo, hi)) => (lo.min(start), hi.max(end)),
            None => (start, end),
        });
    }

    /// The half-open bucket range written since the last
    /// [`Register::clear_dirty`] (or construction), if any. A single
    /// watermark range, not an exact set: it may cover untouched buckets
    /// between two distant writes, but never misses a written one.
    pub fn dirty_range(&self) -> Option<(usize, usize)> {
        self.dirty
    }

    /// Resets dirty tracking — the snapshot barrier a checkpoint capture
    /// places after copying the dirty range.
    pub fn clear_dirty(&mut self) {
        self.dirty = None;
    }

    /// Bucket bit width.
    pub fn width_bits(&self) -> u8 {
        self.width_bits
    }

    /// Maximum representable bucket value.
    pub fn max_value(&self) -> u32 {
        if self.width_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.width_bits) - 1
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the register has no buckets (never the case after
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// SRAM footprint in bits.
    pub fn size_bits(&self) -> u64 {
        self.buckets.len() as u64 * u64::from(self.width_bits)
    }

    /// Reads the bucket at `addr`.
    pub fn read(&self, addr: usize) -> Result<u32, RmtError> {
        self.buckets
            .get(addr)
            .copied()
            .ok_or(RmtError::IndexOutOfRange {
                what: "bucket",
                index: addr,
                limit: self.buckets.len(),
            })
    }

    /// Writes the bucket at `addr`, masking to the register width.
    pub fn write(&mut self, addr: usize, value: u32) -> Result<(), RmtError> {
        let max = self.max_value();
        let limit = self.buckets.len();
        let slot = self.buckets.get_mut(addr).ok_or(RmtError::IndexOutOfRange {
            what: "bucket",
            index: addr,
            limit,
        })?;
        *slot = value & max;
        self.mark_dirty(addr, addr + 1);
        Ok(())
    }

    /// Zeroes a half-open bucket range (a control-plane reset of one
    /// task's partition at epoch boundaries or on reallocation).
    pub fn clear_range(&mut self, start: usize, end: usize) -> Result<(), RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        self.buckets[start..end].fill(0);
        self.mark_dirty(start, end);
        Ok(())
    }

    /// Hints the CPU to pull the cache line of bucket `addr` into cache.
    ///
    /// The batched datapath calls this during address resolution, one
    /// batch ahead of the SALU apply loop, so the random row accesses
    /// that dominate the per-packet budget overlap with resolve work
    /// instead of stalling the apply loop. Out-of-range addresses are
    /// ignored (the hint must never observe memory the register does
    /// not own); the hint itself cannot fault (see
    /// [`crate::prefetch::prefetch_read`]).
    #[inline]
    pub fn prefetch(&self, addr: usize) {
        if let Some(slot) = self.buckets.get(addr) {
            crate::prefetch::prefetch_read(slot);
        }
    }

    /// Raw bucket storage for the SALU's batched read-modify-write loop.
    ///
    /// Crate-internal on purpose: callers outside the substrate must go
    /// through [`Register::write`]/[`Register::clear_range`], which keep
    /// the dirty watermark honest. [`crate::salu::Salu::execute_batch`]
    /// pairs this with an explicit [`Register::mark_dirty`] covering
    /// every bucket it wrote.
    pub(crate) fn buckets_mut(&mut self) -> &mut [u32] {
        &mut self.buckets
    }

    /// Snapshot of a bucket range (the control plane's periodic readout).
    pub fn read_range(&self, start: usize, end: usize) -> Result<&[u32], RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        Ok(&self.buckets[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_enforced() {
        let r = Register::new(1024, 16);
        assert_eq!(r.len(), 1024);
        assert_eq!(r.width_bits(), 16);
        assert_eq!(r.max_value(), 65535);
        assert_eq!(r.size_bits(), 1024 * 16);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Register::new(1000, 16);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Register::new(16, 0);
    }

    #[test]
    fn write_masks_to_width() {
        let mut r = Register::new(4, 16);
        r.write(0, 0x1_2345).unwrap();
        assert_eq!(r.read(0).unwrap(), 0x2345);
        let mut r32 = Register::new(4, 32);
        r32.write(0, u32::MAX).unwrap();
        assert_eq!(r32.read(0).unwrap(), u32::MAX);
    }

    #[test]
    fn one_bit_register_behaves_like_bloom_bit() {
        let mut r = Register::new(8, 1);
        assert_eq!(r.max_value(), 1);
        r.write(3, 0xff).unwrap();
        assert_eq!(r.read(3).unwrap(), 1);
    }

    #[test]
    fn out_of_range_access_errors() {
        let mut r = Register::new(4, 16);
        assert!(matches!(
            r.read(4),
            Err(RmtError::IndexOutOfRange { index: 4, .. })
        ));
        assert!(r.write(17, 1).is_err());
        assert!(r.clear_range(0, 5).is_err());
        assert!(r.read_range(3, 2).is_err());
    }

    #[test]
    fn dirty_watermark_tracks_writes() {
        let mut r = Register::new(64, 16);
        assert_eq!(r.dirty_range(), None, "fresh register is clean");
        r.write(10, 1).unwrap();
        assert_eq!(r.dirty_range(), Some((10, 11)));
        r.write(3, 1).unwrap();
        r.write(20, 1).unwrap();
        assert_eq!(r.dirty_range(), Some((3, 21)), "watermark spans all writes");
        r.clear_dirty();
        assert_eq!(r.dirty_range(), None);
        // clear_range dirties too (a reset must reach the next delta).
        r.clear_range(8, 16).unwrap();
        assert_eq!(r.dirty_range(), Some((8, 16)));
        // Out-of-range writes leave the watermark untouched.
        r.clear_dirty();
        assert!(r.write(99, 1).is_err());
        assert_eq!(r.dirty_range(), None);
    }

    #[test]
    fn clear_range_is_half_open() {
        let mut r = Register::new(8, 16);
        for i in 0..8 {
            r.write(i, 7).unwrap();
        }
        r.clear_range(2, 5).unwrap();
        assert_eq!(r.read_range(0, 8).unwrap(), &[7, 7, 0, 0, 0, 7, 7, 7]);
    }
}
