//! Stateful memory: fixed-geometry register (bucket) arrays in SRAM.

use crate::RmtError;

/// A register: an array of fixed-width buckets bound to one SALU.
///
/// Geometry (bucket count and bit width) is frozen at construction,
/// mirroring the hardware constraint of §3.3: "The configuration of the
/// stateful memory (i.e., size and bit-width) cannot be changed at
/// runtime". FlyMon's dynamic memory management never resizes a register;
/// it re-maps address ranges instead.
///
/// Values are stored as `u32` and masked to the configured width on write,
/// so a 16-bit register wraps at 65535 exactly like hardware.
#[derive(Debug, Clone)]
pub struct Register {
    width_bits: u8,
    buckets: Vec<u32>,
    /// Half-open bucket range written since the last
    /// [`Register::clear_dirty`] (`None` = untouched). Checkpoint delta
    /// capture reads this so periodic snapshots copy only the SRAM that
    /// actually changed.
    dirty: Option<(usize, usize)>,
    /// Half-open hull of buckets written since they last held zero —
    /// the epoch-elision watermark. Unlike `dirty`, checkpoint barriers
    /// do *not* retire it ([`Register::clear_dirty`] leaves it alone);
    /// only zeroing the span does ([`Register::clear_range`], a bank
    /// swap). The invariant readout elision relies on: every bucket
    /// outside this hull holds zero.
    touched: Option<(usize, usize)>,
    /// Epoch shadow bank, `None` until the first
    /// [`Register::swap_epoch_bank`]. Between a swap and the matching
    /// [`Register::retire_shadow`] it holds the archived epoch's
    /// buckets; otherwise it is all-zero and ready to become the next
    /// live bank in O(1).
    shadow: Option<ShadowBank>,
}

/// The spare bucket bank a double-buffered epoch rotation swaps in.
#[derive(Debug, Clone)]
struct ShadowBank {
    buckets: Vec<u32>,
    /// True while the bank holds an archived (not yet retired) epoch.
    holding: bool,
}

/// Union of a watermark hull with `[start, end)` (callers ensure
/// `start < end`).
fn extend(hull: Option<(usize, usize)>, start: usize, end: usize) -> (usize, usize) {
    match hull {
        Some((lo, hi)) => (lo.min(start), hi.max(end)),
        None => (start, end),
    }
}

impl Register {
    /// Creates a register with `buckets` buckets of `width_bits` bits.
    ///
    /// # Panics
    /// Panics if `width_bits` is 0 or exceeds 32, or if `buckets` is not a
    /// power of two (FlyMon's address translation assumes 2^n geometry).
    pub fn new(buckets: usize, width_bits: u8) -> Self {
        assert!((1..=32).contains(&width_bits), "width must be 1..=32 bits");
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a power of two (got {buckets})"
        );
        Register {
            width_bits,
            buckets: vec![0; buckets],
            dirty: None,
            touched: None,
            shadow: None,
        }
    }

    /// Extends the dirty watermark to cover `[start, end)`.
    ///
    /// `pub(crate)` so [`crate::salu::Salu::execute_batch`] can fold a
    /// whole batch's writes into one running `(min, max)` mark instead
    /// of one call per write. The watermark is a *union* of marks
    /// (`mark(a) ∪ mark(b) == mark(a ∪ b)`), so batching the marks is
    /// observationally identical to per-write marking — delta
    /// checkpoints see the same range.
    pub(crate) fn mark_dirty(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        self.dirty = Some(extend(self.dirty, start, end));
        self.touched = Some(extend(self.touched, start, end));
    }

    /// Extends only the checkpoint watermark — a zeroing reset must
    /// reach the next delta snapshot, but it makes buckets *less*
    /// touched, not more (see [`Register::clear_range`]).
    fn extend_dirty(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        self.dirty = Some(extend(self.dirty, start, end));
    }

    /// Subtracts `[start, end)` from the touched hull. A hull is an
    /// interval, so only clears that reach an edge can shrink it; an
    /// interior clear leaves the hull as a conservative over-cover —
    /// elision may then scan some zero buckets, but never skips a
    /// nonzero one.
    fn retire_touched(&mut self, start: usize, end: usize) {
        if let Some((lo, hi)) = self.touched {
            self.touched = if start <= lo && end >= hi {
                None
            } else if start <= lo {
                Some((end.max(lo), hi))
            } else if end >= hi {
                Some((lo, start.min(hi)))
            } else {
                Some((lo, hi))
            };
        }
    }

    /// The half-open bucket range written since the last
    /// [`Register::clear_dirty`] (or construction), if any. A single
    /// watermark range, not an exact set: it may cover untouched buckets
    /// between two distant writes, but never misses a written one.
    pub fn dirty_range(&self) -> Option<(usize, usize)> {
        self.dirty
    }

    /// Resets dirty tracking — the snapshot barrier a checkpoint capture
    /// places after copying the dirty range. The touched hull is *not*
    /// reset: a checkpoint copies data, it does not zero it.
    pub fn clear_dirty(&mut self) {
        self.dirty = None;
    }

    /// The half-open hull of buckets that may hold nonzero values:
    /// written since they last held zero. `None` means the whole
    /// register is zero — the epoch-rotation/readout elision check.
    /// Checkpoint barriers do not retire this watermark (unlike
    /// [`Register::dirty_range`]); zeroing resets and bank swaps do.
    pub fn touched_range(&self) -> Option<(usize, usize)> {
        self.touched
    }

    /// True when `[start, end)` cannot hold a nonzero bucket — it lies
    /// entirely outside the touched hull, so a readout may substitute
    /// zeros without looking at SRAM.
    pub fn is_untouched(&self, start: usize, end: usize) -> bool {
        match self.touched {
            None => true,
            Some((lo, hi)) => end <= lo || start >= hi,
        }
    }

    /// Double-buffered epoch reset: swaps the live bucket bank with the
    /// zeroed shadow bank in O(1), leaving the epoch's data readable
    /// through [`Register::archived_range`] until
    /// [`Register::retire_shadow`] re-zeroes it. After the swap the
    /// live bank is all-zero, so the touched hull drops to `None`.
    ///
    /// The checkpoint watermark is *not* extended here: the register
    /// does not know which sub-ranges were task partitions. The control
    /// plane marks each retired partition via
    /// [`Register::mark_epoch_cleared`] so delta checkpoints ship the
    /// zeroed ranges, exactly as a [`Register::clear_range`] sweep
    /// would have.
    ///
    /// The first call allocates the shadow bank; a bank still holding
    /// an unretired archive (an aborted rotation) is re-zeroed first,
    /// so stale epochs can never leak into the live bank.
    pub fn swap_epoch_bank(&mut self) {
        let bank = self.shadow.get_or_insert_with(|| ShadowBank {
            buckets: vec![0; self.buckets.len()],
            holding: false,
        });
        if bank.holding {
            bank.buckets.fill(0);
        }
        std::mem::swap(&mut self.buckets, &mut bank.buckets);
        bank.holding = true;
        self.touched = None;
    }

    /// Records that `[start, end)` was reset to zero by a bank swap:
    /// extends the checkpoint watermark (the zeros must reach the next
    /// delta) and retires the span from the touched hull. Bucket data
    /// is not inspected — the caller asserts the span is zero, which
    /// [`Register::swap_epoch_bank`] guarantees for the whole bank.
    pub fn mark_epoch_cleared(&mut self, start: usize, end: usize) -> Result<(), RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        self.extend_dirty(start, end);
        self.retire_touched(start, end);
        Ok(())
    }

    /// The archived epoch's `[start, end)`, if the shadow bank holds an
    /// unretired archive. `Ok(None)` means no archive — either no swap
    /// happened or it was retired — and the caller should treat the
    /// span as all-zero.
    pub fn archived_range(&self, start: usize, end: usize) -> Result<Option<&[u32]>, RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        Ok(self
            .shadow
            .as_ref()
            .filter(|b| b.holding)
            .map(|b| &b.buckets[start..end]))
    }

    /// Whether the shadow bank holds an unretired archived epoch.
    pub fn has_archive(&self) -> bool {
        self.shadow.as_ref().is_some_and(|b| b.holding)
    }

    /// Re-zeroes the shadow bank after the archived epoch has been
    /// merged — the O(memory) part of a rotation, paid off the
    /// ingestion-stall path. No-op when nothing is archived.
    pub fn retire_shadow(&mut self) {
        if let Some(bank) = self.shadow.as_mut() {
            if bank.holding {
                bank.buckets.fill(0);
                bank.holding = false;
            }
        }
    }

    /// Bucket bit width.
    pub fn width_bits(&self) -> u8 {
        self.width_bits
    }

    /// Maximum representable bucket value.
    pub fn max_value(&self) -> u32 {
        if self.width_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.width_bits) - 1
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the register has no buckets (never the case after
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// SRAM footprint in bits.
    pub fn size_bits(&self) -> u64 {
        self.buckets.len() as u64 * u64::from(self.width_bits)
    }

    /// Reads the bucket at `addr`.
    pub fn read(&self, addr: usize) -> Result<u32, RmtError> {
        self.buckets
            .get(addr)
            .copied()
            .ok_or(RmtError::IndexOutOfRange {
                what: "bucket",
                index: addr,
                limit: self.buckets.len(),
            })
    }

    /// Writes the bucket at `addr`, masking to the register width.
    pub fn write(&mut self, addr: usize, value: u32) -> Result<(), RmtError> {
        let max = self.max_value();
        let limit = self.buckets.len();
        let slot = self.buckets.get_mut(addr).ok_or(RmtError::IndexOutOfRange {
            what: "bucket",
            index: addr,
            limit,
        })?;
        *slot = value & max;
        self.mark_dirty(addr, addr + 1);
        Ok(())
    }

    /// Zeroes a half-open bucket range (a control-plane reset of one
    /// task's partition at epoch boundaries or on reallocation).
    pub fn clear_range(&mut self, start: usize, end: usize) -> Result<(), RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        self.buckets[start..end].fill(0);
        // The zeros must reach the next delta checkpoint, but the span
        // is now *less* touched: retire it from the elision hull.
        self.extend_dirty(start, end);
        self.retire_touched(start, end);
        Ok(())
    }

    /// Hints the CPU to pull the cache line of bucket `addr` into cache.
    ///
    /// The batched datapath calls this during address resolution, one
    /// batch ahead of the SALU apply loop, so the random row accesses
    /// that dominate the per-packet budget overlap with resolve work
    /// instead of stalling the apply loop. Out-of-range addresses are
    /// ignored (the hint must never observe memory the register does
    /// not own); the hint itself cannot fault (see
    /// [`crate::prefetch::prefetch_read`]).
    #[inline]
    pub fn prefetch(&self, addr: usize) {
        if let Some(slot) = self.buckets.get(addr) {
            crate::prefetch::prefetch_read(slot);
        }
    }

    /// Raw bucket storage for the SALU's batched read-modify-write loop.
    ///
    /// Crate-internal on purpose: callers outside the substrate must go
    /// through [`Register::write`]/[`Register::clear_range`], which keep
    /// the dirty watermark honest. [`crate::salu::Salu::execute_batch`]
    /// pairs this with an explicit [`Register::mark_dirty`] covering
    /// every bucket it wrote.
    pub(crate) fn buckets_mut(&mut self) -> &mut [u32] {
        &mut self.buckets
    }

    /// Snapshot of a bucket range (the control plane's periodic readout).
    pub fn read_range(&self, start: usize, end: usize) -> Result<&[u32], RmtError> {
        if end > self.buckets.len() || start > end {
            return Err(RmtError::IndexOutOfRange {
                what: "bucket range end",
                index: end,
                limit: self.buckets.len(),
            });
        }
        Ok(&self.buckets[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_enforced() {
        let r = Register::new(1024, 16);
        assert_eq!(r.len(), 1024);
        assert_eq!(r.width_bits(), 16);
        assert_eq!(r.max_value(), 65535);
        assert_eq!(r.size_bits(), 1024 * 16);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Register::new(1000, 16);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Register::new(16, 0);
    }

    #[test]
    fn write_masks_to_width() {
        let mut r = Register::new(4, 16);
        r.write(0, 0x1_2345).unwrap();
        assert_eq!(r.read(0).unwrap(), 0x2345);
        let mut r32 = Register::new(4, 32);
        r32.write(0, u32::MAX).unwrap();
        assert_eq!(r32.read(0).unwrap(), u32::MAX);
    }

    #[test]
    fn one_bit_register_behaves_like_bloom_bit() {
        let mut r = Register::new(8, 1);
        assert_eq!(r.max_value(), 1);
        r.write(3, 0xff).unwrap();
        assert_eq!(r.read(3).unwrap(), 1);
    }

    #[test]
    fn out_of_range_access_errors() {
        let mut r = Register::new(4, 16);
        assert!(matches!(
            r.read(4),
            Err(RmtError::IndexOutOfRange { index: 4, .. })
        ));
        assert!(r.write(17, 1).is_err());
        assert!(r.clear_range(0, 5).is_err());
        assert!(r.read_range(3, 2).is_err());
    }

    #[test]
    fn dirty_watermark_tracks_writes() {
        let mut r = Register::new(64, 16);
        assert_eq!(r.dirty_range(), None, "fresh register is clean");
        r.write(10, 1).unwrap();
        assert_eq!(r.dirty_range(), Some((10, 11)));
        r.write(3, 1).unwrap();
        r.write(20, 1).unwrap();
        assert_eq!(r.dirty_range(), Some((3, 21)), "watermark spans all writes");
        r.clear_dirty();
        assert_eq!(r.dirty_range(), None);
        // clear_range dirties too (a reset must reach the next delta).
        r.clear_range(8, 16).unwrap();
        assert_eq!(r.dirty_range(), Some((8, 16)));
        // Out-of-range writes leave the watermark untouched.
        r.clear_dirty();
        assert!(r.write(99, 1).is_err());
        assert_eq!(r.dirty_range(), None);
    }

    #[test]
    fn touched_hull_survives_checkpoint_barriers() {
        let mut r = Register::new(64, 16);
        assert!(r.is_untouched(0, 64), "fresh register is all-zero");
        r.write(10, 5).unwrap();
        r.write(20, 5).unwrap();
        assert_eq!(r.touched_range(), Some((10, 21)));
        // A checkpoint barrier clears the delta watermark only.
        r.clear_dirty();
        assert_eq!(r.dirty_range(), None);
        assert_eq!(r.touched_range(), Some((10, 21)), "data is still there");
        assert!(r.is_untouched(0, 10) && r.is_untouched(21, 64));
        assert!(!r.is_untouched(15, 30));
        // Zeroing the span retires it.
        r.clear_range(10, 21).unwrap();
        assert_eq!(r.touched_range(), None);
        assert_eq!(r.dirty_range(), Some((10, 21)), "zeros reach the delta");
    }

    #[test]
    fn touched_hull_retires_conservatively() {
        let mut r = Register::new(64, 16);
        r.write(10, 1).unwrap();
        r.write(40, 1).unwrap();
        // Edge clear trims the hull.
        r.clear_range(0, 20).unwrap();
        assert_eq!(r.touched_range(), Some((20, 41)));
        r.clear_range(41, 64).unwrap();
        assert_eq!(r.touched_range(), Some((20, 41)));
        // Interior clear keeps the hull (conservative over-cover).
        r.clear_range(25, 30).unwrap();
        assert_eq!(r.touched_range(), Some((20, 41)));
    }

    #[test]
    fn bank_swap_archives_and_zeroes() {
        let mut r = Register::new(8, 16);
        for i in 0..8 {
            r.write(i, (i as u32) + 1).unwrap();
        }
        assert!(!r.has_archive());
        r.swap_epoch_bank();
        // Live bank is zero, archive holds the epoch.
        assert_eq!(r.read_range(0, 8).unwrap(), &[0; 8]);
        assert_eq!(r.touched_range(), None);
        assert_eq!(
            r.archived_range(0, 8).unwrap().unwrap(),
            &[1, 2, 3, 4, 5, 6, 7, 8]
        );
        r.mark_epoch_cleared(0, 8).unwrap();
        assert_eq!(r.dirty_range(), Some((0, 8)), "reset reaches the delta");
        r.retire_shadow();
        assert!(!r.has_archive());
        assert_eq!(r.archived_range(0, 8).unwrap(), None);
        // New traffic lands in the fresh bank.
        r.write(2, 9).unwrap();
        assert_eq!(r.touched_range(), Some((2, 3)));
    }

    #[test]
    fn unretired_archive_never_leaks_into_live_bank() {
        let mut r = Register::new(4, 16);
        r.write(0, 11).unwrap();
        r.swap_epoch_bank();
        // Rotation aborted: the archive is never retired. The next
        // epoch's traffic and swap must not resurrect bucket values.
        r.write(1, 22).unwrap();
        r.swap_epoch_bank();
        assert_eq!(r.read_range(0, 4).unwrap(), &[0; 4], "live is clean");
        assert_eq!(
            r.archived_range(0, 4).unwrap().unwrap(),
            &[0, 22, 0, 0],
            "archive holds only the epoch just rotated, not the aborted one"
        );
    }

    #[test]
    fn archived_range_checks_bounds() {
        let mut r = Register::new(4, 16);
        assert!(r.archived_range(0, 5).is_err());
        assert!(r.mark_epoch_cleared(3, 2).is_err());
        r.swap_epoch_bank();
        assert!(r.archived_range(2, 1).is_err());
    }

    #[test]
    fn clear_range_is_half_open() {
        let mut r = Register::new(8, 16);
        for i in 0..8 {
            r.write(i, 7).unwrap();
        }
        r.clear_range(2, 5).unwrap();
        assert_eq!(r.read_range(0, 8).unwrap(), &[7, 7, 0, 0, 0, 7, 7, 7]);
    }
}
