//! A software model of an RMT (Reconfigurable Match Table) switch pipeline.
//!
//! The FlyMon paper prototypes on an Intel Tofino. This crate is the
//! substitute substrate: it models the pieces of RMT hardware that
//! FlyMon's design actually leans on, with the *same constraints* the
//! hardware imposes — because those constraints are what make FlyMon's
//! contribution non-trivial:
//!
//! - [`hash`]: hash units as CRC-based 32-bit digests with **dynamic hash
//!   masks** (the `tna_dyn_hashing` feature of SDE 9.7.0, §3.1.1): the
//!   unit's input is wired to the whole candidate key set at compile time;
//!   runtime rules select which fields enter the digest.
//! - [`register`]: stateful memory with geometry (bucket count and bit
//!   width) frozen at compile time — the constraint that motivates
//!   FlyMon's address translation (§3.3).
//! - [`salu`]: stateful ALUs that can pre-load at most
//!   [`salu::MAX_REGISTER_ACTIONS`] register actions and access their
//!   register once per packet — the constraints behind the reduced
//!   operation set (§3.1.2) and the one-task-per-packet limitation (§3.3).
//! - [`tcam`]: ternary/range match tables with entry accounting, used by
//!   the preparation stage for address translation and one-hot parameter
//!   mapping.
//! - [`table`]: exact-match match-action tables (Select Key / Select
//!   Param / Select Operation).
//! - [`resources`]: the Tofino resource model — per-stage capacities and
//!   a [`resources::ResourceVector`] bookkeeping type; includes the
//!   `switch.p4` baseline occupancy used by Figure 13a.
//! - [`phv`]: Packet Header Vector budget accounting (the "PHV copy"
//!   problem and the less-copy strategy of §3.1.1, Figure 13c).
//! - [`stacking`]: cross-stacked placement of CMU Groups over MAU stages
//!   (§3.2 Figure 8), including the Appendix E mirror/recirculate splicing.
//! - [`rules`]: runtime rule kinds and the measured install-latency model
//!   the control plane uses for Table 3's deployment delays.
//! - [`checkpoint`]: versioned register-file snapshots (full and
//!   dirty-delta) with restore-to-bit-identical semantics — the state
//!   capture half of the control plane's recovery story.
//! - [`fault`]: deterministic fault injection for install-time operations
//!   (failed rule installs, dead groups, flaky channels) plus bounded
//!   retry-with-backoff — the adversary the control plane's transactional
//!   reconfiguration is tested against.
//! - [`prefetch`]: portable software-prefetch hints the batched datapath
//!   issues for SALU register rows between address resolution and the
//!   apply loop (no-op off x86_64).
//! - [`affinity`]: best-effort CPU pinning for the parallel datapath's
//!   worker threads (raw `sched_setaffinity` on Linux/x86_64, no-op
//!   elsewhere).
//!
//! Nothing here knows about sketches or tasks: this crate is "hardware".

// `deny` rather than the workspace's usual `forbid`: the two sanctioned
// exceptions are the scoped allows in [`prefetch`] (the non-faulting
// x86 PREFETCHT0 hint) and [`affinity`] (the raw sched_setaffinity
// syscall). Everything else in this crate is still rejected at compile
// time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod checkpoint;
pub mod fault;
pub mod hash;
pub mod phv;
pub mod pipeline;
pub mod prefetch;
pub mod register;
pub mod resources;
pub mod rules;
pub mod salu;
pub mod stacking;
pub mod table;
pub mod tcam;

/// Errors surfaced by the RMT substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmtError {
    /// A resource capacity would be exceeded (which resource, requested,
    /// available).
    CapacityExceeded {
        /// Human-readable resource name.
        resource: &'static str,
        /// Units requested by the failed operation.
        requested: u64,
        /// Units still available.
        available: u64,
    },
    /// A SALU already has its maximum number of pre-loaded register
    /// actions.
    RegisterActionsFull,
    /// An index (stage, unit, bucket, ...) was out of range.
    IndexOutOfRange {
        /// What kind of index was out of range.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        limit: usize,
    },
    /// A rule referenced an entity that does not exist.
    NoSuchEntity(&'static str),
    /// A checkpoint snapshot did not match the target register's
    /// geometry, format version, or count (what was mismatched).
    CheckpointMismatch(&'static str),
}

impl std::fmt::Display for RmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmtError::CapacityExceeded {
                resource,
                requested,
                available,
            } => write!(
                f,
                "capacity exceeded for {resource}: requested {requested}, available {available}"
            ),
            RmtError::RegisterActionsFull => {
                write!(f, "SALU register-action slots exhausted")
            }
            RmtError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            RmtError::NoSuchEntity(what) => write!(f, "no such {what}"),
            RmtError::CheckpointMismatch(what) => {
                write!(f, "checkpoint mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for RmtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = RmtError::CapacityExceeded {
            resource: "TCAM entries",
            requested: 100,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("TCAM"));
        assert!(s.contains("100"));
        assert!(s.contains('7'));
        assert!(RmtError::RegisterActionsFull.to_string().contains("SALU"));
        let i = RmtError::IndexOutOfRange {
            what: "stage",
            index: 13,
            limit: 12,
        };
        assert!(i.to_string().contains("stage"));
        assert!(RmtError::NoSuchEntity("task").to_string().contains("task"));
    }
}
