//! Best-effort CPU pinning for datapath worker threads.
//!
//! The ingress/worker pipeline (`flymon_netsim::datapath`) pins each
//! worker thread to its own core so a replica's register working set
//! stays in one L1/L2 and the OS cannot migrate a worker mid-replay.
//! `std` exposes no affinity API and the workspace takes no external
//! dependencies, so on Linux/x86_64 this issues the raw
//! `sched_setaffinity` syscall (nr 203) directly; everywhere else it is
//! a no-op returning `false`.
//!
//! Pinning is *purely advisory*: every caller must behave identically
//! when it fails (cgroup restrictions, fewer cores than workers,
//! unsupported target). Nothing about replay semantics — claims, merge
//! laws, per-worker state — may depend on where a thread runs; this
//! module only narrows where the scheduler may place it.
//!
//! Like [`crate::prefetch`], this is deliberately the only other unsafe
//! code in the workspace, kept behind the crate's `deny(unsafe_code)` +
//! scoped allow so the netsim crate's blanket `forbid(unsafe_code)`
//! stays intact.

/// Width of the CPU mask passed to the kernel: 1024 bits, the classic
/// `CPU_SETSIZE`, as sixteen 64-bit words.
const MASK_WORDS: usize = 16;

/// Pins the *calling thread* to `core` (best effort). Returns `true`
/// when the kernel accepted the mask, `false` on any failure or on
/// targets without the syscall — callers must treat both outcomes the
/// same apart from scheduling quality.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(core: usize) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    let bit = core % (MASK_WORDS * 64);
    mask[bit / 64] = 1u64 << (bit % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity(pid=0, len, mask) reads `len` bytes from
    // `mask`, which outlives the call and is exactly `MASK_WORDS * 8`
    // bytes; pid 0 addresses the calling thread only. The syscall
    // clobbers rcx/r11 per the x86_64 ABI, declared below. No Rust
    // memory is written by the kernel.
    #[allow(unsafe_code)]
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret, // __NR_sched_setaffinity
            in("rdi") 0i64,                 // pid 0 = calling thread
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// No-op fallback: targets without a usable affinity syscall report
/// `false` and leave scheduling to the OS.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_inert() {
        // Whatever the host allows, the call must return (no fault, no
        // hang) and computation afterwards is unaffected.
        let accepted = pin_current_thread(0);
        let sum: u64 = (0..1000u64).sum();
        assert_eq!(sum, 499_500);
        // On Linux/x86_64 pinning to CPU 0 is expected to succeed in
        // any environment that lets us run at all; elsewhere it must
        // report false rather than pretend.
        if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(!accepted);
        }
    }

    #[test]
    fn out_of_range_core_does_not_fault() {
        // A core index beyond the host's CPUs (or the mask width) must
        // degrade to a clean false/true, never UB or a crash.
        let _ = pin_current_thread(usize::MAX);
        let _ = pin_current_thread(1 << 20);
    }
}
