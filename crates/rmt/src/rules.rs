//! Runtime rules and the install-latency model behind Table 3.
//!
//! FlyMon reconfigures tasks purely by installing runtime rules through
//! southbound APIs (P4Runtime / BfRt). §5.1 reports the two measured
//! constants this model is built on:
//!
//! > "it takes around 3 ms to install a common table rule and about 16 ms
//! > to install a hash mask rule. ... the control plane supports batching
//! > multiple rules to mask the deployment delay."
//!
//! An [`InstallPlan`] therefore distinguishes three rule classes:
//! hash-mask rules (16 ms each — they reprogram a hash unit's dynamic
//! input mask), *synchronous* table rules on the install critical path
//! (3 ms each), and *batched* table rules that ride along in an already
//! open batch (a small marshalling cost each).

/// Kinds of runtime rules a task install can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// An exact-match or TCAM table entry (filter, select-key,
    /// select-param, select-operation, address translation, one-hot
    /// parameter mapping, ...).
    TableEntry,
    /// A dynamic hash mask reconfiguration of a hash unit.
    HashMask,
}

/// Milliseconds to install one common table rule (§5.1).
pub const TABLE_RULE_MS: f64 = 3.0;
/// Milliseconds to install one hash-mask rule (§5.1).
pub const HASH_MASK_RULE_MS: f64 = 16.0;
/// Marshalling cost of one additional rule inside an open batch.
pub const BATCHED_RULE_MS: f64 = 0.1;

/// The rules one task deployment must install, classified for latency.
///
/// Beyond the static rule counts, a plan records what actually happened
/// when the install sequence was *executed* against a possibly-faulty
/// substrate: how many ops needed retries and how much modeled backoff
/// those retries cost (see [`crate::fault`]). The backoff is part of the
/// deployment latency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstallPlan {
    /// Hash-mask rules (new compressed-key configurations).
    pub hash_mask_rules: usize,
    /// Table rules on the critical path (installed synchronously).
    pub sync_table_rules: usize,
    /// Table rules folded into batches.
    pub batched_table_rules: usize,
    /// Install ops that needed more than one attempt.
    pub retried_ops: usize,
    /// Modeled retry backoff spent by the executed install sequence, in
    /// milliseconds.
    pub retry_backoff_ms: f64,
}

impl InstallPlan {
    /// Total number of rules.
    pub fn total_rules(&self) -> usize {
        self.hash_mask_rules + self.sync_table_rules + self.batched_table_rules
    }

    /// Deployment latency in milliseconds under the §5.1 constants,
    /// including any modeled retry backoff.
    pub fn latency_ms(&self) -> f64 {
        self.hash_mask_rules as f64 * HASH_MASK_RULE_MS
            + self.sync_table_rules as f64 * TABLE_RULE_MS
            + self.batched_table_rules as f64 * BATCHED_RULE_MS
            + self.retry_backoff_ms
    }

    /// Merges two plans (e.g. a multi-CMU-Group deployment).
    pub fn merge(&self, other: &InstallPlan) -> InstallPlan {
        InstallPlan {
            hash_mask_rules: self.hash_mask_rules + other.hash_mask_rules,
            sync_table_rules: self.sync_table_rules + other.sync_table_rules,
            batched_table_rules: self.batched_table_rules + other.batched_table_rules,
            retried_ops: self.retried_ops + other.retried_ops,
            retry_backoff_ms: self.retry_backoff_ms + other.retry_backoff_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_uses_measured_constants() {
        let plan = InstallPlan {
            hash_mask_rules: 1,
            sync_table_rules: 2,
            batched_table_rules: 10,
            ..InstallPlan::default()
        };
        let expect = 16.0 + 6.0 + 1.0;
        assert!((plan.latency_ms() - expect).abs() < 1e-9);
        assert_eq!(plan.total_rules(), 13);
    }

    #[test]
    fn retry_backoff_counts_toward_latency_but_not_rules() {
        let plan = InstallPlan {
            sync_table_rules: 1,
            retried_ops: 2,
            retry_backoff_ms: 5.5,
            ..InstallPlan::default()
        };
        assert_eq!(plan.total_rules(), 1);
        assert!((plan.latency_ms() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_free() {
        assert_eq!(InstallPlan::default().latency_ms(), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let a = InstallPlan {
            hash_mask_rules: 1,
            sync_table_rules: 1,
            batched_table_rules: 2,
            retried_ops: 1,
            retry_backoff_ms: 0.5,
        };
        let b = a.merge(&a);
        assert_eq!(b.hash_mask_rules, 2);
        assert_eq!(b.sync_table_rules, 2);
        assert_eq!(b.batched_table_rules, 4);
        assert_eq!(b.retried_ops, 2);
        assert!((b.latency_ms() - 2.0 * a.latency_ms()).abs() < 1e-9);
    }

    #[test]
    fn all_rules_stay_well_under_100ms_for_table3_scale() {
        // §5.1: "all algorithms can be deployed within 100 ms". The
        // largest plan in Table 3 is BeauCoup-like: 1 hash mask + 8 sync
        // rules + a batch.
        let beaucoup = InstallPlan {
            hash_mask_rules: 1,
            sync_table_rules: 8,
            batched_table_rules: 1,
            ..InstallPlan::default()
        };
        assert!(beaucoup.latency_ms() < 100.0);
        assert!((beaucoup.latency_ms() - 40.1).abs() < 0.01);
    }
}
