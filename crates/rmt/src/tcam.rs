//! TCAM tables: ternary matching with range support and entry accounting.
//!
//! FlyMon's preparation stage is TCAM-hungry (§3.2 Table 2): address
//! translation matches on *address ranges* and parameter processing maps
//! hash values to one-hot encodings. This module models both the matching
//! semantics and the *entry cost* — in real TCAMs an arbitrary range
//! expands into multiple ternary entries (prefix expansion), which is why
//! FlyMon restricts itself to power-of-two partitions (§3.3, Limitation).

use crate::RmtError;

/// A ternary match over a 64-bit key: matches `x` iff
/// `(x & mask) == (value & mask)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernaryField {
    /// Match value (bits outside `mask` are ignored).
    pub value: u64,
    /// Care mask: 1-bits participate in the match.
    pub mask: u64,
}

impl TernaryField {
    /// Matches any key.
    pub const ANY: TernaryField = TernaryField { value: 0, mask: 0 };

    /// Exact match on `value`.
    pub const fn exact(value: u64) -> Self {
        TernaryField {
            value,
            mask: u64::MAX,
        }
    }

    /// True when `x` satisfies the ternary match.
    pub fn matches(&self, x: u64) -> bool {
        (x & self.mask) == (self.value & self.mask)
    }
}

/// An inclusive range match `[lo, hi]` over a 32-bit field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeField {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Inclusive upper bound.
    pub hi: u32,
}

impl RangeField {
    /// Creates a range; `lo` must not exceed `hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        RangeField { lo, hi }
    }

    /// True when `x` is inside the range.
    pub fn matches(&self, x: u32) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Number of TCAM entries this range costs after prefix expansion:
    /// the minimal set of aligned power-of-two blocks covering `[lo, hi]`.
    ///
    /// Power-of-two-aligned ranges (FlyMon's partitions) cost exactly 1.
    pub fn expansion_cost(&self) -> usize {
        let mut count = 0usize;
        let mut lo = u64::from(self.lo);
        let hi = u64::from(self.hi) + 1; // half-open
        while lo < hi {
            // Largest aligned block starting at lo that fits.
            let align = if lo == 0 { u64::MAX } else { lo & lo.wrapping_neg() };
            let mut block = align.min(hi - lo);
            // Round block down to a power of two.
            block = 1u64 << (63 - block.leading_zeros());
            lo += block;
            count += 1;
        }
        count.max(1)
    }
}

/// One TCAM entry: ternary key + optional range field + action payload.
#[derive(Debug, Clone)]
pub struct TcamEntry<A> {
    /// Priority: lower value wins among multiple matches.
    pub priority: u32,
    /// Ternary match over the table's 64-bit key (e.g. a task id).
    pub ternary: TernaryField,
    /// Optional range match over a 32-bit operand (e.g. an address).
    pub range: Option<RangeField>,
    /// Action payload returned on match.
    pub action: A,
}

impl<A> TcamEntry<A> {
    /// TCAM entry slots this logical entry consumes (range expansion).
    pub fn cost(&self) -> usize {
        self.range.map_or(1, |r| r.expansion_cost())
    }
}

/// A TCAM match-action table with a fixed entry-slot capacity and an
/// optional default action.
#[derive(Debug, Clone)]
pub struct TcamTable<A> {
    entries: Vec<TcamEntry<A>>,
    default_action: Option<A>,
    capacity_slots: usize,
    used_slots: usize,
}

impl<A> TcamTable<A> {
    /// Creates an empty table with room for `capacity_slots` entry slots.
    pub fn new(capacity_slots: usize) -> Self {
        TcamTable {
            entries: Vec::new(),
            default_action: None,
            capacity_slots,
            used_slots: 0,
        }
    }

    /// Sets the action returned when nothing matches. A default action
    /// occupies no TCAM slot (it lives in the table's action RAM).
    pub fn set_default(&mut self, action: A) {
        self.default_action = Some(action);
    }

    /// Installs an entry, accounting for its expansion cost.
    pub fn insert(&mut self, entry: TcamEntry<A>) -> Result<(), RmtError> {
        let cost = entry.cost();
        if self.used_slots + cost > self.capacity_slots {
            return Err(RmtError::CapacityExceeded {
                resource: "TCAM entry slots",
                requested: cost as u64,
                available: (self.capacity_slots - self.used_slots) as u64,
            });
        }
        self.used_slots += cost;
        self.entries.push(entry);
        // Keep priority order stable: lower priority value first.
        self.entries.sort_by_key(|e| e.priority);
        Ok(())
    }

    /// Removes every entry whose action satisfies `pred`, releasing slots.
    /// Returns the number of logical entries removed.
    pub fn remove_where<F: Fn(&A) -> bool>(&mut self, pred: F) -> usize {
        let before = self.entries.len();
        let mut freed = 0;
        self.entries.retain(|e| {
            if pred(&e.action) {
                freed += e.cost();
                false
            } else {
                true
            }
        });
        self.used_slots -= freed;
        before - self.entries.len()
    }

    /// Looks up the highest-priority entry matching `(key, operand)`.
    /// Falls back to the default action.
    pub fn lookup(&self, key: u64, operand: u32) -> Option<&A> {
        self.entries
            .iter()
            .find(|e| e.ternary.matches(key) && e.range.is_none_or(|r| r.matches(operand)))
            .map(|e| &e.action)
            .or(self.default_action.as_ref())
    }

    /// Entry slots currently consumed.
    pub fn used_slots(&self) -> usize {
        self.used_slots
    }

    /// Entry-slot capacity.
    pub fn capacity_slots(&self) -> usize {
        self.capacity_slots
    }

    /// Fraction of capacity in use.
    pub fn utilization(&self) -> f64 {
        if self.capacity_slots == 0 {
            0.0
        } else {
            self.used_slots as f64 / self.capacity_slots as f64
        }
    }

    /// Number of logical entries installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_matching() {
        let any = TernaryField::ANY;
        assert!(any.matches(0));
        assert!(any.matches(u64::MAX));
        let exact = TernaryField::exact(42);
        assert!(exact.matches(42));
        assert!(!exact.matches(43));
        let masked = TernaryField {
            value: 0xab00,
            mask: 0xff00,
        };
        assert!(masked.matches(0xab12));
        assert!(!masked.matches(0xac12));
    }

    #[test]
    fn range_matching_is_inclusive() {
        let r = RangeField::new(10, 20);
        assert!(!r.matches(9));
        assert!(r.matches(10));
        assert!(r.matches(20));
        assert!(!r.matches(21));
    }

    #[test]
    fn aligned_power_of_two_ranges_cost_one_entry() {
        // FlyMon partitions: [0, m/4), [m/2, 3m/4) etc. with m = 1024.
        assert_eq!(RangeField::new(0, 255).expansion_cost(), 1);
        assert_eq!(RangeField::new(512, 767).expansion_cost(), 1);
        assert_eq!(RangeField::new(0, 1023).expansion_cost(), 1);
        assert_eq!(RangeField::new(0, u32::MAX).expansion_cost(), 1);
    }

    #[test]
    fn unaligned_ranges_expand() {
        // [1, 6] = {1} {2,3} {4,5} {6} -> 4 blocks.
        assert_eq!(RangeField::new(1, 6).expansion_cost(), 4);
        // [0, 2] = {0,1} {2} -> 2 blocks.
        assert_eq!(RangeField::new(0, 2).expansion_cost(), 2);
        // Degenerate single point.
        assert_eq!(RangeField::new(7, 7).expansion_cost(), 1);
    }

    #[test]
    fn priority_order_and_default() {
        let mut t: TcamTable<&str> = TcamTable::new(16);
        t.set_default("miss");
        t.insert(TcamEntry {
            priority: 10,
            ternary: TernaryField::ANY,
            range: Some(RangeField::new(0, 100)),
            action: "low",
        })
        .unwrap();
        t.insert(TcamEntry {
            priority: 1,
            ternary: TernaryField::ANY,
            range: Some(RangeField::new(50, 60)),
            action: "high",
        })
        .unwrap();
        assert_eq!(t.lookup(0, 55), Some(&"high"));
        assert_eq!(t.lookup(0, 10), Some(&"low"));
        assert_eq!(t.lookup(0, 200), Some(&"miss"));
    }

    #[test]
    fn capacity_accounting_counts_expansion() {
        let mut t: TcamTable<u32> = TcamTable::new(4);
        // Costs 4 slots ([1,6] expands to 4 blocks).
        t.insert(TcamEntry {
            priority: 0,
            ternary: TernaryField::ANY,
            range: Some(RangeField::new(1, 6)),
            action: 0,
        })
        .unwrap();
        assert_eq!(t.used_slots(), 4);
        assert!(matches!(
            t.insert(TcamEntry {
                priority: 1,
                ternary: TernaryField::ANY,
                range: None,
                action: 1,
            }),
            Err(RmtError::CapacityExceeded { .. })
        ));
        assert_eq!(t.utilization(), 1.0);
    }

    #[test]
    fn remove_where_releases_slots() {
        let mut t: TcamTable<u32> = TcamTable::new(8);
        for i in 0..4 {
            t.insert(TcamEntry {
                priority: i,
                ternary: TernaryField::exact(u64::from(i)),
                range: None,
                action: i,
            })
            .unwrap();
        }
        assert_eq!(t.used_slots(), 4);
        let removed = t.remove_where(|&a| a % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(t.used_slots(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(0, 0), None);
        assert_eq!(t.lookup(1, 0), Some(&1));
    }

    #[test]
    fn ternary_and_range_compose() {
        let mut t: TcamTable<&str> = TcamTable::new(8);
        t.insert(TcamEntry {
            priority: 0,
            ternary: TernaryField::exact(7),
            range: Some(RangeField::new(0, 15)),
            action: "task7-low",
        })
        .unwrap();
        assert_eq!(t.lookup(7, 3), Some(&"task7-low"));
        assert_eq!(t.lookup(8, 3), None);
        assert_eq!(t.lookup(7, 16), None);
    }
}
