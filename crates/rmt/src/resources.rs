//! The Tofino resource model: per-stage capacities, occupancy vectors and
//! the `switch.p4` baseline of Figure 13a.
//!
//! Absolute capacities are calibrated to public Tofino 1 numbers and to
//! the paper's own per-stage usage table (Figure 8): 12 MAU stages, 6 hash
//! distribution units and 4 SALUs per stage, 32 VLIW instruction slots,
//! 8192 TCAM entry slots (24 blocks), 10 Mbit SRAM and 16 logical table
//! IDs per stage, and a 4096-bit PHV shared by the pipeline.

/// The six resource kinds the paper's evaluation tracks (Figure 13a),
/// plus PHV which is accounted pipeline-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Hash distribution units.
    HashUnit,
    /// Stateful ALUs.
    Salu,
    /// Stateful memory (SRAM bits).
    Sram,
    /// TCAM entry slots.
    Tcam,
    /// VLIW instruction slots.
    Vliw,
    /// Logical table IDs.
    LogicalTableId,
    /// Packet Header Vector bits (pipeline-wide).
    Phv,
}

impl ResourceKind {
    /// All kinds in the order Figure 13a plots them (PHV last).
    pub const ALL: [ResourceKind; 7] = [
        ResourceKind::HashUnit,
        ResourceKind::Salu,
        ResourceKind::Sram,
        ResourceKind::Tcam,
        ResourceKind::Vliw,
        ResourceKind::LogicalTableId,
        ResourceKind::Phv,
    ];

    /// Display name matching the paper's axis labels.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::HashUnit => "Hash Unit",
            ResourceKind::Salu => "SALU",
            ResourceKind::Sram => "SRAM",
            ResourceKind::Tcam => "TCAM",
            ResourceKind::Vliw => "VLIW",
            ResourceKind::LogicalTableId => "Logical Table",
            ResourceKind::Phv => "PHV",
        }
    }
}

/// Capacity model of one Tofino pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TofinoModel {
    /// Number of MAU stages in the pipeline (12 on Tofino 1, §3.2).
    pub stages: usize,
    /// Hash distribution units per stage (6; §5 "Setting" configures 6 per
    /// CMU Group, half for compression and half for SALU addressing).
    pub hash_units_per_stage: usize,
    /// SALUs per stage (4 on Tofino 1).
    pub salus_per_stage: usize,
    /// VLIW instruction slots per stage (32).
    pub vliw_slots_per_stage: usize,
    /// TCAM entry slots per stage (24 blocks × ~341 entries ≈ 8192; this
    /// constant is calibrated so 32 partitions cost 12.5% of a stage,
    /// matching §5.1 "only 12.5% of the TCAM is needed ... to split a CMU
    /// into 32 memory partitions").
    pub tcam_slots_per_stage: usize,
    /// SRAM bits per stage (80 blocks × 128 Kbit = 10 Mbit).
    pub sram_bits_per_stage: u64,
    /// Logical table IDs per stage (16).
    pub table_ids_per_stage: usize,
    /// PHV bits available to the whole pipeline (4096 on Tofino 1).
    pub phv_bits: u64,
}

impl Default for TofinoModel {
    fn default() -> Self {
        TofinoModel {
            stages: 12,
            hash_units_per_stage: 6,
            salus_per_stage: 4,
            vliw_slots_per_stage: 32,
            tcam_slots_per_stage: 8192,
            sram_bits_per_stage: 10 * 1024 * 1024,
            table_ids_per_stage: 16,
            phv_bits: 4096,
        }
    }
}

impl TofinoModel {
    /// Pipeline-wide capacity of a resource.
    pub fn capacity(&self, kind: ResourceKind) -> u64 {
        let s = self.stages as u64;
        match kind {
            ResourceKind::HashUnit => self.hash_units_per_stage as u64 * s,
            ResourceKind::Salu => self.salus_per_stage as u64 * s,
            ResourceKind::Sram => self.sram_bits_per_stage * s,
            ResourceKind::Tcam => self.tcam_slots_per_stage as u64 * s,
            ResourceKind::Vliw => self.vliw_slots_per_stage as u64 * s,
            ResourceKind::LogicalTableId => self.table_ids_per_stage as u64 * s,
            ResourceKind::Phv => self.phv_bits,
        }
    }

    /// Occupancy of the `switch.p4` baseline switch program (the
    /// "typical scenario" of Figure 13a). Fractions follow the public
    /// switch.p4 resource reports used by SketchLib (NSDI '22, Table 2):
    /// hash 34.5%, SALU 18.8%, SRAM 29.7%, TCAM 28.4%, VLIW 37.0%,
    /// logical table IDs 54.8%, PHV ~57%.
    pub fn baseline_switch(&self) -> ResourceVector {
        let frac = |kind: ResourceKind, f: f64| (self.capacity(kind) as f64 * f).round() as u64;
        ResourceVector {
            hash_units: frac(ResourceKind::HashUnit, 0.345),
            salus: frac(ResourceKind::Salu, 0.188),
            sram_bits: frac(ResourceKind::Sram, 0.297),
            tcam_slots: frac(ResourceKind::Tcam, 0.284),
            vliw_slots: frac(ResourceKind::Vliw, 0.370),
            table_ids: frac(ResourceKind::LogicalTableId, 0.548),
            phv_bits: frac(ResourceKind::Phv, 0.570),
        }
    }
}

/// An absolute occupancy vector over the seven resources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceVector {
    /// Hash distribution units in use.
    pub hash_units: u64,
    /// SALUs in use.
    pub salus: u64,
    /// SRAM bits in use.
    pub sram_bits: u64,
    /// TCAM entry slots in use.
    pub tcam_slots: u64,
    /// VLIW instruction slots in use.
    pub vliw_slots: u64,
    /// Logical table IDs in use.
    pub table_ids: u64,
    /// PHV bits in use.
    pub phv_bits: u64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        hash_units: 0,
        salus: 0,
        sram_bits: 0,
        tcam_slots: 0,
        vliw_slots: 0,
        table_ids: 0,
        phv_bits: 0,
    };

    /// Reads one component.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::HashUnit => self.hash_units,
            ResourceKind::Salu => self.salus,
            ResourceKind::Sram => self.sram_bits,
            ResourceKind::Tcam => self.tcam_slots,
            ResourceKind::Vliw => self.vliw_slots,
            ResourceKind::LogicalTableId => self.table_ids,
            ResourceKind::Phv => self.phv_bits,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            hash_units: self.hash_units + other.hash_units,
            salus: self.salus + other.salus,
            sram_bits: self.sram_bits + other.sram_bits,
            tcam_slots: self.tcam_slots + other.tcam_slots,
            vliw_slots: self.vliw_slots + other.vliw_slots,
            table_ids: self.table_ids + other.table_ids,
            phv_bits: self.phv_bits + other.phv_bits,
        }
    }

    /// Scales every component by an integer factor (n identical units).
    pub fn scale(&self, n: u64) -> ResourceVector {
        ResourceVector {
            hash_units: self.hash_units * n,
            salus: self.salus * n,
            sram_bits: self.sram_bits * n,
            tcam_slots: self.tcam_slots * n,
            vliw_slots: self.vliw_slots * n,
            table_ids: self.table_ids * n,
            phv_bits: self.phv_bits * n,
        }
    }

    /// Per-resource utilization fractions against `model`'s capacities.
    pub fn utilization(&self, model: &TofinoModel) -> Vec<(ResourceKind, f64)> {
        ResourceKind::ALL
            .iter()
            .map(|&k| {
                let cap = model.capacity(k);
                let frac = if cap == 0 {
                    0.0
                } else {
                    self.get(k) as f64 / cap as f64
                };
                (k, frac)
            })
            .collect()
    }

    /// True when every component fits within `model`'s capacities.
    pub fn fits(&self, model: &TofinoModel) -> bool {
        ResourceKind::ALL
            .iter()
            .all(|&k| self.get(k) <= model.capacity(k))
    }

    /// Mean utilization across the six stage resources (excludes PHV),
    /// the metric behind the paper's "less than 8.3% resource overhead
    /// per CMU Group" headline.
    pub fn mean_utilization(&self, model: &TofinoModel) -> f64 {
        let kinds = &ResourceKind::ALL[..6];
        kinds
            .iter()
            .map(|&k| self.get(k) as f64 / model.capacity(k) as f64)
            .sum::<f64>()
            / kinds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacities_match_tofino_1() {
        let m = TofinoModel::default();
        assert_eq!(m.capacity(ResourceKind::HashUnit), 72);
        assert_eq!(m.capacity(ResourceKind::Salu), 48);
        assert_eq!(m.capacity(ResourceKind::Vliw), 384);
        assert_eq!(m.capacity(ResourceKind::Tcam), 98304);
        assert_eq!(m.capacity(ResourceKind::LogicalTableId), 192);
        assert_eq!(m.capacity(ResourceKind::Phv), 4096);
        assert_eq!(m.capacity(ResourceKind::Sram), 12 * 10 * 1024 * 1024);
    }

    #[test]
    fn baseline_switch_fits_and_matches_fractions() {
        let m = TofinoModel::default();
        let base = m.baseline_switch();
        assert!(base.fits(&m));
        for (kind, frac) in base.utilization(&m) {
            let expect = match kind {
                ResourceKind::HashUnit => 0.345,
                ResourceKind::Salu => 0.188,
                ResourceKind::Sram => 0.297,
                ResourceKind::Tcam => 0.284,
                ResourceKind::Vliw => 0.370,
                ResourceKind::LogicalTableId => 0.548,
                ResourceKind::Phv => 0.570,
            };
            assert!(
                (frac - expect).abs() < 0.02,
                "{}: {frac} vs {expect}",
                kind.name()
            );
        }
    }

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVector {
            hash_units: 3,
            salus: 3,
            sram_bits: 100,
            tcam_slots: 10,
            vliw_slots: 5,
            table_ids: 4,
            phv_bits: 96,
        };
        let sum = a.add(&a);
        assert_eq!(sum.hash_units, 6);
        assert_eq!(sum.phv_bits, 192);
        let tripled = a.scale(3);
        assert_eq!(tripled.sram_bits, 300);
        assert_eq!(ResourceVector::ZERO.add(&a), a);
    }

    #[test]
    fn fits_detects_overflow() {
        let m = TofinoModel::default();
        let mut v = ResourceVector::ZERO;
        v.salus = 48;
        assert!(v.fits(&m));
        v.salus = 49;
        assert!(!v.fits(&m));
    }

    #[test]
    fn mean_utilization_excludes_phv() {
        let m = TofinoModel::default();
        let v = ResourceVector {
            phv_bits: 4096, // PHV fully used must not affect the mean
            ..ResourceVector::ZERO
        };
        assert_eq!(v.mean_utilization(&m), 0.0);
    }
}
