//! The MAU pipeline: stage-level hosting of cross-stacked CMU Groups.
//!
//! [`crate::stacking`] plans *where* group stages land;
//! [`crate::resources`] prices *what* they consume. This module ties the
//! two together: given a desired number of CMU Groups and an optional
//! baseline program (switch.p4), it verifies that a concrete pipeline
//! can host the deployment and reports per-stage headroom — the check an
//! operator runs before bringing FlyMon to a shared switch.

use crate::resources::{ResourceKind, ResourceVector, TofinoModel};
use crate::stacking::{GroupStage, Placement, StageUsage};
use crate::RmtError;

/// A validated pipeline plan: groups cross-stacked over stages, with the
/// aggregate footprint checked against a Tofino model.
#[derive(Debug, Clone)]
pub struct PipelinePlan {
    /// The stage-level placement.
    pub placement: Placement,
    /// The model the plan was validated against.
    pub model: TofinoModel,
    /// Whether a switch.p4 baseline shares the pipeline.
    pub with_baseline: bool,
}

impl PipelinePlan {
    /// Plans `groups` CMU Groups in `model`'s pipeline; when
    /// `with_baseline` is set, the switch.p4 occupancy must also fit.
    ///
    /// Fails with [`RmtError::CapacityExceeded`] when the stage count or
    /// an aggregate resource cannot host the request.
    pub fn new(
        groups: usize,
        model: TofinoModel,
        with_baseline: bool,
        footprint_per_group: &ResourceVector,
    ) -> Result<Self, RmtError> {
        // Stage capacity: cross-stacking fits stages-3 groups (plus
        // splicing, which we do not assume here).
        let max_groups = model.stages.saturating_sub(3);
        if groups > max_groups {
            return Err(RmtError::CapacityExceeded {
                resource: "MAU stages (cross-stacked CMU Groups)",
                requested: groups as u64,
                available: max_groups as u64,
            });
        }
        let placement = Placement::plan(model.stages, false);
        // Aggregate resource check.
        let mut total = footprint_per_group.scale(groups as u64);
        if with_baseline {
            total = total.add(&model.baseline_switch());
        }
        for kind in ResourceKind::ALL {
            let cap = model.capacity(kind);
            let used = total.get(kind);
            if used > cap {
                return Err(RmtError::CapacityExceeded {
                    resource: kind.name(),
                    requested: used,
                    available: cap,
                });
            }
        }
        Ok(PipelinePlan {
            placement,
            model,
            with_baseline,
        })
    }

    /// Fractional per-stage headroom of the scarcest resource across the
    /// pipeline (1.0 = completely idle stage).
    pub fn worst_stage_headroom(&self) -> f64 {
        self.placement
            .per_stage
            .iter()
            .map(|u| {
                let max_load = u.hash.max(u.vliw).max(u.tcam).max(u.salu);
                1.0 - max_load
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Which MAU stages host a given group's four pipeline stages.
    pub fn stages_of_group(&self, group: usize) -> Option<[usize; 4]> {
        let g = self
            .placement
            .groups
            .iter()
            .find(|g| g.group == group)?;
        let n = self.placement.n_stages;
        Some([
            g.first_stage,
            (g.first_stage + 1) % n,
            (g.first_stage + 2) % n,
            (g.first_stage + 3) % n,
        ])
    }

    /// Stage-usage totals across the pipeline (diagnostics).
    pub fn aggregate_stage_usage(&self) -> StageUsage {
        self.placement
            .per_stage
            .iter()
            .fold(StageUsage::default(), |acc, u| acc.add(u))
    }
}

/// Convenience: the per-stage kinds in pipeline order (re-exported for
/// report rendering).
pub const GROUP_STAGE_ORDER: [GroupStage; 4] = GroupStage::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    fn group_fp() -> ResourceVector {
        // Matches flymon::compiler::cmu_group_footprint for the default
        // geometry (kept in sync by the cross-crate integration tests).
        ResourceVector {
            hash_units: 6,
            salus: 3,
            vliw_slots: 20,
            tcam_slots: 5120,
            sram_bits: 3 * 65536 * 16,
            table_ids: 6,
            phv_bits: 432,
        }
    }

    #[test]
    fn nine_groups_fit_a_dedicated_pipeline() {
        let plan = PipelinePlan::new(9, TofinoModel::default(), false, &group_fp()).unwrap();
        assert_eq!(plan.placement.groups.len(), 9);
        assert!(plan.worst_stage_headroom() >= 0.0);
    }

    #[test]
    fn ten_groups_exceed_twelve_stages() {
        let err = PipelinePlan::new(10, TofinoModel::default(), false, &group_fp()).unwrap_err();
        assert!(matches!(
            err,
            RmtError::CapacityExceeded {
                requested: 10,
                available: 9,
                ..
            }
        ));
    }

    #[test]
    fn baseline_limits_shared_pipelines() {
        // With switch.p4 aboard, hash units run out before stages do.
        let model = TofinoModel::default();
        assert!(PipelinePlan::new(3, model, true, &group_fp()).is_ok());
        let err = PipelinePlan::new(9, model, true, &group_fp()).unwrap_err();
        assert!(matches!(err, RmtError::CapacityExceeded { .. }));
    }

    #[test]
    fn group_stage_mapping_is_shift_one() {
        let plan = PipelinePlan::new(5, TofinoModel::default(), false, &group_fp()).unwrap();
        assert_eq!(plan.stages_of_group(0), Some([0, 1, 2, 3]));
        assert_eq!(plan.stages_of_group(4), Some([4, 5, 6, 7]));
        assert_eq!(plan.stages_of_group(11), None);
    }
}
