//! Cross-stacked placement of CMU Groups over MAU stages (§3.2, Fig. 8).
//!
//! A CMU Group spans four pipeline stages — Compression (C),
//! Initialization (I), Preparation (P), Operation (O) — each with a
//! different dominant resource (Table 2). Deployed one-by-one the groups
//! would waste most of every stage; FlyMon instead shift-one-stage stacks
//! them, CPU-instruction-pipeline style, so that a single MAU stage hosts
//! the C of group *j*, the I of group *j−1*, the P of group *j−2* and the
//! O of group *j−3* simultaneously.
//!
//! Appendix E adds *splicing*: the triangle areas at the beginning and end
//! of the pipeline can host three more groups if their packets are
//! mirrored and recirculated (at a bandwidth cost).

/// The four pipeline stages of a CMU Group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupStage {
    /// Generates compressed keys from dynamic hash masks.
    Compression,
    /// Selects key and parameters for the matched task.
    Initialization,
    /// Address translation and parameter preprocessing.
    Preparation,
    /// Stateful operation on the flow attribute.
    Operation,
}

impl GroupStage {
    /// The stages in pipeline order.
    pub const ALL: [GroupStage; 4] = [
        GroupStage::Compression,
        GroupStage::Initialization,
        GroupStage::Preparation,
        GroupStage::Operation,
    ];

    /// Fraction of one MAU stage's resources this group-stage consumes —
    /// the resource-usage table of Figure 8, verbatim:
    ///
    /// | Stage | Hash | VLIW | TCAM | SALU |
    /// |-------|------|------|------|------|
    /// | C     | 50%  | 6.25%| 0%   | 0%   |
    /// | I     | 0%   | 25%  | 12.5%| 0%   |
    /// | P     | 0%   | 6.25%| 50%  | 0%   |
    /// | O     | 50%  | 25%  | 0%   | 75%  |
    pub fn usage(self) -> StageUsage {
        match self {
            GroupStage::Compression => StageUsage {
                hash: 0.50,
                vliw: 0.0625,
                tcam: 0.0,
                salu: 0.0,
            },
            GroupStage::Initialization => StageUsage {
                hash: 0.0,
                vliw: 0.25,
                tcam: 0.125,
                salu: 0.0,
            },
            GroupStage::Preparation => StageUsage {
                hash: 0.0,
                vliw: 0.0625,
                tcam: 0.50,
                salu: 0.0,
            },
            GroupStage::Operation => StageUsage {
                hash: 0.50,
                vliw: 0.25,
                tcam: 0.0,
                salu: 0.75,
            },
        }
    }

    /// Single-letter label used in layout dumps (matches Figure 8).
    pub fn letter(self) -> char {
        match self {
            GroupStage::Compression => 'C',
            GroupStage::Initialization => 'I',
            GroupStage::Preparation => 'P',
            GroupStage::Operation => 'O',
        }
    }
}

/// Per-resource fractional load of one group-stage on one MAU stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageUsage {
    /// Hash distribution units (fraction of 6/stage).
    pub hash: f64,
    /// VLIW instruction slots (fraction of 32/stage).
    pub vliw: f64,
    /// TCAM entry slots (fraction of one stage's TCAM).
    pub tcam: f64,
    /// SALUs (fraction of 4/stage).
    pub salu: f64,
}

impl StageUsage {
    /// Component-wise sum.
    pub fn add(&self, other: &StageUsage) -> StageUsage {
        StageUsage {
            hash: self.hash + other.hash,
            vliw: self.vliw + other.vliw,
            tcam: self.tcam + other.tcam,
            salu: self.salu + other.salu,
        }
    }

    /// True when every component fits in one MAU stage.
    pub fn feasible(&self) -> bool {
        const EPS: f64 = 1e-9;
        self.hash <= 1.0 + EPS
            && self.vliw <= 1.0 + EPS
            && self.tcam <= 1.0 + EPS
            && self.salu <= 1.0 + EPS
    }
}

/// Where one CMU Group landed in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlacement {
    /// Group index (0-based).
    pub group: usize,
    /// MAU stage hosting the group's Compression stage. Subsequent group
    /// stages occupy the following MAU stages, wrapping modulo the
    /// pipeline length when the group is spliced.
    pub first_stage: usize,
    /// True when the group wraps around the pipeline end and therefore
    /// needs its packets mirrored + recirculated (Appendix E).
    pub spliced: bool,
}

/// A cross-stacked layout of CMU Groups over an MAU pipeline.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of MAU stages allotted.
    pub n_stages: usize,
    /// Placed groups.
    pub groups: Vec<GroupPlacement>,
    /// Aggregate fractional load per MAU stage.
    pub per_stage: Vec<StageUsage>,
}

impl Placement {
    /// Plans a cross-stacked layout in `n_stages` MAU stages.
    ///
    /// Without splicing, `n_stages - 3` groups fit (each group needs 4
    /// consecutive stages and successors shift by one). With splicing
    /// (Appendix E), wrapped placements reclaim the triangle areas and
    /// `n_stages` groups fit, the last 3 paying mirror+recirculate
    /// bandwidth.
    ///
    /// # Panics
    /// Panics if `n_stages < 4` (a CMU Group cannot fit at all).
    pub fn plan(n_stages: usize, splice: bool) -> Placement {
        assert!(n_stages >= 4, "a CMU Group needs at least 4 MAU stages");
        let n_groups = if splice { n_stages } else { n_stages - 3 };
        let mut per_stage = vec![StageUsage::default(); n_stages];
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let spliced = g + 4 > n_stages;
            for (offset, stage_kind) in GroupStage::ALL.iter().enumerate() {
                let s = (g + offset) % n_stages;
                per_stage[s] = per_stage[s].add(&stage_kind.usage());
            }
            groups.push(GroupPlacement {
                group: g,
                first_stage: g % n_stages,
                spliced,
            });
        }
        let placement = Placement {
            n_stages,
            groups,
            per_stage,
        };
        debug_assert!(placement.feasible(), "planned placement oversubscribes");
        placement
    }

    /// True when no MAU stage is oversubscribed on any resource.
    pub fn feasible(&self) -> bool {
        self.per_stage.iter().all(StageUsage::feasible)
    }

    /// Number of CMUs hosted (3 per group, §5 "Setting").
    pub fn cmus(&self) -> usize {
        self.groups.len() * 3
    }

    /// Number of groups that require mirror + recirculation.
    pub fn spliced_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.spliced).count()
    }

    /// Pipeline-wide utilization of one resource, as used by Figure 13b:
    /// total fractional stage-loads divided by the allotted stage count.
    pub fn utilization(&self, select: fn(&StageUsage) -> f64) -> f64 {
        self.per_stage.iter().map(select).sum::<f64>() / self.n_stages as f64
    }

    /// Extra traffic fraction induced by splicing: every packet that must
    /// traverse a spliced group is mirrored once, so with uniform task
    /// assignment the bandwidth overhead is `spliced / total` of the
    /// measured traffic (Appendix E: "Only packets that need to perform
    /// the tasks on these spliced CMU Groups will incur additional
    /// bandwidth overhead").
    pub fn bandwidth_overhead(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.spliced_groups() as f64 / self.groups.len() as f64
        }
    }

    /// Renders the Figure 8 layout matrix (rows = stacked group lanes,
    /// columns = MAU stages) for the figure regenerator.
    pub fn render_layout(&self) -> String {
        let mut out = String::new();
        for lane in 0..4.min(self.groups.len()) {
            let mut row = vec!["  .  ".to_string(); self.n_stages];
            for g in self.groups.iter().skip(lane).step_by(4) {
                for (offset, kind) in GroupStage::ALL.iter().enumerate() {
                    let s = (g.first_stage + offset) % self.n_stages;
                    row[s] = format!(" {}{:<2} ", kind.letter(), g.group);
                }
            }
            out.push_str(&row.concat());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_usage_table_is_verbatim() {
        let c = GroupStage::Compression.usage();
        assert_eq!((c.hash, c.vliw, c.tcam, c.salu), (0.5, 0.0625, 0.0, 0.0));
        let o = GroupStage::Operation.usage();
        assert_eq!((o.hash, o.vliw, o.tcam, o.salu), (0.5, 0.25, 0.0, 0.75));
    }

    #[test]
    fn twelve_stages_host_nine_groups_27_cmus() {
        let p = Placement::plan(12, false);
        assert_eq!(p.groups.len(), 9);
        assert_eq!(p.cmus(), 27);
        assert_eq!(p.spliced_groups(), 0);
        assert!(p.feasible());
    }

    #[test]
    fn figure13b_utilization_at_12_stages() {
        // §5.2: "When 12 MAU stages are allocated, the utilization of Hash
        // and SALU resources reaches 75% and 56.25%".
        let p = Placement::plan(12, false);
        assert!((p.utilization(|u| u.hash) - 0.75).abs() < 1e-9);
        assert!((p.utilization(|u| u.salu) - 0.5625).abs() < 1e-9);
    }

    #[test]
    fn utilization_grows_with_stage_count() {
        let mut last = 0.0;
        for s in 4..=12 {
            let p = Placement::plan(s, false);
            let h = p.utilization(|u| u.hash);
            assert!(h >= last, "hash utilization must be monotone");
            last = h;
        }
        // At 4 stages only one group fits: hash = 1.0/4.
        let p4 = Placement::plan(4, false);
        assert!((p4.utilization(|u| u.hash) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fully_loaded_interior_stage_is_exactly_full() {
        // An interior stage hosts C+I+P+O of four consecutive groups:
        // hash 0.5+0+0+0.5 = 1.0, SALU 0.75, VLIW 0.625, TCAM 0.625.
        let p = Placement::plan(12, false);
        let s5 = &p.per_stage[5];
        assert!((s5.hash - 1.0).abs() < 1e-9);
        assert!((s5.salu - 0.75).abs() < 1e-9);
        assert!((s5.vliw - 0.625).abs() < 1e-9);
        assert!((s5.tcam - 0.625).abs() < 1e-9);
    }

    #[test]
    fn splicing_adds_three_groups_in_twelve_stages() {
        let p = Placement::plan(12, true);
        assert_eq!(p.groups.len(), 12);
        assert_eq!(p.spliced_groups(), 3);
        assert!(p.feasible());
        // With splicing every stage hosts one C and one O: hash = 100%.
        assert!((p.utilization(|u| u.hash) - 1.0).abs() < 1e-9);
        assert!((p.utilization(|u| u.salu) - 0.75).abs() < 1e-9);
        assert!((p.bandwidth_overhead() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_pipelines_rejected() {
        let _ = Placement::plan(3, false);
    }

    #[test]
    fn layout_rendering_mentions_all_groups() {
        let p = Placement::plan(8, false);
        let art = p.render_layout();
        for g in 0..5 {
            assert!(art.contains(&format!("C{g}")), "missing group {g}:\n{art}");
        }
    }
}
