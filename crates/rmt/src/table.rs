//! Exact-match match-action tables.
//!
//! The initialization stage's *Select Key* / *Select Param* tables and the
//! operation stage's *Select Operation* table (Figures 3, 5) match exactly
//! on a task identifier assigned by the first filter match. SRAM-backed
//! exact tables are cheap compared to TCAM, so we track only entry counts.

use std::collections::HashMap;
use std::hash::Hash;

use crate::RmtError;

/// An exact-match table from key `K` to action `A` with a default action
/// and a fixed entry capacity.
#[derive(Debug, Clone)]
pub struct ExactTable<K, A> {
    entries: HashMap<K, A>,
    default_action: Option<A>,
    capacity: usize,
}

impl<K: Eq + Hash, A> ExactTable<K, A> {
    /// Creates an empty table with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ExactTable {
            entries: HashMap::new(),
            default_action: None,
            capacity,
        }
    }

    /// Sets the miss action.
    pub fn set_default(&mut self, action: A) {
        self.default_action = Some(action);
    }

    /// Installs or replaces the entry for `key`.
    pub fn insert(&mut self, key: K, action: A) -> Result<(), RmtError> {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return Err(RmtError::CapacityExceeded {
                resource: "exact-match entries",
                requested: 1,
                available: 0,
            });
        }
        self.entries.insert(key, action);
        Ok(())
    }

    /// Removes the entry for `key`; returns whether one existed.
    pub fn remove(&mut self, key: &K) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Looks up `key`, falling back to the default action.
    pub fn lookup(&self, key: &K) -> Option<&A> {
        self.entries.get(key).or(self.default_action.as_ref())
    }

    /// Number of installed entries (excluding the default action).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_and_falls_back() {
        let mut t: ExactTable<u32, &str> = ExactTable::new(4);
        t.set_default("miss");
        t.insert(1, "one").unwrap();
        assert_eq!(t.lookup(&1), Some(&"one"));
        assert_eq!(t.lookup(&2), Some(&"miss"));
    }

    #[test]
    fn capacity_enforced_but_replace_allowed() {
        let mut t: ExactTable<u32, u32> = ExactTable::new(2);
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert!(t.insert(3, 30).is_err());
        // Replacing an existing key does not need a new slot.
        t.insert(1, 11).unwrap();
        assert_eq!(t.lookup(&1), Some(&11));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_frees_slot() {
        let mut t: ExactTable<u32, u32> = ExactTable::new(1);
        t.insert(1, 10).unwrap();
        assert!(t.remove(&1));
        assert!(!t.remove(&1));
        assert!(t.is_empty());
        t.insert(2, 20).unwrap();
        assert_eq!(t.lookup(&2), Some(&20));
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    fn no_default_means_true_miss() {
        let t: ExactTable<u32, u32> = ExactTable::new(4);
        assert_eq!(t.lookup(&9), None);
    }
}
