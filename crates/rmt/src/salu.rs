//! Stateful ALUs and the reduced operation set (Appendix A).

use crate::register::Register;
use crate::RmtError;

/// Maximum register actions a SALU can pre-load (§3.1.2: "each SALU in
/// Tofino can only pre-load four different operations").
pub const MAX_REGISTER_ACTIONS: usize = 4;

/// The reduced stateful operation set of Appendix A, plus a no-op.
///
/// FlyMon implements its ten built-in algorithms with only three stateful
/// operations, leaving one of the four SALU slots as expansion room (§6
/// mentions XOR for Odd Sketch as a candidate for the reserved slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatefulOp {
    /// Conditional add (Appendix A, Operation 1):
    /// `if reg[k] < p2 { reg[k] += p1; return reg[k] } else { return 0 }`.
    ///
    /// With `p2 = MAX` this degenerates to the unconditional ADD of CMS;
    /// with `p2` a threshold it implements overflow-guarded counters
    /// (TowerSketch) and conservative update (SuMax).
    CondAdd,
    /// Maximum (Appendix A, Operation 2):
    /// `if reg[k] < p1 { reg[k] = p1; return reg[k] } else { return 0 }`.
    Max,
    /// Aggregated bit-wise AND/OR (Appendix A, Operation 3):
    /// `if p2 == 0 { reg[k] &= p1 } else { reg[k] |= p1 }; return reg[k]`.
    AndOr,
    /// Bit-wise XOR: `reg[k] ^= p1; return reg[k]` — the §6 expansion
    /// example ("we can add an XOR stateful operation to implement Odd
    /// Sketch for evaluating the similarity between two traffic sets"),
    /// occupying the fourth register-action slot.
    Xor,
    /// Reserved no-op. Executes no memory update and returns the current
    /// bucket value (a plain read). Kept for CMUs that need fewer than
    /// four real operations.
    ReservedRead,
}

impl StatefulOp {
    /// Short name used in rule dumps.
    pub fn name(self) -> &'static str {
        match self {
            StatefulOp::CondAdd => "Cond-ADD",
            StatefulOp::Max => "MAX",
            StatefulOp::AndOr => "AND-OR",
            StatefulOp::Xor => "XOR",
            StatefulOp::ReservedRead => "READ",
        }
    }
}

/// Output of one stateful operation.
///
/// Tofino register actions program which value leaves the SALU; FlyMon's
/// combinatorial tasks (§4: maximum inter-arrival time, existence checks
/// feeding downstream CMUs) need the *pre-update* bucket value, while the
/// Appendix A pseudo-code returns the post-update value. Both are exposed;
/// the CMU binding selects which one is forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutput {
    /// The Appendix A return value (post-update value, or 0 when the
    /// conditional did not fire).
    pub result: u32,
    /// The bucket value *before* the operation.
    pub old: u32,
}

/// One fully resolved stateful update in a batch: the operation plus
/// its translated register address and prepared parameters.
///
/// This is what a compiled binding program's resolve pass produces per
/// matched packet (`flymon`'s stage-major batch path); the SALU then
/// applies a whole slice of these back-to-back in
/// [`Salu::execute_batch`]. `p1` is the *post-preparation* value, so a
/// downstream `old & p1` forward can reuse it without re-resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    /// The pre-loaded operation to execute.
    pub op: StatefulOp,
    /// Translated register address (already partition-mapped).
    pub addr: usize,
    /// First parameter, after preparation-stage processing.
    pub p1: u32,
    /// Second parameter, after preparation-stage processing.
    pub p2: u32,
}

/// A stateful ALU bound to one [`Register`].
///
/// Models the two hardware constraints FlyMon designs around:
/// 1. at most [`MAX_REGISTER_ACTIONS`] operations can be pre-loaded;
/// 2. the register is accessed **once per packet** ([`Salu::execute`]
///    performs exactly one read-modify-write), which is why tasks with
///    intersecting traffic cannot share a CMU (§3.3).
#[derive(Debug, Clone)]
pub struct Salu {
    register: Register,
    loaded: Vec<StatefulOp>,
}

impl Salu {
    /// Creates a SALU over a fresh register of the given geometry with no
    /// operations pre-loaded.
    pub fn new(buckets: usize, width_bits: u8) -> Self {
        Salu {
            register: Register::new(buckets, width_bits),
            loaded: Vec::new(),
        }
    }

    /// Pre-loads a register action. This happens at "compile time"; the
    /// set of loaded actions cannot grow past [`MAX_REGISTER_ACTIONS`].
    pub fn load_op(&mut self, op: StatefulOp) -> Result<(), RmtError> {
        if self.loaded.contains(&op) {
            return Ok(());
        }
        if self.loaded.len() >= MAX_REGISTER_ACTIONS {
            return Err(RmtError::RegisterActionsFull);
        }
        self.loaded.push(op);
        Ok(())
    }

    /// The pre-loaded operations.
    pub fn loaded_ops(&self) -> &[StatefulOp] {
        &self.loaded
    }

    /// Immutable access to the bound register (control-plane readout).
    pub fn register(&self) -> &Register {
        &self.register
    }

    /// Mutable access to the bound register (control-plane resets).
    pub fn register_mut(&mut self) -> &mut Register {
        &mut self.register
    }

    /// Executes one pre-loaded stateful operation at `addr` with
    /// parameters `p1`, `p2`; returns the operation's result value.
    ///
    /// Exactly one register access occurs. Attempting to execute an
    /// operation that was not pre-loaded is a programming error surfaced
    /// as [`RmtError::NoSuchEntity`] — the data plane cannot invent
    /// register actions at runtime.
    pub fn execute(
        &mut self,
        op: StatefulOp,
        addr: usize,
        p1: u32,
        p2: u32,
    ) -> Result<OpOutput, RmtError> {
        if !self.loaded.contains(&op) {
            return Err(RmtError::NoSuchEntity("pre-loaded register action"));
        }
        let max = self.register.max_value();
        let current = self.register.read(addr)?;
        let (next, result) = match op {
            StatefulOp::CondAdd => {
                if current < p2 {
                    let next = (current.wrapping_add(p1)) & max;
                    (next, next)
                } else {
                    (current, 0)
                }
            }
            StatefulOp::Max => {
                let p1 = p1 & max;
                if current < p1 {
                    (p1, p1)
                } else {
                    (current, 0)
                }
            }
            StatefulOp::AndOr => {
                let next = if p2 == 0 { current & p1 } else { current | p1 } & max;
                (next, next)
            }
            StatefulOp::Xor => {
                let next = (current ^ p1) & max;
                (next, next)
            }
            StatefulOp::ReservedRead => (current, current),
        };
        if next != current {
            self.register.write(addr, next)?;
        }
        Ok(OpOutput {
            result,
            old: current,
        })
    }

    /// Executes a batch of pre-resolved operations back-to-back,
    /// appending one [`OpOutput`] per op to `out` (in order).
    ///
    /// Semantically identical to calling [`Salu::execute`] once per
    /// entry — same per-op read-modify-write, same Appendix A results,
    /// same one-memory-access-per-packet discipline (each entry *is*
    /// one packet's access) — but with the per-op overheads hoisted out
    /// of the loop: the loaded-op check runs only when the op changes
    /// between entries (a batch from one binding program repeats one
    /// op), the width mask is computed once, and the dirty watermark is
    /// marked once with the running `(min, max)` of written addresses
    /// (a union of marks equals the mark of the union, so delta
    /// checkpoints cannot tell the difference).
    ///
    /// On error (unloaded op or out-of-range address) entries before
    /// the offending one remain applied and are reflected in the dirty
    /// mark — the same partial state a caller of the scalar path would
    /// have produced.
    pub fn execute_batch(&mut self, ops: &[BatchOp], out: &mut Vec<OpOutput>) -> Result<(), RmtError> {
        out.reserve(ops.len());
        let max = self.register.max_value();
        let limit = self.register.len();
        let mut checked: Option<StatefulOp> = None;
        // Running watermark of written buckets; one mark_dirty at the end.
        let mut dirty_lo = usize::MAX;
        let mut dirty_hi = 0usize;
        let buckets = self.register.buckets_mut();
        let mut res = Ok(());
        for b in ops {
            if checked != Some(b.op) {
                if !self.loaded.contains(&b.op) {
                    res = Err(RmtError::NoSuchEntity("pre-loaded register action"));
                    break;
                }
                checked = Some(b.op);
            }
            let Some(slot) = buckets.get_mut(b.addr) else {
                res = Err(RmtError::IndexOutOfRange {
                    what: "bucket",
                    index: b.addr,
                    limit,
                });
                break;
            };
            let current = *slot;
            let (next, result) = match b.op {
                StatefulOp::CondAdd => {
                    if current < b.p2 {
                        let next = (current.wrapping_add(b.p1)) & max;
                        (next, next)
                    } else {
                        (current, 0)
                    }
                }
                StatefulOp::Max => {
                    let p1 = b.p1 & max;
                    if current < p1 {
                        (p1, p1)
                    } else {
                        (current, 0)
                    }
                }
                StatefulOp::AndOr => {
                    let next = if b.p2 == 0 { current & b.p1 } else { current | b.p1 } & max;
                    (next, next)
                }
                StatefulOp::Xor => {
                    let next = (current ^ b.p1) & max;
                    (next, next)
                }
                StatefulOp::ReservedRead => (current, current),
            };
            if next != current {
                *slot = next;
                dirty_lo = dirty_lo.min(b.addr);
                dirty_hi = dirty_hi.max(b.addr + 1);
            }
            out.push(OpOutput {
                result,
                old: current,
            });
        }
        if dirty_lo < dirty_hi {
            self.register.mark_dirty(dirty_lo, dirty_hi);
        }
        res
    }

    /// [`Salu::execute_batch`] without the output record: register
    /// effects are bit-identical, but no [`OpOutput`]s are collected.
    ///
    /// The batch path calls this when no compiled program anywhere reads
    /// PHV contexts — the outputs would be unobservable, and skipping the
    /// per-op push keeps the apply loop a pure read-modify-write sweep.
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<(), RmtError> {
        let max = self.register.max_value();
        let limit = self.register.len();
        let mut checked: Option<StatefulOp> = None;
        let mut dirty_lo = usize::MAX;
        let mut dirty_hi = 0usize;
        let buckets = self.register.buckets_mut();
        let mut res = Ok(());
        for b in ops {
            if checked != Some(b.op) {
                if !self.loaded.contains(&b.op) {
                    res = Err(RmtError::NoSuchEntity("pre-loaded register action"));
                    break;
                }
                checked = Some(b.op);
            }
            let Some(slot) = buckets.get_mut(b.addr) else {
                res = Err(RmtError::IndexOutOfRange {
                    what: "bucket",
                    index: b.addr,
                    limit,
                });
                break;
            };
            let current = *slot;
            let next = match b.op {
                StatefulOp::CondAdd => {
                    if current < b.p2 {
                        (current.wrapping_add(b.p1)) & max
                    } else {
                        current
                    }
                }
                StatefulOp::Max => {
                    let p1 = b.p1 & max;
                    if current < p1 {
                        p1
                    } else {
                        current
                    }
                }
                StatefulOp::AndOr => {
                    (if b.p2 == 0 { current & b.p1 } else { current | b.p1 }) & max
                }
                StatefulOp::Xor => (current ^ b.p1) & max,
                StatefulOp::ReservedRead => current,
            };
            if next != current {
                *slot = next;
                dirty_lo = dirty_lo.min(b.addr);
                dirty_hi = dirty_hi.max(b.addr + 1);
            }
        }
        if dirty_lo < dirty_hi {
            self.register.mark_dirty(dirty_lo, dirty_hi);
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salu_with(ops: &[StatefulOp]) -> Salu {
        let mut s = Salu::new(16, 16);
        for &op in ops {
            s.load_op(op).unwrap();
        }
        s
    }

    #[test]
    fn cond_add_matches_appendix_a() {
        let mut s = salu_with(&[StatefulOp::CondAdd]);
        // Below threshold: add and return new value.
        assert_eq!(s.execute(StatefulOp::CondAdd, 0, 5, 100).unwrap().result, 5);
        assert_eq!(s.execute(StatefulOp::CondAdd, 0, 5, 100).unwrap().result, 10);
        // At/above threshold: no update, return 0.
        assert_eq!(s.execute(StatefulOp::CondAdd, 0, 5, 10).unwrap().result, 0);
        assert_eq!(s.register().read(0).unwrap(), 10);
    }

    #[test]
    fn cond_add_with_max_threshold_is_unconditional_add() {
        let mut s = salu_with(&[StatefulOp::CondAdd]);
        for _ in 0..3 {
            s.execute(StatefulOp::CondAdd, 1, 7, u32::MAX).unwrap();
        }
        assert_eq!(s.register().read(1).unwrap(), 21);
    }

    #[test]
    fn cond_add_wraps_at_register_width() {
        let mut s = salu_with(&[StatefulOp::CondAdd]);
        s.execute(StatefulOp::CondAdd, 0, 0xffff, u32::MAX).unwrap();
        // 0xffff + 2 wraps to 1 in a 16-bit register.
        assert_eq!(s.execute(StatefulOp::CondAdd, 0, 2, u32::MAX).unwrap().result, 1);
    }

    #[test]
    fn max_matches_appendix_a() {
        let mut s = salu_with(&[StatefulOp::Max]);
        assert_eq!(s.execute(StatefulOp::Max, 2, 9, 0).unwrap().result, 9);
        // Smaller value: no update, return 0.
        assert_eq!(s.execute(StatefulOp::Max, 2, 4, 0).unwrap().result, 0);
        assert_eq!(s.register().read(2).unwrap(), 9);
        assert_eq!(s.execute(StatefulOp::Max, 2, 11, 0).unwrap().result, 11);
    }

    #[test]
    fn and_or_matches_appendix_a() {
        let mut s = salu_with(&[StatefulOp::AndOr]);
        // p2 != 0 -> OR
        assert_eq!(s.execute(StatefulOp::AndOr, 0, 0b0101, 1).unwrap().result, 0b0101);
        assert_eq!(s.execute(StatefulOp::AndOr, 0, 0b0010, 1).unwrap().result, 0b0111);
        // p2 == 0 -> AND
        assert_eq!(s.execute(StatefulOp::AndOr, 0, 0b0011, 0).unwrap().result, 0b0011);
    }

    #[test]
    fn xor_toggles_bits() {
        let mut s = salu_with(&[StatefulOp::Xor]);
        assert_eq!(s.execute(StatefulOp::Xor, 0, 0b0110, 0).unwrap().result, 0b0110);
        assert_eq!(s.execute(StatefulOp::Xor, 0, 0b0010, 0).unwrap().result, 0b0100);
        // Toggling the same bit twice restores the bucket (the Odd
        // Sketch's defining property).
        assert_eq!(s.execute(StatefulOp::Xor, 0, 0b0100, 0).unwrap().result, 0);
        // Masked to register width.
        assert_eq!(
            s.execute(StatefulOp::Xor, 1, 0xdead_beef, 0).unwrap().result,
            0xbeef
        );
    }

    #[test]
    fn reserved_read_is_pure() {
        let mut s = salu_with(&[StatefulOp::CondAdd, StatefulOp::ReservedRead]);
        s.execute(StatefulOp::CondAdd, 5, 42, u32::MAX).unwrap();
        assert_eq!(s.execute(StatefulOp::ReservedRead, 5, 0, 0).unwrap().result, 42);
        assert_eq!(s.register().read(5).unwrap(), 42);
    }

    #[test]
    fn at_most_four_register_actions() {
        let mut s = Salu::new(4, 16);
        s.load_op(StatefulOp::CondAdd).unwrap();
        s.load_op(StatefulOp::Max).unwrap();
        s.load_op(StatefulOp::AndOr).unwrap();
        s.load_op(StatefulOp::ReservedRead).unwrap();
        // Re-loading an existing op is idempotent, not a fifth slot.
        s.load_op(StatefulOp::Max).unwrap();
        assert_eq!(s.loaded_ops().len(), 4);
    }

    #[test]
    fn executing_unloaded_op_is_rejected() {
        let mut s = salu_with(&[StatefulOp::Max]);
        assert!(matches!(
            s.execute(StatefulOp::CondAdd, 0, 1, 1),
            Err(RmtError::NoSuchEntity(_))
        ));
    }

    #[test]
    fn max_masks_parameter_to_width() {
        let mut s = salu_with(&[StatefulOp::Max]);
        // 0x12345 masked to 16 bits is 0x2345.
        assert_eq!(s.execute(StatefulOp::Max, 0, 0x1_2345, 0).unwrap().result, 0x2345);
    }

    #[test]
    fn batch_matches_scalar_execution_bit_for_bit() {
        // The batched entry point must be indistinguishable from one
        // scalar execute per entry: same outputs, same register image,
        // same dirty watermark.
        let all = [
            StatefulOp::CondAdd,
            StatefulOp::Max,
            StatefulOp::AndOr,
            StatefulOp::Xor,
        ];
        let mut scalar = salu_with(&all);
        let mut batched = salu_with(&all);
        // A deterministic pseudo-random op mix over a small register so
        // addresses collide and conditionals take both branches.
        let mut x = 0x243f_6a88u32;
        let mut ops = Vec::new();
        for _ in 0..500 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            ops.push(BatchOp {
                op: all[(x >> 13) as usize % all.len()],
                addr: (x >> 4) as usize % 16,
                p1: x >> 7,
                p2: if x & 1 == 0 { u32::MAX } else { x >> 21 },
            });
        }
        let mut scalar_out = Vec::new();
        for b in &ops {
            scalar_out.push(scalar.execute(b.op, b.addr, b.p1, b.p2).unwrap());
        }
        let mut batch_out = Vec::new();
        batched.execute_batch(&ops, &mut batch_out).unwrap();
        assert_eq!(scalar_out, batch_out);
        assert_eq!(
            scalar.register().read_range(0, 16).unwrap(),
            batched.register().read_range(0, 16).unwrap()
        );
        assert_eq!(
            scalar.register().dirty_range(),
            batched.register().dirty_range()
        );
    }

    #[test]
    fn batch_rejects_unloaded_op_and_bad_address() {
        let mut s = salu_with(&[StatefulOp::Max]);
        let mut out = Vec::new();
        let bad_op = [BatchOp { op: StatefulOp::CondAdd, addr: 0, p1: 1, p2: 1 }];
        assert!(matches!(
            s.execute_batch(&bad_op, &mut out),
            Err(RmtError::NoSuchEntity(_))
        ));
        let bad_addr = [BatchOp { op: StatefulOp::Max, addr: 99, p1: 1, p2: 0 }];
        assert!(matches!(
            s.execute_batch(&bad_addr, &mut out),
            Err(RmtError::IndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn register_prefetch_is_harmless() {
        let mut s = salu_with(&[StatefulOp::CondAdd]);
        s.execute(StatefulOp::CondAdd, 3, 9, u32::MAX).unwrap();
        s.register().prefetch(3);
        s.register().prefetch(10_000); // out of range: ignored
        assert_eq!(s.register().read(3).unwrap(), 9);
    }
}
