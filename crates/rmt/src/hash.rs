//! Hash units: CRC-based 32-bit digests with dynamic hash masks.
//!
//! Tofino's hash distribution units compute CRCs over PHV fields. The
//! polynomial is fixed per unit at compile time; what changed in SDE 9.7.0
//! (the `tna_dyn_hashing` feature FlyMon leans on, §3.1.1) is that the
//! *input symmetrization mask* became runtime-programmable: the unit is
//! wired to the whole candidate key set, and a runtime rule selects which
//! fields actually enter the digest.
//!
//! [`HashUnit`] models exactly that: polynomial fixed at construction,
//! [`HashUnit::set_mask`] installs a runtime mask ([`flymon_packet::KeySpec`]).
//!
//! The module also provides the free functions [`crc32`] and [`murmur3_32`]
//! used as seed-separated hash families by the reference sketches.

use flymon_packet::{ExtractionCache, KeySpec, Packet};

/// Well-known 32-bit CRC polynomials (reflected form), one per hash unit,
/// so distinct units behave as (approximately) independent hash functions.
///
/// Tofino likewise offers a handful of fixed polynomials per hash block.
pub const CRC32_POLYNOMIALS: [u32; 8] = [
    0xEDB8_8320, // CRC-32 (ISO-HDLC, zlib)
    0x82F6_3B78, // CRC-32C (Castagnoli)
    0xEB31_D82E, // CRC-32K (Koopman)
    0xD419_CC15, // CRC-32Q
    0x992C_1A4C, // CRC-32 (AIXM reflected)
    0xBA0D_C66B, // CRC-32/BZIP2-like variant
    0x8141_41AB, // CRC-32/MEF-like variant
    0xA833_982B, // CRC-32D
];

/// Computes a reflected CRC-32 of `bytes` with the given reflected
/// `poly` and `seed`, one bit at a time.
///
/// This is the obviously-correct reference; the hot path uses the
/// table-driven [`crc32`] (they are differentially tested against each
/// other).
pub fn crc32_bitwise(poly: u32, seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= poly;
            }
        }
    }
    !crc
}

/// Builds the byte-at-a-time lookup table for a reflected polynomial.
pub const fn crc32_table(poly: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= poly;
            }
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes a reflected CRC-32 of `bytes` using a caller-provided table
/// (from [`crc32_table`]), one byte per iteration. Kept as the simple
/// mid-tier kernel: the differential tests sandwich it between
/// [`crc32_bitwise`] and [`crc32_slice8`], and the bench reports its
/// throughput as the "old kernel" number.
pub fn crc32_with_table(table: &[u32; 256], seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Builds the slicing-by-8 table set for a reflected polynomial: 8 KiB,
/// where `tables[0]` is the byte-at-a-time table and `tables[k][b]`
/// advances the effect of byte `b` through `k` further zero bytes. An
/// 8-byte block then reduces to eight *independent* lookups XORed
/// together ([`crc32_slice8`]), instead of eight serially dependent ones.
pub const fn crc32_tables8(poly: u32) -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = crc32_table(poly);
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Const-built slicing-by-8 tables for every polynomial in
/// [`CRC32_POLYNOMIALS`] (64 KiB total). Hash units borrow these; no
/// table is ever constructed at runtime for the well-known family.
static CRC32_TABLES8: [[[u32; 256]; 8]; 8] = [
    crc32_tables8(CRC32_POLYNOMIALS[0]),
    crc32_tables8(CRC32_POLYNOMIALS[1]),
    crc32_tables8(CRC32_POLYNOMIALS[2]),
    crc32_tables8(CRC32_POLYNOMIALS[3]),
    crc32_tables8(CRC32_POLYNOMIALS[4]),
    crc32_tables8(CRC32_POLYNOMIALS[5]),
    crc32_tables8(CRC32_POLYNOMIALS[6]),
    crc32_tables8(CRC32_POLYNOMIALS[7]),
];

/// The precomputed slicing-by-8 tables of a well-known polynomial, or
/// `None` for a polynomial outside [`CRC32_POLYNOMIALS`].
pub fn tables8_for(poly: u32) -> Option<&'static [[u32; 256]; 8]> {
    CRC32_POLYNOMIALS
        .iter()
        .position(|&p| p == poly)
        .map(|i| &CRC32_TABLES8[i])
}

/// Computes a reflected CRC-32 of `bytes` eight bytes per iteration
/// (slicing-by-8), bit-identical to [`crc32_bitwise`] by construction of
/// the tables. The whole-block lookups are independent, so the CPU
/// overlaps them; the byte-at-a-time kernel is a serial chain of
/// load-XOR dependencies instead. This is the per-packet kernel behind
/// [`HashUnit::digest_bytes`].
pub fn crc32_slice8(tables: &[[u32; 256]; 8], seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        crc = advance_block(tables, crc, chunk);
    }
    for &b in chunks.remainder() {
        crc = advance_byte(tables, crc, b);
    }
    !crc
}

/// Computes a reflected CRC-32 of `bytes`. Polynomials of the well-known
/// family dispatch to their precomputed [`crc32_slice8`] tables; anything
/// else falls back to building a byte table on the fly (one-off callers
/// of exotic polynomials pay construction, per-packet paths never do).
pub fn crc32(poly: u32, seed: u32, bytes: &[u8]) -> u32 {
    match tables8_for(poly) {
        Some(tables) => crc32_slice8(tables, seed, bytes),
        None => crc32_with_table(&crc32_table(poly), seed, bytes),
    }
}

/// Lane count of the batched CRC kernel: [`crc32_slice8x8`] advances 8
/// independent digests in lockstep — wide enough to cover the
/// out-of-order window of one serial CRC chain, narrow enough that the
/// lane state (8 × u32) stays in registers.
pub const CRC_LANES: usize = 8;

/// Advances one raw (pre/post-inversion already applied by the caller)
/// CRC state through an 8-byte block with the slicing-by-8 tables.
#[inline(always)]
fn advance_block(tables: &[[u32; 256]; 8], crc: u32, chunk: &[u8]) -> u32 {
    let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
    tables[7][(lo & 0xff) as usize]
        ^ tables[6][((lo >> 8) & 0xff) as usize]
        ^ tables[5][((lo >> 16) & 0xff) as usize]
        ^ tables[4][(lo >> 24) as usize]
        ^ tables[3][(hi & 0xff) as usize]
        ^ tables[2][((hi >> 8) & 0xff) as usize]
        ^ tables[1][((hi >> 16) & 0xff) as usize]
        ^ tables[0][(hi >> 24) as usize]
}

/// Advances one raw CRC state one byte.
#[inline(always)]
fn advance_byte(tables: &[[u32; 256]; 8], crc: u32, b: u8) -> u32 {
    (crc >> 8) ^ tables[0][((crc ^ u32::from(b)) & 0xff) as usize]
}

/// Batched CRC-32: computes `out[l] = crc32_slice8(tables, seed,
/// inputs[l])` for up to [`CRC_LANES`] independent byte-strings in
/// lockstep, bit-identical to the scalar kernel by construction.
///
/// The scalar kernel is latency-bound: every table lookup depends on
/// the previous one, and for the short flow keys the compression stage
/// hashes (4–13 bytes) it degenerates to a serial byte-at-a-time chain
/// with no exploitable ILP at all. Advancing 8 *independent* lanes in
/// lockstep turns that latency chain into 8 interleaved chains the
/// out-of-order core overlaps — the same trick slicing-by-8 plays
/// *within* one long input, applied *across* inputs, which is what makes
/// it pay off for short keys too.
///
/// Lockstep covers the lanes' common prefix: whole 8-byte blocks first,
/// then single bytes up to the shortest lane's length. Bytes past the
/// common length (ragged tails) finish on the scalar path per lane.
/// In the hot case — a lane group of packets hashed under one mask —
/// every lane has the same length and the whole digest runs lockstep.
///
/// # Panics
/// Panics if `inputs` and `out` differ in length or exceed
/// [`CRC_LANES`].
pub fn crc32_lanes(tables: &[[u32; 256]; 8], seed: u32, inputs: &[&[u8]], out: &mut [u32]) {
    let n = inputs.len();
    assert!(n <= CRC_LANES, "at most {CRC_LANES} CRC lanes");
    assert_eq!(n, out.len(), "one output slot per lane");
    let mut state = [!seed; CRC_LANES];
    let common = inputs.iter().map(|i| i.len()).min().unwrap_or(0);

    // Lockstep whole blocks of the common prefix.
    let blocks = common / 8;
    for blk in 0..blocks {
        let off = blk * 8;
        for l in 0..n {
            state[l] = advance_block(tables, state[l], &inputs[l][off..off + 8]);
        }
    }
    // Lockstep single bytes up to the common length (short keys live
    // entirely here: 8 interleaved byte chains instead of one). The
    // range loop is over byte *positions* shared by all lanes, not one
    // slice — clippy's iterator rewrite doesn't apply.
    #[allow(clippy::needless_range_loop)]
    for off in blocks * 8..common {
        for l in 0..n {
            state[l] = advance_byte(tables, state[l], inputs[l][off]);
        }
    }
    // Ragged tails: per-lane scalar fallback past the common prefix.
    for l in 0..n {
        let mut crc = state[l];
        let tail = &inputs[l][common..];
        let mut chunks = tail.chunks_exact(8);
        for chunk in &mut chunks {
            crc = advance_block(tables, crc, chunk);
        }
        for &b in chunks.remainder() {
            crc = advance_byte(tables, crc, b);
        }
        out[l] = !crc;
    }
}

/// The full-width entry point of the batched kernel: 8 independent
/// byte-strings in, 8 digests out (see [`crc32_lanes`]).
pub fn crc32_slice8x8(tables: &[[u32; 256]; 8], seed: u32, inputs: &[&[u8]; CRC_LANES]) -> [u32; CRC_LANES] {
    let mut out = [0u32; CRC_LANES];
    crc32_lanes(tables, seed, inputs, &mut out);
    out
}

/// The murmur3 32-bit finalizer: a full-avalanche bit mix.
///
/// CRC32 is *linear* over GF(2): sequential or low-entropy keys produce
/// highly structured digests (e.g. 500 sequential integers can map to 500
/// distinct buckets — "too perfect" dispersion that breaks estimators
/// like Linear Counting, which assume binomial collisions). Real Tofino
/// hash paths swizzle/slice the raw CRC before distribution; this
/// finalizer models that whitening step.
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// MurmurHash3 x86_32. Used as the seedable hash family of the reference
/// sketch implementations (which are software baselines, not hardware).
pub fn murmur3_32(seed: u32, bytes: &[u8]) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;
    let mut h = seed;
    let chunks = bytes.chunks_exact(4);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h = (h ^ k).rotate_left(13).wrapping_mul(5).wrapping_add(0xe654_6b64);
    }
    let mut k: u32 = 0;
    for (i, &b) in tail.iter().enumerate() {
        k |= u32::from(b) << (8 * i);
    }
    if !tail.is_empty() {
        k = k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2);
        h ^= k;
    }
    h ^= bytes.len() as u32;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Upper bound on hash units per compression stage: one per available
/// polynomial, so every unit of a stage hashes independently.
pub const MAX_HASH_UNITS: usize = CRC32_POLYNOMIALS.len();

/// Fixed-capacity scratch buffer for one compression stage's digests.
///
/// The per-packet hot path must not allocate: a `HashScratch` lives on
/// the stack (or embedded in a reusable context) and is refilled for
/// every packet. Capacity is [`MAX_HASH_UNITS`], the most units a stage
/// can hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashScratch {
    buf: [u32; MAX_HASH_UNITS],
    len: u8,
}

impl HashScratch {
    /// Empties the scratch for a new packet.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends one unit's digest.
    ///
    /// # Panics
    /// Panics if the scratch is full — stages are validated against
    /// [`MAX_HASH_UNITS`] at construction, so this is a pipeline bug.
    pub fn push(&mut self, digest: u32) {
        assert!(
            (self.len as usize) < MAX_HASH_UNITS,
            "hash scratch overflow: a stage holds at most {MAX_HASH_UNITS} units"
        );
        self.buf[self.len as usize] = digest;
        self.len += 1;
    }

    /// The digests computed so far, in unit order.
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len as usize]
    }

    /// Number of digests held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no digest has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Computes every unit's digest for `pkt` into `out`, allocation-free.
/// The scratch is cleared first, so it can be reused across packets.
pub fn compute_all(units: &[HashUnit], pkt: &Packet, out: &mut HashScratch) {
    out.clear();
    for u in units {
        out.push(u.compute(pkt));
    }
}

/// A hash distribution unit with a runtime-programmable input mask.
///
/// The polynomial identifies the unit and is fixed at construction (like
/// hardware); the mask is a runtime rule. While the mask is unset the unit
/// is considered *free* — the control plane's resource manager uses this
/// to track compressed-key occupancy.
#[derive(Debug, Clone)]
pub struct HashUnit {
    poly: u32,
    seed: u32,
    tables: &'static [[u32; 256]; 8],
    mask: Option<KeySpec>,
}

impl HashUnit {
    /// Creates unit `index` of a stage; each index gets a distinct
    /// polynomial/seed pair so units hash independently.
    pub fn new(index: usize) -> Self {
        let poly = CRC32_POLYNOMIALS[index % CRC32_POLYNOMIALS.len()];
        HashUnit {
            poly,
            seed: 0x9e37_79b9u32.wrapping_mul(index as u32 + 1),
            tables: tables8_for(poly).expect("every family polynomial has static tables"),
            mask: None,
        }
    }

    /// Installs (or replaces) the dynamic hash mask. This is the runtime
    /// reconfiguration FlyMon's compression stage performs; it does not
    /// interrupt traffic.
    pub fn set_mask(&mut self, mask: KeySpec) {
        self.mask = Some(mask);
    }

    /// Clears the mask, returning the unit to the free pool.
    pub fn clear_mask(&mut self) {
        self.mask = None;
    }

    /// The currently installed mask, if any.
    pub fn mask(&self) -> Option<&KeySpec> {
        self.mask.as_ref()
    }

    /// True when no mask is installed.
    pub fn is_free(&self) -> bool {
        self.mask.is_none()
    }

    /// Computes the 32-bit digest of the masked candidate key for `pkt`.
    /// Returns 0 when no mask is installed (hardware would emit the CRC of
    /// an all-zero input; emitting a constant keeps "unconfigured" obvious
    /// in tests).
    pub fn compute(&self, pkt: &Packet) -> u32 {
        match &self.mask {
            None => 0,
            Some(mask) => self.compute_with(mask, pkt),
        }
    }

    /// Computes the digest for an explicit mask, bypassing the installed
    /// one. Used by planning code to predict collisions.
    pub fn compute_with(&self, mask: &KeySpec, pkt: &Packet) -> u32 {
        let key = mask.extract(pkt);
        self.digest_bytes(key.as_bytes())
    }

    /// [`HashUnit::compute`] through a per-packet [`ExtractionCache`]:
    /// units (anywhere in the pipeline) that share a `KeySpec` serialize
    /// the flow key once per packet instead of once per unit. Identical
    /// digests to `compute` — only the extraction is memoized.
    pub fn compute_cached(&self, pkt: &Packet, cache: &mut ExtractionCache) -> u32 {
        match &self.mask {
            None => 0,
            Some(mask) => self.digest_bytes(cache.get_or_extract(mask, pkt).as_bytes()),
        }
    }

    /// Hashes raw bytes with this unit's polynomial/seed: a slicing-by-8
    /// CRC32 core followed by the [`fmix32`] whitening step (see its docs
    /// for why the raw CRC is not enough). The operation stage's SALU
    /// addressing path uses this too (Tofino always routes SALU addresses
    /// through a hash distribution unit, §5 "Setting").
    pub fn digest_bytes(&self, bytes: &[u8]) -> u32 {
        fmix32(crc32_slice8(self.tables, self.seed, bytes))
    }

    /// Batched [`HashUnit::digest_bytes`]: digests up to [`CRC_LANES`]
    /// independent key byte-strings in lockstep ([`crc32_lanes`]) and
    /// whitens each lane with [`fmix32`]. Bit-identical per lane to the
    /// scalar path; the stage-major datapath's bulk-digest pass feeds it
    /// lane groups of packets hashed under this unit's mask.
    pub fn digest_lanes(&self, inputs: &[&[u8]], out: &mut [u32]) {
        crc32_lanes(self.tables, self.seed, inputs, out);
        for d in out.iter_mut() {
            *d = fmix32(*d);
        }
    }

    /// The unit's fixed polynomial (diagnostics).
    pub fn polynomial(&self) -> u32 {
        self.poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flymon_packet::PacketBuilder;

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 (zlib) of "123456789" is 0xCBF43926.
        assert_eq!(crc32(0xEDB8_8320, 0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32c_matches_known_vector() {
        // CRC-32C (Castagnoli) of "123456789" is 0xE3069283.
        assert_eq!(crc32(0x82F6_3B78, 0, b"123456789"), 0xE306_9283);
    }

    #[test]
    fn table_driven_crc_matches_bitwise_reference() {
        for (i, &poly) in CRC32_POLYNOMIALS.iter().enumerate() {
            let seed = 0x1234_5678u32.wrapping_mul(i as u32 + 1);
            for bytes in [
                &b""[..],
                b"a",
                b"123456789",
                b"the quick brown fox jumps over the lazy dog",
            ] {
                assert_eq!(
                    crc32(poly, seed, bytes),
                    crc32_bitwise(poly, seed, bytes),
                    "poly {poly:#x}, input {bytes:?}"
                );
            }
        }
    }

    #[test]
    fn slice8_matches_bitwise_reference_differentially() {
        // The tentpole kernel: random inputs of every length in 0..64,
        // all 8 family polynomials, random seeds — slicing-by-8 must be
        // bit-identical to the bit-at-a-time reference.
        let mut rng = flymon_packet::SplitMix64::new(0x0051_1ce8);
        for &poly in &CRC32_POLYNOMIALS {
            let tables = tables8_for(poly).expect("family polynomial");
            for len in 0..64usize {
                let seed = rng.next_u32();
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                let reference = crc32_bitwise(poly, seed, &bytes);
                assert_eq!(
                    crc32_slice8(tables, seed, &bytes),
                    reference,
                    "slice8 diverged: poly {poly:#x}, len {len}"
                );
                assert_eq!(
                    crc32_with_table(&tables[0], seed, &bytes),
                    reference,
                    "tables[0] must be the plain byte table: poly {poly:#x}, len {len}"
                );
            }
        }
    }

    #[test]
    fn lane_kernel_matches_scalar_differentially() {
        // The tentpole kernel: every family polynomial × every lane
        // count 1..=8 × lengths 0..64 — crc32_lanes must agree lane for
        // lane with the scalar crc32_slice8 (itself differentially tied
        // to the bitwise reference above). Lane lengths are drawn
        // independently so the ragged-tail fallback is exercised, and
        // one equal-length pass per combination covers the all-lockstep
        // hot case.
        let mut rng = flymon_packet::SplitMix64::new(0x0001_a9e5);
        for &poly in &CRC32_POLYNOMIALS {
            let tables = tables8_for(poly).expect("family polynomial");
            for lanes in 1..=CRC_LANES {
                for len in 0..64usize {
                    let seed = rng.next_u32();
                    // Ragged: lane l gets an independent length in 0..64.
                    let ragged: Vec<Vec<u8>> = (0..lanes)
                        .map(|_| {
                            let n = rng.next_u64() as usize % 64;
                            (0..n).map(|_| rng.next_u64() as u8).collect()
                        })
                        .collect();
                    // Uniform: every lane exactly `len` bytes (lockstep).
                    let uniform: Vec<Vec<u8>> = (0..lanes)
                        .map(|_| (0..len).map(|_| rng.next_u64() as u8).collect())
                        .collect();
                    for set in [&ragged, &uniform] {
                        let inputs: Vec<&[u8]> = set.iter().map(Vec::as_slice).collect();
                        let mut out = vec![0u32; lanes];
                        crc32_lanes(tables, seed, &inputs, &mut out);
                        for (l, input) in inputs.iter().enumerate() {
                            assert_eq!(
                                out[l],
                                crc32_slice8(tables, seed, input),
                                "lane {l}/{lanes} diverged: poly {poly:#x}, len {}",
                                input.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slice8x8_full_width_entry_matches_scalar() {
        let tables = tables8_for(CRC32_POLYNOMIALS[1]).expect("family polynomial");
        let keys: Vec<Vec<u8>> = (0..CRC_LANES as u8)
            .map(|l| (0..13).map(|b| l.wrapping_mul(37).wrapping_add(b)).collect())
            .collect();
        let inputs: [&[u8]; CRC_LANES] = std::array::from_fn(|l| keys[l].as_slice());
        let out = crc32_slice8x8(tables, 0x5eed, &inputs);
        for (l, input) in inputs.iter().enumerate() {
            assert_eq!(out[l], crc32_slice8(tables, 0x5eed, input), "lane {l}");
        }
    }

    #[test]
    fn digest_lanes_matches_digest_bytes() {
        let mut unit = HashUnit::new(2);
        unit.set_mask(KeySpec::FIVE_TUPLE);
        let keys: Vec<Vec<u8>> = (0..5u8).map(|l| vec![l; 4 + usize::from(l)]).collect();
        let inputs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u32; inputs.len()];
        unit.digest_lanes(&inputs, &mut out);
        for (l, input) in inputs.iter().enumerate() {
            assert_eq!(out[l], unit.digest_bytes(input), "lane {l}");
        }
    }

    #[test]
    #[should_panic(expected = "CRC lanes")]
    fn lane_kernel_rejects_overwide_groups() {
        let tables = tables8_for(CRC32_POLYNOMIALS[0]).expect("family polynomial");
        let key = [0u8; 4];
        let inputs = [&key[..]; CRC_LANES + 1];
        let mut out = [0u32; CRC_LANES + 1];
        crc32_lanes(tables, 0, &inputs, &mut out);
    }

    #[test]
    fn crc32_falls_back_for_exotic_polynomials() {
        // A polynomial outside the family has no static tables; crc32()
        // must still agree with the bitwise reference.
        let poly = 0x741B_8CD7; // CRC-32K/4.2, not in CRC32_POLYNOMIALS
        assert!(tables8_for(poly).is_none());
        assert_eq!(
            crc32(poly, 0xdead_beef, b"123456789"),
            crc32_bitwise(poly, 0xdead_beef, b"123456789")
        );
    }

    #[test]
    fn cached_compute_matches_uncached() {
        let pkt = PacketBuilder::new().src_ip(0x0a000001).dst_ip(9).build();
        let mut cache = ExtractionCache::default();
        let mut units: Vec<HashUnit> = (0..4).map(HashUnit::new).collect();
        units[0].set_mask(KeySpec::FIVE_TUPLE);
        units[1].set_mask(KeySpec::FIVE_TUPLE); // shares unit 0's extraction
        units[2].set_mask(KeySpec::SRC_IP);
        // units[3] stays free.
        for u in &units {
            assert_eq!(u.compute_cached(&pkt, &mut cache), u.compute(&pkt));
        }
        assert_eq!(cache.len(), 2, "two distinct specs, one extraction each");
    }

    #[test]
    fn murmur3_matches_known_vectors() {
        // Reference vectors from the canonical MurmurHash3 implementation.
        assert_eq!(murmur3_32(0, b""), 0);
        assert_eq!(murmur3_32(1, b""), 0x514E_28B7);
        assert_eq!(murmur3_32(0, b"test"), 0xba6b_d213);
        assert_eq!(murmur3_32(0x9747b28c, b"aaaa"), 0x5A97_808A);
    }

    #[test]
    fn units_hash_independently() {
        let pkt = PacketBuilder::new().src_ip(0x0a000001).build();
        let mut u0 = HashUnit::new(0);
        let mut u1 = HashUnit::new(1);
        u0.set_mask(KeySpec::SRC_IP);
        u1.set_mask(KeySpec::SRC_IP);
        assert_ne!(u0.compute(&pkt), u1.compute(&pkt));
    }

    #[test]
    fn mask_reconfiguration_changes_grouping() {
        let mut unit = HashUnit::new(0);
        unit.set_mask(KeySpec::SRC_IP);
        let a = unit.compute(&Packet::tcp(1, 100, 5, 5));
        let b = unit.compute(&Packet::tcp(1, 200, 6, 6));
        assert_eq!(a, b, "SrcIP mask ignores everything else");

        unit.set_mask(KeySpec::IP_PAIR);
        let a = unit.compute(&Packet::tcp(1, 100, 5, 5));
        let b = unit.compute(&Packet::tcp(1, 200, 6, 6));
        assert_ne!(a, b, "IP-pair mask distinguishes destinations");
    }

    #[test]
    fn unconfigured_unit_emits_zero_and_reports_free() {
        let mut unit = HashUnit::new(3);
        assert!(unit.is_free());
        assert_eq!(unit.compute(&Packet::tcp(1, 2, 3, 4)), 0);
        unit.set_mask(KeySpec::DST_IP);
        assert!(!unit.is_free());
        unit.clear_mask();
        assert!(unit.is_free());
    }

    #[test]
    fn prefix_masks_group_like_keyspec() {
        let mut unit = HashUnit::new(2);
        unit.set_mask(KeySpec::src_ip_slash(24));
        let a = unit.compute(&Packet::tcp(0x0a010203, 1, 1, 1));
        let b = unit.compute(&Packet::tcp(0x0a0102aa, 2, 2, 2));
        let c = unit.compute(&Packet::tcp(0x0a010303, 1, 1, 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    use flymon_packet::Packet;

    #[test]
    fn scratch_matches_per_unit_compute() {
        let pkt = PacketBuilder::new().src_ip(0x0a000001).build();
        let mut units: Vec<HashUnit> = (0..3).map(HashUnit::new).collect();
        for u in &mut units {
            u.set_mask(KeySpec::SRC_IP);
        }
        let mut scratch = HashScratch::default();
        compute_all(&units, &pkt, &mut scratch);
        assert_eq!(scratch.len(), 3);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(scratch.as_slice()[i], u.compute(&pkt));
        }
        // Reuse clears the previous packet's digests.
        compute_all(&units[..2], &pkt, &mut scratch);
        assert_eq!(scratch.len(), 2);
    }

    #[test]
    #[should_panic(expected = "hash scratch overflow")]
    fn scratch_rejects_overflow() {
        let mut scratch = HashScratch::default();
        for i in 0..=MAX_HASH_UNITS as u32 {
            scratch.push(i);
        }
    }

    #[test]
    fn digest_spreads_over_range() {
        // Sanity: hashing sequential keys should cover both halves of the
        // 32-bit range (catches accidental truncation).
        let mut unit = HashUnit::new(0);
        unit.set_mask(KeySpec::SRC_IP);
        let mut lo = 0usize;
        let mut hi = 0usize;
        for i in 0..1000u32 {
            let d = unit.compute(&Packet::tcp(i, 0, 0, 0));
            if d < u32::MAX / 2 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "skewed digests: lo={lo} hi={hi}");
    }
}
