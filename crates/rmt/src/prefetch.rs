//! Portable software-prefetch hints for register rows.
//!
//! The batched datapath resolves every SALU address of a batch before
//! applying any update (DESIGN.md § "Stage-major batching"), which
//! creates a window where the CPU can be told to start pulling the
//! random register rows into cache while the resolve loop is still
//! running. This module wraps the x86 `PREFETCHT0` hint behind a safe,
//! portable function:
//!
//! - on `x86_64` it lowers to [`core::arch::x86_64::_mm_prefetch`];
//! - on every other architecture it is a no-op (aarch64's `prfm` has no
//!   stable intrinsic; correctness never depends on the hint).
//!
//! `PREFETCHT0` is a *hint*: it performs no memory access that can
//! fault, trap or change architectural state, even for invalid
//! addresses (Intel SDM vol. 2B, PREFETCHh: "does not cause any
//! exceptions"; it is the documented idiom for speculative
//! software-directed fetching). The pointer is never dereferenced in
//! Rust semantics either — it is only passed to the intrinsic — so the
//! single `unsafe` block below cannot exhibit UB for any input. This
//! and [`crate::affinity`] are the only unsafe code in the workspace,
//! which is why this crate gates them with `deny(unsafe_code)` +
//! scoped allows instead of the blanket `forbid` the other crates use.

/// Requests that the cache line holding `*p` be pulled into all cache
/// levels. Purely advisory: a no-op on non-x86_64 targets, and never
/// faults regardless of the pointer's validity.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    // SAFETY: PREFETCHT0 is architecturally incapable of faulting and
    // performs no read or write observable by the Rust abstract
    // machine; any pointer value is acceptable.
    #[allow(unsafe_code)]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
}

/// No-op fallback for targets without a stable prefetch intrinsic.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub fn prefetch_read<T>(_p: *const T) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_inert() {
        // The hint must neither fault nor perturb the data it touches —
        // including for out-of-bounds pointers (hints cannot fault).
        let v = vec![7u32; 64];
        prefetch_read(&v[0]);
        prefetch_read(&v[63]);
        prefetch_read(v.as_ptr().wrapping_add(1 << 20));
        assert!(v.iter().all(|&x| x == 7));
    }
}
