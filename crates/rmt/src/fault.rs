//! Deterministic fault injection for install-time operations.
//!
//! FlyMon's reconfiguration story only holds if a deployment that fails
//! halfway — a rejected rule install, a dead CMU group, a flaky
//! southbound channel — leaves the pipeline exactly as it was. This
//! module supplies the *failures*: a seedable [`FaultPlan`] that judges
//! every install-time operation (rule installs, buddy-descriptor writes,
//! register writes) and can be armed to fail the Nth op, a whole class of
//! ops, every op touching a dead group, a random fraction of attempts, or
//! the first k attempts of every op (transient faults).
//!
//! The control plane executes each op through [`FaultPlan::execute`],
//! which also applies a [`RetryPolicy`]: bounded attempts with modeled
//! exponential backoff. The backoff is *modeled* time — it is returned in
//! [`OpCost`] and folded into the install-latency accounting, never
//! slept.
//!
//! Everything is deterministic given the seed: the same plan over the
//! same op sequence produces the same verdicts, so rollback tests can
//! sweep "fail exactly the Nth op" exhaustively.

use crate::rules::RuleKind;
use flymon_packet::SplitMix64;

/// The classes of install-time operations a [`FaultPlan`] can interdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstallOpKind {
    /// Installing (or deleting) a runtime rule of the given kind.
    Rule(RuleKind),
    /// Writing a partition descriptor (buddy-allocator commit).
    BuddyWrite,
    /// Writing register buckets (partition clear / restore).
    RegisterWrite,
}

impl std::fmt::Display for InstallOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallOpKind::Rule(RuleKind::TableEntry) => write!(f, "table-entry rule"),
            InstallOpKind::Rule(RuleKind::HashMask) => write!(f, "hash-mask rule"),
            InstallOpKind::BuddyWrite => write!(f, "buddy write"),
            InstallOpKind::RegisterWrite => write!(f, "register write"),
        }
    }
}

/// A failed install-time operation: which op, where, and after how many
/// attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallError {
    /// 1-based global index of the op in the plan's op sequence.
    pub op_index: u64,
    /// What class of operation failed.
    pub kind: InstallOpKind,
    /// The CMU group the op touched.
    pub group: usize,
    /// Attempts made (≥ 1; > 1 means retries were exhausted too).
    pub attempts: u32,
    /// Human-readable cause.
    pub reason: &'static str,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "install op #{} ({} on group {}) failed after {} attempt(s): {}",
            self.op_index, self.kind, self.group, self.attempts, self.reason
        )
    }
}

impl std::error::Error for InstallError {}

/// Bounded retry-with-backoff for install ops.
///
/// `max_attempts` includes the first try; the k-th retry waits
/// `backoff_ms * multiplier^(k-1)` of *modeled* time, optionally spread
/// by seeded `jitter` (see [`RetryPolicy::backoff_before_jittered`]) so
/// that many ops failing together do not retry in lockstep. The default
/// is one attempt and no backoff — faults surface immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per op (≥ 1).
    pub max_attempts: u32,
    /// Modeled backoff before the first retry, in milliseconds.
    pub backoff_ms: f64,
    /// Exponential growth factor for successive backoffs.
    pub multiplier: f64,
    /// Jitter fraction in `0.0..=1.0`: each backoff is scaled by a
    /// seeded uniform factor in `[1 - jitter, 1]`. `0.0` (the default)
    /// reproduces the pure exponential schedule bit-for-bit and draws
    /// nothing from the generator.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0.0,
            multiplier: 2.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Builds a policy after checking it, rejecting configurations that
    /// would otherwise fail (or spin) deep inside an install sequence:
    /// zero attempts, and non-finite or negative backoff parameters.
    pub fn checked(max_attempts: u32, backoff_ms: f64, multiplier: f64) -> Result<Self, &'static str> {
        let policy = RetryPolicy {
            max_attempts,
            backoff_ms,
            multiplier,
            jitter: 0.0,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Returns the policy with the given jitter fraction. The result
    /// still has to pass [`RetryPolicy::validate`] (called by every
    /// consumer that accepts a policy), which rejects jitter outside
    /// `0.0..=1.0`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Checks an already-constructed policy (the fields are public, so a
    /// literal can bypass [`RetryPolicy::checked`]). The control plane
    /// calls this before accepting a policy, turning a latent
    /// mid-transaction failure into an immediate configuration error.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1 (it counts the first try)");
        }
        if !self.backoff_ms.is_finite() || self.backoff_ms < 0.0 {
            return Err("backoff_ms must be finite and non-negative");
        }
        if !self.multiplier.is_finite() || self.multiplier < 0.0 {
            return Err("multiplier must be finite and non-negative");
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err("jitter must be a finite fraction in 0.0..=1.0");
        }
        Ok(())
    }

    /// A policy with `max_attempts` tries and 1 ms initial backoff
    /// doubling per retry.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_ms: 1.0,
            multiplier: 2.0,
            jitter: 0.0,
        }
    }

    /// Modeled backoff before attempt `attempt` (1-based; attempt 1 is
    /// free).
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.backoff_ms * self.multiplier.powi(attempt as i32 - 2)
        }
    }

    /// Like [`RetryPolicy::backoff_before`], scaled by a seeded uniform
    /// factor in `[1 - jitter, 1]` drawn from `rng`. The returned value
    /// is the *exact* modeled wait — callers fold it into their latency
    /// accounting as-is, so the books stay balanced to the bit. With
    /// `jitter == 0.0` (or a zero base backoff) nothing is drawn and the
    /// deterministic schedule is returned unchanged, so pre-jitter seeds
    /// reproduce identical fault streams.
    pub fn backoff_before_jittered(&self, attempt: u32, rng: &mut SplitMix64) -> f64 {
        let base = self.backoff_before(attempt);
        if base == 0.0 || self.jitter == 0.0 {
            return base;
        }
        base * (1.0 - self.jitter * rng.next_f64())
    }
}

/// What one successfully executed op cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Attempts used (1 = no retry).
    pub attempts: u32,
    /// Total modeled backoff spent on retries, in milliseconds.
    pub backoff_ms: f64,
}

/// A deterministic, seedable schedule of install-op faults.
///
/// All knobs compose: an op fails an attempt if *any* armed condition
/// matches it. `fail_nth`, `fail_kind` and `kill_group` are *permanent*
/// (every attempt fails); `transient` fails only the first k attempts of
/// each op; `fail_probability` is an independent per-attempt coin from
/// the seeded generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    fail_nth: Option<u64>,
    fail_kinds: Vec<InstallOpKind>,
    dead_groups: Vec<usize>,
    fail_probability: f64,
    transient_failures: u32,
    rng: SplitMix64,
    ops_seen: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (nothing fails) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            fail_nth: None,
            fail_kinds: Vec::new(),
            dead_groups: Vec::new(),
            fail_probability: 0.0,
            transient_failures: 0,
            rng: SplitMix64::new(seed),
            ops_seen: 0,
        }
    }

    /// Permanently fail the `n`-th op (1-based) seen by this plan.
    pub fn fail_nth(mut self, n: u64) -> Self {
        self.fail_nth = Some(n);
        self
    }

    /// Permanently fail every op of `kind`.
    pub fn fail_kind(mut self, kind: InstallOpKind) -> Self {
        self.fail_kinds.push(kind);
        self
    }

    /// Mark a CMU group dead: every op touching it fails.
    pub fn kill_group(mut self, group: usize) -> Self {
        self.dead_groups.push(group);
        self
    }

    /// Fail each attempt independently with probability `p`.
    pub fn fail_probability(mut self, p: f64) -> Self {
        self.fail_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Fail the first `k` attempts of every op, then let it succeed —
    /// the flaky-channel model a retry policy is meant to absorb.
    pub fn transient(mut self, k: u32) -> Self {
        self.transient_failures = k;
        self
    }

    /// Revive a previously killed group (fleet repair).
    pub fn revive_group(&mut self, group: usize) {
        self.dead_groups.retain(|&g| g != group);
    }

    /// Whether `group` is currently marked dead.
    pub fn group_is_dead(&self, group: usize) -> bool {
        self.dead_groups.contains(&group)
    }

    /// Ops judged so far (the op counter persists while the plan is
    /// armed, across deploy/remove calls).
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Judges one attempt. `op_index` is 1-based and assigned once per
    /// op; retries re-ask with the same index and a higher `attempt`.
    fn judge(
        &mut self,
        op_index: u64,
        attempt: u32,
        kind: InstallOpKind,
        group: usize,
    ) -> Result<(), &'static str> {
        if self.fail_nth == Some(op_index) {
            return Err("fault plan: scheduled Nth-op failure");
        }
        if self.fail_kinds.contains(&kind) {
            return Err("fault plan: op kind is failed");
        }
        if self.dead_groups.contains(&group) {
            return Err("fault plan: CMU group is dead");
        }
        if attempt <= self.transient_failures {
            return Err("fault plan: transient fault");
        }
        if self.fail_probability > 0.0 && self.rng.chance(self.fail_probability) {
            return Err("fault plan: random fault");
        }
        Ok(())
    }

    /// Executes one modeled install op under `policy`: assigns the next
    /// op index, judges up to `policy.max_attempts` attempts, and
    /// returns the cost on success or the exhausted [`InstallError`].
    pub fn execute(
        &mut self,
        kind: InstallOpKind,
        group: usize,
        policy: &RetryPolicy,
    ) -> Result<OpCost, InstallError> {
        self.ops_seen += 1;
        let op_index = self.ops_seen;
        let max = policy.max_attempts.max(1);
        let mut backoff_ms = 0.0;
        let mut last_reason = "unreachable";
        for attempt in 1..=max {
            backoff_ms += policy.backoff_before_jittered(attempt, &mut self.rng);
            match self.judge(op_index, attempt, kind, group) {
                Ok(()) => {
                    return Ok(OpCost {
                        attempts: attempt,
                        backoff_ms,
                    })
                }
                Err(reason) => last_reason = reason,
            }
        }
        Err(InstallError {
            op_index,
            kind,
            group,
            attempts: max,
            reason: last_reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OP: InstallOpKind = InstallOpKind::Rule(RuleKind::TableEntry);

    #[test]
    fn empty_plan_permits_everything() {
        let mut plan = FaultPlan::new(1);
        for _ in 0..100 {
            let cost = plan.execute(OP, 0, &RetryPolicy::default()).unwrap();
            assert_eq!(cost.attempts, 1);
            assert_eq!(cost.backoff_ms, 0.0);
        }
        assert_eq!(plan.ops_seen(), 100);
    }

    #[test]
    fn nth_op_fails_permanently() {
        let mut plan = FaultPlan::new(1).fail_nth(3);
        let policy = RetryPolicy::with_attempts(4);
        assert!(plan.execute(OP, 0, &policy).is_ok());
        assert!(plan.execute(OP, 0, &policy).is_ok());
        let err = plan.execute(OP, 0, &policy).unwrap_err();
        assert_eq!(err.op_index, 3);
        assert_eq!(err.attempts, 4, "retries cannot save a permanent fault");
        // Ops after the Nth succeed again.
        assert!(plan.execute(OP, 0, &policy).is_ok());
    }

    #[test]
    fn kind_and_group_faults() {
        let mut plan = FaultPlan::new(1)
            .fail_kind(InstallOpKind::Rule(RuleKind::HashMask))
            .kill_group(2);
        let p = RetryPolicy::default();
        assert!(plan.execute(OP, 0, &p).is_ok());
        assert!(plan
            .execute(InstallOpKind::Rule(RuleKind::HashMask), 0, &p)
            .is_err());
        assert!(plan.execute(OP, 2, &p).is_err());
        assert!(plan.execute(InstallOpKind::BuddyWrite, 2, &p).is_err());
        plan.revive_group(2);
        assert!(plan.execute(OP, 2, &p).is_ok());
    }

    #[test]
    fn transient_fault_is_absorbed_by_retries() {
        let mut plan = FaultPlan::new(1).transient(2);
        // One attempt: fails.
        assert!(plan.execute(OP, 0, &RetryPolicy::default()).is_err());
        // Three attempts: third succeeds, with backoff 1 + 2 ms.
        let cost = plan.execute(OP, 0, &RetryPolicy::with_attempts(3)).unwrap();
        assert_eq!(cost.attempts, 3);
        assert!((cost.backoff_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_ms: 2.0,
            multiplier: 3.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_before(1), 0.0);
        assert_eq!(p.backoff_before(2), 2.0);
        assert_eq!(p.backoff_before(3), 6.0);
        assert_eq!(p.backoff_before(4), 18.0);
    }

    #[test]
    fn jittered_backoff_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy::with_attempts(6).with_jitter(0.5);
        let draws = |seed: u64| -> Vec<f64> {
            let mut rng = SplitMix64::new(seed);
            (1..=6).map(|a| p.backoff_before_jittered(a, &mut rng)).collect()
        };
        let a = draws(42);
        assert_eq!(a[0], 0.0, "attempt 1 is free, jitter or not");
        for (i, &b) in a.iter().enumerate().skip(1) {
            let base = p.backoff_before(i as u32 + 1);
            assert!(b <= base && b >= base * 0.5, "attempt {}: {b} not in [{}, {base}]", i + 1, base * 0.5);
        }
        assert_eq!(a, draws(42), "same seed, same jittered schedule");
        assert_ne!(a, draws(43), "different seed, spread-out retries");
        // jitter = 0 draws nothing: a shared rng stream is unperturbed.
        let mut rng = SplitMix64::new(7);
        let before = rng;
        let plain = RetryPolicy::with_attempts(4);
        assert_eq!(plain.backoff_before_jittered(3, &mut rng), plain.backoff_before(3));
        assert_eq!(rng, before, "zero jitter must not consume randomness");
    }

    #[test]
    fn jitter_validation_and_exact_cost_accounting() {
        assert!(RetryPolicy::checked(3, 1.0, 2.0).unwrap().with_jitter(0.25).validate().is_ok());
        assert!(RetryPolicy::with_attempts(3).with_jitter(1.5).validate().is_err());
        assert!(RetryPolicy::with_attempts(3).with_jitter(-0.1).validate().is_err());
        assert!(RetryPolicy::with_attempts(3).with_jitter(f64::NAN).validate().is_err());
        // The OpCost books record the actual jittered waits: replaying
        // the same seed reproduces the sum exactly, and it is bounded by
        // the unjittered schedule from above and its halved form below.
        let policy = RetryPolicy::with_attempts(3).with_jitter(0.5);
        let cost = FaultPlan::new(9)
            .transient(2)
            .execute(OP, 0, &policy)
            .unwrap();
        let replay = FaultPlan::new(9)
            .transient(2)
            .execute(OP, 0, &policy)
            .unwrap();
        assert_eq!(cost.attempts, 3);
        assert_eq!(cost.backoff_ms, replay.backoff_ms, "modeled latency is seed-exact");
        assert!(cost.backoff_ms <= 3.0 && cost.backoff_ms >= 1.5, "got {}", cost.backoff_ms);
    }

    #[test]
    fn checked_policy_rejects_degenerate_configurations() {
        assert!(RetryPolicy::checked(3, 1.0, 2.0).is_ok());
        assert!(RetryPolicy::checked(1, 0.0, 0.0).is_ok(), "no-retry, no-backoff is valid");
        assert!(RetryPolicy::checked(0, 1.0, 2.0).is_err(), "zero attempts never executes");
        assert!(RetryPolicy::checked(3, f64::NAN, 2.0).is_err());
        assert!(RetryPolicy::checked(3, f64::INFINITY, 2.0).is_err());
        assert!(RetryPolicy::checked(3, -1.0, 2.0).is_err());
        assert!(RetryPolicy::checked(3, 1.0, f64::NAN).is_err());
        assert!(RetryPolicy::checked(3, 1.0, -2.0).is_err());
        // validate() catches a hand-built literal too.
        let bad = RetryPolicy {
            max_attempts: 0,
            backoff_ms: 1.0,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().is_err());
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::with_attempts(5).validate().is_ok());
    }

    #[test]
    fn probabilistic_faults_are_deterministic_given_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(seed).fail_probability(0.3);
            (0..200)
                .map(|_| plan.execute(OP, 0, &RetryPolicy::default()).is_ok())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same verdicts");
        assert_ne!(run(7), run(8), "different seed, different verdicts");
        let ok = run(7).iter().filter(|&&b| b).count();
        assert!((100..180).contains(&ok), "~70% should pass, got {ok}");
    }

    #[test]
    fn error_display_names_the_op() {
        let mut plan = FaultPlan::new(1).kill_group(4);
        let err = plan
            .execute(InstallOpKind::RegisterWrite, 4, &RetryPolicy::default())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("register write"), "{msg}");
        assert!(msg.contains("group 4"), "{msg}");
    }
}
