//! Versioned register-file checkpoints with full and dirty-delta capture.
//!
//! The control plane periodically snapshots SALU register files so a
//! warm standby can reconstruct a failed switch's sketch state. Two
//! capture modes exist:
//!
//! - **Full**: copies every bucket. Taken once when a standby attaches.
//! - **Delta**: copies only the [`crate::register::Register::dirty_range`]
//!   watermark written since the previous capture, so periodic snapshots
//!   of a mostly-idle register cost O(touched SRAM), not O(all SRAM).
//!
//! Capture is a *barrier*: it clears the dirty watermark, so consecutive
//! deltas compose — applying a full snapshot and then every delta taken
//! after it, in order, reproduces the live register bit-identically.
//! [`RegisterCheckpoint`] bundles one snapshot per register in a pipeline
//! in canonical order; [`RegisterCheckpoint::overlay`] folds a delta
//! checkpoint onto a full base so the standby always holds a single
//! restorable image.

use crate::register::Register;
use crate::RmtError;

/// Format version stamped into every snapshot. Restore refuses a
/// version it does not understand rather than misinterpreting payload.
pub const CHECKPOINT_VERSION: u16 = 1;

/// How much of a register a capture copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Copy every bucket regardless of dirty state.
    Full,
    /// Copy only the dirty watermark since the previous capture.
    Delta,
}

/// A contiguous run of captured buckets starting at `start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtySpan {
    /// First bucket index covered by `data`.
    pub start: usize,
    /// Captured bucket values for `[start, start + data.len())`.
    pub data: Vec<u32>,
}

/// Snapshot payload: either the whole register file or the dirty spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotData {
    /// Every bucket, in address order.
    Full(Vec<u32>),
    /// Only buckets written since the previous capture barrier. Empty
    /// when the register was untouched.
    Delta(Vec<DirtySpan>),
}

/// A versioned snapshot of one register's state plus enough geometry to
/// refuse restoring onto a mismatched register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterSnapshot {
    /// Format version ([`CHECKPOINT_VERSION`] at capture time).
    pub version: u16,
    /// Bucket bit width of the source register.
    pub width_bits: u8,
    /// Bucket count of the source register.
    pub len: usize,
    /// Captured payload.
    pub data: SnapshotData,
}

impl RegisterSnapshot {
    /// Captures `reg` and clears its dirty watermark (the snapshot
    /// barrier: the next delta covers only writes after this call).
    pub fn capture(reg: &mut Register, mode: CaptureMode) -> Self {
        let data = match mode {
            CaptureMode::Full => {
                SnapshotData::Full(reg.read_range(0, reg.len()).expect("full range").to_vec())
            }
            CaptureMode::Delta => {
                let spans = match reg.dirty_range() {
                    Some((start, end)) => vec![DirtySpan {
                        start,
                        data: reg.read_range(start, end).expect("dirty range").to_vec(),
                    }],
                    None => Vec::new(),
                };
                SnapshotData::Delta(spans)
            }
        };
        reg.clear_dirty();
        RegisterSnapshot {
            version: CHECKPOINT_VERSION,
            width_bits: reg.width_bits(),
            len: reg.len(),
            data,
        }
    }

    /// Number of bucket values this snapshot actually carries — the
    /// cheapness metric for delta mode.
    pub fn payload_buckets(&self) -> usize {
        match &self.data {
            SnapshotData::Full(data) => data.len(),
            SnapshotData::Delta(spans) => spans.iter().map(|s| s.data.len()).sum(),
        }
    }

    /// True when the payload is a full image (restorable on its own).
    pub fn is_full(&self) -> bool {
        matches!(self.data, SnapshotData::Full(_))
    }

    fn check_geometry(&self, reg: &Register) -> Result<(), RmtError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(RmtError::CheckpointMismatch("snapshot version"));
        }
        if self.width_bits != reg.width_bits() {
            return Err(RmtError::CheckpointMismatch("register width"));
        }
        if self.len != reg.len() {
            return Err(RmtError::CheckpointMismatch("register length"));
        }
        Ok(())
    }

    /// Writes the snapshot into `reg`. A full snapshot overwrites every
    /// bucket; a delta overwrites only its spans (the caller must have
    /// applied the base image first). Restored writes dirty `reg` like
    /// any other write; the restoring control plane decides when to
    /// place the next barrier.
    pub fn apply(&self, reg: &mut Register) -> Result<(), RmtError> {
        self.check_geometry(reg)?;
        match &self.data {
            SnapshotData::Full(data) => {
                for (addr, &value) in data.iter().enumerate() {
                    reg.write(addr, value)?;
                }
            }
            SnapshotData::Delta(spans) => {
                for span in spans {
                    if span.start + span.data.len() > reg.len() {
                        return Err(RmtError::CheckpointMismatch("delta span range"));
                    }
                    for (i, &value) in span.data.iter().enumerate() {
                        reg.write(span.start + i, value)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds a delta snapshot of the same register onto this full
    /// snapshot, producing the image a restore would yield after
    /// applying both in order.
    pub fn merge_delta(&mut self, delta: &RegisterSnapshot) -> Result<(), RmtError> {
        if self.version != delta.version {
            return Err(RmtError::CheckpointMismatch("snapshot version"));
        }
        if self.width_bits != delta.width_bits || self.len != delta.len {
            return Err(RmtError::CheckpointMismatch("register geometry"));
        }
        let base = match &mut self.data {
            SnapshotData::Full(data) => data,
            SnapshotData::Delta(_) => {
                return Err(RmtError::CheckpointMismatch("merge base must be full"))
            }
        };
        let spans = match &delta.data {
            SnapshotData::Delta(spans) => spans,
            SnapshotData::Full(_) => {
                // A full snapshot supersedes the base outright.
                self.data = delta.data.clone();
                return Ok(());
            }
        };
        for span in spans {
            let end = span.start + span.data.len();
            if end > base.len() {
                return Err(RmtError::CheckpointMismatch("delta span range"));
            }
            base[span.start..end].copy_from_slice(&span.data);
        }
        Ok(())
    }
}

/// A checkpoint over a whole pipeline's register files, one snapshot per
/// register in a canonical order fixed by the capturing control plane
/// (group-major, CMU-minor). Restore and overlay require the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`] at capture time).
    pub version: u16,
    /// Per-register snapshots in canonical order.
    pub snapshots: Vec<RegisterSnapshot>,
}

impl RegisterCheckpoint {
    /// Captures every register in `regs` (in the order given) and places
    /// the snapshot barrier on each.
    pub fn capture<'a, I>(regs: I, mode: CaptureMode) -> Self
    where
        I: IntoIterator<Item = &'a mut Register>,
    {
        RegisterCheckpoint {
            version: CHECKPOINT_VERSION,
            snapshots: regs
                .into_iter()
                .map(|r| RegisterSnapshot::capture(r, mode))
                .collect(),
        }
    }

    /// True when every snapshot is a full image (restorable on its own).
    pub fn is_full(&self) -> bool {
        self.snapshots.iter().all(RegisterSnapshot::is_full)
    }

    /// Total bucket values carried across all snapshots.
    pub fn payload_buckets(&self) -> usize {
        self.snapshots.iter().map(|s| s.payload_buckets()).sum()
    }

    /// Applies each snapshot to the corresponding register in `regs`
    /// (same canonical order as capture). Register count must match.
    pub fn restore<'a, I>(&self, regs: I) -> Result<(), RmtError>
    where
        I: IntoIterator<Item = &'a mut Register>,
    {
        let mut applied = 0;
        let mut iter = regs.into_iter();
        for snapshot in &self.snapshots {
            let reg = iter
                .next()
                .ok_or(RmtError::CheckpointMismatch("register count"))?;
            snapshot.apply(reg)?;
            applied += 1;
        }
        if iter.next().is_some() {
            return Err(RmtError::CheckpointMismatch("register count"));
        }
        debug_assert_eq!(applied, self.snapshots.len());
        Ok(())
    }

    /// Folds a delta checkpoint onto this full base, register by
    /// register. After the overlay this base equals the live pipeline at
    /// the delta's capture barrier.
    pub fn overlay(&mut self, delta: &RegisterCheckpoint) -> Result<(), RmtError> {
        if self.version != delta.version {
            return Err(RmtError::CheckpointMismatch("checkpoint version"));
        }
        if self.snapshots.len() != delta.snapshots.len() {
            return Err(RmtError::CheckpointMismatch("register count"));
        }
        for (base, d) in self.snapshots.iter_mut().zip(&delta.snapshots) {
            base.merge_delta(d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(buckets: usize, width: u8, stride: usize) -> Register {
        let mut r = Register::new(buckets, width);
        for i in (0..buckets).step_by(stride) {
            r.write(i, (i as u32).wrapping_mul(2654435761) & r.max_value())
                .unwrap();
        }
        r
    }

    fn contents(r: &Register) -> Vec<u32> {
        r.read_range(0, r.len()).unwrap().to_vec()
    }

    #[test]
    fn full_round_trip_is_bit_identical() {
        let mut src = filled(256, 16, 3);
        let snap = RegisterSnapshot::capture(&mut src, CaptureMode::Full);
        assert_eq!(snap.payload_buckets(), 256);
        assert!(snap.is_full());
        let mut dst = Register::new(256, 16);
        snap.apply(&mut dst).unwrap();
        assert_eq!(contents(&src), contents(&dst));
    }

    #[test]
    fn delta_captures_only_touched_sram() {
        let mut src = filled(1024, 32, 1);
        // Barrier: everything before this is "already checkpointed".
        let mut base = RegisterSnapshot::capture(&mut src, CaptureMode::Full);
        // Touch a narrow window.
        src.write(100, 7).unwrap();
        src.write(110, 9).unwrap();
        let delta = RegisterSnapshot::capture(&mut src, CaptureMode::Delta);
        assert_eq!(delta.payload_buckets(), 11, "watermark spans [100, 111)");
        assert!(delta.payload_buckets() < 1024 / 8, "delta must be cheap");
        // base + delta == live register.
        base.merge_delta(&delta).unwrap();
        let mut dst = Register::new(1024, 32);
        base.apply(&mut dst).unwrap();
        assert_eq!(contents(&src), contents(&dst));
        // Untouched register yields an empty delta.
        let empty = RegisterSnapshot::capture(&mut src, CaptureMode::Delta);
        assert_eq!(empty.payload_buckets(), 0);
    }

    #[test]
    fn capture_is_a_barrier() {
        let mut src = Register::new(64, 16);
        src.write(5, 1).unwrap();
        let _ = RegisterSnapshot::capture(&mut src, CaptureMode::Delta);
        src.write(40, 2).unwrap();
        let second = RegisterSnapshot::capture(&mut src, CaptureMode::Delta);
        // Only the post-barrier write appears.
        assert_eq!(second.payload_buckets(), 1);
        match &second.data {
            SnapshotData::Delta(spans) => assert_eq!(spans[0].start, 40),
            _ => panic!("expected delta"),
        }
    }

    #[test]
    fn geometry_and_version_mismatches_are_rejected() {
        let mut src = Register::new(64, 16);
        let mut snap = RegisterSnapshot::capture(&mut src, CaptureMode::Full);
        let mut wrong_len = Register::new(128, 16);
        assert!(matches!(
            snap.apply(&mut wrong_len),
            Err(RmtError::CheckpointMismatch("register length"))
        ));
        let mut wrong_width = Register::new(64, 8);
        assert!(matches!(
            snap.apply(&mut wrong_width),
            Err(RmtError::CheckpointMismatch("register width"))
        ));
        snap.version = CHECKPOINT_VERSION + 1;
        let mut ok = Register::new(64, 16);
        assert!(matches!(
            snap.apply(&mut ok),
            Err(RmtError::CheckpointMismatch("snapshot version"))
        ));
    }

    #[test]
    fn pipeline_checkpoint_restores_in_order() {
        let mut a = filled(32, 16, 2);
        let mut b = filled(64, 8, 5);
        let chk =
            RegisterCheckpoint::capture(vec![&mut a, &mut b], CaptureMode::Full);
        assert!(chk.is_full());
        assert_eq!(chk.payload_buckets(), 96);
        let mut a2 = Register::new(32, 16);
        let mut b2 = Register::new(64, 8);
        chk.restore(vec![&mut a2, &mut b2]).unwrap();
        assert_eq!(contents(&a), contents(&a2));
        assert_eq!(contents(&b), contents(&b2));
        // Register-count mismatch in either direction is rejected.
        let mut only = Register::new(32, 16);
        assert!(chk.restore(vec![&mut only]).is_err());
        let mut c = Register::new(16, 4);
        assert!(chk
            .restore(vec![&mut a2, &mut b2, &mut c])
            .is_err());
    }

    #[test]
    fn overlay_folds_deltas_onto_full_base() {
        let mut a = filled(32, 16, 1);
        let mut b = filled(32, 16, 4);
        let mut base =
            RegisterCheckpoint::capture(vec![&mut a, &mut b], CaptureMode::Full);
        a.write(3, 999).unwrap();
        b.clear_range(8, 12).unwrap();
        let delta =
            RegisterCheckpoint::capture(vec![&mut a, &mut b], CaptureMode::Delta);
        assert!(!delta.is_full());
        base.overlay(&delta).unwrap();
        let mut a2 = Register::new(32, 16);
        let mut b2 = Register::new(32, 16);
        base.restore(vec![&mut a2, &mut b2]).unwrap();
        assert_eq!(contents(&a), contents(&a2));
        assert_eq!(contents(&b), contents(&b2));
    }

    #[test]
    fn overlay_rejects_shape_mismatch() {
        let mut a = Register::new(32, 16);
        let mut base = RegisterCheckpoint::capture(vec![&mut a], CaptureMode::Full);
        let mut b = Register::new(32, 16);
        let mut c = Register::new(32, 16);
        let delta =
            RegisterCheckpoint::capture(vec![&mut b, &mut c], CaptureMode::Delta);
        assert!(matches!(
            base.overlay(&delta),
            Err(RmtError::CheckpointMismatch("register count"))
        ));
        // A delta base cannot absorb anything.
        let mut delta_base = RegisterCheckpoint::capture(vec![&mut b], CaptureMode::Delta);
        let d2 = RegisterCheckpoint::capture(vec![&mut c], CaptureMode::Delta);
        assert!(delta_base.overlay(&d2).is_err());
    }
}
