//! Property tests for the RMT substrate.
//!
//! Randomized with the in-repo [`SplitMix64`] generator (fixed seeds ⇒
//! identical case set every run) — no external property-testing framework,
//! so the workspace builds fully offline.

use flymon_packet::{KeySpec, SplitMix64};
use flymon_rmt::salu::{Salu, StatefulOp};
use flymon_rmt::tcam::RangeField;

const CASES: usize = 256;

/// Prefix expansion of a range is minimal-ish and, above all, correct:
/// the expansion cost of an aligned power-of-two range is 1, and any
/// range costs at most 2*32 entries (the classic bound).
#[test]
fn range_expansion_bounds() {
    let mut r = SplitMix64::new(0xA1);
    for _ in 0..CASES {
        let lo = r.next_u32();
        let len = r.range_u64(1, 1_000_000) as u32;
        let hi = lo.saturating_add(len - 1);
        let cost = RangeField::new(lo, hi).expansion_cost();
        assert!(cost >= 1);
        assert!(cost <= 62, "cost {cost} exceeds the 2w-2 bound");
    }
}

#[test]
fn aligned_ranges_cost_one() {
    let mut r = SplitMix64::new(0xA2);
    for _ in 0..CASES {
        let bits = r.range_u64(0, 31) as u32;
        let index = r.range_u64(0, 1024) as u32;
        let size = 1u32 << bits;
        let lo = index.wrapping_mul(size);
        let hi = lo.saturating_add(size - 1);
        if lo.checked_add(size - 1).is_some() {
            assert_eq!(RangeField::new(lo, hi).expansion_cost(), 1);
        }
    }
}

/// Cond-ADD with a threshold never pushes a bucket past it, and the
/// bucket value never decreases.
#[test]
fn cond_add_is_monotone_and_bounded() {
    let mut r = SplitMix64::new(0xA3);
    for _ in 0..64 {
        let threshold = r.range_u64(1, 0xffff) as u32;
        let updates = r.range_usize(1, 50);
        let mut s = Salu::new(4, 16);
        s.load_op(StatefulOp::CondAdd).unwrap();
        let mut last = 0u32;
        for _ in 0..updates {
            let p1 = r.next_u32();
            s.execute(StatefulOp::CondAdd, 0, p1 % 64, threshold).unwrap();
            let v = s.register().read(0).unwrap();
            // Only below-threshold states get increments, so the value
            // is bounded by threshold + the largest single increment.
            assert!(v < threshold + 64);
            assert!(v >= last, "bucket decreased: {last} -> {v}");
            last = v;
        }
    }
}

/// MAX is idempotent and order-insensitive: the final bucket equals the
/// maximum of all inputs (within register width).
#[test]
fn max_converges_to_maximum() {
    let mut r = SplitMix64::new(0xA4);
    for _ in 0..64 {
        let values: Vec<u32> = (0..r.range_usize(1, 40)).map(|_| r.next_u32()).collect();
        let mut s = Salu::new(2, 16);
        s.load_op(StatefulOp::Max).unwrap();
        for &v in &values {
            s.execute(StatefulOp::Max, 1, v, 0).unwrap();
        }
        let expect = values.iter().map(|&v| v & 0xffff).max().unwrap();
        assert_eq!(s.register().read(1).unwrap(), expect);
    }
}

/// OR-mode AND-OR only ever sets bits.
#[test]
fn or_is_bit_monotone() {
    let mut r = SplitMix64::new(0xA5);
    for _ in 0..64 {
        let masks: Vec<u32> = (0..r.range_usize(1, 40)).map(|_| r.next_u32()).collect();
        let mut s = Salu::new(2, 16);
        s.load_op(StatefulOp::AndOr).unwrap();
        let mut acc = 0u32;
        for &m in &masks {
            let out = s.execute(StatefulOp::AndOr, 0, m, 1).unwrap();
            let expected = (acc | m) & 0xffff;
            assert_eq!(out.result, expected);
            assert_eq!(out.old, acc);
            acc = expected;
        }
    }
}

/// Hash units: digests depend only on the masked fields — packets equal
/// under the mask digest equally, regardless of other fields.
#[test]
fn hash_respects_mask() {
    use flymon_packet::Packet;
    use flymon_rmt::hash::HashUnit;
    let mut r = SplitMix64::new(0xA6);
    for _ in 0..CASES {
        let src = r.next_u32();
        let d1 = r.next_u32();
        let d2 = r.next_u32();
        let mut unit = HashUnit::new(1);
        unit.set_mask(KeySpec::SRC_IP);
        let a = unit.compute(&Packet::tcp(src, d1, 1, 2));
        let b = unit.compute(&Packet::tcp(src, d2, 3, 4));
        assert_eq!(a, b);
    }
}

/// Range membership agrees between the range itself and its prefix
/// expansion semantics (sampled check).
#[test]
fn range_matches_are_exact() {
    let r = RangeField::new(1000, 5000);
    for x in [0u32, 999, 1000, 3000, 5000, 5001, 100_000] {
        assert_eq!(r.matches(x), (1000..=5000).contains(&x));
    }
}
