//! Property tests for the RMT substrate.

use flymon_packet::KeySpec;
use flymon_rmt::salu::{Salu, StatefulOp};
use flymon_rmt::tcam::RangeField;
use proptest::prelude::*;

proptest! {
    /// Prefix expansion of a range is minimal-ish and, above all,
    /// correct: the expansion cost of an aligned power-of-two range is 1,
    /// and any range costs at most 2*32 entries (the classic bound).
    #[test]
    fn range_expansion_bounds(lo in any::<u32>(), len in 1u32..1_000_000) {
        let hi = lo.saturating_add(len - 1);
        let cost = RangeField::new(lo, hi).expansion_cost();
        prop_assert!(cost >= 1);
        prop_assert!(cost <= 62, "cost {cost} exceeds the 2w-2 bound");
    }

    #[test]
    fn aligned_ranges_cost_one(bits in 0u32..31, index in 0u32..1024) {
        let size = 1u32 << bits;
        let lo = index.wrapping_mul(size);
        let hi = lo.saturating_add(size - 1);
        if lo.checked_add(size - 1).is_some() {
            prop_assert_eq!(RangeField::new(lo, hi).expansion_cost(), 1);
        }
    }

    /// Cond-ADD with a threshold never pushes a bucket past it, and the
    /// bucket value never decreases.
    #[test]
    fn cond_add_is_monotone_and_bounded(
        updates in prop::collection::vec((any::<u32>(), any::<u32>()), 1..50),
        threshold in 1u32..0xffff,
    ) {
        let mut s = Salu::new(4, 16);
        s.load_op(StatefulOp::CondAdd).unwrap();
        let mut last = 0u32;
        for (p1, _) in updates {
            s.execute(StatefulOp::CondAdd, 0, p1 % 64, threshold).unwrap();
            let v = s.register().read(0).unwrap();
            // Only below-threshold states get increments, so the value
            // is bounded by threshold + the largest single increment.
            prop_assert!(v < threshold + 64);
            prop_assert!(v >= last, "bucket decreased: {last} -> {v}");
            last = v;
        }
    }

    /// MAX is idempotent and order-insensitive: the final bucket equals
    /// the maximum of all inputs (within register width).
    #[test]
    fn max_converges_to_maximum(values in prop::collection::vec(any::<u32>(), 1..40)) {
        let mut s = Salu::new(2, 16);
        s.load_op(StatefulOp::Max).unwrap();
        for &v in &values {
            s.execute(StatefulOp::Max, 1, v, 0).unwrap();
        }
        let expect = values.iter().map(|&v| v & 0xffff).max().unwrap();
        prop_assert_eq!(s.register().read(1).unwrap(), expect);
    }

    /// OR-mode AND-OR only ever sets bits.
    #[test]
    fn or_is_bit_monotone(masks in prop::collection::vec(any::<u32>(), 1..40)) {
        let mut s = Salu::new(2, 16);
        s.load_op(StatefulOp::AndOr).unwrap();
        let mut acc = 0u32;
        for &m in &masks {
            let out = s.execute(StatefulOp::AndOr, 0, m, 1).unwrap();
            let expected = (acc | m) & 0xffff;
            prop_assert_eq!(out.result, expected);
            prop_assert_eq!(out.old, acc);
            acc = expected;
        }
    }

    /// Hash units: digests depend only on the masked fields — packets
    /// equal under the mask digest equally, regardless of other fields.
    #[test]
    fn hash_respects_mask(src in any::<u32>(), d1 in any::<u32>(), d2 in any::<u32>()) {
        use flymon_packet::Packet;
        use flymon_rmt::hash::HashUnit;
        let mut unit = HashUnit::new(1);
        unit.set_mask(KeySpec::SRC_IP);
        let a = unit.compute(&Packet::tcp(src, d1, 1, 2));
        let b = unit.compute(&Packet::tcp(src, d2, 3, 4));
        prop_assert_eq!(a, b);
    }
}

/// Range membership agrees between the range itself and its prefix
/// expansion semantics (sampled check).
#[test]
fn range_matches_are_exact() {
    let r = RangeField::new(1000, 5000);
    for x in [0u32, 999, 1000, 3000, 5000, 5001, 100_000] {
        assert_eq!(r.matches(x), (1000..=5000).contains(&x));
    }
}
